#!/usr/bin/env python
"""CI smoke for the ``repro-sim serve`` daemon (see docs/service.md).

Boots a real daemon subprocess, submits two identical concurrent sweep
jobs, and asserts the service-level invariants end to end:

* both jobs finish ``done`` with identical result documents;
* at least one duplicate point was coalesced (``/v1/metrics``), and
  every requested point was either scheduled once or coalesced;
* with ``--expect-cold``, the disk cache records exactly one miss per
  unique grid point — i.e. 0 duplicate executions for 2x the requests;
* SIGTERM drains gracefully: exit code 0 after in-flight work lands.

The winning job's result document is written to ``--out`` in exactly
the format of ``repro-sim sweep --out`` so the caller can ``cmp`` it
against a clean one-shot CLI sweep — including runs where
``REPRO_FAULT_SPEC`` (inherited by the daemon) injects worker crashes.

``--chaos-daemon`` switches to the durability drill instead: the daemon
is booted with ``REPRO_FAULT_DAEMON_AFTER=N`` so it SIGKILLs *itself*
between write-ahead journal appends mid-job, a second daemon is started
on the same ``--state-dir``, and the script asserts the job is reported
``recovered: true`` and converges to the same ``--out`` document a
clean run would produce (the CI job ``cmp``\\ s it against a one-shot
CLI sweep).

Stdlib only; exits non-zero with a diagnostic on any violated invariant.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _request(port, method, path, body=None, headers=None, timeout=300):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request(
        method,
        path,
        body=json.dumps(body) if body is not None else None,
        headers=headers or {},
    )
    resp = conn.getresponse()
    data = resp.read()
    conn.close()
    return resp.status, json.loads(data) if data else None


def _wait_job(port, job_id, timeout):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = _request(port, "GET", f"/v1/jobs/{job_id}")
        if status != 200:
            raise SystemExit(f"FAIL: job poll returned HTTP {status}")
        if doc["status"] != "running":
            return doc
        time.sleep(0.2)
    raise SystemExit(f"FAIL: job {job_id} still running after {timeout}s")


def _boot_daemon(args, env, state_dir=None):
    """Start one daemon subprocess; returns ``(process, port)``."""
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--jobs", str(args.jobs),
        "--cache-dir", args.cache_dir,
        "--drain-timeout", "300",
        "--timeout", "60",  # hung (faulted) workers get killed + retried
    ]
    if state_dir is not None:
        cmd += ["--state-dir", str(state_dir)]
    daemon = subprocess.Popen(
        cmd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = daemon.stdout.readline()
    while line and "listening on http://" not in line:
        line = daemon.stdout.readline()  # skip recovery log lines
    if "listening on http://" not in line:
        daemon.kill()
        daemon.wait()
        raise SystemExit(f"FAIL: unexpected daemon banner: {line!r}")
    port = int(line.split("listening on http://", 1)[1]
               .split()[0].rsplit(":", 1)[1])
    print(f"daemon up on port {port} (pid {daemon.pid})")
    return daemon, port


def _chaos_daemon(args, env) -> int:
    """The durability drill: SIGKILL the daemon mid-journal, recover."""
    state_dir = Path(args.cache_dir) / "service-state"
    fault_dir = Path(args.cache_dir) / "fault-daemon"
    sentinel = fault_dir / "daemon.killed"
    if sentinel.exists():
        sentinel.unlink()  # make reruns on a warm dir deterministic
    env = dict(env)
    env["REPRO_FAULT_DAEMON_AFTER"] = str(args.kill_after)
    env["REPRO_FAULT_DIR"] = str(fault_dir)

    spec = {
        "configs": args.configs,
        "workloads": args.workloads,
        "length": args.length,
    }
    daemon, port = _boot_daemon(args, env, state_dir=state_dir)
    try:
        status, doc = _request(port, "POST", "/v1/sweep", spec)
        if status != 202:
            raise SystemExit(f"FAIL: submission got HTTP {status}: {doc}")
        job_id = doc["job"]
        print(f"submitted sweep {job_id}; waiting for the injected SIGKILL")
        rc = daemon.wait(timeout=args.timeout)
        if rc != -signal.SIGKILL:
            raise SystemExit(
                f"FAIL: daemon exited {rc}, expected SIGKILL "
                f"(-{int(signal.SIGKILL)}) after "
                f"{args.kill_after} journal appends"
            )
        if not sentinel.exists():
            raise SystemExit("FAIL: daemon died without claiming the "
                             "kill sentinel")
        print(f"daemon SIGKILLed itself after {args.kill_after} appends")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    # Same env on purpose: the claimed sentinel must protect the
    # restarted daemon from the still-armed kill switch.
    daemon, port = _boot_daemon(args, env, state_dir=state_dir)
    try:
        status, doc = _request(port, "GET", f"/v1/jobs/{job_id}")
        if status != 200:
            raise SystemExit(
                f"FAIL: pre-crash job unknown after restart (HTTP {status})"
            )
        if not doc.get("recovered"):
            raise SystemExit(f"FAIL: job not marked recovered: {doc}")
        print(f"job {job_id} recovered (status {doc['status']})")

        doc = _wait_job(port, job_id, args.timeout)
        if doc["status"] != "done" or doc["failed"]:
            raise SystemExit(f"FAIL: recovered job did not converge: {doc}")

        _status, metrics = _request(port, "GET", "/v1/metrics")
        service = metrics["service"]
        if service.get("jobs_recovered", 0) < 1:
            raise SystemExit(
                f"FAIL: jobs_recovered not counted: {service}"
            )
        status, ready = _request(port, "GET", "/v1/healthz/ready")
        if status != 200:
            raise SystemExit(f"FAIL: recovered daemon not ready: {ready}")

        Path(args.out).write_text(
            json.dumps(doc["result"], indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}")

        daemon.send_signal(signal.SIGTERM)
        rc = daemon.wait(timeout=120)
        tail = daemon.stdout.read()
        if rc != 0:
            raise SystemExit(f"FAIL: daemon exited {rc} on SIGTERM: {tail}")
        print("ok: killed mid-journal, recovered, converged, drained")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="result document path")
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--length", type=int, default=20_000)
    parser.add_argument(
        "--configs", nargs="+", default=["ibtb:16", "mbbtb:2:allbr"]
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=["web_frontend", "db_oltp", "kv_store", "template_render"],
    )
    parser.add_argument(
        "--expect-cold",
        action="store_true",
        help="assert exactly one cache miss per unique point "
        "(start this run on an empty --cache-dir)",
    )
    parser.add_argument(
        "--chaos-daemon",
        action="store_true",
        help="run the daemon-kill durability drill instead of the "
        "coalescing smoke",
    )
    parser.add_argument(
        "--kill-after", type=int, default=3, metavar="N",
        help="journal appends before the injected daemon SIGKILL "
        "(--chaos-daemon only; default 3: mid-job for any multi-point "
        "sweep)",
    )
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}" + env.get("PYTHONPATH", "")
    if args.chaos_daemon:
        return _chaos_daemon(args, env)
    daemon, port = _boot_daemon(args, env)
    try:
        spec = {
            "configs": args.configs,
            "workloads": args.workloads,
            "length": args.length,
        }
        submissions = [None, None]

        def submit(slot):
            submissions[slot] = _request(port, "POST", "/v1/sweep", spec)

        threads = [
            threading.Thread(target=submit, args=(slot,)) for slot in (0, 1)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for status, doc in submissions:
            if status != 202:
                raise SystemExit(f"FAIL: submission got HTTP {status}: {doc}")
        ids = [doc["job"] for _status, doc in submissions]
        print(f"submitted twin sweeps: {ids[0]} and {ids[1]}")

        docs = [_wait_job(port, job_id, args.timeout) for job_id in ids]
        for doc in docs:
            if doc["status"] != "done" or doc["failed"]:
                raise SystemExit(f"FAIL: job did not converge: {doc}")

        results = [
            json.dumps(doc["result"], indent=2, sort_keys=True) + "\n"
            for doc in docs
        ]
        if results[0] != results[1]:
            raise SystemExit("FAIL: twin jobs returned different results")

        _status, metrics = _request(port, "GET", "/v1/metrics")
        service = metrics["service"]
        unique = (len(args.configs) + 1) * len(args.workloads)  # + baseline
        print(
            f"metrics: requested={service['points_requested']} "
            f"scheduled={service['points_scheduled']} "
            f"coalesced={service['points_coalesced']} "
            f"result_misses={metrics['cache'].get('result_misses')} "
            f"resilience={metrics['resilience']}"
        )
        if service["points_requested"] != 2 * unique:
            raise SystemExit("FAIL: wrong request accounting")
        if service["points_coalesced"] < 1:
            raise SystemExit("FAIL: no coalescing observed across twin sweeps")
        if (
            service["points_scheduled"] + service["points_coalesced"]
            != service["points_requested"]
        ):
            raise SystemExit("FAIL: scheduled + coalesced != requested")
        if args.expect_cold:
            misses = metrics["cache"].get("result_misses")
            if misses != unique:
                raise SystemExit(
                    f"FAIL: expected {unique} cold misses (one execution "
                    f"per unique point), saw {misses}"
                )
        if os.environ.get("REPRO_FAULT_SPEC"):
            if metrics["resilience"].get("retries", 0) < 1:
                raise SystemExit(
                    "FAIL: fault spec set but no retries recorded — "
                    "the chaos run didn't actually exercise recovery"
                )

        Path(args.out).write_text(results[0])
        print(f"wrote {args.out}")

        daemon.send_signal(signal.SIGTERM)
        rc = daemon.wait(timeout=120)
        tail = daemon.stdout.read()
        if rc != 0:
            raise SystemExit(f"FAIL: daemon exited {rc} on SIGTERM: {tail}")
        print("ok: coalesced, converged, drained cleanly")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
