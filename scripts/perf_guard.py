#!/usr/bin/env python
"""Fail CI when a measured engine speedup regresses vs its baseline.

Two invocation forms::

    python scripts/perf_guard.py FRESH.json [BASELINE.json] [--tolerance F]
    python scripts/perf_guard.py --all FRESH_DIR [BASELINE_DIR] [--tolerance F]

The single-file form compares one freshly measured ``BENCH_*.json``
against its committed counterpart. The ``--all`` form pairs every
guardable ``BENCH_*.json`` in the baseline directory (default:
``benchmarks/results/``) with the file of the same name in
``FRESH_DIR`` and checks them all in one invocation.

A benchmark document is *guardable* when it carries a
``geomean_speedup`` (optionally with per-family ``families`` speedups —
``BENCH_batch.json``, ``BENCH_kernel.json``); when it only has
families, the geomean is computed from them. Documents with neither
(e.g. ``BENCH_sweep.json``, ``BENCH_corpus.json``, which report raw
phase timings) are skipped with a note — wall-clock seconds are not
stable across runner hardware, but a speedup *ratio* measured within
one process is.

The guard fails (exit 1) when any fresh geomean falls more than
``--tolerance`` (default 0.15, i.e. 15%) below its baseline, or when a
baseline family is missing from the fresh measurement.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
DEFAULT_BASELINE = BASELINE_DIR / "BENCH_batch.json"


def extract(doc: dict):
    """``(geomean_speedup, families)`` of a benchmark document, or
    ``None`` when it carries no engine-relative speedup to guard."""
    families = {
        name: float(family["speedup"])
        for name, family in doc.get("families", {}).items()
        if isinstance(family, dict) and "speedup" in family
    }
    geomean = doc.get("geomean_speedup")
    if geomean is None and families:
        geomean = math.exp(
            sum(math.log(s) for s in families.values()) / len(families)
        )
    if geomean is None:
        return None
    return float(geomean), families


def check_pair(
    fresh_path: Path, baseline_path: Path, tolerance: float
) -> bool:
    """Guard one fresh/baseline pair; ``True`` when within tolerance."""
    fresh_doc = json.loads(fresh_path.read_text())
    baseline_doc = json.loads(baseline_path.read_text())
    baseline = extract(baseline_doc)
    if baseline is None:
        print(f"skip {baseline_path.name}: no speedup keys to guard")
        return True
    fresh = extract(fresh_doc)
    if fresh is None:
        print(f"FAIL {fresh_path.name}: fresh measurement has no speedup keys")
        return False
    want, base_families = baseline
    got, fresh_families = fresh
    ok = True
    for name, base_speedup in base_families.items():
        fresh_speedup = fresh_families.get(name)
        if fresh_speedup is None:
            print(
                f"FAIL {fresh_path.name}: family {name!r} missing from "
                f"fresh measurement"
            )
            ok = False
            continue
        print(
            f"{baseline_path.name} {name}: baseline {base_speedup:.2f}x, "
            f"fresh {fresh_speedup:.2f}x"
        )
    floor = want * (1.0 - tolerance)
    print(
        f"{baseline_path.name} geomean: baseline {want:.3f}x, "
        f"fresh {got:.3f}x, floor {floor:.3f}x (tolerance {tolerance:.0%})"
    )
    if got < floor:
        print(
            f"FAIL {fresh_path.name}: geomean speedup {got:.3f}x regressed "
            f"more than {tolerance:.0%} below the baseline {want:.3f}x"
        )
        ok = False
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "fresh",
        help="freshly measured BENCH_*.json (or, with --all, a directory "
        "of fresh measurements)",
    )
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="committed baseline file (default: the file of the same name "
        "under benchmarks/results/) or, with --all, the baseline directory",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="treat FRESH as a directory and guard every guardable "
        "BENCH_*.json committed in the baseline directory",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression of the geomean (default 0.15)",
    )
    args = parser.parse_args(argv)

    if args.all:
        fresh_dir = Path(args.fresh)
        baseline_dir = Path(args.baseline) if args.baseline else BASELINE_DIR
        ok = True
        checked = 0
        for baseline_path in sorted(baseline_dir.glob("BENCH_*.json")):
            if extract(json.loads(baseline_path.read_text())) is None:
                print(f"skip {baseline_path.name}: no speedup keys to guard")
                continue
            fresh_path = fresh_dir / baseline_path.name
            if not fresh_path.is_file():
                print(
                    f"FAIL: no fresh measurement {fresh_path} for committed "
                    f"baseline {baseline_path.name}"
                )
                ok = False
                continue
            ok = check_pair(fresh_path, baseline_path, args.tolerance) and ok
            checked += 1
        if not checked and ok:
            print("FAIL: nothing guarded (no guardable baselines found)")
            return 1
        if ok:
            print(f"ok: {checked} benchmark(s) within tolerance")
        return 0 if ok else 1

    fresh_path = Path(args.fresh)
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        named = BASELINE_DIR / fresh_path.name
        baseline_path = named if named.is_file() else DEFAULT_BASELINE
    if not check_pair(fresh_path, baseline_path, args.tolerance):
        return 1
    print("ok: speedup within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
