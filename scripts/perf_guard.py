#!/usr/bin/env python
"""Fail CI when the batched engine's speedup regresses vs the baseline.

Usage::

    python scripts/perf_guard.py FRESH.json [BASELINE.json] [--tolerance F]

Compares the ``geomean_speedup`` (and each per-family speedup) of a
freshly measured ``BENCH_batch.json`` against the committed baseline in
``benchmarks/results/``. Speedup is a ratio of two engines measured in
the same process on the same machine, so it is stable across runner
hardware and trace scale where absolute seconds are not. The guard
fails (exit 1) when the fresh geomean falls more than ``--tolerance``
(default 0.15, i.e. 15%) below the baseline's.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "results"
    / "BENCH_batch.json"
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly measured BENCH_batch.json")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=str(DEFAULT_BASELINE),
        help="committed baseline (default: benchmarks/results/BENCH_batch.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression of the geomean (default 0.15)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    got = fresh["geomean_speedup"]
    want = baseline["geomean_speedup"]
    floor = want * (1.0 - args.tolerance)

    for name, base_family in baseline.get("families", {}).items():
        fresh_family = fresh.get("families", {}).get(name)
        if fresh_family is None:
            print(f"FAIL: family {name!r} missing from fresh measurement")
            return 1
        print(
            f"{name}: baseline {base_family['speedup']:.2f}x, "
            f"fresh {fresh_family['speedup']:.2f}x"
        )

    print(
        f"geomean: baseline {want:.3f}x, fresh {got:.3f}x, "
        f"floor {floor:.3f}x (tolerance {args.tolerance:.0%})"
    )
    if got < floor:
        print(
            f"FAIL: batched geomean speedup {got:.3f}x regressed more than "
            f"{args.tolerance:.0%} below the baseline {want:.3f}x"
        )
        return 1
    print("ok: batched speedup within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
