#!/usr/bin/env python
"""CI smoke for the distributed sweep fabric (see docs/distributed.md).

Hosts a coordinator in-process, spawns ``--workers`` real
``repro-sim worker`` subprocesses against it, and drives a sweep through
``repro-sim sweep --dist`` so the ``--out`` document is produced by the
exact CLI code path. Chaos is injected on the **workers only** via
``--fault-spec`` (e.g. ``kill:...`` SIGKILLs a session process
mid-point, ``disconnect:...`` abruptly drops its coordinator
connection); the caller then ``cmp``\\ s ``--out`` against a clean
serial ``repro-sim sweep --out`` — the acceptance bar is byte-identical
output no matter what the fleet suffered.

Asserts, beyond the sweep exiting 0:

* every spawned worker registered (``workers_total``);
* with a fault spec, the chaos actually fired: at least one worker was
  lost to a SIGKILL/EOF **or** at least one session reconnected after
  an injected disconnect;
* the fleet counters are internally consistent (all points accounted).

Stdlib only; exits non-zero with a diagnostic on any violated invariant.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

CONFIGS = ["ibtb:16", "mbbtb:2:allbr"]
WORKLOADS = ["web_frontend", "db_oltp", "kv_store", "template_render"]


def fail(message: str) -> None:
    print(f"dist-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", required=True, help="sweep --out destination")
    ap.add_argument(
        "--cache-dir", required=True,
        help="scratch root for the coordinator and worker caches",
    )
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument(
        "--jobs-per-worker", type=int, default=2,
        help="session processes per worker supervisor",
    )
    ap.add_argument(
        "--fault-spec", default="",
        help="REPRO_FAULT_SPEC exported to the workers only",
    )
    ap.add_argument("--length", type=int, default=20_000)
    args = ap.parse_args()

    scratch = Path(args.cache_dir)
    scratch.mkdir(parents=True, exist_ok=True)

    from repro import cli
    from repro.dist import get_coordinator, shutdown_coordinators

    coordinator = get_coordinator("dist://127.0.0.1:0")
    address = f"127.0.0.1:{coordinator.port}"
    print(f"dist-smoke: coordinator on tcp://{address}", flush=True)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    if args.fault_spec:
        env["REPRO_FAULT_SPEC"] = args.fault_spec
        env["REPRO_FAULT_DIR"] = str(scratch / "fault-state")
    workers = []
    for i in range(args.workers):
        workers.append(
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--connect", address,
                    "--jobs", str(args.jobs_per_worker),
                    "--name", f"smoke-{i}",
                    "--cache-dir", str(scratch / f"worker-{i}-cache"),
                ],
                env=env,
                cwd=str(REPO),
            )
        )
    try:
        sessions = args.workers * args.jobs_per_worker
        if not coordinator.wait_for_workers(sessions, timeout=60):
            fail(
                f"only {coordinator.workers_live()} of {sessions} worker "
                f"sessions registered"
            )
        print(f"dist-smoke: {sessions} worker session(s) up", flush=True)

        rc = cli.main(
            [
                "sweep", *CONFIGS,
                "--workloads", *WORKLOADS,
                "--length", str(args.length),
                "--dist", address,
                "--max-retries", "3",
                "--cache-dir", str(scratch / "coord-cache"),
                "--out", args.out,
            ]
        )
        if rc != 0:
            fail(f"sweep --dist exited {rc}")

        counters = coordinator.counters()
        print(f"dist-smoke: fleet counters: {counters}", flush=True)
        if counters["workers_total"] < sessions:
            fail(
                f"expected >= {sessions} registrations, saw "
                f"{counters['workers_total']}"
            )
        if counters["outcomes_ok"] < 1:
            fail("no successful outcomes crossed the wire")
        if args.fault_spec:
            lost = counters["workers_lost"]
            reconnects = counters["reconnects"]
            if lost + reconnects < 1:
                fail(
                    "fault spec set but no chaos observed "
                    f"(workers_lost={lost}, reconnects={reconnects})"
                )
            print(
                f"dist-smoke: chaos fired (workers_lost={lost}, "
                f"reconnects={reconnects}) and the sweep converged",
                flush=True,
            )
    finally:
        shutdown_coordinators()
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
    print("dist-smoke: ok", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
