#!/usr/bin/env python
"""Distributed sweep scaling benchmark -> benchmarks/results/BENCH_dist.json.

Times one cold 32-point sweep (8 configs x 4 workloads) twice:

* **serial** — ``run_points`` in-process, one point after another, cold
  disk cache (the ``repro-sim sweep --out`` reference execution);
* **dist** — the same points drained through the work-stealing
  coordinator onto ``--workers`` freshly spawned local
  ``repro-sim worker`` processes (registered *before* the clock starts,
  so the figure measures steady-state fleet throughput, not process
  startup), each with its own cold cache.

Both runs must produce bit-identical results — the benchmark aborts
otherwise. The document carries ``geomean_speedup`` (= the single
serial/dist wall-clock ratio) so ``scripts/perf_guard.py`` can guard it,
plus ``cpu_count`` for honest reading: workers are real processes, so
the speedup tracks the host's core count. On a multi-core box 4 workers
reach near-linear scaling (>= 3x); on a 1-CPU container the same run
honestly records ~1x — the ratio is only comparable against baselines
from similar hardware, which is why the CI guard allows a wide
tolerance.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

CONFIG_SPECS = [
    "ibtb:16",
    "ibtb:4",
    "ibtb:64",
    "rbtb:3",
    "rbtb:2:2l1",
    "bbtb:2",
    "bbtb:1:split",
    "mbbtb:2:allbr",
]
WORKLOADS = ["web_frontend", "db_oltp", "kv_store", "template_render"]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--out",
        default=str(REPO / "benchmarks" / "results" / "BENCH_dist.json"),
    )
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--length", type=int, default=40_000)
    ap.add_argument(
        "--scratch", default=None,
        help="cache scratch root (default: a fresh temp dir)",
    )
    args = ap.parse_args()

    import tempfile

    scratch = Path(args.scratch or tempfile.mkdtemp(prefix="dist-bench-"))
    scratch.mkdir(parents=True, exist_ok=True)

    from repro.cli import parse_config
    from repro.core.exec import SweepPoint, configure_disk_cache, run_points
    from repro.dist import get_coordinator, shutdown_coordinators

    configs = [parse_config(spec) for spec in CONFIG_SPECS]
    warmup = args.length // 4
    points = [
        SweepPoint(config, workload, args.length, warmup, 7)
        for config in configs
        for workload in WORKLOADS
    ]
    print(
        f"dist-bench: {len(points)} points "
        f"({len(configs)} configs x {len(WORKLOADS)} workloads), "
        f"length {args.length}",
        flush=True,
    )

    # Serial cold reference (the parent process is itself cold here:
    # nothing has synthesized a trace or built a kernel yet).
    configure_disk_cache(True, scratch / "serial-cache")
    t0 = time.perf_counter()
    serial_results = run_points(points)
    serial_seconds = time.perf_counter() - t0
    print(f"dist-bench: serial cold {serial_seconds:.2f}s", flush=True)

    # Dist cold: fresh worker processes, fresh caches, fleet registered
    # before the clock starts.
    configure_disk_cache(True, scratch / "coord-cache")
    coordinator = get_coordinator("dist://127.0.0.1:0")
    address = f"127.0.0.1:{coordinator.port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", address,
                "--jobs", "1",
                "--name", f"bench-{i}",
                "--cache-dir", str(scratch / f"worker-{i}-cache"),
            ],
            env=env,
            cwd=str(REPO),
        )
        for i in range(args.workers)
    ]
    try:
        if not coordinator.wait_for_workers(args.workers, timeout=60):
            print(
                f"dist-bench: FAIL: only {coordinator.workers_live()} of "
                f"{args.workers} workers registered",
                file=sys.stderr,
            )
            return 1
        t0 = time.perf_counter()
        dist_results = run_points(points, dispatch=f"dist://{address}")
        dist_seconds = time.perf_counter() - t0
    finally:
        shutdown_coordinators()
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
    print(f"dist-bench: dist cold {dist_seconds:.2f}s", flush=True)

    if dist_results != serial_results:
        print(
            "dist-bench: FAIL: dist results are not bit-identical to serial",
            file=sys.stderr,
        )
        return 1

    speedup = serial_seconds / dist_seconds if dist_seconds else 0.0
    doc = {
        "schema": 1,
        "points": len(points),
        "configs": [config.label for config in configs],
        "workloads": WORKLOADS,
        "instructions": args.length,
        "warmup": warmup,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 4),
        "dist_seconds": round(dist_seconds, 4),
        "geomean_speedup": round(speedup, 2),
        "identical": True,
        "note": (
            "speedup = serial/dist wall-clock for one cold 32-point "
            "sweep; workers are real processes, so scaling tracks "
            "cpu_count — expect >= 3x with 4 workers on >= 4 cores, "
            "~1x on a 1-CPU container"
        ),
    }
    Path(args.out).parent.mkdir(parents=True, exist_ok=True)
    Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(
        f"dist-bench: speedup {speedup:.2f}x with {args.workers} workers "
        f"on {os.cpu_count()} CPU(s) -> {args.out}",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
