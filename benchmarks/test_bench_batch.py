"""Batched engine benchmark: multi-config sweeps, compiled vs batched.

Quantifies what decode-once columnar plans + batched kernels
(repro.trace.columnar, repro.core.passes.batch) buy on a cold
multi-config sweep: K configs of one predictor-geometry family run over
one workload, paying per-config trace iteration and prediction-engine
replay under the compiled engine versus one shared plan build plus K
plan-consuming kernels under the batched engine. Results must be
bit-identical — asserted per config — so the speedup columns compare
engines only.

Two families are reported separately and honestly
(docs/batched_kernels.md): the ideal-backend family, where branch
resolution dominates and the shared plan removes most of it, and the
OoO-backend family, where the data-side timing model dominates per-config
cost the plan cannot share. Writes
``benchmarks/results/BENCH_batch.json`` (consumed by the CI perf guard)
plus a text table.
"""

import json
import time

from repro.analysis.report import format_table
from repro.core.config import bbtb, build_simulator, ibtb, mbbtb, rbtb
from repro.core.passes.kernel import (
    KERNEL_ENV,
    batch_geometry,
    get_batch_kernel,
    get_kernel,
    kernel_cache_clear,
)
from repro.trace.columnar import build_batch_plan
from repro.trace.workloads import get_trace

from benchmarks.conftest import RESULTS_DIR, emit, once

#: K=8 configs per family, spanning every compiled BTB organization.
_SHAPES = [
    lambda **kw: ibtb(16, **kw),
    lambda **kw: ibtb(4, **kw),
    lambda **kw: ibtb(64, **kw),
    lambda **kw: rbtb(3, **kw),
    lambda **kw: rbtb(2, interleaved=True, **kw),
    lambda **kw: bbtb(2, **kw),
    lambda **kw: bbtb(1, splitting=True, **kw),
    lambda **kw: mbbtb(2, "allbr", **kw),
]

FAMILIES = {
    "ideal_backend": [shape(ideal_backend=True) for shape in _SHAPES],
    "ooo_backend": [shape() for shape in _SHAPES],
}


def _run(config, trace, warmup, mode, env, plan=None):
    env[KERNEL_ENV] = mode
    sim = build_simulator(config, trace)
    t0 = time.perf_counter()
    result = sim.run(warmup=warmup, batch_plan=plan)
    return result, time.perf_counter() - t0


def test_batched_sweep_throughput(benchmark, bench_env, monkeypatch):
    import os

    suite, length, warmup = bench_env
    workloads = list(suite[:2])
    traces = {w: get_trace(w, length) for w in workloads}

    def run():
        kernel_cache_clear()
        env = os.environ
        prior = env.get(KERNEL_ENV)
        families = {}
        try:
            for fname, configs in FAMILIES.items():
                geometry = batch_geometry(configs[0])
                # Compile both engine variants outside the timed region.
                for config in configs:
                    get_kernel(config)
                    get_batch_kernel(config)
                compiled_s = 0.0
                plan_s = 0.0
                batched_s = 0.0
                for w in workloads:
                    trace = traces[w]
                    t0 = time.perf_counter()
                    plan = build_batch_plan(trace, geometry)
                    plan_s += time.perf_counter() - t0
                    for config in configs:
                        ref, c_s = _run(config, trace, warmup, "compiled", env)
                        got, b_s = _run(
                            config, trace, warmup, "batched", env, plan=plan
                        )
                        assert ref.stats == got.stats, (fname, config.label, w)
                        assert ref.cycles == got.cycles, (fname, config.label, w)
                        compiled_s += c_s
                        batched_s += b_s
                total_batched = plan_s + batched_s
                families[fname] = {
                    "configs": [c.label for c in configs],
                    "compiled_seconds": round(compiled_s, 4),
                    "plan_seconds": round(plan_s, 4),
                    "batched_seconds": round(batched_s, 4),
                    "batched_total_seconds": round(total_batched, 4),
                    "speedup": round(compiled_s / max(total_batched, 1e-9), 3),
                    "identical": True,
                }
        finally:
            if prior is None:
                env.pop(KERNEL_ENV, None)
            else:
                env[KERNEL_ENV] = prior
        speedups = [f["speedup"] for f in families.values()]
        geomean = 1.0
        for s in speedups:
            geomean *= s
        geomean **= 1.0 / len(speedups)
        return {
            "schema": 1,
            "workloads": workloads,
            "instructions": length,
            "warmup": warmup,
            "configs_per_family": len(_SHAPES),
            "families": families,
            "geomean_speedup": round(geomean, 3),
        }

    payload = once(benchmark, run)

    rows = [
        (
            fname,
            f"{f['compiled_seconds']:.2f}s",
            f"{f['plan_seconds']:.2f}s",
            f"{f['batched_seconds']:.2f}s",
            f"{f['speedup']:.2f}x",
        )
        for fname, f in payload["families"].items()
    ]
    rows.append(("geomean", "", "", "", f"{payload['geomean_speedup']:.2f}x"))
    table = format_table(
        ["family (K=8)", "compiled", "plan build", "batched", "speedup"], rows
    )
    emit("bench_batch", table)

    out = RESULTS_DIR / "BENCH_batch.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    assert all(f["identical"] for f in payload["families"].values())
    # The ideal-backend family is where the shared plan pays; the OoO
    # family is bounded by unshareable data-side timing (see
    # docs/batched_kernels.md for the floor experiments).
    assert payload["families"]["ideal_backend"]["speedup"] > 1.0
