"""Figure 7: R-BTB improvements.

Paper content reproduced: even/odd set-interleaved L1 ("2L1", 2/3 BS),
same-geometry-but-16-slot configurations ("2Geo/3Geo 16BS", the upper
bound for shared overflow slots), and 128 B regions with 2/3/4/6 slots —
all relative to the ideal I-BTB 16, with fetch PCs per access.

Expected shape: interleaving helps slightly (paper: +0.5 %/+0.2 %
geomean); 16-slot geometries recover most of the gap (slot pressure, not
entry pressure, is the limiter at 2–3 BS); 128 B regions raise fetch PCs
per access but larger slot counts cut entries and hurt; 2L1 R-BTB 3BS is
the best realistic R-BTB.
"""

from repro.analysis.report import format_table, whisker_table
from repro.core.config import IDEAL_IBTB16, ibtb, rbtb
from repro.core.runner import compare_to_baseline

from benchmarks.conftest import JOBS, emit, once

CONFIGS = [
    ibtb(16),
    rbtb(2),
    rbtb(2, interleaved=True),
    rbtb(16).with_(geometry_slots=2, label="R-BTB 2Geo 16BS"),
    rbtb(3),
    rbtb(3, interleaved=True),
    rbtb(16).with_(geometry_slots=3, label="R-BTB 3Geo 16BS"),
    rbtb(2, region_bytes=128),
    rbtb(3, region_bytes=128),
    rbtb(4, region_bytes=128),
    rbtb(6, region_bytes=128),
]


def test_fig07_rbtb_improvements(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        compared = compare_to_baseline(CONFIGS, IDEAL_IBTB16, suite, length, warmup, jobs=JOBS)
        boxes = [(cc.config.label, cc.box) for cc in compared]
        parts = [
            whisker_table(boxes, "Fig. 7: R-BTB improvements vs ideal I-BTB 16")
        ]
        rows = [
            (cc.config.label, f"{cc.mean_fetch_pcs:.2f}", f"{cc.geomean_ipc:.3f}")
            for cc in compared
        ]
        parts.append(format_table(("config", "fetchPCs/access", "gmean IPC"), rows))
        return "\n\n".join(parts)

    emit("fig07_rbtb", once(benchmark, run))
