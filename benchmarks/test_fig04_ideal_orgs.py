"""Figure 4: idealistic (huge, single-level, 0-cycle) BTB organizations.

Paper content reproduced:
* whisker plot of IPC relative to ideal I-BTB 16 for I-BTB 8 / 16 / 16
  Skp, R-BTB 1/2/3/4/16 BS and B-BTB 1/2/3/4/16 BS;
* average fetch PCs per access (paper: 5.6 / 7.7 / 15.9 for I-BTB
  8/16/Skp; 6.2 for R-BTB with 16 slots);
* branch-slot occupancy (paper: 1.60 for 16-slot R-BTB, 1.06 for 16-slot
  B-BTB) and B-BTB redundancy (paper: ~1.06).

Expected shape: extra fetch-PC throughput beyond I-BTB 16 buys little;
R-BTB trails because accesses stop at region boundaries; low-slot R/B-BTB
loses to untracked-branch events.
"""

from repro.analysis.report import format_table, whisker_table
from repro.core.config import IDEAL_IBTB16, bbtb, ibtb, ibtb_skp, rbtb
from repro.core.runner import compare_to_baseline, run_one

from benchmarks.conftest import JOBS, emit, once

CONFIGS = [
    ibtb(8, ideal_btb=True),
    ibtb(16, ideal_btb=True),
    ibtb_skp(ideal_btb=True),
    rbtb(1, ideal_btb=True),
    rbtb(2, ideal_btb=True),
    rbtb(3, ideal_btb=True),
    rbtb(4, ideal_btb=True),
    rbtb(16, ideal_btb=True),
    bbtb(1, ideal_btb=True),
    bbtb(2, ideal_btb=True),
    bbtb(3, ideal_btb=True),
    bbtb(4, ideal_btb=True),
    bbtb(16, ideal_btb=True),
]


def test_fig04_idealistic_organizations(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        compared = compare_to_baseline(CONFIGS, IDEAL_IBTB16, suite, length, warmup, jobs=JOBS)
        boxes = [(cc.config.label, cc.box) for cc in compared]
        parts = [whisker_table(boxes, "Fig. 4: IPC relative to ideal I-BTB 16")]
        rows = []
        for cc in compared:
            sample = run_one(cc.config, suite[0], length, warmup)
            rows.append(
                (
                    cc.config.label,
                    f"{cc.mean_fetch_pcs:.2f}",
                    f"{sample.structure.get('l1_slot_occupancy', 0.0):.2f}",
                    f"{sample.structure.get('l1_redundancy', 0.0):.3f}",
                )
            )
        parts.append(
            format_table(
                ("config", "fetchPCs/access", "slot occupancy", "redundancy"),
                rows,
            )
        )
        return "\n\n".join(parts)

    emit("fig04_ideal_orgs", once(benchmark, run))
