"""Figure 10: fetch PCs per BTB access and geomean IPC, all realistic
configurations.

Paper content reproduced: the summary pairing of average fetch PCs
provided per BTB access with geomean IPC across the main realistic
configurations. Expected shape: MB-BTB dominates fetch-PC throughput
(it partially compensates misses by providing multiple blocks per hit)
without winning IPC in the contended setting; R-BTB sits lowest in
fetch PCs per access.
"""

from repro.analysis.report import format_table
from repro.core.config import IDEAL_IBTB16, bbtb, ibtb, mbbtb, rbtb
from repro.core.runner import compare_to_baseline

from benchmarks.conftest import JOBS, emit, once

CONFIGS = [
    ibtb(16),
    rbtb(2), rbtb(3),
    rbtb(2, interleaved=True), rbtb(3, interleaved=True),
    bbtb(1), bbtb(1, splitting=True),
    bbtb(2), bbtb(2, splitting=True),
    mbbtb(2, "uncond"), mbbtb(2, "calldir"), mbbtb(2, "allbr"),
    mbbtb(3, "allbr"),
    mbbtb(2, "allbr", block_insts=64),
    mbbtb(3, "allbr", block_insts=64),
]


def test_fig10_fetch_pcs_and_ipc(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        compared = compare_to_baseline(CONFIGS, IDEAL_IBTB16, suite, length, warmup, jobs=JOBS)
        rows = [
            (
                cc.config.label,
                f"{cc.mean_fetch_pcs:.2f}",
                f"{cc.geomean_ipc:.3f}",
                f"{cc.box.geomean:.4f}",
            )
            for cc in compared
        ]
        return format_table(
            ("config", "fetchPCs/access", "gmean IPC", "rel. to ideal"),
            rows,
        )

    emit(
        "fig10_fetchpcs",
        "== Fig. 10: fetch PCs per BTB access and geomean IPC ==\n"
        + once(benchmark, run),
    )
