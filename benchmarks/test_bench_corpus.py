"""Corpus pipeline benchmark: ingestion and streaming-read throughput.

Quantifies what the corpus subsystem buys over re-parsing CSV on every
run: one-time streaming ingestion into sharded columnar ``.npz``, then
memory-mapped chunked reads, versus whole-file CSV loading. Writes
``benchmarks/results/BENCH_corpus.json`` (linked from
docs/performance.md) plus a text table.
"""

import json
import time

import numpy as np

from repro.analysis.report import format_table
from repro.corpus import CorpusStore, CorpusTrace
from repro.trace.external import load_trace_csv, save_trace_csv
from repro.trace.workloads import get_trace

from benchmarks.conftest import RESULTS_DIR, emit, once

#: Shards per trace the benchmark aims for (exercises the prefetch path).
TARGET_SHARDS = 8


def test_corpus_pipeline_throughput(benchmark, bench_env, tmp_path_factory):
    suite, length, _warmup = bench_env
    workload = suite[0]
    tmp = tmp_path_factory.mktemp("bench_corpus")

    trace = get_trace(workload, length)
    csv_path = str(tmp / f"{workload}.csv")
    save_trace_csv(trace, csv_path)
    shard_insts = max(1024, length // TARGET_SHARDS)

    def timed(fn):
        t0 = time.perf_counter()
        value = fn()
        return value, time.perf_counter() - t0

    def run():
        store = CorpusStore(tmp / "corpus")

        # Baseline: whole-file CSV parse into Python lists, every run.
        loaded, csv_seconds = timed(lambda: load_trace_csv(csv_path))
        assert len(loaded) == length

        # One-time cost: streaming ingestion into columnar shards.
        res, ingest_seconds = timed(
            lambda: store.ingest(csv_path, shard_insts=shard_insts)
        )
        assert res.peak_buffered <= shard_insts

        reader = CorpusTrace(store, store.get(workload))

        # Recurring cost: chunked mmap reads (a stats pass over columns).
        def chunked_read():
            branches = 0
            for chunk in reader.iter_chunks(chunk_insts=4096):
                branches += int(np.count_nonzero(chunk["btype"]))
            return branches

        branches, read_seconds = timed(chunked_read)

        # Recurring cost: full materialization for the simulator.
        materialized, to_trace_seconds = timed(reader.to_trace)
        assert len(materialized) == length

        def mips(seconds):
            return length / max(seconds, 1e-9) / 1e6

        return {
            "schema": 1,
            "workload": workload,
            "instructions": length,
            "shard_insts": shard_insts,
            "shards": res.shards,
            "peak_buffered": res.peak_buffered,
            "branches": branches,
            "phases": {
                "csv_whole_file_load": {
                    "seconds": round(csv_seconds, 4),
                    "minsts_per_sec": round(mips(csv_seconds), 2),
                },
                "ingest": {
                    "seconds": round(ingest_seconds, 4),
                    "minsts_per_sec": round(mips(ingest_seconds), 2),
                },
                "chunked_read": {
                    "seconds": round(read_seconds, 4),
                    "minsts_per_sec": round(mips(read_seconds), 2),
                },
                "materialize": {
                    "seconds": round(to_trace_seconds, 4),
                    "minsts_per_sec": round(mips(to_trace_seconds), 2),
                },
            },
            "speedup_chunked_read_vs_csv": round(
                csv_seconds / max(read_seconds, 1e-9), 2
            ),
            "speedup_materialize_vs_csv": round(
                csv_seconds / max(to_trace_seconds, 1e-9), 2
            ),
        }

    doc = once(benchmark, run)

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_corpus.json"
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    rows = [
        (phase, f"{d['seconds']:.4f}", f"{d['minsts_per_sec']:.2f}")
        for phase, d in doc["phases"].items()
    ]
    emit(
        "bench_corpus",
        f"== Corpus pipeline ({workload}, {doc['instructions']} insts, "
        f"{doc['shards']} shards) ==\n"
        + format_table(("phase", "seconds", "Minsts/s"), rows)
        + f"\nchunked read speedup vs CSV: "
        f"{doc['speedup_chunked_read_vs_csv']:.1f}x | materialize: "
        f"{doc['speedup_materialize_vs_csv']:.1f}x "
        f"(see results/BENCH_corpus.json)",
    )
