"""Figure 5: realistic two-level BTB hierarchies at iso-branch-slots.

Paper content reproduced: IPC of realistic I-BTB 16 and R-/B-BTB with
1–4 branch slots per entry, normalized to the idealistic I-BTB 16;
plus the §6.1 companion numbers: I-BTB hit rates (paper 76.3 % L1 /
99.9 % L2), B-BTB 1BS hit rates (paper 60.8 % / 97.8 %), per-entry
duplication (paper 1.04 L1 / 1.05 L2) and combined mispredict+misfetch
PKI (paper 5.91 for B-BTB 1BS vs 0.84 for I-BTB).

Expected shape: I-BTB best; B-BTB close behind at 1 slot and degrading
with more slots; R-BTB poor at 1 slot, best near 3 slots.
"""

from repro.analysis.report import format_table, whisker_table
from repro.core.config import IDEAL_IBTB16, bbtb, ibtb, rbtb
from repro.core.runner import compare_to_baseline

from benchmarks.conftest import JOBS, emit, once

CONFIGS = [
    ibtb(16),
    rbtb(1), rbtb(2), rbtb(3), rbtb(4),
    bbtb(1), bbtb(2), bbtb(3), bbtb(4),
]


def test_fig05_realistic_hierarchies(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        compared = compare_to_baseline(CONFIGS, IDEAL_IBTB16, suite, length, warmup, jobs=JOBS)
        boxes = [(cc.config.label, cc.box) for cc in compared]
        parts = [
            whisker_table(
                boxes, "Fig. 5: realistic hierarchies, IPC relative to ideal I-BTB 16"
            )
        ]
        rows = []
        for cc in compared:
            results = cc.results
            n = len(results)
            l1 = sum(r.l1_btb_hit_rate for r in results) / n
            l2 = sum(r.l2_btb_hit_rate for r in results) / n
            mpki = sum(r.branch_mpki + r.misfetch_pki for r in results) / n
            red = sum(
                r.structure.get("l1_redundancy", 0.0) for r in results
            ) / n
            rows.append(
                (
                    cc.config.label,
                    f"{l1 * 100:.1f}%",
                    f"{l2 * 100:.2f}%",
                    f"{mpki:.2f}",
                    f"{red:.3f}",
                )
            )
        parts.append(
            format_table(
                ("config", "L1 hit", "L1+L2 hit", "mispred+misfetch PKI", "L1 redundancy"),
                rows,
            )
        )
        return "\n\n".join(parts)

    emit("fig05_realistic", once(benchmark, run))
