"""Figure 8: B-BTB splitting and the MultiBlock BTB.

Paper content reproduced: realistic B-BTB 1/2/3 BS with and without entry
splitting, and MB-BTB 2/3 BS with the UncndDir / CallDir / AllBr pull
policies — relative to ideal I-BTB 16, alongside the best R-BTB (2L1 3BS)
and realistic I-BTB 16.

Expected shape: splitting helps 1BS most (paper: +2.6 % geomean) and is
unnecessary at 2–3 BS; MB-BTB improves strongly with pull aggressiveness
(calls matter most); B-BTB 1BS Splt remains the best practical block
organization, slightly ahead of MB-BTB 2BS AllBr.
"""

from repro.analysis.report import format_table, whisker_table
from repro.core.config import IDEAL_IBTB16, bbtb, ibtb, mbbtb, rbtb
from repro.core.runner import compare_to_baseline

from benchmarks.conftest import JOBS, emit, once

CONFIGS = [
    ibtb(16),
    rbtb(3, interleaved=True),
    bbtb(1),
    bbtb(1, splitting=True),
    bbtb(2),
    bbtb(2, splitting=True),
    mbbtb(2, "uncond"),
    mbbtb(2, "calldir"),
    mbbtb(2, "allbr"),
    bbtb(3),
    bbtb(3, splitting=True),
    mbbtb(3, "uncond"),
    mbbtb(3, "calldir"),
    mbbtb(3, "allbr"),
]


def test_fig08_bbtb_and_mbbtb(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        compared = compare_to_baseline(CONFIGS, IDEAL_IBTB16, suite, length, warmup, jobs=JOBS)
        boxes = [(cc.config.label, cc.box) for cc in compared]
        parts = [
            whisker_table(
                boxes, "Fig. 8: B-BTB splitting + MB-BTB vs ideal I-BTB 16"
            )
        ]
        rows = [
            (
                cc.config.label,
                f"{cc.mean_fetch_pcs:.2f}",
                f"{cc.geomean_ipc:.3f}",
                f"{sum(r.misfetch_pki + r.branch_mpki for r in cc.results) / len(cc.results):.2f}",
            )
            for cc in compared
        ]
        parts.append(
            format_table(
                ("config", "fetchPCs/access", "gmean IPC", "mispred+misfetch PKI"),
                rows,
            )
        )
        return "\n\n".join(parts)

    emit("fig08_bbtb_mbbtb", once(benchmark, run))
