"""Figure 11b: MB-BTB advantage vs branch-predictor size (branch MPKI).

Paper content reproduced: shrinking the hashed perceptron from 64 KB to
2 KB raises branch MPKI; the min/geomean/max speedup of MB-BTB 64 AllBr
over I-BTB 16 (512K-entry BTBs, realistic back end) grows with MPKI —
pipeline refills after flushes are where multi-block fetch pays.
"""

from repro.analysis.report import format_table
from repro.common.stats import geomean
from repro.core.config import ibtb, mbbtb
from repro.core.runner import run_one

from benchmarks.conftest import emit, once

BP_SIZES_KB = (64, 32, 16, 8, 4, 2)


def test_fig11b_bp_size_sweep(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        rows = []
        for kb in BP_SIZES_KB:
            base_cfg = ibtb(16, ideal_btb=True, bp_size_kb=kb)
            mb_cfg = mbbtb(2, "allbr", block_insts=64, ideal_btb=True, bp_size_kb=kb)
            speedups = []
            mpkis = []
            for name in suite:
                base = run_one(base_cfg, name, length, warmup)
                mb = run_one(mb_cfg, name, length, warmup)
                speedups.append(mb.ipc / base.ipc)
                mpkis.append(base.branch_mpki)
            rows.append(
                (
                    f"{kb}KB",
                    f"{sum(mpkis) / len(mpkis):.2f}",
                    f"{(min(speedups) - 1) * 100:+.2f}%",
                    f"{(geomean(speedups) - 1) * 100:+.2f}%",
                    f"{(max(speedups) - 1) * 100:+.2f}%",
                )
            )
        return format_table(
            ("BP size", "mean branch MPKI", "min speedup", "gmean speedup", "max speedup"),
            rows,
        )

    emit(
        "fig11b_bp_sweep",
        "== Fig. 11b: MB-BTB 64 AllBr over I-BTB 16 as the branch predictor "
        "shrinks ==\n" + once(benchmark, run),
    )
