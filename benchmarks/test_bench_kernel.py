"""Kernel engine benchmark: interpreter vs compiled tick throughput.

Quantifies what the pass pipeline (repro.core.passes) buys per config
family: the same simulation run through the reference interpreter and
through the specialized compiled kernel, on the BENCH_sweep config
matrix. Results must be bit-identical — the benchmark asserts it — so
the speedup column is a pure engine comparison. Writes
``benchmarks/results/BENCH_kernel.json`` (linked from
docs/performance.md and docs/compiled_kernels.md) plus a text table.
"""

import json
import os
import time

from repro.analysis.report import format_table
from repro.core.config import (
    IDEAL_IBTB16,
    bbtb,
    build_simulator,
    ibtb,
    mbbtb,
    rbtb,
)
from repro.core.passes.kernel import (
    KERNEL_ENV,
    get_kernel,
    kernel_cache_clear,
    kernel_cache_info,
)
from repro.trace.workloads import get_trace

from benchmarks.conftest import RESULTS_DIR, emit, once

#: The BENCH_sweep config matrix: one representative per family.
KERNEL_CONFIGS = [
    IDEAL_IBTB16,
    ibtb(16),
    rbtb(3),
    bbtb(1, splitting=True),
    mbbtb(2, "allbr"),
]


def _timed_run(config, trace, warmup, mode):
    """One engine-pinned run; returns (result, seconds)."""
    prior = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = mode
    try:
        sim = build_simulator(config, trace)
        assert sim.kernel_engine() == ("compiled" if mode == "compiled" else "interp")
        t0 = time.perf_counter()
        result = sim.run(warmup=warmup)
        seconds = time.perf_counter() - t0
    finally:
        if prior is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = prior
    return result, seconds


def test_kernel_engine_throughput(benchmark, bench_env):
    suite, length, warmup = bench_env
    workload = suite[0]
    trace = get_trace(workload, length)
    measured = length - warmup

    def run():
        kernel_cache_clear()
        families = {}
        for config in KERNEL_CONFIGS:
            t0 = time.perf_counter()
            get_kernel(config)  # compile outside the timed sim run
            compile_seconds = time.perf_counter() - t0
            interp, interp_s = _timed_run(config, trace, warmup, "interp")
            compiled, compiled_s = _timed_run(config, trace, warmup, "compiled")
            assert interp.stats == compiled.stats, config.label
            assert interp.cycles == compiled.cycles, config.label
            families[config.label] = {
                "interp_seconds": round(interp_s, 4),
                "compiled_seconds": round(compiled_s, 4),
                "interp_insts_per_sec": round(measured / max(interp_s, 1e-9)),
                "compiled_insts_per_sec": round(measured / max(compiled_s, 1e-9)),
                "compile_seconds": round(compile_seconds, 4),
                "speedup": round(interp_s / max(compiled_s, 1e-9), 2),
                "identical": True,
            }
        speedups = [f["speedup"] for f in families.values()]
        geomean = 1.0
        for s in speedups:
            geomean *= s
        geomean **= 1.0 / len(speedups)
        return {
            "schema": 1,
            "workload": workload,
            "instructions": length,
            "warmup": warmup,
            "measured_instructions": measured,
            "families": families,
            "geomean_speedup": round(geomean, 2),
            "kernel_cache": kernel_cache_info(),
        }

    payload = once(benchmark, run)

    rows = [
        (
            label,
            f"{f['interp_insts_per_sec'] / 1e3:.0f}",
            f"{f['compiled_insts_per_sec'] / 1e3:.0f}",
            f"{f['compile_seconds'] * 1e3:.0f}ms",
            f"{f['speedup']:.2f}x",
        )
        for label, f in payload["families"].items()
    ]
    rows.append(("geomean", "", "", "", f"{payload['geomean_speedup']:.2f}x"))
    table = format_table(
        ["config", "interp KIPS", "compiled KIPS", "compile", "speedup"], rows
    )
    emit("bench_kernel", table)

    out = RESULTS_DIR / "BENCH_kernel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    # Every family must win, and outputs must have been bit-identical.
    assert all(f["identical"] for f in payload["families"].values())
    assert payload["geomean_speedup"] > 1.0
