"""Ablations of MB-BTB design choices called out in the paper's §6.4.

* last-slot pull-disable (§6.4.2: preventing the last branch slot from
  pulling its target reduces redundancy and slightly helps);
* immediate downgrade of always-taken conditionals that go not-taken
  (§6.4.3: the paper chooses immediate downgrade; the alternative keeps
  the pulled block and eats not-taken penalties);
* B-BTB split-entry fall-through bubble (§6.3: split entries may cost a
  bubble when the fall-through addition misses timing).
"""

from repro.analysis.report import format_table
from repro.core.config import IDEAL_IBTB16, bbtb, mbbtb
from repro.core.runner import compare_to_baseline

from benchmarks.conftest import JOBS, emit, once

CONFIGS = [
    mbbtb(2, "allbr"),
    mbbtb(2, "allbr").with_(pull_last_slot=True, label="MB-BTB 2BS AllBr +lastpull"),
    mbbtb(2, "allbr").with_(
        immediate_downgrade=False, label="MB-BTB 2BS AllBr keep-pulled"
    ),
    mbbtb(3, "allbr"),
    mbbtb(3, "allbr").with_(pull_last_slot=True, label="MB-BTB 3BS AllBr +lastpull"),
    bbtb(1, splitting=True),
    bbtb(1, splitting=True).with_(split_bubble=1, label="B-BTB 1BS Splt +1c split"),
]


def test_ablation_mbbtb_design_choices(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        compared = compare_to_baseline(CONFIGS, IDEAL_IBTB16, suite, length, warmup, jobs=JOBS)
        rows = [
            (
                cc.config.label,
                f"{cc.box.geomean:.4f}",
                f"{cc.mean_fetch_pcs:.2f}",
            )
            for cc in compared
        ]
        return format_table(("config", "rel. IPC gmean", "fetchPCs/access"), rows)

    emit(
        "ablation_mbbtb",
        "== Ablations: MB-BTB pull rules, downgrade policy, split bubble ==\n"
        + once(benchmark, run),
    )
