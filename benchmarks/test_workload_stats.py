"""§2/§4 workload characterization table.

Paper numbers being matched (CVP-1 server traces): mean dynamic basic
block size 9.4; 34.8 % of dynamic branches are never-taken conditionals;
~9.1 % single-target indirects; code footprints far beyond a (scaled)
L1I. This bench regenerates the same characterization for the synthetic
suite so every other figure can be read against it.
"""

from repro.analysis.report import format_table
from repro.trace.workloads import get_trace

from benchmarks.conftest import emit, once


def test_workload_characterization(benchmark, bench_env):
    suite, length, _warmup = bench_env

    def run():
        rows = []
        bb_sizes = []
        for name in suite:
            tr = get_trace(name, length)
            st = tr.stats()
            n = st.get("instructions")
            br = st.get("branches")
            bb = tr.mean_basic_block_size()
            bb_sizes.append(bb)
            rows.append(
                (
                    name,
                    f"{bb:.2f}",
                    f"{br / n * 100:.1f}%",
                    f"{st.get('taken_branches') / br * 100:.1f}%",
                    f"{st.get('never_taken_cond_dynamic') / br * 100:.1f}%",
                    f"{(st.get('branches_indirect', 0) + st.get('branches_call_indirect', 0)) / br * 100:.1f}%",
                    f"{st.get('code_footprint_bytes') / 1024:.1f}KB",
                )
            )
        rows.append(
            ("MEAN", f"{sum(bb_sizes) / len(bb_sizes):.2f}", "", "", "", "", "")
        )
        return format_table(
            ("workload", "dynBB", "br%", "taken%", "never-taken-cond%", "ind%", "footprint"),
            rows,
        )

    table = once(benchmark, run)
    emit(
        "workload_stats",
        "== Workload characterization (paper §2: BB 9.4, never-taken 34.8%) ==\n"
        + table,
    )
