"""Shared infrastructure for the benchmark harness.

Each benchmark file regenerates one table/figure of the paper: it sweeps
the relevant configurations over the workload suite, prints the figure's
content as a text table, and writes it to ``benchmarks/results/`` so the
output survives pytest's capture. Results are memoized in-process
(``repro.core.runner``), so configurations shared between figures (e.g.
the ideal I-BTB 16 baseline) simulate once.

Figures additionally share the *persistent* disk cache
(``~/.cache/repro-btb``, see ``docs/performance.md``), so re-running the
harness skips simulation and trace synthesis for unchanged points.

Environment knobs:

* ``REPRO_LENGTH``  — instructions per trace (default 160000)
* ``REPRO_WARMUP``  — warm-up instructions (default 40000)
* ``REPRO_SMOKE=1`` — 4-workload smoke suite with short traces (CI)
* ``REPRO_DISK_CACHE=0`` — disable the persistent cache
* ``REPRO_CACHE_DIR``    — persistent cache root override
* ``REPRO_JOBS``         — worker processes for figure sweeps (default 1)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.exec import configure_disk_cache, env_cache_root
from repro.trace.workloads import SERVER_SUITE, SMOKE_SUITE

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
LENGTH = int(os.environ.get("REPRO_LENGTH", "20000" if SMOKE else "160000"))
WARMUP = int(os.environ.get("REPRO_WARMUP", "5000" if SMOKE else "40000"))
SUITE = SMOKE_SUITE if SMOKE else SERVER_SUITE
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

if os.environ.get("REPRO_DISK_CACHE", "1") != "0":
    configure_disk_cache(
        True, os.environ.get("REPRO_CACHE_DIR") or env_cache_root()
    )


@pytest.fixture(scope="session")
def bench_env():
    """(suite, length, warmup) used by every figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return SUITE, LENGTH, WARMUP


def emit(name: str, text: str) -> None:
    """Print a figure's content and persist it under benchmarks/results."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
