"""Figure 11a: MB-BTB 64 AllBr vs I-BTB 16 under an ideal back end.

Paper content reproduced: with idealistic 512K-entry BTBs and a back end
limited only by data dependencies in an 8K-instruction window, the
speedup of MB-BTB 64 AllBr over I-BTB 16 per workload, sorted by average
dynamic basic-block size.

Expected shape: significant speedups (paper: 13.4 % geomean, up to
15.6 %) that anti-correlate with basic-block size — small blocks cannot
use I-BTB 16's bandwidth, so MB-BTB's multi-block accesses pay off most
there.
"""

from repro.analysis.report import format_table
from repro.common.stats import geomean
from repro.core.config import ibtb, mbbtb
from repro.core.runner import run_one
from repro.trace.workloads import get_trace

from benchmarks.conftest import emit, once


def test_fig11a_ideal_backend_limit_study(benchmark, bench_env):
    suite, length, warmup = bench_env
    base_cfg = ibtb(16, ideal_btb=True, ideal_backend=True)
    mb_cfg = mbbtb(2, "allbr", block_insts=64, ideal_btb=True, ideal_backend=True)

    def run():
        points = []
        for name in suite:
            bb = get_trace(name, length).mean_basic_block_size()
            base = run_one(base_cfg, name, length, warmup)
            mb = run_one(mb_cfg, name, length, warmup)
            points.append((bb, name, mb.ipc / base.ipc, base.ipc, mb.ipc))
        points.sort()
        rows = [
            (name, f"{bb:.2f}", f"{b_ipc:.2f}", f"{m_ipc:.2f}", f"{(sp - 1) * 100:+.1f}%")
            for bb, name, sp, b_ipc, m_ipc in points
        ]
        speedups = [sp for _bb, _n, sp, _b, _m in points]
        rows.append(("GEOMEAN", "", "", "", f"{(geomean(speedups) - 1) * 100:+.1f}%"))
        rows.append(("MIN", "", "", "", f"{(min(speedups) - 1) * 100:+.1f}%"))
        rows.append(("MAX", "", "", "", f"{(max(speedups) - 1) * 100:+.1f}%"))
        return format_table(
            ("workload (sorted by BB size)", "dynBB", "I-BTB16 IPC", "MB-BTB64 IPC", "speedup"),
            rows,
        )

    emit(
        "fig11a_ideal_backend",
        "== Fig. 11a: MB-BTB 64 AllBr over I-BTB 16, ideal backend "
        "(paper: +13.4% geomean) ==\n" + once(benchmark, run),
    )
