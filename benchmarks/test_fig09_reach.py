"""Figure 9: increasing entry reach (block size) for B- and MB-BTB.

Paper content reproduced: B-BTB 1BS Splt with 16/32-instruction blocks
and MB-BTB 2/3 BS AllBr with 16/32/64-instruction blocks, relative to
the ideal I-BTB 16.

Expected shape: B-BTB 1BS gains nothing from bigger blocks (an
unconditional branch usually terminates the block early); MB-BTB 2BS
gains a little from 16 -> 32; MB-BTB 3BS gains the most from larger
reach (paper: +6.8 % geomean from 16 -> 64).
"""

from repro.analysis.report import whisker_table
from repro.core.config import IDEAL_IBTB16, bbtb, mbbtb
from repro.core.runner import compare_to_baseline

from benchmarks.conftest import JOBS, emit, once

CONFIGS = [
    bbtb(1, splitting=True, block_insts=16),
    bbtb(1, splitting=True, block_insts=32),
    mbbtb(2, "allbr", block_insts=16),
    mbbtb(2, "allbr", block_insts=32),
    mbbtb(2, "allbr", block_insts=64),
    mbbtb(3, "allbr", block_insts=16),
    mbbtb(3, "allbr", block_insts=32),
    mbbtb(3, "allbr", block_insts=64),
]


def test_fig09_entry_reach(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        compared = compare_to_baseline(CONFIGS, IDEAL_IBTB16, suite, length, warmup, jobs=JOBS)
        boxes = [(cc.config.label, cc.box) for cc in compared]
        return whisker_table(
            boxes, "Fig. 9: entry reach (block size) vs ideal I-BTB 16"
        )

    emit("fig09_reach", once(benchmark, run))
