"""Extensions beyond the paper's evaluation.

1. **Heterogeneous hierarchy** (§3.6.2, left as future work there): a
   B-BTB L1 (1 slot, splitting) backed by a duplication-free R-BTB L2,
   compared at iso-branch-slots against homogeneous B-BTB and I-BTB
   hierarchies. Expected: the R-BTB L2 stores each branch once (no
   synonym waste), trading some L2 hit rate for density.

2. **Slot replacement policies** (§6.3 mentions LRU and
   unconditional-direct-first): sweep of R-BTB 2BS and B-BTB 2BS under
   lru / fifo / uncond_first / random victim selection. Expected:
   uncond_first ≈ lru (losing a decode-recoverable branch is cheaper),
   random worst.
"""

from repro.analysis.report import format_table
from repro.core.config import IDEAL_IBTB16, bbtb, hetero_btb, ibtb, rbtb
from repro.core.runner import compare_to_baseline

from benchmarks.conftest import JOBS, emit, once

HETERO_CONFIGS = [
    ibtb(16),
    bbtb(1, splitting=True),
    hetero_btb(1, 2),
    hetero_btb(1, 3),
    hetero_btb(2, 3),
]

POLICY_CONFIGS = [
    rbtb(2).with_(label="R-BTB 2BS lru"),
    bbtb(2).with_(label="B-BTB 2BS lru"),
]


def test_ext_heterogeneous_hierarchy(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        compared = compare_to_baseline(
            HETERO_CONFIGS, IDEAL_IBTB16, suite, length, warmup, jobs=JOBS
        )
        rows = []
        for cc in compared:
            results = cc.results
            n = len(results)
            rows.append(
                (
                    cc.config.label,
                    f"{cc.box.geomean:.4f}",
                    f"{sum(r.l1_btb_hit_rate for r in results) / n * 100:.1f}%",
                    f"{sum(r.l2_btb_hit_rate for r in results) / n * 100:.2f}%",
                    f"{sum(r.structure.get('l2_redundancy', 0) for r in results) / n:.3f}",
                )
            )
        return format_table(
            ("config", "rel. IPC gmean", "L1 hit", "L1+L2 hit", "L2 redundancy"),
            rows,
        )

    emit(
        "ext_hetero",
        "== Extension: heterogeneous hierarchy (B-BTB L1 / R-BTB L2, "
        "paper §3.6.2 future work) ==\n" + once(benchmark, run),
    )


def test_ext_overflow_slots(benchmark, bench_env):
    """§3.5's shared overflow storage, implemented for R-BTB: displaced
    branch slots spill to a small fully-associative pool (+1 bubble when
    they redirect). Fig. 7's 'Geo 16BS' configs are the zero-latency
    upper bound of this mechanism; the overflow should close most of the
    gap between plain R-BTB and that bound."""
    suite, length, warmup = bench_env
    configs = [
        rbtb(2),
        rbtb(2, overflow=16),
        rbtb(2, overflow=64),
        rbtb(16).with_(geometry_slots=2, label="R-BTB 2Geo 16BS (bound)"),
        rbtb(3),
        rbtb(3, overflow=16),
        rbtb(16).with_(geometry_slots=3, label="R-BTB 3Geo 16BS (bound)"),
    ]

    def run():
        compared = compare_to_baseline(configs, IDEAL_IBTB16, suite, length, warmup, jobs=JOBS)
        rows = []
        for cc in compared:
            results = cc.results
            n = len(results)
            rows.append(
                (
                    cc.config.label,
                    f"{cc.box.geomean:.4f}",
                    f"{sum(r.l1_btb_hit_rate for r in results) / n * 100:.1f}%",
                    f"{sum(r.misfetch_pki for r in results) / n:.2f}",
                )
            )
        return format_table(
            ("config", "rel. IPC gmean", "L1 hit", "misfetch PKI"), rows
        )

    emit(
        "ext_overflow",
        "== Extension: shared overflow branch slots (§3.5, z16/Bobcat/"
        "Exynos style) ==\n" + once(benchmark, run),
    )


def test_ext_replacement_policies(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        configs = []
        for policy in ("lru", "fifo", "uncond_first", "random"):
            configs.append(
                rbtb(2).with_(label=f"R-BTB 2BS {policy}")
            )
        # slot_policy isn't a MachineConfig field; build via kind-specific
        # helper below.
        from repro.core.config import build_simulator
        from repro.core.runner import run_suite
        from repro.btb.base import BTBGeometry
        from repro.btb.rbtb import RegionBTB
        from repro.btb.bbtb import BlockBTB
        from repro.common.stats import geomean
        from repro.core.simulator import Simulator
        from repro.frontend.engine import PredictionEngine
        from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
        from repro.backend.scoreboard import OoOBackend
        from repro.trace.workloads import get_trace

        base_cfg = rbtb(2)
        l1, l2 = base_cfg.geometries()
        rows = []
        for org_name, cls, kw in (
            ("R-BTB 2BS", RegionBTB, dict(slots_per_entry=2)),
            ("B-BTB 2BS", BlockBTB, dict(slots_per_entry=2)),
        ):
            for policy in ("lru", "fifo", "uncond_first", "random"):
                ipcs = []
                for name in suite:
                    trace = get_trace(name, length)
                    memory = MemoryHierarchy(MemoryConfig(scale=base_cfg.scale))
                    sim = Simulator(
                        trace=trace,
                        btb=cls(l1, l2, slot_policy=policy, **kw),
                        engine=PredictionEngine(),
                        backend=OoOBackend(memory=memory),
                        memory=memory,
                    )
                    ipcs.append(sim.run(warmup=warmup).ipc)
                rows.append((f"{org_name} {policy}", f"{geomean(ipcs):.4f}"))
        return format_table(("config", "gmean IPC"), rows)

    emit(
        "ext_replacement",
        "== Extension: branch-slot replacement policies (§6.3) ==\n"
        + once(benchmark, run),
    )
