"""§1/§3.6.1 limit study: cost of a 1-cycle taken-branch penalty.

Paper: with an idealistic 512K-entry I-BTB 16, a 1-cycle taken-branch
penalty costs 0.8 % geomean IPC (up to 2.2 %). This bench reproduces the
experiment: same machine, L1 taken bubble 0 vs 1.
"""

from repro.analysis.report import format_table
from repro.common.stats import geomean
from repro.core.config import ibtb
from repro.core.runner import run_suite

from benchmarks.conftest import emit, once


def test_limit_taken_branch_penalty(benchmark, bench_env):
    suite, length, warmup = bench_env

    def run():
        base_cfg = ibtb(16, ideal_btb=True)
        slow_cfg = base_cfg.with_(l1_taken_bubble=1, label="ideal I-BTB 16 +1c")
        base = run_suite(base_cfg, suite, length, warmup)
        slow = run_suite(slow_cfg, suite, length, warmup)
        losses = [1.0 - s.ipc / b.ipc for b, s in zip(base, slow)]
        rows = [
            (b.name, f"{b.ipc:.3f}", f"{s.ipc:.3f}", f"{loss * 100:.2f}%")
            for b, s, loss in zip(base, slow, losses)
        ]
        gmean_loss = 1.0 - geomean([s.ipc for s in slow]) / geomean(
            [b.ipc for b in base]
        )
        rows.append(("GEOMEAN", "", "", f"{gmean_loss * 100:.2f}%"))
        rows.append(("MAX", "", "", f"{max(losses) * 100:.2f}%"))
        return format_table(
            ("workload", "IPC 0c", "IPC 1c", "loss"), rows
        )

    table = once(benchmark, run)
    emit(
        "limit_taken_penalty",
        "== Limit study: 1-cycle taken-branch penalty "
        "(paper: 0.8% geomean loss, up to 2.2%) ==\n" + table,
    )
