"""Unit tests for the back-end timing models."""

import pytest

from repro.backend.scoreboard import IdealBackend, OoOBackend


def admit_simple(be, index, decode=0, dst=-1, src1=-1, src2=-1, load=False, store=False):
    return be.admit(index, decode, 0x100 + 4 * index, False, load, store, dst, src1, src2, 0x9000)


def test_independent_instructions_flow_wide():
    be = OoOBackend(memory=None, width=4)
    commits = [admit_simple(be, i)[1] for i in range(4)]
    # All four can commit in the same cycle (width 4).
    assert len(set(commits)) == 1


def test_width_limits_commit_rate():
    be = OoOBackend(memory=None, width=2)
    commits = [admit_simple(be, i)[1] for i in range(6)]
    # With width 2, commits advance at least every 2 instructions.
    assert commits[2] > commits[0]
    assert commits[4] > commits[2]


def test_dependency_chain_serializes():
    be = OoOBackend(memory=None)
    c0, _ = admit_simple(be, 0, dst=1)
    c1, _ = admit_simple(be, 1, dst=2, src1=1)
    c2, _ = admit_simple(be, 2, dst=3, src1=2)
    assert c1 > c0
    assert c2 > c1


def test_commit_is_in_order():
    be = OoOBackend(memory=None)
    # A slow load followed by a fast ALU op: the ALU commits no earlier.
    _, commit_load = admit_simple(be, 0, dst=1, load=True)
    _, commit_alu = admit_simple(be, 1)
    assert commit_alu >= commit_load


def test_rob_limits_dispatch():
    be = OoOBackend(memory=None, rob_size=32, width=4)
    # A very slow head instruction: give it a long dep chain via memory=None
    # load latency (5) chains.
    last = 0
    commits = []
    for i in range(40):
        c, commit = admit_simple(be, i, dst=1, src1=1, load=True)
        commits.append(commit)
    # Instruction 32+ cannot dispatch before instruction 0 committed.
    assert commits[35] > commits[0]


def test_load_ports_throttle():
    be = OoOBackend(memory=None, load_ports=1)
    c0, _ = admit_simple(be, 0, load=True)
    c1, _ = admit_simple(be, 1, load=True)
    assert c1 > c0  # serialized on the single port


def test_fetch_gate_tracks_frontend_queue():
    be = OoOBackend(memory=None, frontend_queue=16)
    assert be.fetch_gate(0) == 0
    for i in range(20):
        admit_simple(be, i, decode=5)
    assert be.fetch_gate(16 + 3) > 0


def test_memory_latency_applied_to_loads():
    class FakeMem:
        def load(self, pc, addr, cycle):
            return cycle + 123

        def store(self, pc, addr, cycle):
            pass

    be = OoOBackend(memory=FakeMem())
    complete, _ = admit_simple(be, 0, load=True)
    assert complete >= 123


def test_store_uses_store_ports():
    be = OoOBackend(memory=None, store_ports=1)
    c0, _ = admit_simple(be, 0, store=True)
    c1, _ = admit_simple(be, 1, store=True)
    assert c1 > c0


# -- ideal backend -----------------------------------------------------------------

def test_ideal_backend_only_deps_matter():
    be = IdealBackend()
    c0, _ = admit_simple(be, 0, dst=1)
    # 100 independent instructions all complete at the same cycle.
    cs = [admit_simple(be, i)[0] for i in range(1, 100)]
    assert len(set(cs)) == 1


def test_ideal_backend_dep_chain():
    be = IdealBackend()
    c_prev, _ = admit_simple(be, 0, dst=1)
    for i in range(1, 10):
        c, _ = admit_simple(be, i, dst=1, src1=1)
        assert c == c_prev + 1
        c_prev = c


def test_ideal_backend_window_gate():
    be = IdealBackend(window=64)
    for i in range(70):
        admit_simple(be, i, decode=0)
    assert be.fetch_gate(64) >= 1
    assert be.fetch_gate(63) == 0
