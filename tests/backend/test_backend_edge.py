"""Additional back-end edge cases: ring wrap-around, long runs, mixes."""

from repro.backend.scoreboard import IdealBackend, OoOBackend


def admit_n(be, n, decode_of=lambda i: i // 16, **kind):
    commits = []
    for i in range(n):
        _c, commit = be.admit(
            i, decode_of(i), 0x1000 + 4 * i,
            kind.get("branch", False), kind.get("load", False),
            kind.get("store", False), kind.get("dst", -1),
            kind.get("src1", -1), kind.get("src2", -1), 0x80000 + 64 * i,
        )
        commits.append(commit)
    return commits


def test_commit_monotone_over_ring_wrap():
    """Commit times stay monotone far past ROB/ring sizes."""
    be = OoOBackend(memory=None, rob_size=32, width=4, frontend_queue=16)
    commits = admit_n(be, 500)
    assert all(b >= a for a, b in zip(commits, commits[1:]))


def test_sustained_ipc_bounded_by_width():
    be = OoOBackend(memory=None, width=4)
    commits = admit_n(be, 2000, decode_of=lambda i: 0)
    # 2000 instructions at width 4: at least 500 cycles.
    assert commits[-1] >= 2000 / 4 - 1


def test_sustained_ipc_reaches_width_without_deps():
    be = OoOBackend(memory=None, width=8)
    commits = admit_n(be, 4000, decode_of=lambda i: i // 8)
    ipc = 4000 / commits[-1]
    assert ipc > 6.0  # close to width 8


def test_load_store_mix_progresses():
    be = OoOBackend(memory=None)
    commits = []
    for i in range(300):
        is_load = i % 3 == 0
        is_store = i % 7 == 0 and not is_load
        _c, commit = be.admit(
            i, i // 16, 0x100, False, is_load, is_store,
            i % 32, (i + 1) % 32, -1, 0x5000 + i * 8,
        )
        commits.append(commit)
    assert all(b >= a for a, b in zip(commits, commits[1:]))


def test_branch_latency_configurable():
    fast = OoOBackend(memory=None, branch_latency=1)
    slow = OoOBackend(memory=None, branch_latency=5)
    cf, _ = fast.admit(0, 0, 0x10, True, False, False, -1, -1, -1, 0)
    cs, _ = slow.admit(0, 0, 0x10, True, False, False, -1, -1, -1, 0)
    assert cs == cf + 4


def test_ideal_backend_window_wraps_cleanly():
    be = IdealBackend(window=32)
    commits = admit_n(be, 400, decode_of=lambda i: 0)
    assert all(b >= a for a, b in zip(commits, commits[1:]))


def test_ideal_backend_ignores_structural_hazards():
    be = IdealBackend()
    # 500 loads in "one cycle": no ports in the ideal machine.
    completes = []
    for i in range(500):
        c, _ = be.admit(i, 0, 0x10, False, True, False, -1, -1, -1, 0x9000)
        completes.append(c)
    assert len(set(completes)) == 1


def test_writes_to_r0_style_sink_register():
    """dst = -1 (no destination) must not corrupt the scoreboard."""
    be = OoOBackend(memory=None)
    be.admit(0, 0, 0x10, False, False, False, -1, -1, -1, 0)
    c1, _ = be.admit(1, 0, 0x14, False, False, False, 2, -1, -1, 0)
    assert c1 >= 0
