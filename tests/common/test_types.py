"""Unit tests for repro.common.types."""

import pytest

from repro.common.types import (
    ILEN,
    LINE_BYTES,
    LINE_INSTS,
    BranchType,
    is_branch,
    is_call,
    is_direct,
    is_indirect,
    is_unconditional,
    line_of,
    region_of,
)


def test_constants_consistent():
    assert LINE_BYTES % ILEN == 0
    assert LINE_INSTS == LINE_BYTES // ILEN


def test_none_is_not_a_branch():
    assert not is_branch(BranchType.NONE)
    for bt in BranchType:
        if bt != BranchType.NONE:
            assert is_branch(bt)


def test_unconditional_classification():
    assert not is_unconditional(BranchType.COND_DIRECT)
    for bt in (
        BranchType.UNCOND_DIRECT,
        BranchType.CALL_DIRECT,
        BranchType.RETURN,
        BranchType.INDIRECT,
        BranchType.CALL_INDIRECT,
    ):
        assert is_unconditional(bt)


def test_direct_vs_indirect_partition():
    """Every branch type is exactly one of direct/indirect."""
    for bt in BranchType:
        if bt == BranchType.NONE:
            continue
        assert is_direct(bt) != is_indirect(bt)


def test_returns_are_indirect_not_direct():
    assert is_indirect(BranchType.RETURN)
    assert not is_direct(BranchType.RETURN)


def test_call_types():
    assert is_call(BranchType.CALL_DIRECT)
    assert is_call(BranchType.CALL_INDIRECT)
    assert not is_call(BranchType.RETURN)
    assert not is_call(BranchType.UNCOND_DIRECT)


def test_line_of_alignment():
    assert line_of(0) == 0
    assert line_of(63) == 0
    assert line_of(64) == 64
    assert line_of(0x1234) == 0x1200 + 0x34 // 64 * 64


def test_region_of_various_sizes():
    assert region_of(0x12F, 64) == 0x100
    assert region_of(0x12F, 128) == 0x100
    assert region_of(0x1FF, 256) == 0x100
    assert region_of(0x200, 256) == 0x200


def test_region_of_is_idempotent():
    for pc in (0, 4, 100, 0xFFFF):
        r = region_of(pc, 64)
        assert region_of(r, 64) == r
