"""Unit tests for the deterministic RNG."""

import pytest

from repro.common.rng import SplitMix, mix_hash


def test_same_seed_same_stream():
    a, b = SplitMix(42), SplitMix(42)
    assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]


def test_different_seeds_differ():
    a, b = SplitMix(1), SplitMix(2)
    assert [a.next_u64() for _ in range(4)] != [b.next_u64() for _ in range(4)]


def test_uniform_in_unit_interval():
    rng = SplitMix(7)
    for _ in range(1000):
        u = rng.uniform()
        assert 0.0 <= u < 1.0


def test_randint_bounds_inclusive():
    rng = SplitMix(3)
    seen = {rng.randint(2, 5) for _ in range(500)}
    assert seen == {2, 3, 4, 5}


def test_randint_empty_range_raises():
    with pytest.raises(ValueError):
        SplitMix(1).randint(5, 4)


def test_choice_and_empty():
    rng = SplitMix(9)
    assert rng.choice([42]) == 42
    with pytest.raises(ValueError):
        rng.choice([])


def test_weighted_choice_respects_zero_weight():
    rng = SplitMix(11)
    picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(200)}
    assert picks == {"a"}


def test_weighted_choice_rough_proportion():
    rng = SplitMix(13)
    counts = {"a": 0, "b": 0}
    for _ in range(4000):
        counts[rng.weighted_choice(["a", "b"], [3.0, 1.0])] += 1
    ratio = counts["a"] / counts["b"]
    assert 2.2 < ratio < 4.2


def test_weighted_choice_requires_positive_total():
    with pytest.raises(ValueError):
        SplitMix(1).weighted_choice(["a"], [0.0])


def test_geometric_mean_close():
    rng = SplitMix(17)
    samples = [rng.geometric(6.0) for _ in range(4000)]
    mean = sum(samples) / len(samples)
    assert 5.0 < mean < 7.2
    assert min(samples) >= 1


def test_geometric_mean_one_is_constant():
    rng = SplitMix(19)
    assert all(rng.geometric(1.0) == 1 for _ in range(10))


def test_geometric_rejects_sub_one():
    with pytest.raises(ValueError):
        SplitMix(1).geometric(0.5)


def test_split_streams_are_independent():
    parent = SplitMix(23)
    child = parent.split()
    a = [child.next_u64() for _ in range(4)]
    b = [parent.next_u64() for _ in range(4)]
    assert a != b


def test_mix_hash_deterministic_and_sensitive():
    assert mix_hash(1, 2, 3) == mix_hash(1, 2, 3)
    assert mix_hash(1, 2, 3) != mix_hash(3, 2, 1)
    assert mix_hash(0) != mix_hash(1)
