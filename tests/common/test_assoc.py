"""Unit tests for the set-associative container."""

import pytest

from repro.common.assoc import SetAssociative


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        SetAssociative(3, 2)  # sets not a power of two
    with pytest.raises(ValueError):
        SetAssociative(0, 2)
    with pytest.raises(ValueError):
        SetAssociative(4, 0)


def test_insert_lookup_roundtrip():
    t = SetAssociative(4, 2)
    assert t.lookup(10, 99) is None
    t.insert(10, 99, "payload")
    assert t.lookup(10, 99) == "payload"
    assert len(t) == 1


def test_overwrite_same_tag_keeps_one_entry():
    t = SetAssociative(4, 2)
    t.insert(0, 7, "a")
    t.insert(0, 7, "b")
    assert len(t) == 1
    assert t.lookup(0, 7) == "b"


def test_lru_eviction_order():
    t = SetAssociative(1, 2)  # single set, 2 ways
    t.insert(0, 1, "one")
    t.insert(0, 2, "two")
    t.lookup(0, 1)  # make tag 1 most recent
    victim = t.insert(0, 3, "three")
    assert victim == (2, "two")
    assert t.lookup(0, 2) is None
    assert t.lookup(0, 1) == "one"


def test_lookup_without_touch_does_not_refresh_lru():
    t = SetAssociative(1, 2)
    t.insert(0, 1, "one")
    t.insert(0, 2, "two")
    t.lookup(0, 1, touch=False)  # should NOT protect tag 1
    victim = t.insert(0, 3, "three")
    assert victim[0] == 1


def test_sets_are_independent():
    t = SetAssociative(2, 1)
    t.insert(0, 10, "even")
    t.insert(1, 11, "odd")
    assert len(t) == 2  # different sets, no eviction
    assert t.lookup(0, 10) == "even"
    assert t.lookup(1, 11) == "odd"


def test_capacity_never_exceeded():
    t = SetAssociative(2, 3)
    for k in range(50):
        t.insert(k, k, k)
    assert len(t) <= t.capacity
    for s in range(t.sets):
        assert t.set_occupancy(s) <= t.ways


def test_evict_removes_and_returns_payload():
    t = SetAssociative(4, 2)
    t.insert(5, 5, "x")
    assert t.evict(5, 5) == "x"
    assert t.evict(5, 5) is None
    assert (5, 5) not in t


def test_contains_protocol():
    t = SetAssociative(4, 2)
    t.insert(3, 30, None)
    assert (3, 30) in t
    assert (3, 31) not in t


def test_clear():
    t = SetAssociative(4, 2)
    for k in range(8):
        t.insert(k, k, k)
    t.clear()
    assert len(t) == 0


def test_items_iterates_all_entries():
    t = SetAssociative(4, 4)
    for k in range(10):
        t.insert(k, 100 + k, k * 2)
    seen = {(tag, payload) for _s, tag, payload in t.items()}
    assert len(seen) == 10
    assert (105, 10) in seen


def test_custom_index_fn():
    t = SetAssociative(4, 1, index_fn=lambda key: key >> 4)
    t.insert(0x10, 1, "a")
    t.insert(0x20, 1, "b")  # different set despite same tag
    assert t.lookup(0x10, 1) == "a"
    assert t.lookup(0x20, 1) == "b"
