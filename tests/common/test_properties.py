"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.history import GlobalHistory
from repro.common.assoc import SetAssociative
from repro.common.stats import BoxStats, geomean


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=60))
def test_boxstats_quantile_ordering(values):
    box = BoxStats.from_values(values)
    assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
    assert box.whisker_low <= box.whisker_high
    # Outliers are strictly outside the whiskers.
    for o in box.outliers:
        assert o < box.whisker_low or o > box.whisker_high


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=40))
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@given(
    st.integers(min_value=0, max_value=3).map(lambda p: 2 ** p),
    st.integers(min_value=1, max_value=5),
    st.lists(st.tuples(st.integers(0, 63), st.integers(0, 7)), max_size=200),
)
def test_assoc_capacity_invariant(sets, ways, ops):
    t = SetAssociative(sets, ways)
    for key, tag in ops:
        t.insert(key, tag, (key, tag))
    assert len(t) <= sets * ways
    for s in range(sets):
        assert t.set_occupancy(s) <= ways


@given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 7)), max_size=120))
def test_assoc_most_recent_insert_always_resident(ops):
    t = SetAssociative(4, 2)
    for key, tag in ops:
        t.insert(key, tag, "v")
        assert t.lookup(key, tag, touch=False) == "v"


@settings(max_examples=40)
@given(
    st.lists(st.booleans(), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=3, max_value=12),
)
def test_folded_history_matches_rebuild(outcomes, length, width):
    """The incrementally maintained fold must always equal a from-scratch
    fold of the current history bits (the core correctness property)."""
    h = GlobalHistory()
    fold = h.register_fold(length, width)
    for taken in outcomes:
        h.push(taken)
        reference = type(fold)(length, width)
        reference.rebuild(h.bits)
        assert fold.value == reference.value


@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_history_value_matches_pushed_bits(outcomes):
    h = GlobalHistory()
    for taken in outcomes:
        h.push(taken)
    k = min(len(outcomes), 64)
    expected = 0
    for taken in outcomes[-k:]:
        expected = (expected << 1) | (1 if taken else 0)
    assert h.value(k) == expected
