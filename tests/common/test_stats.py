"""Unit tests for statistics helpers."""

import math

import pytest

from repro.common.stats import BoxStats, Histogram, RunningMean, Stats, geomean


# -- geomean -------------------------------------------------------------------

def test_geomean_basic():
    assert geomean([2, 8]) == pytest.approx(4.0)
    assert geomean([1, 1, 1]) == pytest.approx(1.0)


def test_geomean_empty_is_one():
    assert geomean([]) == 1.0


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([-2.0])


def test_geomean_matches_log_identity():
    vals = [0.5, 1.5, 2.5, 3.5]
    expected = math.exp(sum(math.log(v) for v in vals) / len(vals))
    assert geomean(vals) == pytest.approx(expected)


# -- BoxStats ------------------------------------------------------------------

def test_boxstats_ordering_invariant():
    box = BoxStats.from_values([3, 1, 4, 1, 5, 9, 2, 6])
    assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
    assert box.whisker_low >= box.minimum
    assert box.whisker_high <= box.maximum


def test_boxstats_single_value():
    box = BoxStats.from_values([2.5])
    assert box.minimum == box.median == box.maximum == 2.5
    assert box.outliers == ()


def test_boxstats_outlier_detection():
    # 11 tight values plus one far point -> the far point is an outlier.
    vals = [1.0] * 5 + [1.01] * 5 + [10.0]
    box = BoxStats.from_values(vals)
    assert 10.0 in box.outliers
    assert box.whisker_high < 10.0


def test_boxstats_no_outliers_for_uniform_data():
    box = BoxStats.from_values([1, 2, 3, 4, 5])
    assert box.outliers == ()
    assert box.whisker_low == 1
    assert box.whisker_high == 5


def test_boxstats_median_even_count():
    box = BoxStats.from_values([1, 2, 3, 4])
    assert box.median == pytest.approx(2.5)


def test_boxstats_empty_raises():
    with pytest.raises(ValueError):
        BoxStats.from_values([])


def test_boxstats_render_mentions_label():
    box = BoxStats.from_values([1, 2, 3])
    assert "mylabel" in box.render("mylabel")


# -- Stats ---------------------------------------------------------------------

def test_stats_add_and_get():
    st = Stats()
    st.add("x")
    st.add("x", 2)
    assert st.get("x") == 3
    assert st.get("missing") == 0.0
    assert st.get("missing", 7.0) == 7.0


def test_stats_ratio_and_per_kilo():
    st = Stats()
    st.set("hits", 75)
    st.set("total", 100)
    assert st.ratio("hits", "total") == pytest.approx(0.75)
    assert st.per_kilo("hits", "total") == pytest.approx(750.0)


def test_stats_ratio_zero_denominator():
    st = Stats()
    st.set("n", 5)
    assert st.ratio("n", "zero") == 0.0
    assert st.ratio("n", "zero", default=-1.0) == -1.0


def test_stats_merge_accumulates():
    a, b = Stats(), Stats()
    a.add("k", 1)
    b.add("k", 2)
    b.add("only_b", 5)
    a.merge(b)
    assert a.get("k") == 3
    assert a.get("only_b") == 5


def test_stats_merge_disjoint_and_overlapping_keys():
    a, b = Stats(), Stats()
    a.add("only_a", 4)
    a.add("shared", 1.5)
    b.add("only_b", 2)
    b.add("shared", 2.5)
    a.merge(b)
    # Overlapping keys sum; disjoint keys from either side survive.
    assert a.as_dict() == {"only_a": 4.0, "shared": 4.0, "only_b": 2.0}
    # The source of the merge is untouched.
    assert b.as_dict() == {"only_b": 2.0, "shared": 2.5}
    # Merging an empty bag is a no-op.
    a.merge(Stats())
    assert a.get("shared") == 4.0


def test_stats_as_dict_is_snapshot():
    st = Stats()
    st.add("k")
    snap = st.as_dict()
    st.add("k")
    assert snap["k"] == 1
    assert st.get("k") == 2


# -- RunningMean / Histogram ------------------------------------------------------

def test_running_mean():
    rm = RunningMean()
    assert rm.mean == 0.0
    for v in (1, 2, 3):
        rm.add(v)
    assert rm.mean == pytest.approx(2.0)


def test_histogram_mean_and_total():
    h = Histogram()
    h.add(1, 2)
    h.add(3, 2)
    assert h.total == 4
    assert h.mean == pytest.approx(2.0)


def test_histogram_quantile():
    h = Histogram()
    for v in range(1, 11):
        h.add(v)
    assert h.quantile(0.5) == 5
    assert h.quantile(1.0) == 10


def test_histogram_empty_is_neutral():
    h = Histogram()
    assert h.quantile(0.5) == 0
    assert h.mean == 0.0
    assert h.total == 0
