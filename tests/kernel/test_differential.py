"""Differential golden tests: compiled kernels vs the interpreter.

The pass pipeline's contract (docs/compiled_kernels.md): for every
supported configuration the compiled kernel is an *exact* semantic copy
of the reference interpreter — same SimResult, same Stats counters,
same obs event streams on the instrumented fallback path. These tests
run the fig-benchmark config families under both ``REPRO_KERNEL``
values and assert bit-identity, extending the tests/obs/test_golden.py
pattern to the engine axis.
"""

import pytest

from repro.core.config import (
    IDEAL_IBTB16,
    bbtb,
    build_simulator,
    hetero_btb,
    ibtb,
    ibtb_skp,
    mbbtb,
    rbtb,
)
from repro.core.passes.kernel import KERNEL_ENV
from repro.obs import Observer
from repro.obs.export import observation_to_json
from repro.trace.workloads import get_trace

L = 8_000

#: Every compiled config family exercised by the fig benchmarks.
CONFIGS = [
    ibtb(16),
    ibtb(4),
    ibtb_skp(),
    rbtb(3),
    rbtb(3, overflow=4),
    rbtb(2, interleaved=True),
    bbtb(1, splitting=True),
    bbtb(2),
    mbbtb(2, "allbr"),
    mbbtb(2, "uncond"),
    mbbtb(2, "calldir"),
    IDEAL_IBTB16,
    ibtb(16, ideal_backend=True),
    ibtb(16, early_resteer=True),
]


@pytest.fixture(scope="module")
def trace():
    return get_trace("web_frontend", L)


def _run(config, trace, mode, monkeypatch, warmup=0, probe=None):
    """Build, snapshot the engine choice (pre-run: a finished run has
    populated stats, which disqualifies the kernel), then run."""
    monkeypatch.setenv(KERNEL_ENV, mode)
    sim = build_simulator(config, trace, probe=probe)
    engine = sim.kernel_engine()
    return engine, sim.run(warmup=warmup)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label)
def test_compiled_matches_interp(config, trace, monkeypatch):
    engine_i, interp = _run(config, trace, "interp", monkeypatch)
    engine_c, compiled = _run(config, trace, "compiled", monkeypatch)
    assert engine_i == "interp"
    assert engine_c == "compiled"
    assert compiled.cycles == interp.cycles
    assert compiled.instructions == interp.instructions
    assert compiled.stats == interp.stats
    assert compiled.structure == interp.structure


@pytest.mark.parametrize("config", CONFIGS[:4], ids=lambda c: c.label)
def test_compiled_matches_interp_with_warmup(config, trace, monkeypatch):
    _, interp = _run(config, trace, "interp", monkeypatch, warmup=L // 4)
    _, compiled = _run(config, trace, "compiled", monkeypatch, warmup=L // 4)
    assert compiled.stats == interp.stats
    assert compiled.cycles == interp.cycles


def test_hetero_falls_back_to_interp(trace, monkeypatch):
    """Unsupported kinds run the reference engine even when compiled is
    requested — and still match an explicit interp run exactly."""
    config = hetero_btb(1, 2)
    engine_c, compiled = _run(config, trace, "compiled", monkeypatch)
    assert engine_c == "interp"
    _, interp = _run(config, trace, "interp", monkeypatch)
    assert compiled.stats == interp.stats
    assert compiled.cycles == interp.cycles


def test_obs_streams_identical_across_engines(trace, monkeypatch):
    """Instrumented runs force the interp fallback under both modes, so
    the obs event stream is engine-independent — and the probed result
    still equals the compiled uninstrumented run."""
    config = mbbtb(2, "allbr")
    payloads = {}
    for mode in ("interp", "compiled"):
        obs = Observer(events=True, interval=500)
        engine, result = _run(config, trace, mode, monkeypatch, probe=obs)
        assert engine == "interp"  # probe disables the kernel
        payloads[mode] = (result, observation_to_json(obs.observation()))
    result_i, obs_i = payloads["interp"]
    result_c, obs_c = payloads["compiled"]
    assert result_c.stats == result_i.stats
    assert obs_c == obs_i
    _, plain = _run(config, trace, "compiled", monkeypatch)
    assert plain.stats == result_i.stats


def test_warmup_validation_matches_interp(trace, monkeypatch):
    config = ibtb(16)
    for mode in ("interp", "compiled"):
        monkeypatch.setenv(KERNEL_ENV, mode)
        sim = build_simulator(config, trace)
        with pytest.raises(ValueError, match="warmup"):
            sim.run(warmup=len(trace))
