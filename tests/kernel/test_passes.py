"""Unit tests for the pass pipeline itself (DAG, schedule, codegen,
cache, mode selection) — the structural properties the differential
goldens can't see from the outside."""

import pytest

from repro.core.config import MachineConfig, hetero_btb, ibtb, rbtb
from repro.core.passes import (
    GenDAGPass,
    SchedulePass,
    get_kernel,
    kernel_mode,
    supports,
)
from repro.core.passes.components import elided_components, live_components
from repro.core.passes.kernel import (
    KERNEL_ENV,
    KernelConfigError,
    kernel_cache_clear,
    kernel_cache_info,
    kernel_key,
)


# -- mode selection ----------------------------------------------------------


def test_kernel_mode_defaults_to_compiled(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    assert kernel_mode() == "compiled"


@pytest.mark.parametrize("value", ["interp", "compiled"])
def test_kernel_mode_accepts_documented_values(monkeypatch, value):
    monkeypatch.setenv(KERNEL_ENV, value)
    assert kernel_mode() == value


@pytest.mark.parametrize("value", ["bogus", "jit", "compiled,interp"])
def test_kernel_mode_rejects_malformed_values(monkeypatch, value):
    monkeypatch.setenv(KERNEL_ENV, value)
    with pytest.raises(KernelConfigError, match="REPRO_KERNEL"):
        kernel_mode()


def test_supports_covers_homogeneous_kinds_only():
    assert supports(ibtb(16))
    assert supports(rbtb(3, overflow=4))
    assert not supports(hetero_btb(1, 2))
    with pytest.raises(KernelConfigError, match="not compilable"):
        get_kernel(hetero_btb(1, 2))


# -- DAG + schedule ----------------------------------------------------------


def test_dead_components_are_elided_per_config():
    # The obs probe is always dead (kernels are uninstrumented); the
    # overflow pool exists only for R-BTB configs that enable it.
    assert "obs.probe" in elided_components(ibtb(16))
    assert "rbtb.overflow_pool" in elided_components(ibtb(16))
    assert "rbtb.overflow_pool" not in elided_components(rbtb(3, overflow=4))
    # The ideal BTB has no L2 level.
    assert "btb.l2_level" in elided_components(ibtb(16, ideal_btb=True))
    live = {c.name for c in live_components(ibtb(16))}
    assert "pcgen.btb_access" in live and "fetch.icache" in live


def test_schedule_is_topological_and_stable():
    plan = GenDAGPass()(ibtb(16))
    schedule = SchedulePass()(plan)
    names = schedule.names()
    pos = {name: i for i, name in enumerate(names)}
    for consumer, producers in plan.edges.items():
        for producer in producers:
            assert pos[producer] < pos[consumer], (producer, consumer)
    # Nested components never get their own main-loop dispatch.
    assert all(c.emitter for c in schedule.emitted)
    assert all(c.parent is None for c in schedule.emitted)


def test_generated_source_elides_dead_paths():
    compiled = get_kernel(ibtb(16))
    code_lines = [
        line
        for line in compiled.source.splitlines()
        if not line.lstrip().startswith("#")
    ]
    # Probe hooks vanish entirely (not even guarded no-op calls); the
    # only mention left is the elision comment itself.
    assert not any("probe" in line for line in code_lines)
    assert "obs.probe" in compiled.source
    ideal = get_kernel(MachineConfig(btb_kind="ibtb", width=16, ideal_btb=True))
    # The ideal BTB elides the whole L2 level from the generated tick.
    assert "btb.l2_level" in ideal.source  # named in the elision comment
    assert "lvl == 2" not in ideal.source
    assert "elif lvl == 2:" in compiled.source


def test_config_constants_are_hoisted_as_literals():
    source = get_kernel(ibtb(4)).source
    # The fetch width 4 appears as a literal; no MachineConfig attribute
    # reads survive into the generated tick.
    assert "config." not in source
    assert "kernel/config mismatch" in source  # geometry guard stays


# -- kernel cache ------------------------------------------------------------


def test_cache_hit_returns_same_object_and_label_is_ignored():
    kernel_cache_clear()
    a = get_kernel(ibtb(16))
    b = get_kernel(ibtb(16))
    assert a is b
    relabeled = ibtb(16).with_(label="renamed twin")
    assert get_kernel(relabeled) is a
    info = kernel_cache_info()
    assert info["entries"] == 1
    assert info["misses"] == 1 and info["hits"] == 2


def test_cache_key_distinguishes_structural_changes():
    assert kernel_key(ibtb(16)) != kernel_key(ibtb(4))
    assert kernel_key(rbtb(3)) != kernel_key(rbtb(3, overflow=4))
    assert kernel_key(ibtb(16)) == kernel_key(ibtb(16).with_(label="x"))
