"""Differential golden tests: batched kernels vs the interpreter.

The batched engine contract (docs/batched_kernels.md): a batched kernel
consuming a shared :class:`~repro.trace.columnar.BatchPlan` is an
*exact* semantic copy of the reference interpreter — same SimResult,
same Stats counters, same structure samples — for every supported
configuration, with graceful fallback (batched -> compiled -> interp)
when the plan is absent or the config is unsupported. Mirrors
tests/kernel/test_differential.py on the new engine axis.
"""

import pytest

from repro.core.config import (
    IDEAL_IBTB16,
    bbtb,
    build_simulator,
    hetero_btb,
    ibtb,
    ibtb_skp,
    mbbtb,
    rbtb,
)
from repro.core.passes.kernel import KERNEL_ENV, batch_geometry
from repro.trace.columnar import build_batch_plan, geometry_for
from repro.trace.trace import Trace
from repro.trace.workloads import get_trace

L = 8_000

#: Every compiled config family exercised by the fig benchmarks. All
#: share the default predictor size, hence one batch-plan geometry.
CONFIGS = [
    ibtb(16),
    ibtb(4),
    ibtb_skp(),
    rbtb(3),
    rbtb(3, overflow=4),
    rbtb(2, interleaved=True),
    bbtb(1, splitting=True),
    bbtb(2),
    mbbtb(2, "allbr"),
    mbbtb(2, "uncond"),
    mbbtb(2, "calldir"),
    IDEAL_IBTB16,
    ibtb(16, ideal_backend=True),
    ibtb(16, early_resteer=True),
]


@pytest.fixture(scope="module")
def trace():
    return get_trace("web_frontend", L)


@pytest.fixture(scope="module")
def plan(trace):
    return build_batch_plan(trace, batch_geometry(ibtb(16)))


def _run(config, trace, mode, monkeypatch, warmup=0, plan=None):
    monkeypatch.setenv(KERNEL_ENV, mode)
    sim = build_simulator(config, trace)
    engine = sim.kernel_engine()
    return engine, sim.run(warmup=warmup, batch_plan=plan)


def _assert_identical(a, b):
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.stats == b.stats
    assert a.structure == b.structure


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label)
def test_batched_matches_interp(config, trace, plan, monkeypatch):
    engine_i, interp = _run(config, trace, "interp", monkeypatch)
    engine_b, batched = _run(config, trace, "batched", monkeypatch, plan=plan)
    assert engine_i == "interp"
    assert engine_b == "batched"
    _assert_identical(batched, interp)


@pytest.mark.parametrize("config", CONFIGS[:4], ids=lambda c: c.label)
def test_batched_matches_interp_with_warmup(config, trace, plan, monkeypatch):
    _, interp = _run(config, trace, "interp", monkeypatch, warmup=L // 4)
    _, batched = _run(
        config, trace, "batched", monkeypatch, warmup=L // 4, plan=plan
    )
    _assert_identical(batched, interp)


def test_batched_without_plan_falls_back_to_compiled(trace, monkeypatch):
    """``REPRO_KERNEL=batched`` with no plan handed to ``run`` uses the
    per-config compiled kernel — still bit-identical."""
    config = ibtb(16)
    _, interp = _run(config, trace, "interp", monkeypatch)
    engine_b, batched = _run(config, trace, "batched", monkeypatch, plan=None)
    assert engine_b == "batched"  # eligibility is config-level
    _assert_identical(batched, interp)


def test_batched_hetero_falls_back_to_interp(trace, monkeypatch):
    config = hetero_btb(1, 2)
    engine_b, batched = _run(config, trace, "batched", monkeypatch)
    assert engine_b == "interp"
    _, interp = _run(config, trace, "interp", monkeypatch)
    _assert_identical(batched, interp)


def test_geometry_mismatch_raises(trace, monkeypatch):
    """A plan built for a different predictor geometry is rejected by
    the kernel prelude instead of silently corrupting results."""
    wrong = build_batch_plan(trace.slice(0, 500), geometry_for(2))
    monkeypatch.setenv(KERNEL_ENV, "batched")
    sim = build_simulator(ibtb(16), trace)
    with pytest.raises(RuntimeError, match="geometry"):
        sim.run(batch_plan=wrong)


def test_plan_length_mismatch_raises(trace, monkeypatch):
    """A plan built over a different trace slice is rejected too."""
    short = build_batch_plan(trace.slice(0, 500), batch_geometry(ibtb(16)))
    monkeypatch.setenv(KERNEL_ENV, "batched")
    sim = build_simulator(ibtb(16), trace)
    with pytest.raises(RuntimeError, match="trace length"):
        sim.run(batch_plan=short)


# -- degenerate slices: all three engines agree exactly ----------------------


def _tiny_trace(n):
    trace = Trace(name=f"tiny{n}")
    pc = 0x1000
    for _ in range(n):
        trace.append(pc)
        pc += 4
    return trace


@pytest.mark.parametrize("mode", ["interp", "compiled", "batched"])
@pytest.mark.parametrize("n,warmup", [(0, 0), (1, 1), (5, 5), (5, 7)])
def test_warmup_not_below_trace_raises_everywhere(
    mode, n, warmup, monkeypatch
):
    """Zero-instruction and warmup-consumes-everything slices raise the
    same ValueError under every engine (no div-by-zero, no divergence)."""
    trace = _tiny_trace(n)
    config = ibtb(16)
    plan = build_batch_plan(trace, batch_geometry(config)) if mode == "batched" else None
    monkeypatch.setenv(KERNEL_ENV, mode)
    sim = build_simulator(config, trace)
    with pytest.raises(ValueError, match="warmup"):
        sim.run(warmup=warmup, batch_plan=plan)


@pytest.mark.parametrize("n,warmup", [(1, 0), (8, 7)])
def test_warmup_only_slices_bit_identical(n, warmup, monkeypatch):
    """A measured region of a single instruction produces identical
    Stats under interp, compiled and batched (cycle clamp included)."""
    trace = _tiny_trace(n)
    config = ibtb(16)
    plan = build_batch_plan(trace, batch_geometry(config))
    results = {}
    for mode in ("interp", "compiled", "batched"):
        bp = plan if mode == "batched" else None
        _, results[mode] = _run(
            config, trace, mode, monkeypatch, warmup=warmup, plan=bp
        )
    _assert_identical(results["compiled"], results["interp"])
    _assert_identical(results["batched"], results["interp"])
    assert results["interp"].cycles >= 1
