"""Unit tests for prefetchers."""

from repro.memory.cache import Cache, MainMemory
from repro.memory.prefetch import IPStridePrefetcher, NextLinePrefetcher


def cache_with(prefetcher):
    dram = MainMemory(latency=100)
    return Cache("C", 64, 4, 5, dram, mshrs=16, prefetcher=prefetcher)


def test_next_line_prefetches_successor():
    c = cache_with(NextLinePrefetcher())
    c.access(0x1000, 0)
    assert c.contains(0x1040)  # next line prefetched


def test_next_line_degree():
    c = cache_with(NextLinePrefetcher(degree=3))
    c.access(0x2000, 0)
    for d in (1, 2, 3):
        assert c.contains(0x2000 + d * 64)
    assert not c.contains(0x2000 + 4 * 64)


def test_ip_stride_needs_confidence():
    pf = IPStridePrefetcher(degree=1)
    c = cache_with(pf)
    pf.observe_pc(0x500)
    c.access(0x10000, 0)  # first sight: train only
    pf.observe_pc(0x500)
    c.access(0x10100, 0)  # stride 0x100 observed once
    assert not c.contains(0x10200)
    pf.observe_pc(0x500)
    c.access(0x10200, 0)  # stride confirmed
    pf.observe_pc(0x500)
    c.access(0x10300, 0)  # confidence >= 2: prefetch fires
    assert c.contains(0x10400)


def test_ip_stride_different_pcs_tracked_separately():
    pf = IPStridePrefetcher(degree=1)
    c = cache_with(pf)
    for i in range(5):
        pf.observe_pc(0xA0)
        c.access(0x40000 + i * 128, i)
        pf.observe_pc(0xB0)
        c.access(0x80000 + i * 256, i)
    assert c.contains(0x40000 + 5 * 128)
    assert c.contains(0x80000 + 5 * 256)


def test_ip_stride_resets_on_stride_change():
    pf = IPStridePrefetcher(degree=1)
    c = cache_with(pf)
    addrs = [0x1000, 0x1100, 0x1200, 0x9000, 0x9001, 0x9002]
    for i, a in enumerate(addrs):
        pf.observe_pc(0xC0)
        c.access(a, i)
    # Confidence collapsed after the jump; tiny strides within one line
    # produce no useful prefetch of far lines.
    assert not c.contains(0xA000)


def test_ip_stride_table_bounded():
    pf = IPStridePrefetcher(table_entries=4)
    c = cache_with(pf)
    for pc in range(10):
        pf.observe_pc(pc)
        c.access(0x100000 + pc * 4096, 0)
    assert len(pf._table) <= 4
