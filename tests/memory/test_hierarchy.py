"""Unit tests for the composed memory hierarchy."""

import pytest

from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy


def test_default_geometry_matches_table1():
    m = MemoryHierarchy()
    assert m.l1i.array.sets == 64 and m.l1i.array.ways == 8
    assert m.l1d.array.sets == 64 and m.l1d.array.ways == 12
    assert m.l2.array.sets == 1024 and m.l2.array.ways == 8
    assert m.llc.array.sets == 2048 and m.llc.array.ways == 16


def test_scale_shrinks_only_instruction_side():
    m = MemoryHierarchy(MemoryConfig(scale=0.25))
    assert m.l1i.array.sets == 16
    assert m.l1d.array.sets == 64  # data side keeps Table-1 capacity
    assert m.l2.array.sets == 1024
    assert m.itlb.array.sets == 8
    assert m.dtlb.array.sets == 32


def test_ifetch_resident_line_is_immediately_available():
    m = MemoryHierarchy()
    m.ifetch(0x1000, 0)  # cold fill
    avail = m.ifetch(0x1000, 5000)
    assert avail == 5000  # hit latency is pipelined away


def test_ifetch_miss_waits_for_fill():
    m = MemoryHierarchy()
    avail = m.ifetch(0x40000, 0)
    assert avail > 0  # cold: some fill delay


def test_ifetch_prefetch_hides_latency():
    m = MemoryHierarchy()
    m.ifetch_prefetch(0x80000, 0)
    # By the time the fill completed, fetch sees the line as available.
    avail = m.ifetch(0x80000, 100000)
    assert avail == 100000


def test_load_hits_after_warmup():
    m = MemoryHierarchy()
    m.load(0x10, 0x200000, 0)
    done = m.load(0x10, 0x200000, 5000)
    assert done == 5000 + m.l1d.latency


def test_load_includes_tlb():
    m = MemoryHierarchy()
    first = m.load(0x10, 0x900000, 0)
    assert first >= m.config.walk_latency  # cold TLB + cold cache


def test_store_populates_cache():
    m = MemoryHierarchy()
    m.store(0x20, 0x300000, 0)
    assert m.l1d.contains(0x300000)
