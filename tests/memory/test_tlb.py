"""Unit tests for the TLB hierarchy."""

from repro.memory.tlb import PAGE_BYTES, TLB, PageWalker


def tlbs(l1_latency=1, l2_latency=8, walk=60):
    walker = PageWalker(latency=walk)
    l2 = TLB("L2TLB", 16, 4, l2_latency, walker)
    l1 = TLB("ITLB", 4, 4, l1_latency, l2)
    return l1, l2, walker


def test_cold_miss_walks():
    l1, l2, walker = tlbs()
    done = l1.translate(0x1000, 0)
    assert done == 1 + 8 + 60
    assert walker.stats.get("walks") == 1


def test_warm_hit_is_cheap():
    l1, _, _ = tlbs()
    l1.translate(0x1000, 0)
    assert l1.translate(0x1000, 100) == 101


def test_same_page_shares_translation():
    l1, _, walker = tlbs()
    l1.translate(0x1000, 0)
    l1.translate(0x1000 + PAGE_BYTES - 1, 100)
    assert walker.stats.get("walks") == 1


def test_different_page_walks_again():
    l1, _, walker = tlbs()
    l1.translate(0x1000, 0)
    l1.translate(0x1000 + PAGE_BYTES, 100)
    assert walker.stats.get("walks") == 2


def test_l2_tlb_catches_l1_evictions():
    l1, l2, walker = tlbs()
    # Fill the 4-set/4-way L1 TLB's set 0 with 6 pages (evicts the
    # first) while staying within the 16-set L2 TLB's associativity.
    pages = [k * 4 * PAGE_BYTES for k in range(6)]
    for p in pages:
        l1.translate(p, 0)
    walks_before = walker.stats.get("walks")
    # The first page is gone from L1 but still in L2.
    done = l1.translate(pages[0], 1000)
    assert walker.stats.get("walks") == walks_before
    assert done == 1000 + 1 + 8


def test_miss_counters():
    l1, _, _ = tlbs()
    l1.translate(0x5000, 0)
    l1.translate(0x5000, 10)
    assert l1.stats.get("accesses") == 2
    assert l1.stats.get("misses") == 1
