"""Memory hierarchy integration: FDIP effectiveness and TLB interplay."""

from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy


def test_fdip_prefetch_beats_demand_fetch():
    """A line prefetched well in advance is available immediately at
    fetch; the same cold line fetched on demand is not."""
    warm = MemoryHierarchy()
    warm.ifetch_prefetch(0x100000, cycle=0)
    assert warm.ifetch(0x100000, 10_000) == 10_000

    cold = MemoryHierarchy()
    assert cold.ifetch(0x100000, 10_000) > 10_000


def test_late_prefetch_partially_hides_latency():
    m = MemoryHierarchy()
    m.ifetch_prefetch(0x200000, cycle=0)
    # Ask for the line before the DRAM fill can possibly complete.
    early = m.ifetch(0x200000, 5)
    assert 5 < early  # not ready yet...
    cold = MemoryHierarchy().ifetch(0x200000, 5)
    assert early <= cold  # ...but no worse than a pure demand miss


def test_code_working_set_larger_than_scaled_l1i_misses():
    m = MemoryHierarchy(MemoryConfig(scale=0.25))  # 8 KB L1I
    lines = [0x400000 + k * 64 for k in range(512)]  # 32 KB of code
    for sweep in range(2):
        for line in lines:
            m.ifetch(line, 1_000_000 * sweep + line)
    assert m.l1i.stats.get("misses") > 512  # second sweep misses again


def test_itlb_shares_l2_tlb_with_data_side():
    m = MemoryHierarchy()
    m.ifetch(0x500000, 0)  # instruction side walks the page in
    walks_before = m.l2tlb.stats.get("misses")
    m.load(0x10, 0x500000, 10_000)  # data access to the same page
    # DTLB missed but the shared L2 TLB already had the translation.
    assert m.l2tlb.stats.get("misses") == walks_before


def test_dstride_prefetcher_reduces_load_misses():
    m = MemoryHierarchy()
    # Stream with a constant 256 B stride: after training, lines ahead
    # are prefetched.
    for i in range(64):
        m.load(0x40, 0x800000 + i * 256, i * 400)
    assert m.l1d.stats.get("prefetch_issued", 0) + m.l1d.stats.get(
        "prefetch_fills", 0
    ) > 0


def test_stores_do_not_block():
    m = MemoryHierarchy()
    m.store(0x44, 0x900000, 0)  # returns None; must not raise
    assert m.l1d.contains(0x900000)
