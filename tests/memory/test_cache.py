"""Unit tests for the timing cache model."""

import pytest

from repro.memory.cache import Cache, MainMemory


def chain(l1_latency=3, l2_latency=15, dram_latency=100, mshrs=4):
    dram = MainMemory(latency=dram_latency)
    l2 = Cache("L2", 16, 4, l2_latency, dram, mshrs=8)
    l1 = Cache("L1", 4, 2, l1_latency, l2, mshrs=mshrs)
    return l1, l2, dram


def test_miss_costs_down_to_dram():
    l1, l2, dram = chain()
    ready = l1.access(0x1000, cycle=0)
    # Latencies do not stack: the DRAM fill time dominates.
    assert ready == 100


def test_hit_costs_own_latency():
    l1, _, _ = chain()
    l1.access(0x1000, 0)
    ready = l1.access(0x1000, 500)  # long after the fill completed
    assert ready == 503


def test_hit_on_in_flight_line_waits_for_fill():
    l1, _, _ = chain()
    first = l1.access(0x1000, 0)
    second = l1.access(0x1000, 10)  # before fill at cycle 100
    assert second >= first - 5  # waits for (roughly) the fill
    assert second <= first


def test_l2_hit_after_l1_eviction():
    l1, l2, _ = chain()
    l1.access(0x1000, 0)
    # Evict 0x1000's line from tiny L1 by filling its set.
    set_stride = 4 * 64  # same set every 4 lines
    for k in range(1, 3):
        l1.access(0x1000 + k * set_stride, 0)
    ready = l1.access(0x1000, 1000)
    assert ready == 1000 + 15  # L2 load-to-use


def test_mshr_merge_counted():
    l1, _, _ = chain()
    first = l1.access(0x2000, 0)
    second = l1.access(0x2000, 1)  # merges with the in-flight fill
    assert second == first
    assert l1.stats.get("mshr_merges") == 1
    assert l1.stats.get("misses") == 1


def test_mshr_exhaustion_delays_new_miss():
    l1, _, _ = chain(mshrs=2)
    lines = [0x10000 * (k + 1) for k in range(3)]
    r1 = l1.access(lines[0], 0)
    r2 = l1.access(lines[1], 0)
    r3 = l1.access(lines[2], 0)  # all MSHRs busy
    assert l1.stats.get("mshr_stalls") >= 1
    assert r3 > max(r1, r2) - 5


def test_prefetch_fills_without_demand_stats():
    l1, _, _ = chain()
    l1.prefetch(0x3000, 0)
    assert l1.stats.get("accesses") == 0
    assert l1.contains(0x3000)
    # A later demand access hits (after fill time).
    ready = l1.access(0x3000, 500)
    assert ready == 503


def test_prefetch_to_resident_line_is_noop():
    l1, _, _ = chain()
    l1.access(0x4000, 0)
    fills_before = l1.stats.get("prefetch_fills")
    l1.prefetch(0x4000, 10)
    assert l1.stats.get("prefetch_fills") == fills_before


def test_hit_rate_property():
    l1, _, _ = chain()
    l1.access(0x5000, 0)
    l1.access(0x5000, 200)
    l1.access(0x5000, 400)
    assert l1.hit_rate == pytest.approx(2 / 3)


def test_dram_bandwidth_spaces_requests():
    dram = MainMemory(latency=50, bandwidth_per_cycle=0.5)
    r1 = dram.access(0, 0)
    r2 = dram.access(64, 0)
    assert r2 >= r1 + 2 - 1  # spaced by 1/bandwidth


def test_line_granularity():
    l1, _, _ = chain()
    l1.access(0x1000, 0)
    # Same 64B line: hit.
    ready = l1.access(0x103F, 500)
    assert ready == 503
    assert l1.stats.get("misses") == 1
