"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.btb.base import BTBGeometry
from repro.common.types import ILEN, BranchType
from repro.trace.trace import Trace


def make_trace(steps, name="mini"):
    """Build a Trace from (pc, btype, taken, target) tuples.

    Non-branch steps may be given as a bare int pc. Consecutive PCs must
    obey control flow (validated).
    """
    tr = Trace(name=name)
    for step in steps:
        if isinstance(step, int):
            tr.append(pc=step)
            continue
        pc, btype, taken, target = step
        tr.append(pc=pc, btype=btype, taken=taken, target=target)
    tr.validate()
    return tr


def straight(pc0, count):
    """*count* sequential non-branch instructions starting at pc0."""
    return [pc0 + i * ILEN for i in range(count)]


@pytest.fixture
def tiny_geom():
    """A tiny fully-associative-ish geometry for unit tests."""
    return BTBGeometry(sets=4, ways=4)


@pytest.fixture
def big_geom():
    """Plenty of room: no capacity evictions in sight."""
    return BTBGeometry(sets=256, ways=16)


@pytest.fixture
def engine():
    """A fresh prediction engine with default sizes."""
    from repro.frontend.engine import PredictionEngine

    return PredictionEngine()


# Re-export BranchType members for terse test bodies.
COND = BranchType.COND_DIRECT
JMP = BranchType.UNCOND_DIRECT
CALL = BranchType.CALL_DIRECT
RET = BranchType.RETURN
IND = BranchType.INDIRECT
ICALL = BranchType.CALL_INDIRECT
