"""Unit tests for report rendering."""

from repro.analysis.report import ascii_bar, format_table, series_table, whisker_table
from repro.common.stats import BoxStats


def test_format_table_alignment():
    out = format_table(("name", "v"), [("a", 1), ("longer", 22)])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "longer" in lines[3]


def test_ascii_bar_scales():
    assert ascii_bar(0.0, 0.0, 1.0, width=10) == ""
    assert ascii_bar(1.0, 0.0, 1.0, width=10) == "#" * 10
    assert len(ascii_bar(0.5, 0.0, 1.0, width=10)) == 5


def test_ascii_bar_clamps_out_of_range():
    assert ascii_bar(5.0, 0.0, 1.0, width=4) == "####"
    assert ascii_bar(-1.0, 0.0, 1.0, width=4) == ""


def test_ascii_bar_degenerate_range():
    assert ascii_bar(1.0, 1.0, 1.0) == ""


def test_whisker_table_contains_all_labels():
    boxes = [
        ("cfg-a", BoxStats.from_values([0.9, 1.0, 1.1])),
        ("cfg-b", BoxStats.from_values([0.5, 0.6, 0.7])),
    ]
    out = whisker_table(boxes, "My Figure")
    assert "My Figure" in out
    assert "cfg-a" in out and "cfg-b" in out
    assert "gmean" in out


def test_series_table_rows_match_xs():
    out = series_table("S", "x", [1, 2, 3], {"y1": [0.1, 0.2, 0.3], "y2": [1, 2, 3]})
    lines = out.splitlines()
    assert len(lines) == 2 + 1 + 3  # title + header + divider + 3 rows
    assert "y1" in lines[1] and "y2" in lines[1]
