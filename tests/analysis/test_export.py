"""Unit tests for result export."""

import csv
import json

import pytest

from repro.analysis.export import (
    METRIC_FIELDS,
    result_row,
    results_to_rows,
    write_csv,
    write_json,
)
from repro.core.simulator import SimResult


def fake_result(name="wl", ipc_cycles=(9000, 10000)):
    insts, cycles = ipc_cycles
    return SimResult(
        name=name,
        instructions=insts,
        cycles=cycles,
        stats={
            "mispredicts": 9.0,
            "misfetches": 3.0,
            "btb_accesses": 1000.0,
            "fetch_pcs": 7700.0,
            "btb_taken_lookups": 100.0,
            "btb_taken_l1_hits": 80.0,
            "btb_taken_l2_hits": 15.0,
        },
        structure={"l1_redundancy": 1.05},
    )


def test_result_row_contains_all_metrics():
    row = result_row("I-BTB 16", fake_result())
    assert row["config"] == "I-BTB 16"
    assert row["workload"] == "wl"
    for field in METRIC_FIELDS:
        assert field in row
    assert row["ipc"] == pytest.approx(0.9)
    assert row["fetch_pcs_per_access"] == pytest.approx(7.7)
    assert row["l1_btb_hit_rate"] == pytest.approx(0.8)
    assert row["l1_redundancy"] == pytest.approx(1.05)


def test_results_to_rows_orders_by_config():
    rows = results_to_rows(
        [("a", [fake_result("w1"), fake_result("w2")]), ("b", [fake_result("w1")])]
    )
    assert [(r["config"], r["workload"]) for r in rows] == [
        ("a", "w1"), ("a", "w2"), ("b", "w1"),
    ]


def test_write_csv_roundtrip(tmp_path):
    rows = results_to_rows([("cfg", [fake_result()])])
    path = tmp_path / "out.csv"
    write_csv(str(path), rows)
    with open(path) as handle:
        back = list(csv.DictReader(handle))
    assert len(back) == 1
    assert back[0]["config"] == "cfg"
    assert float(back[0]["ipc"]) == pytest.approx(0.9)


def test_write_csv_union_header(tmp_path):
    r1 = result_row("a", fake_result())
    r2 = dict(result_row("b", fake_result()))
    r2["extra_metric"] = 42
    path = tmp_path / "u.csv"
    write_csv(str(path), [r1, r2])
    with open(path) as handle:
        back = list(csv.DictReader(handle))
    assert back[0]["extra_metric"] == ""  # restval for missing keys
    assert back[1]["extra_metric"] == "42"


def test_write_csv_empty_raises(tmp_path):
    with pytest.raises(ValueError):
        write_csv(str(tmp_path / "e.csv"), [])


def test_write_json(tmp_path):
    rows = results_to_rows([("cfg", [fake_result()])])
    path = tmp_path / "out.json"
    write_json(str(path), rows)
    back = json.load(open(path))
    assert back[0]["cycles"] == 10000
