"""API-quality gates: public items documented, exports resolvable."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.backend",
    "repro.branch",
    "repro.btb",
    "repro.common",
    "repro.core",
    "repro.frontend",
    "repro.memory",
    "repro.trace",
]


def iter_modules():
    for name in PACKAGES:
        yield importlib.import_module(name)
    for pkg_name in PACKAGES[1:]:
        pkg = importlib.import_module(pkg_name)
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            yield importlib.import_module(info.name)


def test_all_exports_resolve():
    for module in iter_modules():
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name}"


def test_every_module_has_a_docstring():
    for module in iter_modules():
        assert module.__doc__, f"{module.__name__} lacks a module docstring"


def test_public_classes_and_functions_documented():
    undocumented = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_public_methods_documented_in_core_classes():
    from repro.btb import BlockBTB, HeterogeneousBTB, InstructionBTB, MultiBlockBTB, RegionBTB
    from repro.core import Simulator

    undocumented = []
    for cls in (InstructionBTB, RegionBTB, BlockBTB, MultiBlockBTB, HeterogeneousBTB, Simulator):
        for name, member in vars(cls).items():
            if name.startswith("_") or not inspect.isfunction(member):
                continue
            if not inspect.getdoc(member):
                undocumented.append(f"{cls.__name__}.{name}")
    assert not undocumented, undocumented


def test_version_is_exported():
    assert repro.__version__ == "1.0.0"
