"""Golden-equivalence and reconciliation tests for instrumented runs.

The observability contract: attaching a probe never changes what is
simulated. A probed run must produce a bit-identical SimResult for
every BTB organization, its event census must agree with the engine's
counters, and interval columns must sum to the end-of-run totals.
"""

import pytest

from repro.core.config import bbtb, build_simulator, hetero_btb, ibtb, mbbtb, rbtb
from repro.obs import Observer
from repro.trace.workloads import get_trace

L = 8_000
CONFIGS = [
    ibtb(16),
    rbtb(3, overflow=4),
    bbtb(1, splitting=True),
    mbbtb(2, "allbr"),
    hetero_btb(1, 2),
]


@pytest.fixture(scope="module")
def trace():
    return get_trace("web_frontend", L)


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label)
def test_probed_run_is_bit_identical(config, trace):
    plain = build_simulator(config, trace).run(warmup=0)
    obs = Observer(events=True, interval=500)
    probed = build_simulator(config, trace, probe=obs).run(warmup=0)
    assert probed.cycles == plain.cycles
    assert probed.instructions == plain.instructions
    assert probed.stats == plain.stats
    assert probed.structure == plain.structure


@pytest.mark.parametrize("config", CONFIGS[:2], ids=lambda c: c.label)
def test_probed_run_is_bit_identical_with_warmup(config, trace):
    plain = build_simulator(config, trace).run(warmup=L // 4)
    obs = Observer(events=True, interval=500)
    probed = build_simulator(config, trace, probe=obs).run(warmup=L // 4)
    assert probed.stats == plain.stats
    assert probed.cycles == plain.cycles


def test_event_census_matches_stats_counters(trace):
    obs = Observer(events=True, interval=0)
    result = build_simulator(mbbtb(2, "allbr"), trace, probe=obs).run(warmup=0)
    counts = obs.observation().event_counts
    # Resolution events map 1:1 onto the engine's counters.
    assert counts["misfetch"] == result.stats["misfetches"]
    assert counts["mispredict"] == result.stats["mispredicts"]
    # Every misfetch/mispredict eventually resteers PC generation.
    assert counts["resteer"] == counts["misfetch"] + counts["mispredict"]
    # Taken-lookup outcome events match the paper's BTB counters.
    assert counts["btb_hit_l1"] == result.stats["btb_taken_l1_hits"]
    assert counts["btb_hit_l2"] == result.stats.get("btb_taken_l2_hits", 0)
    hit_or_miss = (
        counts["btb_hit_l1"] + counts["btb_hit_l2"] + counts["btb_miss"]
    )
    assert hit_or_miss == result.stats["btb_taken_lookups"]


def test_intervals_reconcile_with_sim_result(trace):
    obs = Observer(events=False, interval=750)
    result = build_simulator(ibtb(16), trace, probe=obs).run(warmup=0)
    cols = obs.observation().intervals
    assert cols["instructions"].sum() == result.instructions
    # Raw counter deltas reproduce the measured totals exactly.
    for name in ("mispredicts", "misfetches", "btb_accesses", "fetch_pcs"):
        assert cols[name].sum() == result.stats[name], name
    # The final interval edge is the last simulated cycle.
    assert cols["cycle_end"][-1] == obs.observation().cycles


def test_observation_framing(trace):
    obs = Observer(events=True, interval=1000, meta={"tag": "x"})
    build_simulator(ibtb(16), trace, probe=obs).run(warmup=0)
    o = obs.observation()
    assert o.name == trace.name
    assert o.instructions == L
    assert o.cycles > 0
    assert o.interval == 1000
    assert o.meta == {"tag": "x"}
    assert o.events, "no events buffered"
    # Buffered records never exceed exact counts.
    assert len(o.events) <= sum(o.event_counts.values())


def test_sampled_observer_keeps_exact_counts(trace):
    full = Observer(events=True, interval=0)
    build_simulator(ibtb(16), trace, probe=full).run(warmup=0)
    sampled = Observer(events=True, interval=0, sample=8, capacity=256)
    build_simulator(ibtb(16), trace, probe=sampled).run(warmup=0)
    a, b = full.observation(), sampled.observation()
    assert a.event_counts == b.event_counts
    assert len(b.events) <= 256
    assert b.sampled_out > 0
