"""Unit tests for the interval-metrics collector (reconciliation)."""

import numpy as np
import pytest

from repro.common.stats import Stats
from repro.obs.intervals import DERIVED_COLUMNS, IntervalCollector


def drive(iv, stats, schedule):
    """Run a synthetic cycle loop: *schedule* maps cycle -> list of
    (counter, amount) increments applied just before that cycle tick."""
    admitted = 0
    last = 0
    for cycle in sorted(schedule):
        for name, amount in schedule[cycle]:
            stats.add(name, amount)
            if name == "instructions":
                admitted += int(amount)
        iv.on_cycle(cycle, ftq_len=cycle % 5, admitted=admitted)
        last = cycle
    iv.finish(last, admitted)
    return iv.finalize()


def test_counter_deltas_sum_to_totals():
    stats = Stats()
    iv = IntervalCollector(10)
    iv.begin(stats)
    schedule = {
        c: [("mispredicts", 1.0)] if c % 7 == 0 else [("btb_accesses", 2.0)]
        for c in range(1, 95)
    }
    cols = drive(iv, stats, schedule)
    # The reconciliation property: summing any counter column gives the
    # exact end-of-run total, partial final interval included.
    assert cols["mispredicts"].sum() == stats.get("mispredicts")
    assert cols["btb_accesses"].sum() == stats.get("btb_accesses")


def test_interval_edges_are_contiguous():
    stats = Stats()
    iv = IntervalCollector(10)
    iv.begin(stats)
    cols = drive(iv, stats, {c: [] for c in range(1, 35)})
    starts, ends = cols["cycle_start"], cols["cycle_end"]
    assert starts[0] == 0.0
    assert list(starts[1:]) == list(ends[:-1])
    assert ends[-1] == 34.0


def test_derived_columns_present_and_consistent():
    stats = Stats()
    iv = IntervalCollector(8)
    iv.begin(stats)
    schedule = {c: [("instructions", 2.0)] for c in range(1, 25)}
    cols = drive(iv, stats, schedule)
    for name in DERIVED_COLUMNS:
        assert name in cols, name
    spans = cols["cycle_end"] - cols["cycle_start"]
    np.testing.assert_allclose(cols["ipc"], cols["instructions"] / spans)
    assert cols["instructions"].sum() == 48.0


def test_finish_is_idempotent_and_skips_empty_tail():
    stats = Stats()
    iv = IntervalCollector(10)
    iv.begin(stats)
    stats.add("x", 3.0)
    iv.on_cycle(10, 0, 0)  # snapshot lands exactly on the edge
    iv.finish(10, 0)  # nothing new since the edge: no extra row
    iv.finish(10, 0)  # second finish is a no-op
    cols = iv.finalize()
    assert len(cols["cycle_end"]) == 1
    assert cols["x"].sum() == 3.0


def test_pre_existing_counters_are_not_double_counted():
    # begin() snapshots whatever is already in the bag; only deltas
    # from that point on appear in rows.
    stats = Stats()
    stats.add("warm", 100.0)
    iv = IntervalCollector(5)
    iv.begin(stats)
    stats.add("warm", 1.0)
    iv.on_cycle(5, 0, 0)
    iv.finish(5, 0)
    cols = iv.finalize()
    assert cols["warm"].sum() == 1.0


def test_interval_validation():
    with pytest.raises(ValueError):
        IntervalCollector(0)
