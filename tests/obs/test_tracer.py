"""Unit tests for the bounded, sampling event tracer."""

import pytest

from repro.obs.events import (
    BTB_MISS,
    EVENT_COMPONENT,
    EVENT_NAMES,
    FTQ_ENQUEUE,
    MISFETCH,
    event_name,
)
from repro.obs.tracer import EventTracer


def test_records_in_emission_order():
    tr = EventTracer()
    tr.add(1, FTQ_ENQUEUE, 10, 2)
    tr.add(3, BTB_MISS, 0x400)
    assert tr.records() == [(1, FTQ_ENQUEUE, 10, 2, 0), (3, BTB_MISS, 0x400, 0, 0)]
    assert len(tr) == 2
    assert tr.total == 2
    assert tr.dropped == 0 and tr.sampled_out == 0


def test_ring_bounding_drops_oldest_and_counts():
    tr = EventTracer(capacity=4)
    for cycle in range(10):
        tr.add(cycle, FTQ_ENQUEUE)
    assert len(tr) == 4
    assert [r[0] for r in tr.records()] == [6, 7, 8, 9]
    assert tr.dropped == 6
    # Exact totals are unaffected by the ring.
    assert tr.counts[FTQ_ENQUEUE] == 10


def test_sampling_is_kind_stratified():
    tr = EventTracer(sample=4)
    for cycle in range(8):
        tr.add(cycle, FTQ_ENQUEUE)
    tr.add(100, MISFETCH)  # first of its kind: always buffered
    kinds = [r[1] for r in tr.records()]
    assert kinds == [FTQ_ENQUEUE, FTQ_ENQUEUE, MISFETCH]
    assert tr.sampled_out == 6
    # Counts stay exact per kind.
    assert tr.counts == {FTQ_ENQUEUE: 8, MISFETCH: 1}
    assert tr.total == 9


def test_constructor_validation():
    with pytest.raises(ValueError):
        EventTracer(capacity=0)
    with pytest.raises(ValueError):
        EventTracer(sample=0)


def test_event_kind_tables_are_complete():
    # Every kind has a name and a component track; names are unique.
    assert set(EVENT_COMPONENT) == set(EVENT_NAMES)
    assert len(set(EVENT_NAMES.values())) == len(EVENT_NAMES)
    for kind in EVENT_NAMES:
        assert event_name(kind) == EVENT_NAMES[kind]
    # Unknown kinds render as a stable fallback rather than raising.
    assert event_name(9999) == "event_9999"
