"""Unit tests for the probe protocol and the NullProbe fast path."""

from repro.obs.probe import NULL_PROBE, NullProbe


def test_null_probe_is_disabled_singleton():
    assert NULL_PROBE.enabled is False
    assert NULL_PROBE.now == 0
    assert isinstance(NULL_PROBE, NullProbe)


def test_null_probe_protocol_is_noop():
    # Every protocol method accepts its arguments and returns None.
    assert NULL_PROBE.begin("name", 100, 10, object()) is None
    assert NULL_PROBE.on_cycle(5, 3, 40) is None
    assert NULL_PROBE.emit(1, 2, 3, 4) is None
    assert NULL_PROBE.emit_at(7, 1, 2) is None
    assert NULL_PROBE.finish(9) is None
    assert NULL_PROBE.finish(9, 100) is None


def test_null_probe_has_no_instance_dict():
    # __slots__ = () keeps the hot-path attribute reads cheap and the
    # singleton immutable-ish (no accidental per-run state).
    assert not hasattr(NullProbe(), "__dict__")


def test_components_default_to_null_probe():
    from repro.btb.base import BTBGeometry, TwoLevelStore
    from repro.btb.ibtb import InstructionBTB
    from repro.frontend.engine import PredictionEngine
    from repro.frontend.ftq import FetchTargetQueue
    from repro.memory.prefetch import IPStridePrefetcher, NextLinePrefetcher

    geom = BTBGeometry(sets=4, ways=2)
    for obj in (
        InstructionBTB(geom, geom),
        TwoLevelStore(geom, geom, 2),
        PredictionEngine(),
        FetchTargetQueue(8),
        NextLinePrefetcher(),
        IPStridePrefetcher(),
    ):
        assert obj.probe is NULL_PROBE


def test_attach_probe_reaches_the_store():
    from repro.btb.base import BTBGeometry, attach_probe
    from repro.btb.ibtb import InstructionBTB
    from repro.obs import Observer

    btb = InstructionBTB(BTBGeometry(4, 2), BTBGeometry(8, 2))
    obs = Observer()
    attach_probe(btb, obs)
    assert btb.probe is obs
    assert btb.store.probe is obs
