"""Unit tests for the Chrome/CSV/JSON exporters."""

import csv
import json

import numpy as np

from repro.obs.events import BTB_MISS, MISFETCH, MISPREDICT, RESTEER
from repro.obs.export import (
    CHROME_COUNTERS,
    chrome_trace,
    observation_to_json,
    write_chrome_trace,
    write_intervals_csv,
    write_observation_json,
)
from repro.obs.observer import Observation


def make_observation():
    return Observation(
        name="toy",
        cycles=40,
        instructions=64,
        warmup=0,
        interval=20,
        events=[
            (2, BTB_MISS, 0x400, 0, 0),
            (3, MISFETCH, 0x404, 2, 0),
            (7, RESTEER, 11, 0, 0),
            (9, MISPREDICT, 0x420, 1, 0),
            (15, RESTEER, 12, 1, 0),
        ],
        event_counts={"btb_miss": 1, "misfetch": 1, "mispredict": 1, "resteer": 2},
        intervals={
            "cycle_start": np.array([0.0, 20.0]),
            "cycle_end": np.array([20.0, 40.0]),
            "instructions": np.array([30.0, 34.0]),
            "ipc": np.array([1.5, 1.7]),
            "ftq_occupancy": np.array([3.0, 4.0]),
            "misfetch_pki": np.array([33.3, 0.0]),
            "branch_mpki": np.array([0.0, 29.4]),
            "l1_btb_hit_rate": np.array([0.5, 0.9]),
        },
        meta={"config": "toy-cfg"},
    )


def test_chrome_trace_structure():
    doc = chrome_trace(make_observation())
    events = doc["traceEvents"]
    by_phase = {}
    for e in events:
        by_phase.setdefault(e["ph"], []).append(e)
    # Metadata names the process and one thread per track.
    assert any(e["name"] == "process_name" for e in by_phase["M"])
    thread_names = {
        e["args"]["name"] for e in by_phase["M"] if e["name"] == "thread_name"
    }
    assert {"pcgen", "ftq", "fetch", "btb", "memory", "stalls"} <= thread_names
    # Every buffered event appears as an instant event at its cycle.
    assert len(by_phase["i"]) == 5
    assert sorted(e["ts"] for e in by_phase["i"]) == [2, 3, 7, 9, 15]
    # misfetch->resteer and mispredict->resteer pair into duration slices.
    slices = by_phase["X"]
    assert [(s["ts"], s["dur"], s["name"]) for s in slices] == [
        (3, 4, "misfetch"),
        (9, 6, "mispredict"),
    ]
    # One counter sample per interval per exported metric.
    assert len(by_phase["C"]) == 2 * len(CHROME_COUNTERS)
    assert doc["otherData"]["workload"] == "toy"
    assert doc["otherData"]["config"] == "toy-cfg"


def test_chrome_trace_file_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(make_observation(), str(path))
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_intervals_csv_round_trips(tmp_path):
    obs = make_observation()
    path = tmp_path / "iv.csv"
    write_intervals_csv(obs, str(path))
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2
    assert float(rows[0]["ipc"]) == 1.5
    assert float(rows[1]["cycle_end"]) == 40.0
    assert set(rows[0]) == set(obs.intervals)


def test_observation_json_round_trips(tmp_path):
    obs = make_observation()
    path = tmp_path / "obs.json"
    write_observation_json(obs, str(path))
    payload = json.loads(path.read_text())
    assert payload["schema"] == 1
    assert payload["name"] == "toy"
    assert payload["event_counts"]["resteer"] == 2
    assert payload["events"][0] == [2, BTB_MISS, 0x400, 0, 0]
    assert payload["intervals"]["instructions"] == [30.0, 34.0]
    # And it matches the in-memory rendering exactly.
    assert payload == json.loads(json.dumps(observation_to_json(obs)))


def test_empty_observation_exports_cleanly(tmp_path):
    obs = Observation(
        name="empty", cycles=0, instructions=0, warmup=0, interval=0
    )
    doc = chrome_trace(obs)
    assert all(e["ph"] == "M" for e in doc["traceEvents"])
    write_intervals_csv(obs, str(tmp_path / "e.csv"))
    assert (tmp_path / "e.csv").read_text().strip() == ""
