"""Smoke-run every example script so they cannot rot.

Examples are executed in-process with small workloads/lengths; each must
run to completion and produce its expected headline output.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, argv):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart + >=3 domain examples


def test_quickstart(capsys):
    run_example("quickstart.py", ["db_oltp", "8000"])
    out = capsys.readouterr().out
    assert "IPC" in out and "fetch PCs / access" in out


def test_quickstart_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        run_example("quickstart.py", ["not_a_workload"])


def test_compare_organizations(capsys):
    run_example("compare_organizations.py", ["--length", "8000"])
    out = capsys.readouterr().out
    assert "MB-BTB 2BS AllBr" in out
    assert "gmean" in out


def test_custom_workload(capsys):
    run_example("custom_workload.py", [])
    out = capsys.readouterr().out
    assert "static program" in out
    assert "allbr" in out


def test_btb_microscope(capsys):
    run_example("btb_microscope.py", [])
    out = capsys.readouterr().out
    assert "redundancy ratio: 1.50" in out  # Fig.-2 duplication shown
    assert "redundancy ratio: 1.00" in out  # R-BTB clean
    assert "chains 2 blocks" in out         # MB-BTB pull


def test_hierarchy_explorer(capsys):
    run_example("hierarchy_explorer.py", ["--length", "12000"])
    out = capsys.readouterr().out
    assert "Het B1/R2" in out
    assert "uncond_first" in out


def test_sweep_to_csv(tmp_path, capsys):
    outdir = str(tmp_path / "sweep")
    run_example("sweep_to_csv.py", [outdir, "--length", "8000"])
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "sweep" / "sweep.csv").exists()
    assert (tmp_path / "sweep" / "sweep.json").exists()
