"""End-to-end distributed sweeps: real coordinator, real worker processes.

The acceptance bar throughout: every dist-mode result — including under
injected worker SIGKILLs, dropped outcome frames, and abrupt
disconnects — is **bit-identical** to the serial local run of the same
points.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import ibtb, rbtb
from repro.core.exec import RetryPolicy, SweepPoint, run_points
from repro.corpus import configure_corpus
from repro.trace.external import save_trace_csv
from repro.trace.workloads import get_trace

from .conftest import wait_workers

LENGTH = 4_000
WARMUP = 1_000


def _points():
    return [
        SweepPoint(config, workload, LENGTH, WARMUP, 7)
        for config in (ibtb(16), rbtb(2))
        for workload in ("web_frontend", "kv_store", "db_oltp")
    ]


def _serial(points):
    return run_points(points)


def test_dist_results_bit_identical_to_serial(coordinator, spawn_worker):
    spawn_worker(coordinator, jobs=2)
    wait_workers(coordinator, 2)
    points = _points()

    got = run_points(points, dispatch=f"dist://127.0.0.1:{coordinator.port}")

    assert got == _serial(points)
    counters = coordinator.counters()
    assert counters["workers_total"] == 2
    assert counters["outcomes_ok"] == len(points)
    assert counters["points_leased"] >= len(points)
    assert counters["workers_lost"] == 0


def test_dist_report_mode_and_reuse(coordinator, spawn_worker):
    """strict=False returns a SweepReport; a second sweep reuses the
    same fleet and stays correct."""
    spawn_worker(coordinator, jobs=1)
    wait_workers(coordinator, 1)
    url = f"dist://127.0.0.1:{coordinator.port}"
    points = _points()[:3]

    report = run_points(points, strict=False, dispatch=url)
    assert not report.failures
    assert report.results == _serial(points)

    more = _points()[3:]
    assert run_points(more, dispatch=url) == _serial(more)


def test_worker_sigkill_is_blamed_and_retried(
    coordinator, spawn_worker, tmp_path
):
    """An injected SIGKILL takes down a session process mid-point; the
    supervisor respawns it, the coordinator blames exactly the in-flight
    point, and the retry converges to bit-identical results."""
    spawn_worker(
        coordinator,
        jobs=2,
        env={
            "REPRO_FAULT_SPEC": "kill:web_frontend:1",
            "REPRO_FAULT_DIR": str(tmp_path / "faults"),
        },
    )
    wait_workers(coordinator, 2)
    points = _points()

    report = run_points(
        points,
        strict=False,
        policy=RetryPolicy(max_retries=3, backoff=0.1),
        dispatch=f"dist://127.0.0.1:{coordinator.port}",
    )

    assert not report.failures
    assert report.results == _serial(points)
    assert report.counters.get("worker_crashes", 0) >= 1
    assert report.counters.get("retries", 0) >= 1
    assert coordinator.counters()["workers_lost"] >= 1


def test_drop_and_disconnect_faults_converge(
    coordinator, spawn_worker, tmp_path
):
    """Network chaos: one point's outcome frame is silently dropped
    (requeued blame-free at lease end) and another point's connection is
    cut before execution (blamed like a crash, worker reconnects). The
    sweep still converges bit-identically."""
    spawn_worker(
        coordinator,
        jobs=1,
        env={
            "REPRO_FAULT_SPEC": "drop:kv_store:1;disconnect:db_oltp:1",
            "REPRO_FAULT_DIR": str(tmp_path / "faults"),
        },
    )
    wait_workers(coordinator, 1)
    points = _points()

    report = run_points(
        points,
        strict=False,
        policy=RetryPolicy(max_retries=3, backoff=0.1),
        dispatch=f"dist://127.0.0.1:{coordinator.port}",
    )

    assert not report.failures
    assert report.results == _serial(points)
    counters = coordinator.counters()
    assert counters["outcomes_dropped"] >= 1
    assert counters["reconnects"] >= 1


def test_cold_worker_fetches_corpus_and_matches(
    coordinator, spawn_worker, tmp_path, monkeypatch
):
    """A worker with an empty corpus store fetches the trace shards it
    needs by content hash and produces results bit-identical to the
    local run against the populated store."""
    root = tmp_path / "coord-corpus"
    monkeypatch.setenv("REPRO_CORPUS_DIR", str(root))
    store = configure_corpus(root)
    trace = get_trace("web_frontend", 9000)
    csv = tmp_path / "web_frontend.csv"
    save_trace_csv(trace, str(csv))
    store.ingest(str(csv), shard_insts=2000)

    worker_corpus = tmp_path / "worker-corpus"
    spawn_worker(
        coordinator,
        jobs=1,
        extra_args=("--corpus-dir", str(worker_corpus)),
    )
    wait_workers(coordinator, 1)
    points = [
        SweepPoint(config, "corpus:web_frontend", LENGTH, WARMUP, 7)
        for config in (ibtb(16), rbtb(2))
    ]

    got = run_points(points, dispatch=f"dist://127.0.0.1:{coordinator.port}")

    assert got == _serial(points)
    counters = coordinator.counters()
    assert counters["fetch_manifests"] >= 1
    assert counters["fetch_shards"] >= 1
    assert counters["shard_bytes_tx"] > 0
    assert counters["shard_bytes_rx"] > 0
    # The worker's store now holds the verified entry on disk.
    from repro.corpus import CorpusStore

    fetched = CorpusStore(worker_corpus)
    assert fetched.get("web_frontend").content_hash == store.get(
        "web_frontend"
    ).content_hash
    assert fetched.verify(["web_frontend"]) == []


def test_obs_points_are_rejected_by_dispatch(coordinator):
    point = SweepPoint(
        ibtb(16), "web_frontend", LENGTH, WARMUP, 7, obs={"capture": True}
    )
    with pytest.raises(ValueError, match="observability"):
        run_points(
            [point], dispatch=f"dist://127.0.0.1:{coordinator.port}"
        )
