"""Worker-side unit tests: job-count resolution and shard fetching.

The shard-fetch tests exercise :meth:`WorkerSession._ensure_corpus`
against a faked coordinator RPC, so the verify-on-receive contract is
testable without sockets: blobs come from a *source* store while the
active (worker-local) store starts empty.
"""

from __future__ import annotations

import hashlib
import os

import pytest

from repro.core.exec.engine import resolve_jobs
from repro.corpus import CorpusStore, configure_corpus
from repro.corpus.store import CorpusError
from repro.dist.worker import WorkerSession
from repro.trace.external import save_trace_csv
from repro.trace.workloads import get_trace

# -- resolve_jobs precedence (the REPRO_JOBS satellite fix) -------------------


def test_resolve_jobs_default_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_default_auto_uses_own_cpu_count(monkeypatch):
    """A dist worker with no --jobs and no env sizes itself to its own
    host's CPU count — never the coordinator's."""
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    probe = getattr(os, "process_cpu_count", None) or os.cpu_count
    assert resolve_jobs(None, default_auto=True) == max(1, probe() or 1)


def test_resolve_jobs_env_beats_default_auto(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None, default_auto=True) == 3
    assert resolve_jobs(None) == 3


def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(2, default_auto=True) == 2
    assert resolve_jobs(2) == 2


def test_resolve_jobs_explicit_zero_autodetects(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    probe = getattr(os, "process_cpu_count", None) or os.cpu_count
    assert resolve_jobs(0) == max(1, probe() or 1)


def test_resolve_jobs_garbage_env_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    assert resolve_jobs(None) == 1


# -- shard fetch: verify-on-receive -------------------------------------------


@pytest.fixture
def source_store(tmp_path):
    """A populated store standing in for the coordinator's corpus."""
    store = CorpusStore(tmp_path / "source")
    trace = get_trace("web_frontend", 9000)
    path = tmp_path / "web_frontend.csv"
    save_trace_csv(trace, str(path))
    store.ingest(str(path), shard_insts=2000)
    return store


@pytest.fixture
def worker_store(tmp_path, monkeypatch):
    """The empty worker-local store that ``corpus:`` names resolve to."""
    root = tmp_path / "worker"
    monkeypatch.setenv("REPRO_CORPUS_DIR", str(root))
    return configure_corpus(root)


class FakeCoordinator:
    """Serves manifest/shard RPCs from a source store, with optional
    per-shard corruption on the first response."""

    def __init__(self, store: CorpusStore, corrupt_first=False, missing=()):
        self.store = store
        self.corrupt_first = corrupt_first
        self.missing = set(missing)
        self.shard_requests = 0
        self._served_once = set()
        self._index = {}
        for name in store.names():
            manifest = store.get(name)
            shard_dir = store.shard_dir_path(manifest)
            for shard in manifest.shards:
                self._index[shard.sha256] = shard_dir / shard.file

    def rpc(self, msg, want):
        t = msg["t"]
        if t == "fetch_manifest":
            try:
                manifest = self.store.get(msg["entry"])
            except CorpusError as exc:
                return {"t": "manifest", "found": False, "error": str(exc)}, b""
            return (
                {"t": "manifest", "found": True, "manifest": manifest.to_json()},
                b"",
            )
        if t == "fetch_shard":
            self.shard_requests += 1
            sha = msg["sha256"]
            if sha in self.missing or sha not in self._index:
                return {"t": "blob", "sha256": sha, "found": False}, b""
            blob = self._index[sha].read_bytes()
            if self.corrupt_first and sha not in self._served_once:
                self._served_once.add(sha)
                blob = blob[: len(blob) // 2] + b"\x00garbage"
            return {"t": "blob", "sha256": sha, "found": True}, blob
        raise AssertionError(f"unexpected rpc {t!r}")


def _session(fake):
    session = WorkerSession("127.0.0.1:1", "test-worker")
    session._rpc = fake.rpc
    return session


def test_cold_fetch_round_trip_by_content_hash(source_store, worker_store):
    fake = FakeCoordinator(source_store)
    session = _session(fake)
    content_hash = source_store.get("web_frontend").content_hash

    session._ensure_corpus("web_frontend", content_hash)

    got = worker_store.get("web_frontend")
    assert got.content_hash == content_hash
    assert worker_store.verify(["web_frontend"]) == []
    assert session.counters["shard_fetches"] == len(got.shards)
    assert session.counters["shard_bytes_rx"] > 0
    assert session.counters["shard_refetches"] == 0


def test_corrupted_shard_triggers_refetch_not_a_crash(
    source_store, worker_store
):
    fake = FakeCoordinator(source_store, corrupt_first=True)
    session = _session(fake)
    content_hash = source_store.get("web_frontend").content_hash

    session._ensure_corpus("web_frontend", content_hash)

    # Every shard was served corrupt once, verified, discarded, and
    # re-fetched — nothing corrupt ever reached the local store.
    assert worker_store.verify(["web_frontend"]) == []
    n = len(worker_store.get("web_frontend").shards)
    assert session.counters["shard_refetches"] == n
    assert session.counters["shard_fetches"] == 2 * n  # corrupt + good


def test_unfetchable_shard_leaves_no_manifest(source_store, worker_store):
    """A shard the coordinator cannot serve aborts the fetch *before*
    the manifest is written: no manifest may ever point at absent
    shards (the point then fails with the store's own clear error)."""
    manifest = source_store.get("web_frontend")
    fake = FakeCoordinator(
        source_store, missing={manifest.shards[-1].sha256}
    )
    session = _session(fake)

    session._ensure_corpus("web_frontend", manifest.content_hash)

    with pytest.raises(CorpusError):
        worker_store.get("web_frontend")


def test_warm_worker_counts_cache_hits_without_rpc(source_store, worker_store):
    fake = FakeCoordinator(source_store)
    session = _session(fake)
    content_hash = source_store.get("web_frontend").content_hash
    session._ensure_corpus("web_frontend", content_hash)
    served = fake.shard_requests

    # Same session: in-memory memo.
    session._ensure_corpus("web_frontend", content_hash)
    assert session.counters["fetch_cache_hits"] == 1
    assert fake.shard_requests == served

    # Fresh session (e.g. a respawned process): on-disk shards verify.
    session2 = _session(fake)
    session2._ensure_corpus("web_frontend", content_hash)
    assert session2.counters["fetch_cache_hits"] == 1
    assert session2.counters["shard_fetches"] == 0
    assert fake.shard_requests == served


def test_locally_corrupted_shard_is_replaced(source_store, worker_store):
    """Bit-rot in the worker's local store is detected by the per-shard
    SHA-256 check and healed by a targeted re-fetch."""
    fake = FakeCoordinator(source_store)
    session = _session(fake)
    content_hash = source_store.get("web_frontend").content_hash
    session._ensure_corpus("web_frontend", content_hash)

    manifest = worker_store.get("web_frontend")
    victim = worker_store.shard_dir_path(manifest) / manifest.shards[0].file
    victim.write_bytes(b"rotten")

    session2 = _session(fake)
    session2._ensure_corpus("web_frontend", content_hash)
    assert worker_store.verify(["web_frontend"]) == []
    assert session2.counters["shard_fetches"] == 1  # only the victim
    assert (
        hashlib.sha256(victim.read_bytes()).hexdigest()
        == manifest.shards[0].sha256
    )
