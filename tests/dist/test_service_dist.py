"""``repro-sim serve --dist-listen``: the daemon drains onto the fleet.

Reuses the service e2e harness (real daemon over real sockets) plus a
real worker subprocess; the invariants are the service ones — the job's
result document is byte-identical to the one-shot CLI sweep — with the
execution happening on the remote fleet, observable via the ``dist``
metrics group.
"""

from __future__ import annotations

import json

from repro.core.exec import configure_disk_cache
from repro.service import ServiceConfig
from repro.service.metrics import ServiceMetrics

from tests.service.test_service_e2e import (
    SPEC,
    Daemon,
    _dump,
    _expected_sweep_payload,
)

from .conftest import wait_workers


def test_metrics_snapshot_dist_group_is_optional():
    metrics = ServiceMetrics()
    assert "dist" not in metrics.snapshot(None)
    doc = metrics.snapshot(None, dist_counters={"workers_live": 2})
    assert doc["dist"] == {"workers_live": 2}


def test_serve_dist_listen_executes_on_fleet(tmp_path, spawn_worker):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(
        ServiceConfig(
            jobs=1, drain_timeout=60, dist_listen="127.0.0.1:0"
        )
    )
    try:
        coordinator = daemon.service.coordinator
        assert coordinator is not None
        spawn_worker(coordinator, jobs=2)
        wait_workers(coordinator, 2)

        status, sub, _ = daemon.request("POST", "/v1/sweep", SPEC)
        assert status == 202
        doc = daemon.wait_job(sub["job"])
        assert doc["status"] == "done"
        assert doc["failed"] == 0

        metrics = daemon.wait_batches(1)
        dist = metrics["dist"]
        assert dist["workers_total"] == 2
        assert dist["outcomes_ok"] > 0
        assert dist["points_leased"] >= dist["outcomes_ok"]
        json.dumps(metrics)  # the whole document stays JSON-clean
    finally:
        assert daemon.drain() == 0

    assert _dump(doc["result"]) == _dump(_expected_sweep_payload())
