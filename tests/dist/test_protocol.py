"""Unit tests for the dist wire protocol: framing and codecs."""

import dataclasses
import socket

import pytest

from repro.core.config import hetero_btb, ibtb, rbtb
from repro.core.exec import SweepPoint, execute_point
from repro.dist.protocol import (
    DEFAULT_PORT,
    DIST_SCHEMA,
    ConnectionClosed,
    ProtocolError,
    config_from_wire,
    config_to_wire,
    parse_dist_url,
    point_from_wire,
    point_to_wire,
    recv_frame,
    result_from_wire,
    result_to_wire,
    send_frame,
)

# -- address parsing ----------------------------------------------------------


@pytest.mark.parametrize(
    "url, expected",
    [
        ("dist://example:9000", ("example", 9000)),
        ("tcp://example:9000", ("example", 9000)),
        ("example:9000", ("example", 9000)),
        ("example", ("example", DEFAULT_PORT)),
        (":9000", ("127.0.0.1", 9000)),
        (" dist://h:1 ", ("h", 1)),
    ],
)
def test_parse_dist_url(url, expected):
    assert parse_dist_url(url) == expected


@pytest.mark.parametrize("url", ["", "dist://", "h:nope", "h:70000", "h:-1"])
def test_parse_dist_url_rejects(url):
    with pytest.raises(ValueError):
        parse_dist_url(url)


# -- framing ------------------------------------------------------------------


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5)
    b.settimeout(5)
    return a, b


def test_frame_round_trip_with_blob():
    a, b = _pair()
    try:
        blob = bytes(range(256)) * 100
        send_frame(a, {"t": "blob", "n": 1}, blob)
        msg, got = recv_frame(b)
        assert msg == {"t": "blob", "n": 1}
        assert got == blob
    finally:
        a.close()
        b.close()


def test_frame_without_blob():
    a, b = _pair()
    try:
        send_frame(a, {"t": "hb"})
        msg, blob = recv_frame(b)
        assert msg == {"t": "hb"}
        assert blob == b""
    finally:
        a.close()
        b.close()


def test_truncated_frame_raises_connection_closed():
    a, b = _pair()
    try:
        # Header promises more bytes than ever arrive.
        a.sendall(b"\x00\x00\x00\x10\x00\x00\x00\x00{}")
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(b)
    finally:
        b.close()


def test_clean_eof_raises_connection_closed():
    a, b = _pair()
    try:
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(b)
    finally:
        b.close()


def test_oversized_header_raises_protocol_error():
    a, b = _pair()
    try:
        a.sendall(b"\xff\xff\xff\xff\x00\x00\x00\x00")
        with pytest.raises(ProtocolError, match="oversized"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_non_json_payload_raises_protocol_error():
    a, b = _pair()
    try:
        a.sendall(b"\x00\x00\x00\x04\x00\x00\x00\x00junk")
        with pytest.raises(ProtocolError, match="bad frame payload"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_non_object_payload_raises_protocol_error():
    a, b = _pair()
    try:
        a.sendall(b"\x00\x00\x00\x02\x00\x00\x00\x00[]")
        with pytest.raises(ProtocolError, match="not a JSON object"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


# -- codecs -------------------------------------------------------------------


@pytest.mark.parametrize(
    "config", [ibtb(16), rbtb(3, interleaved=True), hetero_btb()]
)
def test_config_wire_round_trip(config):
    import json

    doc = json.loads(json.dumps(config_to_wire(config)))
    assert config_from_wire(doc) == config


def test_point_wire_round_trip():
    point = SweepPoint(rbtb(2), "web_frontend", 4000, 1000, 11)
    assert point_from_wire(point_to_wire(point)) == point


def test_point_with_obs_is_rejected():
    point = SweepPoint(
        ibtb(16), "web_frontend", 4000, 1000, 7, obs={"capture": True}
    )
    with pytest.raises(ProtocolError, match="observability"):
        point_to_wire(point)


def test_result_wire_round_trip_is_bit_identical():
    """The acceptance invariant at codec level: a SimResult that crosses
    the wire (including a JSON round trip) equals the original exactly —
    same types, same float bits."""
    import json

    result = execute_point(SweepPoint(ibtb(16), "web_frontend", 3000, 500, 7))
    doc = json.loads(json.dumps(result_to_wire(result), sort_keys=True))
    back = result_from_wire(doc)
    assert back == result
    assert type(back.instructions) is int and type(back.cycles) is int
    assert all(type(v) is float for v in back.stats.values())


def test_dist_schema_is_versioned():
    assert isinstance(DIST_SCHEMA, int) and DIST_SCHEMA >= 1
