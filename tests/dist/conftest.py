"""Shared fixtures for the distributed-sweep tests."""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.exec import configure_disk_cache
from repro.core.runner import clear_cache
from repro.dist import get_coordinator, shutdown_coordinators

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_cache()
    configure_disk_cache(False)
    yield
    clear_cache()
    configure_disk_cache(False)
    shutdown_coordinators()


@pytest.fixture
def coordinator():
    """A live coordinator on an ephemeral port (torn down by the autouse
    fixture's ``shutdown_coordinators``)."""
    return get_coordinator("dist://127.0.0.1:0")


class WorkerProc:
    """A ``repro-sim worker`` subprocess and its teardown."""

    def __init__(self, url, tmp_path, jobs=1, env=None, extra_args=()):
        environ = dict(os.environ)
        environ["PYTHONPATH"] = str(REPO_ROOT / "src")
        environ.update(env or {})
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                url,
                "--jobs",
                str(jobs),
                "--cache-dir",
                str(tmp_path / "worker-cache"),
                *extra_args,
            ],
            env=environ,
            cwd=str(REPO_ROOT),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def stop(self, timeout=15):
        self.proc.terminate()
        try:
            out, _ = self.proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            out, _ = self.proc.communicate()
            raise AssertionError(f"worker did not exit on SIGTERM:\n{out}")
        return out


@pytest.fixture
def spawn_worker(tmp_path):
    """Factory: spawn worker subprocesses against a coordinator URL."""
    workers = []

    def factory(coord, jobs=1, env=None, extra_args=(), sub="w"):
        url = f"127.0.0.1:{coord.port}"
        wp = WorkerProc(
            url, tmp_path / f"{sub}{len(workers)}", jobs=jobs, env=env,
            extra_args=extra_args,
        )
        workers.append(wp)
        return wp

    yield factory
    for wp in workers:
        if wp.proc.poll() is None:
            try:
                wp.stop()
            except AssertionError:
                pass


def wait_workers(coord, count, timeout=30.0):
    assert coord.wait_for_workers(count, timeout), (
        f"only {coord.workers_live()} of {count} workers registered "
        f"within {timeout}s"
    )


def wait_gone(proc, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return
        time.sleep(0.05)
    raise AssertionError("process still alive")
