"""Unit tests for the per-branch resolution engine."""

import pytest

from repro.btb.base import L1_HIT, L2_HIT, MISS, BranchSlot
from repro.common.types import BranchType
from repro.frontend.engine import (
    MISFETCH,
    MISPREDICT,
    REDIRECT,
    SEQ,
    PredictionEngine,
)


@pytest.fixture
def eng():
    return PredictionEngine()


def train_cond(eng, pc, taken, times=12):
    for _ in range(times):
        eng.resolve(pc, BranchType.COND_DIRECT, taken, 0x400 if taken else 0, True)


def test_known_not_taken_conditional_is_seq(eng):
    train_cond(eng, 0x100, False)
    assert eng.resolve(0x100, BranchType.COND_DIRECT, False, 0, True) == SEQ


def test_known_taken_conditional_redirects_after_training(eng):
    train_cond(eng, 0x100, True)
    assert eng.resolve(0x100, BranchType.COND_DIRECT, True, 0x400, True) == REDIRECT


def test_direction_flip_is_mispredict(eng):
    train_cond(eng, 0x100, True)
    assert eng.resolve(0x100, BranchType.COND_DIRECT, False, 0, True) == MISPREDICT
    assert eng.stats.get("mispredicts_cond") == 1


def test_untracked_taken_conditional_is_mispredict(eng):
    out = eng.resolve(0x200, BranchType.COND_DIRECT, True, 0x500, False)
    assert out == MISPREDICT
    assert eng.stats.get("mispredicts_cond_untracked") == 1


def test_untracked_not_taken_conditional_is_silent(eng):
    out = eng.resolve(0x200, BranchType.COND_DIRECT, False, 0, False)
    assert out == SEQ
    assert eng.stats.get("mispredicts") == 0


def test_known_uncond_redirects(eng):
    assert eng.resolve(0x300, BranchType.UNCOND_DIRECT, True, 0x900, True) == REDIRECT


def test_unknown_uncond_is_misfetch(eng):
    assert eng.resolve(0x300, BranchType.UNCOND_DIRECT, True, 0x900, False) == MISFETCH
    assert eng.stats.get("misfetches") == 1


def test_direct_call_pushes_ras(eng):
    eng.resolve(0x100, BranchType.CALL_DIRECT, True, 0x800, True)
    assert eng.ras.top() == 0x104


def test_return_with_correct_ras_and_btb_hit(eng):
    eng.ras.push(0x104)
    out = eng.resolve(0x800, BranchType.RETURN, True, 0x104, True)
    assert out == REDIRECT


def test_return_btb_miss_but_ras_correct_is_misfetch(eng):
    eng.ras.push(0x104)
    out = eng.resolve(0x800, BranchType.RETURN, True, 0x104, False)
    assert out == MISFETCH


def test_return_with_wrong_ras_is_mispredict(eng):
    eng.ras.push(0xDEAD)
    out = eng.resolve(0x800, BranchType.RETURN, True, 0x104, True)
    assert out == MISPREDICT
    assert eng.stats.get("mispredicts_return") == 1


def test_return_with_empty_ras_is_mispredict(eng):
    out = eng.resolve(0x800, BranchType.RETURN, True, 0x104, True)
    assert out == MISPREDICT


def test_indirect_known_learns_target(eng):
    slot = BranchSlot(pc=0x100, btype=BranchType.INDIRECT, target=0x700)
    first = eng.resolve(0x100, BranchType.INDIRECT, True, 0x700, True, slot)
    assert first == REDIRECT  # falls back to the BTB-stored target
    again = eng.resolve(0x100, BranchType.INDIRECT, True, 0x700, True, slot)
    assert again == REDIRECT


def test_indirect_target_change_mispredicts(eng):
    slot = BranchSlot(pc=0x100, btype=BranchType.INDIRECT, target=0x700)
    eng.resolve(0x100, BranchType.INDIRECT, True, 0x700, True, slot)
    out = eng.resolve(0x100, BranchType.INDIRECT, True, 0x900, True, slot)
    assert out == MISPREDICT
    assert eng.stats.get("mispredicts_indirect") == 1


def test_unknown_indirect_is_mispredict_not_misfetch(eng):
    out = eng.resolve(0x100, BranchType.INDIRECT, True, 0x700, False)
    assert out == MISPREDICT
    assert eng.stats.get("misfetches") == 0


def test_indirect_call_pushes_ras(eng):
    eng.resolve(0x100, BranchType.CALL_INDIRECT, True, 0x800, False)
    assert eng.ras.top() == 0x104


def test_note_btb_levels(eng):
    eng.note_btb(L1_HIT, True)
    eng.note_btb(L2_HIT, True)
    eng.note_btb(MISS, True)
    eng.note_btb(L1_HIT, False)  # not-taken: ignored
    st = eng.stats
    assert st.get("btb_taken_lookups") == 3
    assert st.get("btb_taken_l1_hits") == 1
    assert st.get("btb_taken_l2_hits") == 1


def test_history_advances_on_all_branches(eng):
    bits0 = eng.history.bits
    eng.resolve(0x100, BranchType.COND_DIRECT, True, 0x200, True)
    eng.resolve(0x200, BranchType.UNCOND_DIRECT, True, 0x300, True)
    assert eng.history.bits != bits0
    assert eng.history.value(1) == 1  # last push was 'taken'
