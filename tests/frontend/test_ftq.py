"""Unit tests for the Fetch Target Queue."""

import pytest

from repro.frontend.ftq import FetchTargetQueue


def test_capacity_validation():
    with pytest.raises(ValueError):
        FetchTargetQueue(0)


def test_push_pop_fifo():
    q = FetchTargetQueue(8)
    q.push(1, 0, 4, cycle=0)
    q.push(2, 4, 4, cycle=0)
    assert q.pop().line == 1
    assert q.pop().line == 2


def test_has_space_at_capacity():
    q = FetchTargetQueue(2)
    q.push(1, 0, 1, 0)
    assert q.has_space()
    q.push(2, 1, 1, 0)
    assert not q.has_space()


def test_bypass_entry_consumable_same_cycle():
    q = FetchTargetQueue(8)
    q.push(1, 0, 4, cycle=5)  # queue was empty -> bypass
    assert q.head().consumable(5)


def test_non_bypass_entry_waits_one_cycle():
    q = FetchTargetQueue(8)
    q.push(1, 0, 4, cycle=5)
    q.push(2, 4, 4, cycle=5)  # queue non-empty: no bypass
    q.pop()
    assert not q.head().consumable(5)
    assert q.head().consumable(6)


def test_partial_consume_keeps_remainder():
    q = FetchTargetQueue(8)
    q.push(1, 100, 10, 0)
    q.consume(4)
    head = q.head()
    assert head.count == 6
    assert head.first_index == 104
    q.consume(6)
    assert q.empty


def test_consume_more_than_head_raises():
    q = FetchTargetQueue(8)
    q.push(1, 0, 2, 0)
    with pytest.raises(ValueError):
        q.consume(3)


def test_flush_empties_queue():
    q = FetchTargetQueue(8)
    q.push(1, 0, 1, 0)
    q.push(2, 1, 1, 0)
    q.flush()
    assert q.empty and len(q) == 0
