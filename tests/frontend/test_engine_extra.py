"""Additional prediction-engine coverage: sizing knobs, shared stats,
stat taxonomy exhaustiveness."""

import pytest

from repro.common.stats import Stats
from repro.common.types import BranchType
from repro.frontend.engine import PredictionEngine


def test_custom_sizes_propagate():
    eng = PredictionEngine(bp_size_kb=8, indirect_entries=512, ras_depth=4)
    assert eng.perceptron.size_kb == 8
    assert eng.indirect.entries == 512
    assert eng.ras.depth == 4


def test_shared_stats_object():
    st = Stats()
    eng = PredictionEngine(stats=st)
    eng.resolve(0x100, BranchType.UNCOND_DIRECT, True, 0x200, False)
    assert st.get("misfetches") == 1
    assert eng.stats is st


def test_every_resolution_counts_a_branch():
    eng = PredictionEngine()
    cases = [
        (BranchType.COND_DIRECT, False, 0, False),
        (BranchType.COND_DIRECT, True, 0x200, True),
        (BranchType.UNCOND_DIRECT, True, 0x200, True),
        (BranchType.CALL_DIRECT, True, 0x200, False),
        (BranchType.RETURN, True, 0x104, True),
        (BranchType.INDIRECT, True, 0x300, False),
        (BranchType.CALL_INDIRECT, True, 0x300, True),
    ]
    for i, (bt, taken, target, known) in enumerate(cases):
        eng.resolve(0x1000 + 16 * i, bt, taken, target, known)
    assert eng.stats.get("dyn_branches") == len(cases)
    taken_count = sum(1 for _bt, taken, _t, _k in cases if taken)
    assert eng.stats.get("dyn_taken_branches") == taken_count


def test_mispredict_subcategories_sum():
    """Every 'mispredicts' increment lands in exactly one subcategory."""
    eng = PredictionEngine()
    # Generate a spread of misprediction kinds.
    eng.resolve(0x100, BranchType.COND_DIRECT, True, 0x200, False)  # untracked
    eng.resolve(0x200, BranchType.INDIRECT, True, 0x300, False)     # ind untracked
    eng.resolve(0x300, BranchType.RETURN, True, 0x400, True)        # empty RAS
    st = eng.stats
    subtotal = (
        st.get("mispredicts_cond")
        + st.get("mispredicts_cond_untracked")
        + st.get("mispredicts_indirect")
        + st.get("mispredicts_ind_untracked")
        + st.get("mispredicts_return")
    )
    assert subtotal == st.get("mispredicts") == 3


def test_ras_depth_bounds_call_chain():
    eng = PredictionEngine(ras_depth=2)
    for k in range(4):
        eng.resolve(0x100 + 8 * k, BranchType.CALL_DIRECT, True, 0x900, True)
    assert len(eng.ras) == 2


def test_indirect_predictor_beats_stale_btb_target():
    """Once the indirect predictor has learned the branch in a stable
    history context, its prediction wins over a stale BTB slot target."""
    from repro.btb.base import BranchSlot

    eng = PredictionEngine()
    slot = BranchSlot(pc=0x100, btype=BranchType.INDIRECT, target=0xDEAD)
    outcomes = []
    # Repeated executions: the all-taken history context saturates, so
    # the predictor's (history-hashed) entry stabilizes and trains.
    for _ in range(40):
        outcomes.append(
            eng.resolve(0x100, BranchType.INDIRECT, True, 0x700, True, slot)
        )
    assert outcomes[-1] == "redirect"
    assert "mispredict" in outcomes[:5]  # cold start went through the slot
