"""Unit tests for the repro-sim CLI."""

import pytest

from repro.cli import ConfigSpecError, main, parse_config
from repro.core.config import MachineConfig


# -- config spec parsing ---------------------------------------------------------

def test_parse_ibtb():
    cfg = parse_config("ibtb:16")
    assert cfg.btb_kind == "ibtb" and cfg.width == 16


def test_parse_ibtb_skp():
    cfg = parse_config("ibtb:16:skp")
    assert cfg.skip_taken


def test_parse_rbtb_options():
    cfg = parse_config("rbtb:3:2l1")
    assert cfg.btb_kind == "rbtb" and cfg.slots == 3 and cfg.interleaved
    cfg = parse_config("rbtb:4:128b")
    assert cfg.region_bytes == 128


def test_parse_bbtb_split_and_block():
    cfg = parse_config("bbtb:1:split:32")
    assert cfg.splitting and cfg.block_insts == 32 and cfg.slots == 1


def test_parse_mbbtb():
    cfg = parse_config("mbbtb:3:calldir:64")
    assert cfg.btb_kind == "mbbtb"
    assert cfg.slots == 3 and cfg.pull_policy == "calldir" and cfg.block_insts == 64


def test_parse_hetero():
    cfg = parse_config("hetero:1:4")
    assert cfg.btb_kind == "hetero" and cfg.slots == 1 and cfg.l2_slots == 4


def test_parse_ideal_suffix():
    cfg = parse_config("ibtb:16@ideal")
    assert cfg.ideal_btb


def test_parse_case_insensitive():
    assert parse_config("MBBTB:2:ALLBR").pull_policy == "allbr"


def test_parse_errors():
    with pytest.raises(ConfigSpecError):
        parse_config("")
    with pytest.raises(ConfigSpecError):
        parse_config("xyz:1")
    with pytest.raises(ConfigSpecError):
        parse_config("rbtb:2:bogus")
    with pytest.raises(ConfigSpecError):
        parse_config("mbbtb:2:nopolicy")


# -- commands ----------------------------------------------------------------------

def test_cmd_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "web_frontend" in out
    assert "mbbtb" in out


def test_cmd_characterize(capsys):
    assert main(["characterize", "db_oltp", "--length", "4000"]) == 0
    out = capsys.readouterr().out
    assert "db_oltp" in out and "dynBB" in out


def test_cmd_run(capsys):
    assert main(["run", "bbtb:1:split", "db_oltp", "--length", "6000"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out and "B-BTB 1BS Splt" in out


def test_cmd_compare(capsys):
    code = main(
        ["compare", "ibtb:16", "rbtb:2", "--workloads", "db_oltp",
         "--length", "6000"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "R-BTB 2BS" in out and "gmean" in out


def test_cmd_run_bad_spec_exits_2(capsys):
    assert main(["run", "bogus:1", "db_oltp"]) == 2
    assert "error" in capsys.readouterr().err


def test_cmd_run_unknown_workload_exits_2(capsys):
    assert main(["run", "ibtb:16", "nosuchload", "--length", "4000"]) == 2


def test_cmd_run_external_trace(tmp_path, capsys):
    from repro.trace.external import save_trace_csv
    from repro.trace.workloads import get_trace

    path = str(tmp_path / "ext.csv")
    save_trace_csv(get_trace("kv_store", 4000), path)
    assert main(["run", "ibtb:16", path]) == 0
    assert "IPC" in capsys.readouterr().out


def test_cmd_trace_exports_all_formats(tmp_path, capsys):
    import csv
    import json

    chrome = tmp_path / "trace.json"
    iv_csv = tmp_path / "intervals.csv"
    dump = tmp_path / "obs.json"
    code = main(
        [
            "trace", "db_oltp", "mbbtb:2:allbr", "--length", "6000",
            "--intervals", "500",
            "--chrome", str(chrome), "--csv", str(iv_csv), "--json", str(dump),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "timeline: db_oltp" in out
    assert "mispredict" in out
    # Chrome document parses and is non-empty.
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]
    assert doc["otherData"]["event_counts"]
    # Interval CSV has rows; instruction deltas cover the whole run.
    with open(iv_csv, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert sum(float(r["instructions"]) for r in rows) == 6000
    # Full dump round-trips.
    payload = json.loads(dump.read_text())
    assert payload["schema"] == 1 and payload["instructions"] == 6000


def test_cmd_trace_default_config_and_no_events(capsys):
    assert main(["trace", "kv_store", "--length", "4000", "--no-events"]) == 0
    out = capsys.readouterr().out
    assert "timeline: kv_store" in out


def test_cmd_trace_external_csv(tmp_path, capsys):
    from repro.trace.external import save_trace_csv
    from repro.trace.workloads import get_trace

    path = str(tmp_path / "ext.csv")
    save_trace_csv(get_trace("kv_store", 4000), path)
    assert main(["trace", path, "ibtb:16"]) == 0
    assert "timeline" in capsys.readouterr().out


def test_cmd_export(tmp_path, capsys):
    outdir = str(tmp_path / "traces")
    assert main(["export", outdir, "kv_store", "--length", "3000"]) == 0
    out = capsys.readouterr().out
    assert "kv_store.csv" in out
    from repro.trace.external import load_trace_csv

    back = load_trace_csv(str(tmp_path / "traces" / "kv_store.csv"))
    assert len(back) == 3000


def test_cmd_sweep_with_bench_out(tmp_path, capsys):
    import json

    from repro.core.exec import configure_disk_cache
    from repro.core.runner import clear_cache

    bench = tmp_path / "BENCH_sweep.json"
    try:
        assert main([
            "sweep", "ibtb:16",
            "--workloads", "web_frontend", "db_oltp",
            "--length", "4000", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--bench-out", str(bench),
        ]) == 0
        out = capsys.readouterr().out
        assert "Sweep: IPC relative to ideal I-BTB 16" in out
        payload = json.loads(bench.read_text())
        assert payload["jobs"] == 2
        assert payload["phases"]["warm_cache"]["result_hits"] == 4
        assert payload["phases"]["serial_cold"]["result_misses"] == 4
        assert payload["speedup_warm_vs_cold"] > 1.0
    finally:
        clear_cache()
        configure_disk_cache(False)


def test_cmd_sweep_no_disk_cache(capsys):
    from repro.core.exec import configure_disk_cache
    from repro.core.runner import clear_cache

    try:
        assert main([
            "sweep", "ibtb:16", "--no-disk-cache",
            "--workloads", "web_frontend",
            "--length", "3000",
        ]) == 0
        assert "disk cache" not in capsys.readouterr().out
    finally:
        clear_cache()
        configure_disk_cache(False)


def test_cmd_sweep_bench_requires_disk_cache(capsys):
    assert main([
        "sweep", "ibtb:16", "--no-disk-cache", "--bench-out", "/tmp/x.json",
    ]) == 2
    assert "disk cache" in capsys.readouterr().err


# -- fault-tolerant sweep flags ----------------------------------------------


@pytest.fixture()
def _sweep_env(tmp_path, monkeypatch):
    """Isolated caches + fault env for the resilient-sweep CLI tests."""
    from repro.core.exec import configure_disk_cache
    from repro.core.exec.faults import ENV_FAULT_DIR, ENV_FAULT_SPEC
    from repro.core.runner import clear_cache

    monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path / "fault-state"))
    clear_cache()
    configure_disk_cache(False)
    yield tmp_path
    clear_cache()
    configure_disk_cache(False)


def test_cmd_run_malformed_trace_exits_2_one_line(tmp_path, capsys):
    bad = tmp_path / "bad.csv"
    bad.write_text("pc,btype,taken,target\nzzz,NONE,0,0\n")
    assert main(["run", "ibtb:16", str(bad)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert str(bad) in err
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1


def test_cmd_sweep_resume_requires_disk_cache(capsys):
    assert main(["sweep", "ibtb:16", "--no-disk-cache", "--resume"]) == 2
    assert "disk cache" in capsys.readouterr().err


def test_cmd_sweep_out_is_deterministic(_sweep_env, capsys):
    tmp_path = _sweep_env
    args = [
        "sweep", "ibtb:16",
        "--workloads", "web_frontend",
        "--length", "3000",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args + ["--out", str(tmp_path / "a.json")]) == 0
    assert main(args + ["--out", str(tmp_path / "b.json")]) == 0
    capsys.readouterr()
    a = (tmp_path / "a.json").read_bytes()
    assert a == (tmp_path / "b.json").read_bytes()
    import json

    payload = json.loads(a)
    assert payload["schema"] == 1
    assert payload["baseline"] == "ideal I-BTB 16"
    assert payload["configs"]["I-BTB 16"]["web_frontend"]["ipc"] > 0
    assert payload["relative_ipc"]["I-BTB 16"]["web_frontend"] > 0


def test_cmd_sweep_strict_failure_exits_1_with_hint(_sweep_env, monkeypatch, capsys):
    tmp_path = _sweep_env
    monkeypatch.setenv("REPRO_FAULT_SPEC", "raise:db_oltp:99")
    code = main([
        "sweep", "ibtb:16",
        "--workloads", "web_frontend", "db_oltp",
        "--length", "3000", "--max-retries", "1",
        "--cache-dir", str(tmp_path / "cache"),
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "rerun with --resume" in err
    assert "Traceback" not in err


def test_cmd_sweep_fault_no_strict_then_resume(_sweep_env, monkeypatch, capsys):
    """A sweep with a persistent fault keeps going under --no-strict,
    reports the failures, and a later --resume run only executes the
    points the first run could not finish."""
    import json

    from repro.core.exec.faults import ENV_FAULT_SPEC
    from repro.core.runner import clear_cache

    tmp_path = _sweep_env
    args = [
        "sweep", "ibtb:16",
        "--workloads", "web_frontend", "db_oltp",
        "--length", "3000",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    monkeypatch.setenv(ENV_FAULT_SPEC, "raise:db_oltp:99")
    code = main(args + ["--no-strict", "--max-retries", "1"])
    captured = capsys.readouterr()
    assert code == 1
    assert "FAILED" in captured.err and "db_oltp" in captured.err
    assert "dropped 1 workload(s)" in captured.err
    assert "retries" in captured.out  # resilience summary line

    # The fault is gone (fixed); resume executes only the db_oltp points.
    monkeypatch.delenv(ENV_FAULT_SPEC)
    clear_cache()  # drop the in-process memo, as a fresh process would
    trace = tmp_path / "sweep_trace.json"
    code = main(args + ["--resume", "--chrome", str(trace)])
    captured = capsys.readouterr()
    assert code == 0
    assert "FAILED" not in captured.err
    assert "resumed" in captured.out
    doc = json.loads(trace.read_text())
    names = {e.get("name") for e in doc["traceEvents"]}
    assert "resume_skip" in names
    # The two web_frontend points (config + baseline) were resumed.
    assert doc["otherData"]["counters"]["resumed"] == 2
    assert doc["otherData"]["counters"]["executed"] == 2


# -- corpus + workloads commands ----------------------------------------------


@pytest.fixture
def _corpus_env(tmp_path, monkeypatch):
    """An isolated corpus store plus one exported synthetic trace CSV."""
    from repro.core.exec import configure_disk_cache
    from repro.core.runner import clear_cache
    from repro.corpus import configure_corpus
    from repro.trace.external import save_trace_csv
    from repro.trace.workloads import get_trace

    monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path / "corpus"))
    configure_corpus(tmp_path / "corpus")
    csv = tmp_path / "web_frontend.csv"
    save_trace_csv(get_trace("web_frontend", 9000), str(csv))
    clear_cache()
    configure_disk_cache(False)
    yield tmp_path, str(csv)
    clear_cache()
    configure_disk_cache(False)


def test_cmd_corpus_ingest_ls_info_verify(_corpus_env, capsys):
    tmp_path, csv = _corpus_env
    assert main(["corpus", "ingest", csv, "--shard-insts", "2000"]) == 0
    out = capsys.readouterr().out
    assert "ingested corpus:web_frontend" in out
    assert "9,000 instructions" in out and "5 shard(s)" in out

    assert main(["corpus", "ls"]) == 0
    out = capsys.readouterr().out
    assert "web_frontend" in out and "9,000" in out

    assert main(["corpus", "info", "web_frontend"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["instructions"] == 9000
    assert len(payload["content_hash"]) == 64

    assert main(["corpus", "verify"]) == 0
    assert "no problems" in capsys.readouterr().out


def test_cmd_corpus_verify_detects_corruption_exit_1(_corpus_env, capsys):
    from repro.corpus import CorpusStore

    tmp_path, csv = _corpus_env
    assert main(["corpus", "ingest", csv, "--shard-insts", "2000"]) == 0
    store = CorpusStore()
    manifest = store.get("web_frontend")
    shard = store.shard_dir_path(manifest) / manifest.shards[1].file
    shard.write_bytes(b"corrupted")
    assert main(["corpus", "verify"]) == 1
    captured = capsys.readouterr()
    assert "PROBLEM" in captured.err and "corrupted shard" in captured.err


def test_cmd_corpus_gc_reports_orphans(_corpus_env, capsys):
    tmp_path, csv = _corpus_env
    assert main(["corpus", "ingest", csv, "--shard-insts", "2500"]) == 0
    assert main(["corpus", "ingest", csv, "--shard-insts", "2000"]) == 0
    capsys.readouterr()
    assert main(["corpus", "gc", "--dry-run"]) == 0
    assert "would remove" in capsys.readouterr().out
    assert main(["corpus", "gc"]) == 0
    assert "removed" in capsys.readouterr().out
    assert main(["corpus", "gc"]) == 0
    assert "nothing to collect" in capsys.readouterr().out
    assert main(["corpus", "verify"]) == 0


def test_cmd_corpus_ingest_name_with_multiple_sources_exits_2(
    _corpus_env, capsys
):
    tmp_path, csv = _corpus_env
    assert main(["corpus", "ingest", csv, csv, "--name", "x"]) == 2
    assert "--name requires a single source" in capsys.readouterr().err


def test_cmd_workloads_lists_synthetic_and_corpus(_corpus_env, capsys):
    tmp_path, csv = _corpus_env
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "web_frontend" in out and "synthetic" in out
    assert "no corpus entries" in out

    assert main(["corpus", "ingest", csv]) == 0
    capsys.readouterr()
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "corpus:web_frontend" in out and "9,000" in out


def test_cmd_run_corpus_workload_matches_csv(_corpus_env, capsys):
    """`run` on a corpus: name prints the same metrics as on the CSV the
    entry was ingested from (bit-identical simulation)."""
    tmp_path, csv = _corpus_env
    assert main(["corpus", "ingest", csv]) == 0
    capsys.readouterr()
    assert main(["run", "mbbtb:2:allbr", "corpus:web_frontend",
                 "--length", "9000"]) == 0
    via_corpus = capsys.readouterr().out.splitlines()
    assert main(["run", "mbbtb:2:allbr", csv, "--length", "9000"]) == 0
    via_csv = capsys.readouterr().out.splitlines()
    assert via_corpus[1:] == via_csv[1:]  # all metric lines identical


def test_cmd_run_unknown_corpus_entry_exits_2(_corpus_env, capsys):
    assert main(["run", "ibtb:16", "corpus:nosuch"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "no corpus entry" in err


def test_cmd_trace_corpus_workload_with_slice(_corpus_env, capsys):
    tmp_path, csv = _corpus_env
    assert main(["corpus", "ingest", csv]) == 0
    capsys.readouterr()
    assert main(["trace", "corpus:web_frontend@skip=1000,measure=4000",
                 "--length", "9000"]) == 0
    assert "SimResult" in capsys.readouterr().out


def test_cmd_sweep_corpus_workload_cached_across_runs(_corpus_env, capsys):
    """Sweep points on corpus workloads are served from the disk cache on
    a second invocation, keyed by the entry's content hash."""
    tmp_path, csv = _corpus_env
    assert main(["corpus", "ingest", csv]) == 0
    capsys.readouterr()
    args = [
        "sweep", "ibtb:16",
        "--workloads", "corpus:web_frontend",
        "--length", "9000",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args + ["--out", str(tmp_path / "a.json")]) == 0
    capsys.readouterr()

    from repro.core.runner import clear_cache

    clear_cache()  # fresh process stand-in: memo gone, disk cache kept
    assert main(args + ["--out", str(tmp_path / "b.json")]) == 0
    out = capsys.readouterr().out
    hits = int(out.split("disk cache: ")[1].split(" result hits")[0])
    assert hits >= 2  # config + baseline point both re-served
    assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()
