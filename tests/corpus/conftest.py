"""Shared fixtures for the trace-corpus tests."""

from __future__ import annotations

import pytest

from repro.corpus import CorpusStore, configure_corpus
from repro.trace.external import save_trace_csv
from repro.trace.workloads import get_trace


@pytest.fixture
def store(tmp_path, monkeypatch) -> CorpusStore:
    """An isolated corpus store that ``corpus:`` names resolve against."""
    root = tmp_path / "corpus"
    monkeypatch.setenv("REPRO_CORPUS_DIR", str(root))
    return configure_corpus(root)


@pytest.fixture
def trace_csv(tmp_path):
    """A 9000-instruction synthetic trace exported to CSV.

    Small enough to ingest in milliseconds, long enough to span several
    shards at the test shard size.
    """
    trace = get_trace("web_frontend", 9000)
    path = tmp_path / "web_frontend.csv"
    save_trace_csv(trace, str(path))
    return trace, str(path)
