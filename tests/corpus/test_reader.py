"""Tests for the lazy corpus readers: mmap, chunked iteration, prefetch,
slice specs."""

import numpy as np
import pytest

from repro.corpus import CorpusError, CorpusTrace, SliceSpec
from repro.corpus import reader as reader_mod
from repro.trace.trace import Trace


@pytest.fixture
def ingested(store, trace_csv):
    """(original Trace, CorpusTrace over its 5-shard ingestion)."""
    trace, path = trace_csv
    manifest = store.ingest(path, shard_insts=2000).manifest
    return trace, CorpusTrace(store, manifest)


# -- shard loading -----------------------------------------------------------


def test_reader_is_lazy_and_sized(ingested):
    trace, reader = ingested
    assert len(reader) == len(trace)
    assert reader.name == "web_frontend"


def test_load_shard_memory_maps_columns(ingested):
    _, reader = ingested
    columns = reader.load_shard(0)
    assert isinstance(columns["pc"], np.memmap)
    assert columns["pc"].dtype == np.int64
    assert len(columns["pc"]) == 2000


def test_load_shard_fallback_path_matches_mmap(ingested, monkeypatch):
    _, reader = ingested
    mapped = reader.load_shard(1)
    monkeypatch.setattr(reader_mod, "ENABLE_MMAP", False)
    copied = reader.load_shard(1)
    assert not isinstance(copied["pc"], np.memmap)
    for col in Trace._COLUMNS:
        assert np.array_equal(mapped[col], copied[col]), col


def test_load_shard_count_mismatch_raises(ingested):
    from repro.corpus import ShardInfo

    _, reader = ingested
    shard = reader.manifest.shards[0]
    reader.manifest.shards[0] = ShardInfo(
        file=shard.file, insts=1234, sha256=shard.sha256
    )
    with pytest.raises(CorpusError, match="corpus verify"):
        reader.load_shard(0)


def test_to_trace_materializes_identically(ingested):
    trace, reader = ingested
    back = reader.to_trace()
    assert back.name == "corpus:web_frontend"
    for col in Trace._COLUMNS:
        assert getattr(back, col) == list(getattr(trace, col)), col


def test_to_trace_max_insts_truncates(ingested):
    trace, reader = ingested
    back = reader.to_trace(max_insts=4321)
    assert len(back) == 4321
    assert back.pc == trace.pc[:4321]


# -- chunked iteration + prefetch -------------------------------------------


def test_iter_chunks_concatenates_to_whole_trace(ingested):
    trace, reader = ingested
    chunks = list(reader.iter_chunks(chunk_insts=700))
    assert all(len(c["pc"]) <= 700 for c in chunks)
    pcs = np.concatenate([c["pc"] for c in chunks])
    assert pcs.tolist() == trace.pc


def test_iter_chunks_prefetch_off_matches_on(ingested):
    _, reader = ingested
    on = [c["pc"] for c in reader.iter_chunks(chunk_insts=1500)]
    off = [c["pc"] for c in reader.iter_chunks(chunk_insts=1500, prefetch=False)]
    assert len(on) == len(off)
    for a, b in zip(on, off):
        assert np.array_equal(a, b)


def test_iter_chunks_rejects_bad_chunk_size(ingested):
    _, reader = ingested
    with pytest.raises(CorpusError, match="chunk_insts"):
        next(reader.iter_chunks(chunk_insts=0))


# -- slice specs -------------------------------------------------------------


def test_slice_spec_parse_and_canonical():
    spec = SliceSpec.parse("measure=4000, skip=1000,sample=500/1000")
    assert spec == SliceSpec(
        skip=1000, measure=4000, sample_take=500, sample_every=1000
    )
    assert spec.canonical() == "skip=1000,measure=4000,sample=500/1000"
    # Canonical form reparses to the same spec.
    assert SliceSpec.parse(spec.canonical()) == spec


@pytest.mark.parametrize(
    "text",
    [
        "skip=-1",
        "measure=0",
        "sample=500",
        "sample=0/10",
        "sample=20/10",
        "frob=1",
        "skip",
        "skip=abc",
    ],
)
def test_slice_spec_rejects_bad_input(text):
    with pytest.raises(CorpusError):
        SliceSpec.parse(text)


def test_slice_spec_selected_count_matches_mask():
    spec = SliceSpec.parse("skip=1000,measure=4000,sample=500/1000")
    n = 9000
    mask = spec.mask(0, n)
    assert int(mask.sum()) == spec.selected_count(n) == 2000


def test_slice_spec_mask_is_none_when_trivial():
    assert SliceSpec().mask(0, 10) is None


def test_to_trace_applies_slice(ingested):
    trace, reader = ingested
    spec = SliceSpec.parse("skip=1000,measure=4000")
    back = reader.to_trace(spec=spec)
    assert back.name == "corpus:web_frontend@skip=1000,measure=4000"
    assert len(back) == 4000
    assert back.pc == trace.pc[1000:5000]


def test_iter_chunks_slice_equals_to_trace_slice(ingested):
    _, reader = ingested
    spec = SliceSpec.parse("skip=500,sample=100/400")
    streamed = np.concatenate(
        [c["pc"] for c in reader.iter_chunks(chunk_insts=333, spec=spec)]
    )
    assert streamed.tolist() == reader.to_trace(spec=spec).pc


def test_sampled_slice_crosses_shard_boundaries(ingested):
    """Sampling windows are global: a window straddling two shards keeps
    exactly its first `take` instructions, shard split or not."""
    trace, reader = ingested
    spec = SliceSpec.parse("sample=300/1900")  # drifts across 2000-shards
    back = reader.to_trace(spec=spec)
    expected = [
        pc for i, pc in enumerate(trace.pc) if i % 1900 < 300
    ]
    assert back.pc == expected
