"""Unit tests for the streaming corpus format adapters."""

import gzip
import lzma

import pytest

from repro.common.types import BranchType
from repro.corpus.formats import (
    CHAMPSIM_KINDS,
    CVP1_CLASSES,
    detect_format,
    iter_champsim_records,
    iter_cvp1_records,
    iter_records,
    strip_compression,
)
from repro.trace.external import TraceFormatError
from repro.trace.trace import NO_REG


def write(tmp_path, text, name):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


# -- format detection --------------------------------------------------------


def test_strip_compression():
    assert strip_compression("a/t.csv.gz") == "a/t.csv"
    assert strip_compression("t.champsim.xz") == "t.champsim"
    assert strip_compression("t.cvp") == "t.cvp"


@pytest.mark.parametrize(
    "name,fmt",
    [
        ("t.csv", "csv"),
        ("t.csv.gz", "csv"),
        ("t.CSV.XZ", "csv"),
        ("t.champsim", "champsim"),
        ("t.cst.gz", "champsim"),
        ("t.cvp", "cvp1"),
        ("t.cvp1.xz", "cvp1"),
    ],
)
def test_detect_format(name, fmt):
    assert detect_format(name) == fmt


def test_detect_format_unknown_suffix_raises():
    with pytest.raises(TraceFormatError, match="cannot infer trace format"):
        detect_format("trace.bin")


# -- ChampSim-like adapter ---------------------------------------------------

CHAMPSIM_TEXT = (
    "# comment\n"
    "0x100 N\n"
    "\n"
    "0x104 B 1 0x200\n"
    "0x200 J 1 0x300\n"
    "0x300 C 1 0x400\n"
    "0x400 R 1 0x304\n"
    "0x304 I 1 0x500\n"
    "0x500 X 1 0x600\n"
)


def test_champsim_adapter_maps_all_kinds(tmp_path):
    path = write(tmp_path, CHAMPSIM_TEXT, "t.champsim")
    records = list(iter_records(path))
    assert [r[0] for r in records] == [
        0x100, 0x104, 0x200, 0x300, 0x400, 0x304, 0x500,
    ]
    assert [r[1] for r in records] == [
        int(BranchType.NONE),
        int(BranchType.COND_DIRECT),
        int(BranchType.UNCOND_DIRECT),
        int(BranchType.CALL_DIRECT),
        int(BranchType.RETURN),
        int(BranchType.INDIRECT),
        int(BranchType.CALL_INDIRECT),
    ]
    # Non-branch lines omit taken/target; registers default to NO_REG.
    assert records[0][2:4] == (0, 0)
    assert records[1][2:4] == (1, 0x200)
    assert records[0][4] == NO_REG


def test_champsim_kind_table_covers_taxonomy():
    assert set(CHAMPSIM_KINDS) == {"N", "B", "J", "C", "R", "I", "X"}


def test_champsim_unknown_kind_names_line_and_path(tmp_path):
    path = write(tmp_path, "0x100 Q\n", "t.champsim")
    with pytest.raises(TraceFormatError) as info:
        list(iter_records(path))
    assert "line 1" in str(info.value)
    assert path in str(info.value)


def test_champsim_branch_without_target_raises(tmp_path):
    path = write(tmp_path, "0x100 B 1\n", "t.champsim")
    with pytest.raises(TraceFormatError, match="needs '<taken> <target>'"):
        list(iter_records(path))


def test_champsim_bad_integer_reports_line(tmp_path):
    path = write(tmp_path, "0x100 N\nzz N\n", "t.champsim")
    with pytest.raises(TraceFormatError, match="line 2"):
        list(iter_records(path))


def test_champsim_missing_kind_raises(tmp_path):
    path = write(tmp_path, "0x100\n", "t.champsim")
    with pytest.raises(TraceFormatError, match="expected"):
        list(iter_records(path))


# -- CVP-1-like adapter ------------------------------------------------------

CVP1_TEXT = (
    "0x100 aluInstClass\n"
    "0x104 loadInstClass 0x9000\n"
    "0x108 storeInstClass 0x9100\n"
    "0x10c condBranchInstClass 1 0x200\n"
    "0x200 uncondDirectBranch 1 0x300\n"
    "0x300 UNCONDINDIRECTBRANCHINSTCLASS 1 0x400\n"
    "0x400 fp\n"
)


def test_cvp1_adapter_maps_classes(tmp_path):
    path = write(tmp_path, CVP1_TEXT, "t.cvp")
    records = list(iter_records(path))
    assert [r[1] for r in records] == [
        int(BranchType.NONE),
        int(BranchType.NONE),
        int(BranchType.NONE),
        int(BranchType.COND_DIRECT),
        int(BranchType.UNCOND_DIRECT),
        int(BranchType.INDIRECT),
        int(BranchType.NONE),
    ]
    # load/store carry is_load/is_store + maddr.
    assert records[1][7:10] == (1, 0, 0x9000)
    assert records[2][7:10] == (0, 1, 0x9100)
    # branches carry taken/target.
    assert records[3][2:4] == (1, 0x200)


def test_cvp1_class_table_has_all_nine_classes():
    assert len(CVP1_CLASSES) == 9


def test_cvp1_unknown_class_raises(tmp_path):
    path = write(tmp_path, "0x100 vectorInstClass\n", "t.cvp")
    with pytest.raises(TraceFormatError, match="unknown CVP-1"):
        list(iter_records(path))


def test_cvp1_branch_without_target_raises(tmp_path):
    path = write(tmp_path, "0x100 condBranchInstClass\n", "t.cvp")
    with pytest.raises(TraceFormatError, match="needs"):
        list(iter_records(path))


def test_cvp1_load_without_maddr_defaults_zero(tmp_path):
    path = write(tmp_path, "0x100 loadInstClass\n", "t.cvp")
    (record,) = list(iter_records(path))
    assert record[7] == 1 and record[9] == 0


# -- compression + dispatch --------------------------------------------------


def test_compressed_champsim_gz_and_xz(tmp_path):
    for suffix, opener in ((".gz", gzip.open), (".xz", lzma.open)):
        path = tmp_path / f"t.champsim{suffix}"
        with opener(str(path), "wt") as fh:
            fh.write(CHAMPSIM_TEXT)
        records = list(iter_records(str(path)))
        assert len(records) == 7


def test_iter_records_csv_matches_external_loader(tmp_path, trace_csv):
    from repro.trace.trace import Trace

    trace, path = trace_csv
    records = list(iter_records(path))
    assert len(records) == len(trace)
    for i, col in enumerate(Trace._COLUMNS):
        assert [r[i] for r in records] == list(getattr(trace, col)), col


def test_iter_records_explicit_format_override(tmp_path):
    path = write(tmp_path, "0x100 N\n", "t.dat")
    records = list(iter_records(path, fmt="champsim"))
    assert records[0][0] == 0x100


def test_iter_records_unknown_format_raises(tmp_path):
    path = write(tmp_path, "0x100 N\n", "t.champsim")
    with pytest.raises(TraceFormatError, match="unknown trace format"):
        list(iter_records(path, fmt="frob"))


def test_iter_records_missing_file_names_path(tmp_path):
    path = str(tmp_path / "nope.champsim")
    with pytest.raises(TraceFormatError) as info:
        list(iter_records(path))
    assert path in str(info.value)


def test_iter_records_corrupt_gz_names_path(tmp_path):
    path = tmp_path / "t.csv.gz"
    path.write_bytes(b"not gzip at all")
    with pytest.raises(TraceFormatError) as info:
        list(iter_records(str(path)))
    assert str(path) in str(info.value)
