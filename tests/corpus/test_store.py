"""Tests for the content-addressed corpus store: ingestion, integrity,
garbage collection."""

import gzip
import json

import pytest

from repro.corpus import CorpusError, CorpusStore, DEFAULT_SHARD_INSTS


def gzip_file(path):
    gz = str(path) + ".gz"
    with open(path, "rb") as fi, gzip.open(gz, "wb") as fo:
        fo.write(fi.read())
    return gz


# -- ingestion ---------------------------------------------------------------


def test_ingest_multi_shard_bounded_memory(store, trace_csv):
    """A trace spanning several shards never buffers more than one
    shard's worth of records in Python (the streaming-ingest contract)."""
    trace, path = trace_csv
    res = store.ingest(path, shard_insts=2000)
    assert res.instructions == len(trace) == 9000
    assert res.shards == 5  # 4 x 2000 + 1 x 1000
    assert res.peak_buffered <= 2000
    assert [s.insts for s in res.manifest.shards] == [2000] * 4 + [1000]


def test_ingest_default_name_strips_all_suffixes(store, trace_csv):
    _, path = trace_csv
    res = store.ingest(gzip_file(path), shard_insts=4000)
    assert res.manifest.name == "web_frontend"
    assert store.names() == ["web_frontend"]


def test_ingest_records_branch_mix_and_provenance(store, trace_csv):
    trace, path = trace_csv
    res = store.ingest(path, shard_insts=4000)
    mix = res.manifest.branch_mix
    stats = trace.stats()
    assert mix["instructions"] == stats.get("instructions")
    assert mix["branches"] == stats.get("branches")
    assert mix["taken_branches"] == stats.get("taken_branches")
    assert mix["code_footprint_bytes"] == stats.get("code_footprint_bytes")
    assert res.manifest.provenance["format"] == "csv"
    assert res.manifest.provenance["source"] == path


def test_content_hash_independent_of_sharding_and_compression(
    store, trace_csv
):
    _, path = trace_csv
    a = store.ingest(path, name="a", shard_insts=2000)
    b = store.ingest(path, name="b", shard_insts=3000)
    c = store.ingest(gzip_file(path), name="c", shard_insts=2000)
    assert a.manifest.content_hash == b.manifest.content_hash
    assert a.manifest.content_hash == c.manifest.content_hash
    # ... but shard dirs differ per sharding and are shared per content.
    assert a.manifest.shard_dir != b.manifest.shard_dir
    assert a.manifest.shard_dir == c.manifest.shard_dir


def test_reingest_identical_content_reuses_shards(store, trace_csv):
    _, path = trace_csv
    first = store.ingest(path, shard_insts=2000)
    again = store.ingest(path, shard_insts=2000)
    assert not first.reused_shards
    assert again.reused_shards
    assert again.manifest.content_hash == first.manifest.content_hash
    assert again.manifest.shards == first.manifest.shards
    assert store.verify() == []


def test_ingest_empty_trace_raises(store, tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("pc,btype,taken,target\n")
    with pytest.raises(CorpusError, match="no instructions"):
        store.ingest(str(path))


def test_ingest_rejects_bad_names(store, trace_csv):
    _, path = trace_csv
    with pytest.raises(CorpusError, match="invalid corpus entry name"):
        store.ingest(path, name=".hidden")
    with pytest.raises(CorpusError, match="shard_insts"):
        store.ingest(path, shard_insts=0)


def test_failed_ingest_leaves_no_staging_dir(store, tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("pc,btype,taken,target\n0x100,NONE,0,0\nzzz,NONE,0,0\n")
    with pytest.raises(Exception):
        store.ingest(str(path), shard_insts=1)
    leftovers = [
        p for p in store.shards_root.iterdir() if p.name.startswith(".ingest-")
    ]
    assert leftovers == []
    assert store.names() == []


# -- catalog -----------------------------------------------------------------


def test_get_unknown_entry_lists_known(store, trace_csv):
    _, path = trace_csv
    store.ingest(path, name="known")
    with pytest.raises(CorpusError) as info:
        store.get("nosuch")
    assert "known" in str(info.value)


def test_manifest_json_roundtrip(store, trace_csv):
    from repro.corpus import Manifest

    _, path = trace_csv
    manifest = store.ingest(path, shard_insts=4000).manifest
    back = Manifest.from_json(
        json.loads(json.dumps(manifest.to_json()))
    )
    assert back == manifest


def test_schema_mismatch_rejected(store, trace_csv):
    _, path = trace_csv
    store.ingest(path, name="t", shard_insts=4000)
    payload = json.loads(store.manifest_path("t").read_text())
    payload["schema"] = 99
    store.manifest_path("t").write_text(json.dumps(payload))
    with pytest.raises(CorpusError, match="schema 99"):
        store.get("t")


def test_default_shard_size_is_sane():
    assert DEFAULT_SHARD_INSTS >= 1024


def test_stores_with_different_roots_are_independent(tmp_path, trace_csv):
    _, path = trace_csv
    a = CorpusStore(tmp_path / "a")
    b = CorpusStore(tmp_path / "b")
    a.ingest(path, name="only-in-a", shard_insts=4000)
    assert b.names() == []


# -- verify ------------------------------------------------------------------


def test_verify_clean_store(store, trace_csv):
    _, path = trace_csv
    store.ingest(path, shard_insts=2000)
    assert store.verify() == []


def test_verify_detects_corrupted_shard(store, trace_csv):
    _, path = trace_csv
    manifest = store.ingest(path, shard_insts=2000).manifest
    shard_path = store.shard_dir_path(manifest) / manifest.shards[2].file
    data = bytearray(shard_path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    shard_path.write_bytes(bytes(data))
    problems = store.verify()
    assert any(
        "corrupted shard" in p and manifest.shards[2].file in p
        for p in problems
    )


def test_verify_detects_missing_shard(store, trace_csv):
    _, path = trace_csv
    manifest = store.ingest(path, shard_insts=2000).manifest
    (store.shard_dir_path(manifest) / manifest.shards[0].file).unlink()
    problems = store.verify()
    assert any("missing shard" in p for p in problems)


def test_verify_detects_content_hash_mismatch(store, trace_csv):
    """A forged manifest (right files, wrong declared content) is caught
    by the recomputed record-stream hash."""
    _, path = trace_csv
    store.ingest(path, name="t", shard_insts=2000)
    payload = json.loads(store.manifest_path("t").read_text())
    payload["content_hash"] = "0" * 64
    store.manifest_path("t").write_text(json.dumps(payload))
    problems = store.verify(["t"])
    assert any("content hash mismatch" in p for p in problems)


def test_verify_scopes_to_requested_names(store, trace_csv):
    _, path = trace_csv
    good = store.ingest(path, name="good", shard_insts=2000).manifest
    bad = store.ingest(path, name="bad", shard_insts=3000).manifest
    shard_path = store.shard_dir_path(bad) / bad.shards[0].file
    shard_path.write_bytes(b"garbage")
    assert store.verify(["good"]) == []
    assert store.verify(["bad"]) != []


# -- gc ----------------------------------------------------------------------


def test_gc_removes_orphans_keeps_live(store, trace_csv):
    _, path = trace_csv
    old = store.ingest(path, name="t", shard_insts=2500).manifest
    new = store.ingest(path, name="t", shard_insts=2000).manifest
    assert old.shard_dir != new.shard_dir
    assert (store.shards_root / old.shard_dir).is_dir()

    dry = store.gc(dry_run=True)
    assert dry == [old.shard_dir]
    assert (store.shards_root / old.shard_dir).is_dir()  # dry run kept it

    removed = store.gc()
    assert removed == [old.shard_dir]
    assert not (store.shards_root / old.shard_dir).exists()
    assert (store.shards_root / new.shard_dir).is_dir()
    assert store.verify() == []  # live entry untouched


def test_gc_after_remove(store, trace_csv):
    _, path = trace_csv
    manifest = store.ingest(path, name="t", shard_insts=2000).manifest
    store.remove("t")
    assert store.names() == []
    assert store.gc() == [manifest.shard_dir]


def test_gc_empty_store_is_noop(store):
    assert store.gc() == []
