"""Integration tests: corpus workloads through the simulator, the sweep
engine's disk cache, and checkpoint resume."""

import pytest

from repro.core.config import build_simulator, ibtb, mbbtb
from repro.core.exec import (
    SweepPoint,
    clear_trace_memo,
    configure_disk_cache,
    point_key,
    run_points,
)
from repro.core.runner import clear_cache
from repro.corpus import load_corpus_trace
from repro.trace.external import load_trace_csv

L, W = 9000, 2250


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_cache()
    configure_disk_cache(False)
    yield
    clear_cache()
    configure_disk_cache(False)


@pytest.fixture
def ingested(store, trace_csv):
    """The fixture trace ingested as ``corpus:web_frontend`` (5 shards)."""
    _, path = trace_csv
    store.ingest(path, shard_insts=2000)
    return store, path


# -- bit-identity ------------------------------------------------------------


def test_corpus_simulation_bit_identical_to_direct_csv(ingested):
    """The acceptance bar: simulating an ingested (multi-shard) corpus
    trace must be bit-identical to simulating the CSV it came from."""
    _, path = ingested
    direct = load_trace_csv(path)
    corpus = load_corpus_trace("corpus:web_frontend")
    for config in (ibtb(16), mbbtb(2, "allbr")):
        a = build_simulator(config, direct).run(warmup=W)
        b = build_simulator(config, corpus).run(warmup=W)
        assert a.cycles == b.cycles
        assert a.stats == b.stats


def test_corpus_slice_and_length_are_deterministic(ingested):
    a = load_corpus_trace("corpus:web_frontend@skip=1000,measure=6000", 4000)
    b = load_corpus_trace("corpus:web_frontend@skip=1000,measure=6000", 4000)
    assert len(a) == 4000
    assert a.pc == b.pc and a.btype == b.btype


# -- engine + disk cache -----------------------------------------------------


def _point(workload="corpus:web_frontend", config=None):
    return SweepPoint(config or ibtb(16), workload, L, W, 7)


def test_run_points_on_corpus_workload(ingested):
    (result,) = run_points([_point()])
    assert result.instructions == L - W
    assert result.cycles > 0


def test_point_key_uses_content_hash_not_paths(ingested, tmp_path):
    """Identical content re-ingested (even from a different file) keeps
    the cache key; changed content invalidates it."""
    store, path = ingested
    key = point_key(_point())

    copy = tmp_path / "renamed.csv"
    copy.write_text(open(path).read())
    store.ingest(copy, name="web_frontend", shard_insts=3000)
    assert point_key(_point()) == key

    trimmed = tmp_path / "trimmed.csv"
    lines = open(path).read().splitlines(keepends=True)
    trimmed.write_text("".join(lines[:-1]))
    store.ingest(trimmed, name="web_frontend", shard_insts=3000)
    assert point_key(_point()) != key


def test_point_key_distinguishes_slices(ingested):
    plain = point_key(_point("corpus:web_frontend"))
    sliced = point_key(_point("corpus:web_frontend@skip=1000"))
    assert plain != sliced


def test_disk_cache_hits_across_runs(ingested, tmp_path):
    """A corpus sweep point computed once is served from the disk cache
    on the next 'invocation' (fresh memo), keyed by content hash."""
    cache = configure_disk_cache(True, tmp_path / "cache")
    first = run_points([_point()])
    clear_cache()
    clear_trace_memo()
    again = run_points([_point()])
    snap = cache.snapshot()
    assert snap["result_hits"] >= 1
    assert first[0].cycles == again[0].cycles
    assert first[0].stats == again[0].stats


def test_disk_cache_survives_reingest_of_identical_content(
    ingested, tmp_path
):
    store, path = ingested
    cache = configure_disk_cache(True, tmp_path / "cache")
    run_points([_point()])
    store.ingest(path, shard_insts=2000)  # byte-identical re-ingest
    clear_cache()
    clear_trace_memo()
    run_points([_point()])
    assert cache.snapshot()["result_hits"] >= 1


def test_sweep_resume_skips_checkpointed_corpus_points(ingested, tmp_path):
    """Corpus points recorded in a sweep journal are skipped on --resume,
    with results re-read from the disk cache."""
    from repro.core.exec import SweepJournal

    configure_disk_cache(True, tmp_path / "cache")
    points = [_point(), _point(config=mbbtb(2, "allbr"))]
    journal = SweepJournal(tmp_path / "journal.jsonl")
    try:
        first = run_points(points, journal=journal)
        clear_cache()
        clear_trace_memo()
        resumed = run_points(points, journal=journal, resume=True)
    finally:
        journal.close()
    assert [r.cycles for r in resumed] == [r.cycles for r in first]
    assert [r.stats for r in resumed] == [r.stats for r in first]


# -- batched plans over corpus workloads -------------------------------------


def test_batched_corpus_point_bit_identical_and_plan_cached(
    ingested, tmp_path, monkeypatch
):
    """A corpus point runs bit-identically under the batched engine, and
    its batch plan lands in the disk cache's plans tier keyed (and
    source-marked) by the corpus content hash."""
    from repro.core.exec import clear_plan_memo
    from repro.core.passes.kernel import KERNEL_ENV

    monkeypatch.setenv(KERNEL_ENV, "interp")
    ref = run_points([_point()])
    clear_cache()
    monkeypatch.setenv(KERNEL_ENV, "batched")
    cache = configure_disk_cache(True, tmp_path / "cache")
    got = run_points([_point()])
    assert ref[0].stats == got[0].stats
    assert ref[0].cycles == got[0].cycles
    plans = list(cache.iter_plans())
    assert len(plans) == 1
    _, meta = plans[0]
    store, _ = ingested
    assert meta["source"] == store.get("web_frontend").content_hash
    clear_plan_memo()
    monkeypatch.delenv(KERNEL_ENV, raising=False)


def test_corpus_gc_prunes_plans_of_removed_entries(
    ingested, tmp_path, monkeypatch
):
    """``corpus gc`` removes cached batch plans whose backing corpus
    entry is gone, while synthetic-trace plans survive."""
    from repro.cli import main
    from repro.core.exec import clear_plan_memo
    from repro.core.passes.kernel import KERNEL_ENV

    store, _ = ingested
    monkeypatch.setenv(KERNEL_ENV, "batched")
    cache_dir = tmp_path / "cache"
    cache = configure_disk_cache(True, cache_dir)
    run_points([_point()])  # corpus-backed plan
    run_points([SweepPoint(ibtb(16), "db_oltp", 4000, 1000, 7)])  # synth plan
    assert len(list(cache.iter_plans())) == 2

    store.remove("web_frontend")
    assert (
        main(
            [
                "corpus",
                "gc",
                "--corpus-dir",
                str(store.root),
                "--cache-dir",
                str(cache_dir),
            ]
        )
        == 0
    )
    remaining = [meta for _, meta in cache.iter_plans()]
    assert len(remaining) == 1
    assert remaining[0]["source"] == "synth"
    clear_plan_memo()
    monkeypatch.delenv(KERNEL_ENV, raising=False)
