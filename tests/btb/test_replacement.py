"""Unit tests for branch-slot replacement policies."""

import pytest

from repro.btb.base import BranchSlot
from repro.btb.replacement import POLICIES, pick_victim
from repro.common.types import BranchType


def slots_of(*types):
    return [
        BranchSlot(pc=0x100 + 4 * k, btype=bt, target=0x900)
        for k, bt in enumerate(types)
    ]


COND = BranchType.COND_DIRECT
JMP = BranchType.UNCOND_DIRECT
CALL = BranchType.CALL_DIRECT
IND = BranchType.INDIRECT


def test_lru_picks_least_recently_used():
    slots = slots_of(COND, COND, COND)
    assert pick_victim("lru", slots, [5, 2, 9], [0, 1, 2], 10) == 1


def test_fifo_picks_oldest_insert():
    slots = slots_of(COND, COND, COND)
    assert pick_victim("fifo", slots, [5, 2, 9], [3, 1, 2], 10) == 1


def test_uncond_first_prefers_cheap_branches():
    slots = slots_of(COND, JMP, IND)
    assert pick_victim("uncond_first", slots, [0, 9, 1], [0, 0, 0], 10) == 1


def test_uncond_first_includes_direct_calls():
    slots = slots_of(COND, CALL, IND)
    assert pick_victim("uncond_first", slots, [0, 9, 1], [0, 0, 0], 10) == 1


def test_uncond_first_falls_back_to_lru():
    slots = slots_of(COND, IND, COND)
    assert pick_victim("uncond_first", slots, [4, 2, 9], [0, 0, 0], 10) == 1


def test_uncond_first_lru_among_cheap():
    slots = slots_of(JMP, CALL, COND)
    assert pick_victim("uncond_first", slots, [7, 3, 1], [0, 0, 0], 10) == 1


def test_random_is_deterministic_and_in_range():
    slots = slots_of(COND, COND, COND, COND)
    v1 = pick_victim("random", slots, [0] * 4, [0] * 4, 42)
    v2 = pick_victim("random", slots, [0] * 4, [0] * 4, 42)
    assert v1 == v2
    assert 0 <= v1 < 4


def test_unknown_policy_raises():
    with pytest.raises(ValueError):
        pick_victim("mru", slots_of(COND), [0], [0], 0)


def test_empty_slots_raise():
    with pytest.raises(ValueError):
        pick_victim("lru", [], [], [], 0)


def test_all_policies_listed():
    assert set(POLICIES) == {"lru", "fifo", "uncond_first", "random"}


def test_policies_integrate_with_rbtb():
    """End-to-end: each policy runs in a RegionBTB without error."""
    from repro.btb.base import BTBGeometry
    from repro.btb.rbtb import RegionBTB
    from repro.frontend.engine import PredictionEngine
    from tests.conftest import JMP as JMP_T, make_trace

    for policy in POLICIES:
        btb = RegionBTB(
            BTBGeometry(4, 2), BTBGeometry(8, 2),
            slots_per_entry=1, slot_policy=policy,
        )
        eng = PredictionEngine()
        for pc in (0x100, 0x104, 0x108):
            tr = make_trace([(pc, JMP_T, True, 0x400), 0x400])
            btb.scan(pc, 0, tr, eng)
        _lvl, entry = btb.store.lookup(0x100)
        assert len(entry.slots) == 1
