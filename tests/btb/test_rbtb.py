"""Unit tests for the Region BTB."""

import pytest

from repro.btb.base import BTBGeometry
from repro.btb.rbtb import RegionBTB
from repro.frontend.engine import PredictionEngine

from tests.conftest import COND, JMP, make_trace, straight


def fresh(slots=2, region=64, interleaved=False, l1=(16, 4), l2=(32, 4)):
    btb = RegionBTB(
        BTBGeometry(*l1),
        BTBGeometry(*l2),
        slots_per_entry=slots,
        region_bytes=region,
        interleaved=interleaved,
    )
    return btb, PredictionEngine()


def test_validates_args():
    with pytest.raises(ValueError):
        fresh(region=96)
    with pytest.raises(ValueError):
        fresh(slots=0)


def test_access_stops_at_region_boundary():
    btb, eng = fresh()
    tr = make_trace(straight(0x100, 40))
    acc = btb.scan(0x110, 0, tr, eng)  # unaligned start, 64B region
    assert acc.count == (0x140 - 0x110) // 4  # up to region end only
    assert acc.next_pc == 0x140


def test_unknown_taken_jump_misfetch_allocates_region_entry():
    tr = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400), 0x400])
    btb, eng = fresh()
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event == "misfetch"
    level, entry = btb.store.lookup(0x100)
    assert entry is not None and entry.slots[0].pc == 0x108


def test_trained_region_redirects():
    tr = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400)] + straight(0x400, 3))
    btb, eng = fresh()
    btb.scan(0x100, 0, tr, eng)
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event is None
    assert acc.next_pc == 0x400
    assert acc.count == 3


def test_slot_overflow_evicts_lru_branch():
    """A third taken branch in a 2-slot region displaces the LRU slot."""
    btb, eng = fresh(slots=2)
    seqs = [
        make_trace([(0x100, JMP, True, 0x400), 0x400]),
        make_trace([(0x104, JMP, True, 0x400), 0x400]),
        make_trace([(0x108, JMP, True, 0x400), 0x400]),
    ]
    for pc, tr in zip((0x100, 0x104, 0x108), seqs):
        btb.scan(pc, 0, tr, eng)
        btb.scan(pc, 0, tr, eng)  # make resident slots recently used
    level, entry = btb.store.lookup(0x100)
    assert len(entry.slots) == 2
    pcs = {s.pc for s in entry.slots}
    assert 0x108 in pcs  # newest survives
    assert len(pcs & {0x100, 0x104}) == 1  # one old slot displaced


def test_slot_miss_is_counted_as_btb_miss():
    btb, eng = fresh(slots=1)
    tr1 = make_trace([(0x100, JMP, True, 0x400), 0x400])
    tr2 = make_trace([(0x104, JMP, True, 0x400), 0x400])
    btb.scan(0x100, 0, tr1, eng)  # allocates slot for 0x100
    btb.scan(0x104, 0, tr2, eng)  # displaces, misfetch
    st = eng.stats
    assert st.get("misfetches") == 2
    assert st.get("btb_taken_l1_hits") == 0


def test_interleaved_chains_two_regions_when_second_l1_resident():
    btb, eng = fresh(interleaved=True)
    tr = make_trace(straight(0x100, 40))
    # Cold: second region not resident -> access ends at boundary.
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.count == 16
    # Make both regions resident via conditional branches that were taken
    # once on another path (allocates the region entries).
    t1 = make_trace([(0x13C, COND, True, 0x500), 0x500])
    t2 = make_trace([(0x17C, COND, True, 0x500), 0x500])
    btb.scan(0x13C, 0, t1, eng)
    btb.scan(0x17C, 0, t2, eng)
    # A straight-line walk from 0x100 now chains both resident regions.
    # (Drive the predictor towards not-taken for the two conditionals
    # first, so they don't redirect.)
    nt_walk = make_trace(
        straight(0x100, 15) + [(0x13C, COND, False, 0)]
        + straight(0x140, 15) + [(0x17C, COND, False, 0)] + [0x180]
    )
    for _ in range(8):
        btb.scan(0x100, 0, nt_walk, eng)
    acc2 = btb.scan(0x100, 0, nt_walk, eng)
    assert acc2.event is None
    assert acc2.count == 32
    assert acc2.next_pc == 0x180


def test_128b_regions_cover_32_instructions():
    btb, eng = fresh(region=128)
    tr = make_trace(straight(0x100, 64))
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.count == 32
    assert acc.next_pc == 0x180


def test_region_occupancy_metric():
    btb, eng = fresh(slots=4)
    tr = make_trace([(0x100, JMP, True, 0x400), 0x400])
    btb.scan(0x100, 0, tr, eng)
    assert btb.slot_occupancy(1) == 1.0
    assert btb.redundancy_ratio(1) == 1.0


def test_indirect_target_update_in_slot():
    from tests.conftest import IND

    btb, eng = fresh()
    t1 = make_trace([(0x100, IND, True, 0x400), 0x400])
    t2 = make_trace([(0x100, IND, True, 0x500), 0x500])
    btb.scan(0x100, 0, t1, eng)
    btb.scan(0x100, 0, t2, eng)
    _level, entry = btb.store.lookup(0x100)
    assert entry.slots[0].target == 0x500
