"""Unit tests for shared BTB machinery (TwoLevelStore, geometry)."""

import pytest

from repro.btb.base import (
    BTBGeometry,
    BranchSlot,
    L1_HIT,
    L2_HIT,
    MISS,
    TwoLevelStore,
    insert_sorted,
)


def store(l1=(2, 2), l2=(4, 2), shift=2):
    return TwoLevelStore(
        BTBGeometry(*l1), BTBGeometry(*l2) if l2 else None, index_shift=shift
    )


def test_miss_on_empty():
    s = store()
    level, entry = s.lookup(0x100)
    assert level == MISS and entry is None


def test_allocate_then_l1_hit():
    s = store()
    s.allocate(0x100, "e")
    level, entry = s.lookup(0x100)
    assert level == L1_HIT and entry == "e"


def test_l2_hit_promotes_to_l1():
    s = store(l1=(1, 1), l2=(8, 4))
    # Fill L1 with a conflicting entry so 0x100's entry lives only in L2.
    s.allocate(0x100, "a")
    s.allocate(0x104, "b")  # same L1 set (1 set), evicts "a" from L1
    level, entry = s.lookup(0x100)
    assert level == L2_HIT and entry == "a"
    # Promoted: next lookup is an L1 hit.
    level, entry = s.lookup(0x100)
    assert level == L1_HIT and entry == "a"


def test_inclusive_allocation():
    s = store()
    s.allocate(0x200, "x")
    key = 0x200 >> 2
    assert s.l2.lookup(key, key, touch=False) == "x"


def test_peek_l1_no_side_effects():
    s = store(l1=(1, 2))
    s.allocate(0x100, "a")
    assert s.peek_l1(0x100)
    assert not s.peek_l1(0x104)
    # peek must not promote: 0x104 absent from L1 still.
    assert not s.peek_l1(0x104)


def test_invalidate_drops_both_levels():
    s = store()
    s.allocate(0x300, "z")
    s.invalidate(0x300)
    level, entry = s.lookup(0x300)
    assert level == MISS


def test_single_level_store():
    s = store(l2=None)
    s.allocate(0x100, "only")
    assert s.lookup(0x100) == (L1_HIT, "only")
    s_missing = s.lookup(0x900)
    assert s_missing == (MISS, None)


def test_index_shift_separates_regions():
    s = TwoLevelStore(BTBGeometry(4, 2), BTBGeometry(8, 2), index_shift=6)
    s.allocate(0x100, "r1")
    # 0x120 shares the 64B region with 0x100 -> same entry key.
    assert s.lookup(0x120)[1] == "r1"
    assert s.lookup(0x140)[0] == MISS


def test_resident_entries_dedup():
    s = store()
    s.allocate(0x100, "e")
    entries = list(s.resident_entries())
    assert entries == ["e"]  # present in L1 and L2, yielded once


def test_level_entries():
    s = store()
    s.allocate(0x100, "e")
    assert list(s.level_entries(1)) == ["e"]
    assert list(s.level_entries(2)) == ["e"]


def test_geometry_scaled():
    g = BTBGeometry(512, 6)
    scaled = g.scaled(0.25)
    assert scaled.sets == 128 and scaled.ways == 6
    tiny = g.scaled(0.001)
    assert tiny.sets == 1


def test_insert_sorted_keeps_order():
    slots = []
    for pc in (0x108, 0x100, 0x104):
        insert_sorted(slots, BranchSlot(pc=pc, btype=1, target=0), key=lambda s: s.pc)
    assert [s.pc for s in slots] == [0x100, 0x104, 0x108]
