"""Unit tests for the MultiBlock BTB (§6.4)."""

import pytest

from repro.btb.base import BTBGeometry
from repro.btb.mbbtb import STABILITY_THRESHOLD, MultiBlockBTB
from repro.frontend.engine import PredictionEngine

from tests.conftest import CALL, COND, IND, JMP, RET, make_trace, straight


def fresh(slots=2, policy="allbr", block_insts=16, l1=(16, 4), l2=(32, 4), **kw):
    btb = MultiBlockBTB(
        BTBGeometry(*l1),
        BTBGeometry(*l2),
        slots_per_entry=slots,
        block_insts=block_insts,
        pull_policy=policy,
        **kw,
    )
    return btb, PredictionEngine()


def chain_trace():
    """block0 [0x100..] --jmp@0x108--> block1 [0x400..] --jmp@0x408--> 0x700."""
    return make_trace(
        straight(0x100, 2)
        + [(0x108, JMP, True, 0x400)]
        + straight(0x400, 2)
        + [(0x408, JMP, True, 0x700)]
        + straight(0x700, 4)
    )


def test_validates_args():
    with pytest.raises(ValueError):
        fresh(policy="bogus")
    with pytest.raises(ValueError):
        fresh(slots=0)


def test_uncond_pull_chains_blocks_in_one_access():
    btb, eng = fresh(slots=2, policy="uncond")
    tr = chain_trace()
    btb.scan(0x100, 0, tr, eng)  # misfetch at 0x108, allocate + pull
    # Second pass chains into the pulled block and learns 0x408 there.
    btb.scan(0x100, 0, tr, eng)
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event is None
    assert acc.blocks == 2        # chained through block1
    assert acc.count == 6         # both blocks' instructions in one access
    assert acc.next_pc == 0x700


def test_entry_layout_after_pull():
    btb, eng = fresh(slots=2, policy="uncond")
    tr = chain_trace()
    btb.scan(0x100, 0, tr, eng)
    btb.scan(0x100, 0, tr, eng)  # learns 0x408 while chained in block 1
    _lvl, entry = btb.store.lookup(0x100)
    assert entry is not None
    assert len(entry.blocks) == 2
    assert entry.blocks[1][0] == 0x400
    slot0 = entry.slots[0]
    assert slot0.pc == 0x108 and slot0.follow and slot0.blk_id == 0
    slot1 = entry.slots[1]
    assert slot1.pc == 0x408 and slot1.blk_id == 1


def test_last_slot_never_pulls_by_default():
    btb, eng = fresh(slots=1, policy="uncond")
    tr = chain_trace()
    btb.scan(0x100, 0, tr, eng)
    _lvl, entry = btb.store.lookup(0x100)
    # Single slot = the last slot: pulling is disallowed (§6.4.2).
    assert not entry.slots[0].follow
    assert len(entry.blocks) == 1


def test_pull_last_slot_ablation_enables_pull():
    btb, eng = fresh(slots=1, policy="uncond", pull_last_slot=True)
    tr = chain_trace()
    btb.scan(0x100, 0, tr, eng)
    _lvl, entry = btb.store.lookup(0x100)
    assert entry.slots[0].follow
    assert len(entry.blocks) == 2


def test_calls_pull_only_with_calldir_policy():
    tr = make_trace(
        straight(0x100, 2) + [(0x108, CALL, True, 0x400)] + straight(0x400, 4)
    )
    for policy, expect in (("uncond", False), ("calldir", True), ("allbr", True)):
        btb, eng = fresh(slots=2, policy=policy)
        btb.scan(0x100, 0, tr, eng)
        _lvl, entry = btb.store.lookup(0x100)
        assert entry.slots[0].follow == expect, policy


def test_returns_never_pull():
    tr = make_trace(
        straight(0x100, 2) + [(0x108, RET, True, 0x400)] + straight(0x400, 2)
    )
    btb, eng = fresh(slots=2, policy="allbr")
    eng.ras.push(0x400)
    btb.scan(0x100, 0, tr, eng)
    _lvl, entry = btb.store.lookup(0x100)
    assert not entry.slots[0].follow


def test_conditional_pull_immediate_under_allbr():
    tr = make_trace(
        straight(0x100, 2) + [(0x108, COND, True, 0x400)] + straight(0x400, 3)
    )
    btb, eng = fresh(slots=2, policy="allbr")
    btb.scan(0x100, 0, tr, eng)
    _lvl, entry = btb.store.lookup(0x100)
    assert entry.slots[0].follow
    assert entry.blocks[1][0] == 0x400


def test_conditional_downgrade_on_not_taken():
    taken = make_trace(
        straight(0x100, 2) + [(0x108, COND, True, 0x400)] + straight(0x400, 3)
    )
    not_taken = make_trace(
        straight(0x100, 2) + [(0x108, COND, False, 0)] + straight(0x10C, 3)
    )
    btb, eng = fresh(slots=2, policy="allbr")
    btb.scan(0x100, 0, taken, eng)
    _lvl, entry = btb.store.lookup(0x100)
    assert entry.slots[0].follow
    btb.scan(0x100, 0, not_taken, eng)  # §6.4.3 immediate downgrade
    assert not entry.slots[0].follow
    assert len(entry.blocks) == 1
    # A once-not-taken conditional is never pulled again.
    btb.scan(0x100, 0, taken, eng)
    assert not entry.slots[0].follow


def test_indirect_needs_stability_threshold():
    tr = make_trace(
        straight(0x100, 2) + [(0x108, IND, True, 0x400)] + straight(0x400, 3)
    )
    btb, eng = fresh(slots=2, policy="allbr")
    btb.scan(0x100, 0, tr, eng)
    _lvl, entry = btb.store.lookup(0x100)
    slot = entry.slots[0]
    assert not slot.follow
    # Re-observe the same target until the 6-bit counter saturates.
    for _ in range(STABILITY_THRESHOLD + 1):
        btb.scan(0x100, 0, tr, eng)
    assert slot.stabl_ctr >= STABILITY_THRESHOLD
    assert slot.follow


def test_indirect_target_change_resets_and_unpulls():
    t1 = make_trace(
        straight(0x100, 2) + [(0x108, IND, True, 0x400)] + straight(0x400, 3)
    )
    t2 = make_trace(
        straight(0x100, 2) + [(0x108, IND, True, 0x500)] + straight(0x500, 3)
    )
    btb, eng = fresh(slots=2, policy="allbr")
    for _ in range(STABILITY_THRESHOLD + 2):
        btb.scan(0x100, 0, t1, eng)
    _lvl, entry = btb.store.lookup(0x100)
    slot = entry.slots[0]
    assert slot.follow
    btb.scan(0x100, 0, t2, eng)
    assert not slot.follow
    assert slot.stabl_ctr == 0
    assert slot.target == 0x500
    assert len(entry.blocks) == 1


def test_split_on_overflow_keeps_path_prefix():
    btb, eng = fresh(slots=1, policy="uncond")
    t1 = make_trace([(0x100, COND, True, 0x400), 0x400])
    t2 = make_trace([(0x100, COND, False, 0), (0x104, JMP, True, 0x500), 0x500])
    btb.scan(0x100, 0, t1, eng)
    for _ in range(6):
        btb.scan(0x100, 0, t2, eng)
    _lvl, entry = btb.store.lookup(0x100)
    assert [s.pc for s in entry.slots] == [0x100]
    assert entry.split
    assert entry.blocks[0][1] == 1  # shrunk to one instruction
    _lvl2, spilled = btb.store.lookup(0x104)
    assert spilled is not None and spilled.slots[0].pc == 0x104


def test_chain_capacity_bounded_by_slots_plus_one():
    btb, eng = fresh(slots=2, policy="uncond")
    # 0x100 -> 0x400 -> 0x700 -> 0xA00: three jumps but only slots+1=3 blocks.
    tr = make_trace(
        [(0x100, JMP, True, 0x400)]
        + [(0x400, JMP, True, 0x700)]
        + [(0x700, JMP, True, 0xA00)]
        + straight(0xA00, 2)
    )
    for start, idx in ((0x100, 0), (0x400, 1), (0x700, 2)):
        btb.scan(start, idx, tr, eng)
    btb.scan(0x100, 0, tr, eng)
    _lvl, entry = btb.store.lookup(0x100)
    assert len(entry.blocks) <= 3


def test_mb_redundancy_metric_counts_duplicates():
    btb, eng = fresh(slots=2)
    t_a = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400), 0x400])
    t_b = make_trace([0x104, (0x108, JMP, True, 0x400), 0x400])
    btb.scan(0x100, 0, t_a, eng)
    btb.scan(0x104, 0, t_b, eng)
    assert btb.redundancy_ratio(1) == pytest.approx(2.0)
