"""Unit tests for the Instruction BTB's scan semantics."""

import pytest

from repro.btb.base import BTBGeometry
from repro.btb.ibtb import InstructionBTB
from repro.frontend.engine import PredictionEngine

from tests.conftest import CALL, COND, IND, JMP, RET, make_trace, straight


def fresh(width=16, skip=False, l1=(64, 4), l2=(128, 4)):
    btb = InstructionBTB(
        BTBGeometry(*l1), BTBGeometry(*l2), width=width, skip_taken=skip
    )
    return btb, PredictionEngine()


def test_sequential_run_covers_width():
    btb, eng = fresh(width=8)
    tr = make_trace(straight(0x100, 20))
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.count == 8
    assert acc.next_pc == 0x100 + 8 * 4
    assert acc.event is None


def test_unknown_taken_jump_is_misfetch_then_learned():
    tr = make_trace(straight(0x100, 3) + [(0x10C, JMP, True, 0x400)] + straight(0x400, 4))
    btb, eng = fresh()
    first = btb.scan(0x100, 0, tr, eng)
    assert first.event == "misfetch"
    assert first.event_index == 3
    assert first.count == 4  # includes the faulting branch
    # Trained: a second pass redirects with 0 bubbles.
    second = btb.scan(0x100, 0, tr, eng)
    assert second.event is None
    assert second.next_pc == 0x400
    assert second.bubbles == 0


def test_access_ends_at_predicted_taken_branch():
    tr = make_trace(
        straight(0x100, 2) + [(0x108, JMP, True, 0x300)] + straight(0x300, 6)
    )
    btb, eng = fresh()
    btb.scan(0x100, 0, tr, eng)  # train
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.count == 3  # run stops after the taken branch
    assert acc.next_pc == 0x300


def test_skip_mode_continues_across_taken_branches():
    steps = (
        straight(0x100, 2)
        + [(0x108, JMP, True, 0x300)]
        + straight(0x300, 2)
        + [(0x308, JMP, True, 0x500)]
        + straight(0x500, 10)
    )
    tr = make_trace(steps)
    btb, eng = fresh(skip=True)
    btb.scan(0x100, 0, tr, eng)  # misfetch on first unknown jump
    btb.scan(0x300, 3, tr, eng)  # learn second jump
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event is None
    assert acc.count == 16  # full width across two redirects
    assert acc.blocks == 3


def test_never_taken_conditional_not_allocated():
    tr = make_trace([(0x100, COND, False, 0)] + straight(0x104, 3))
    btb, eng = fresh()
    btb.scan(0x100, 0, tr, eng)
    assert len(btb.store.l1) == 0


def test_taken_conditional_allocates():
    tr = make_trace([(0x100, COND, True, 0x200)] + straight(0x200, 2))
    btb, eng = fresh()
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event == "mispredict"  # untracked taken conditional
    assert len(btb.store.l1) == 1


def test_indirect_redirect_adds_bubble():
    tr = make_trace(
        [(0x100, IND, True, 0x700)] + straight(0x700, 2)
    )
    btb, eng = fresh()
    btb.scan(0x100, 0, tr, eng)  # allocate + train indirect predictor
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event is None
    assert acc.bubbles == 1  # non-return indirect: +1 bubble


def test_return_uses_ras():
    tr = make_trace(
        [(0x100, CALL, True, 0x500)]
        + straight(0x500, 2)
        + [(0x508, RET, True, 0x104)]
        + straight(0x104, 2)
    )
    btb, eng = fresh()
    # First pass: call misfetch.
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event == "misfetch"
    # Continue after the call: returns resolve against the pushed RAS entry.
    acc2 = btb.scan(0x500, 1, tr, eng)
    assert acc2.event == "misfetch"  # return unknown to BTB, RAS correct
    # Retrain pass: everything known now.
    eng2_acc = btb.scan(0x100, 0, tr, eng)
    assert eng2_acc.event is None
    assert eng2_acc.next_pc == 0x500


def test_l2_hit_costs_three_bubbles():
    # L1 with a single set/way so a second branch evicts the first to L2.
    tr = make_trace(
        straight(0x100, 1)
        + [(0x104, JMP, True, 0x300)]
        + [(0x300, JMP, True, 0x500)]
        + straight(0x500, 2)
    )
    btb, eng = fresh(l1=(1, 1), l2=(64, 4))
    btb.scan(0x100, 0, tr, eng)   # misfetch on 0x104, allocates
    btb.scan(0x300, 2, tr, eng)   # misfetch on 0x300, allocates, evicts 0x104 to L2
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event is None
    assert acc.bubbles == 3  # L2 hit redirect


def test_slot_occupancy_and_redundancy_are_unity():
    tr = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x300), 0x300])
    btb, eng = fresh()
    btb.scan(0x100, 0, tr, eng)
    assert btb.slot_occupancy(1) == 1.0
    assert btb.redundancy_ratio(1) == 1.0
