"""Property-based tests on the BTB scan contract, for all organizations.

A scan must always make forward progress along the correct path, never
cover more instructions than remain, and end with a next PC that matches
the trace — regardless of the (randomized) control flow it sees. Once a
deterministic control-flow loop has been seen a few times, a trained BTB
must drive a full pass without misfetches.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btb.base import BTBGeometry
from repro.btb.bbtb import BlockBTB
from repro.btb.hetero import HeterogeneousBTB
from repro.btb.ibtb import InstructionBTB
from repro.btb.mbbtb import MultiBlockBTB
from repro.btb.rbtb import RegionBTB
from repro.common.types import ILEN, BranchType
from repro.frontend.engine import PredictionEngine
from repro.trace.trace import Trace

GEOM = (BTBGeometry(16, 4), BTBGeometry(32, 4))

#: Fully-associative geometry: the synthetic 0x1000-strided layout would
#: otherwise alias every block start into one set (a genuine conflict-miss
#: phenomenon, but it breaks the trained-implies-no-misfetch property).
FA_GEOM = (BTBGeometry(1, 64), BTBGeometry(1, 128))


def make_btbs(geom=GEOM):
    return [
        InstructionBTB(*geom, width=16),
        RegionBTB(*geom, slots_per_entry=2),
        BlockBTB(*geom, slots_per_entry=1, splitting=True),
        MultiBlockBTB(*geom, slots_per_entry=2, pull_policy="allbr"),
        HeterogeneousBTB(*geom, l1_slots=1, l2_slots=2),
    ]


@st.composite
def random_trace(draw):
    """A random but *consistent* control-flow trace.

    Built from a random static layout: code regions at 0x1000 * k, each a
    run of instructions ending in an unconditional jump to another
    region; the dynamic trace follows the jumps. Static consistency (one
    PC = one instruction) is guaranteed by deriving everything from the
    layout.
    """
    n_regions = draw(st.integers(min_value=2, max_value=6))
    lengths = [draw(st.integers(min_value=1, max_value=12)) for _ in range(n_regions)]
    succ = [draw(st.integers(min_value=0, max_value=n_regions - 1)) for _ in range(n_regions)]
    steps = draw(st.integers(min_value=3, max_value=30))
    tr = Trace(name="prop")
    region = 0
    for _ in range(steps):
        base = 0x1000 * (region + 1)
        for k in range(lengths[region]):
            tr.append(pc=base + k * ILEN)
        next_region = succ[region]
        tr.append(
            pc=base + lengths[region] * ILEN,
            btype=BranchType.UNCOND_DIRECT,
            taken=True,
            target=0x1000 * (next_region + 1),
        )
        region = next_region
    # Terminate with a straight run so the final scan has room.
    base = 0x1000 * (region + 1)
    for k in range(lengths[region]):
        tr.append(pc=base + k * ILEN)
    tr.validate()
    return tr


@settings(max_examples=25, deadline=None)
@given(random_trace())
def test_scan_progress_and_consistency(tr):
    n = len(tr)
    for btb in make_btbs():
        eng = PredictionEngine()
        idx = 0
        guard = 0
        while idx < n:
            access = btb.scan(tr.pc[idx], idx, tr, eng)
            assert access.count >= 1, f"{btb.name} made no progress"
            assert idx + access.count <= n, f"{btb.name} overran the trace"
            if access.event is None and idx + access.count < n:
                assert access.next_pc == tr.pc[idx + access.count], btb.name
                assert access.bubbles >= 0
            idx += access.count
            guard += 1
            assert guard <= 4 * n, f"{btb.name} wedged"


@settings(max_examples=15, deadline=None)
@given(random_trace())
def test_trained_btb_stops_misfetching(tr):
    """After enough passes over a deterministic unconditional-jump trace,
    no organization should misfetch any more (fully-associative BTBs so
    set-conflict thrashing cannot mask the training)."""
    n = len(tr)
    for btb in make_btbs(FA_GEOM):
        eng = PredictionEngine()
        for _pass in range(3):
            idx = 0
            while idx < n:
                access = btb.scan(tr.pc[idx], idx, tr, eng)
                idx += access.count
        before = eng.stats.get("misfetches")
        idx = 0
        while idx < n:
            access = btb.scan(tr.pc[idx], idx, tr, eng)
            idx += access.count
        after = eng.stats.get("misfetches")
        assert after == before, f"{btb.name} still misfetching when trained"


@settings(max_examples=15, deadline=None)
@given(random_trace())
def test_redundancy_at_least_one_when_populated(tr):
    for btb in make_btbs():
        eng = PredictionEngine()
        idx = 0
        while idx < len(tr):
            idx += btb.scan(tr.pc[idx], idx, tr, eng).count
        occ = btb.slot_occupancy(1)
        red = btb.redundancy_ratio(1)
        assert occ >= 0.0
        if red:
            assert red >= 1.0
