"""Unit tests for the heterogeneous (B-BTB L1 / R-BTB L2) hierarchy."""

import pytest

from repro.btb.base import BTBGeometry
from repro.btb.hetero import HeterogeneousBTB
from repro.frontend.engine import PredictionEngine

from tests.conftest import COND, JMP, make_trace, straight


def fresh(l1_slots=1, l2_slots=4, l1=(8, 4), l2=(16, 4), **kw):
    btb = HeterogeneousBTB(
        BTBGeometry(*l1), BTBGeometry(*l2),
        l1_slots=l1_slots, l2_slots=l2_slots, **kw,
    )
    return btb, PredictionEngine()


def test_validates_args():
    with pytest.raises(ValueError):
        fresh(l1_slots=0)
    with pytest.raises(ValueError):
        fresh(region_bytes=100)
    with pytest.raises(ValueError):
        fresh(slot_policy="bogus")


def test_taken_branch_trains_both_levels():
    btb, eng = fresh()
    tr = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400), 0x400])
    btb.scan(0x100, 0, tr, eng)
    assert btb._l1_lookup(0x100) is not None
    region = btb._l2_region(0x100)
    assert region is not None
    assert region.slots[0].pc == 0x108


def test_l1_hit_redirects_with_zero_bubbles():
    btb, eng = fresh()
    tr = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400)] + straight(0x400, 2))
    btb.scan(0x100, 0, tr, eng)
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event is None and acc.bubbles == 0
    assert acc.next_pc == 0x400


def test_block_synthesis_from_l2_regions():
    """After the L1 entry is evicted, the L2 region data reconstructs it
    (fill-by-reconstruction), at the 3-bubble L2 redirect cost."""
    btb, eng = fresh(l1=(1, 1))  # single-entry L1: trivially evictable
    tr1 = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400)] + straight(0x400, 2))
    tr2 = make_trace(straight(0x200, 1) + [(0x204, JMP, True, 0x500), 0x500])
    btb.scan(0x100, 0, tr1, eng)
    btb.scan(0x200, 0, tr2, eng)  # evicts 0x100's block from L1
    assert btb._l1_lookup(0x100) is None
    acc = btb.scan(0x100, 0, tr1, eng)
    assert acc.event is None
    assert acc.next_pc == 0x400
    assert acc.bubbles == 3  # redirect served from L2 data
    # The synthesized block was installed back into the L1.
    assert btb._l1_lookup(0x100) is not None


def test_synthesis_spans_two_regions():
    """A block crossing a 64B region boundary gathers slots from both
    covering region entries."""
    btb, eng = fresh(l1_slots=2, l1=(1, 1))
    tr = make_trace(
        [0x130, (0x134, COND, True, 0x400), 0x400]
    )
    tr2 = make_trace(
        [0x130, (0x134, COND, False, 0)] + straight(0x138, 4)
        + [(0x148, JMP, True, 0x500), 0x500]
    )
    btb.scan(0x130, 0, tr, eng)   # branch in region 0x100
    for _ in range(6):
        btb.scan(0x130, 0, tr2, eng)  # branch in region 0x140, same block
    # Evict the L1 block, then re-synthesize from both regions.
    evict = make_trace([(0x600, JMP, True, 0x700), 0x700])
    btb.scan(0x600, 0, evict, eng)
    assert btb._l1_lookup(0x130) is None
    block = btb._synthesize_block(0x130)
    assert block is not None
    assert {s.pc for s in block.slots} == {0x134, 0x148}


def test_l2_region_is_duplication_free():
    btb, eng = fresh()
    t_a = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400), 0x400])
    t_b = make_trace([0x104, (0x108, JMP, True, 0x400), 0x400])
    btb.scan(0x100, 0, t_a, eng)
    btb.scan(0x104, 0, t_b, eng)
    # L1 may hold two overlapping blocks; the L2 holds the branch once.
    assert btb.redundancy_ratio(2) == pytest.approx(1.0)


def test_l1_split_on_overflow():
    btb, eng = fresh(l1_slots=1)
    t1 = make_trace([(0x100, COND, True, 0x400), 0x400])
    t2 = make_trace([(0x100, COND, False, 0), (0x104, JMP, True, 0x500), 0x500])
    btb.scan(0x100, 0, t1, eng)
    for _ in range(6):
        btb.scan(0x100, 0, t2, eng)
    entry = btb._l1_lookup(0x100)
    assert entry.split
    assert entry.length == 1
    assert btb._l1_lookup(0x104) is not None


def test_l2_slot_overflow_uses_policy():
    btb, eng = fresh(l2_slots=1)
    t1 = make_trace([(0x100, JMP, True, 0x400), 0x400])
    t2 = make_trace([(0x104, JMP, True, 0x400), 0x400])
    btb.scan(0x100, 0, t1, eng)
    btb.scan(0x104, 0, t2, eng)
    region = btb._l2_region(0x100)
    assert len(region.slots) == 1
    assert region.slots[0].pc == 0x104


def test_runs_in_full_simulator():
    from repro.core.config import build_simulator, hetero_btb
    from repro.trace.workloads import get_trace

    sim = build_simulator(hetero_btb(1, 2), get_trace("db_oltp", 8000))
    result = sim.run(warmup=2000)
    assert result.ipc > 0.05
    assert "l2_slot_occupancy" in result.structure
