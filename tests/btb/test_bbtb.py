"""Unit tests for the Block BTB (incl. entry splitting, §6.3)."""

import pytest

from repro.btb.base import BTBGeometry
from repro.btb.bbtb import BlockBTB
from repro.frontend.engine import PredictionEngine

from tests.conftest import COND, JMP, make_trace, straight


def fresh(slots=2, block_insts=16, splitting=False, l1=(16, 4), l2=(32, 4)):
    btb = BlockBTB(
        BTBGeometry(*l1),
        BTBGeometry(*l2),
        slots_per_entry=slots,
        block_insts=block_insts,
        splitting=splitting,
    )
    return btb, PredictionEngine()


def test_validates_args():
    with pytest.raises(ValueError):
        fresh(slots=0)
    with pytest.raises(ValueError):
        fresh(block_insts=1)


def test_miss_speculates_sequentially_up_to_block_reach():
    btb, eng = fresh(block_insts=16)
    tr = make_trace(straight(0x100, 40))
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.count == 16
    assert acc.next_pc == 0x140
    assert acc.event is None


def test_block_entry_keyed_by_exact_start():
    btb, eng = fresh()
    tr = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400), 0x400])
    btb.scan(0x100, 0, tr, eng)  # allocates block entry at 0x100
    assert btb.store.lookup(0x100)[1] is not None
    # A different entry point into the same code is a different block.
    assert btb.store.lookup(0x104)[1] is None


def test_redundancy_from_multiple_entry_points():
    """Fig. 2: two overlapping blocks track the same branch."""
    btb, eng = fresh()
    t_a = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400), 0x400])
    t_b = make_trace([0x104, (0x108, JMP, True, 0x400), 0x400])
    btb.scan(0x100, 0, t_a, eng)
    btb.scan(0x104, 0, t_b, eng)
    assert btb.redundancy_ratio(1) == pytest.approx(2.0)


def test_trained_block_redirects_with_no_bubbles():
    btb, eng = fresh()
    tr = make_trace(straight(0x100, 2) + [(0x108, JMP, True, 0x400)] + straight(0x400, 3))
    btb.scan(0x100, 0, tr, eng)
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.event is None and acc.bubbles == 0
    assert acc.next_pc == 0x400 and acc.count == 3


def test_slot_replacement_without_splitting_loses_metadata():
    btb, eng = fresh(slots=1, splitting=False)
    # Two taken branches in one block starting at 0x100.
    t = make_trace(
        [(0x100, COND, True, 0x400), 0x400]
    )
    t2 = make_trace(
        [(0x100, COND, False, 0), (0x104, JMP, True, 0x500), 0x500]
    )
    btb.scan(0x100, 0, t, eng)   # slot <- 0x100
    # Until the predictor flips to not-taken for 0x100, the access ends
    # in a mispredict before 0x104 is ever reached; retrain a few times.
    for _ in range(6):
        btb.scan(0x100, 0, t2, eng)
    _lvl, entry = btb.store.lookup(0x100)
    assert len(entry.slots) == 1
    assert entry.slots[0].pc == 0x104
    assert not entry.split


def test_splitting_preserves_both_branches():
    btb, eng = fresh(slots=1, splitting=True)
    t = make_trace([(0x100, COND, True, 0x400), 0x400])
    t2 = make_trace([(0x100, COND, False, 0), (0x104, JMP, True, 0x500), 0x500])
    btb.scan(0x100, 0, t, eng)
    for _ in range(6):  # retrain 0x100 towards not-taken, then overflow
        btb.scan(0x100, 0, t2, eng)
    _lvl, first = btb.store.lookup(0x100)
    assert first.split
    assert [s.pc for s in first.slots] == [0x100]
    assert first.length == 1  # ends right after the kept branch
    _lvl2, second = btb.store.lookup(0x104)
    assert second is not None
    assert [s.pc for s in second.slots] == [0x104]


def test_split_entry_walk_ends_at_split_boundary():
    btb, eng = fresh(slots=1, splitting=True)
    t = make_trace([(0x100, COND, True, 0x400), 0x400])
    t2 = make_trace([(0x100, COND, False, 0), (0x104, JMP, True, 0x500), 0x500])
    btb.scan(0x100, 0, t, eng)
    btb.scan(0x100, 0, t2, eng)
    # Drive the predictor to not-taken for 0x100, then walk: the access
    # must stop at the split boundary (one instruction).
    for _ in range(6):
        btb.scan(0x100, 0, t2, eng)
    acc = btb.scan(0x100, 0, t2, eng)
    assert acc.count == 1
    assert acc.next_pc == 0x104


def test_split_merges_into_existing_fallthrough_entry():
    btb, eng = fresh(slots=1, splitting=True)
    # Pre-create an entry at the future split point 0x104.
    pre = make_trace([(0x104, JMP, True, 0x500), 0x500])
    btb.scan(0x104, 0, pre, eng)
    t = make_trace([(0x100, COND, True, 0x400), 0x400])
    btb.scan(0x100, 0, t, eng)
    # Now overflow the 0x100 entry with a second branch at 0x108.
    t2 = make_trace(
        [(0x100, COND, False, 0), (0x104, JMP, True, 0x500), 0x500]
    )
    for _ in range(6):
        btb.scan(0x100, 0, t2, eng)
    _lvl, fall = btb.store.lookup(0x104)
    assert fall is not None
    assert {s.pc for s in fall.slots} == {0x104}


def test_larger_blocks_extend_reach():
    btb, eng = fresh(block_insts=32)
    tr = make_trace(straight(0x100, 64))
    acc = btb.scan(0x100, 0, tr, eng)
    assert acc.count == 32


def test_occupancy_metric():
    btb, eng = fresh(slots=2)
    t = make_trace([(0x100, COND, True, 0x400), 0x400])
    btb.scan(0x100, 0, t, eng)
    assert btb.slot_occupancy(1) == pytest.approx(1.0)
