"""White-box tests of MB-BTB entry maintenance (§6.4.3 mechanics)."""

import pytest

from repro.btb.base import BTBGeometry, BranchSlot
from repro.btb.mbbtb import MBEntry, MultiBlockBTB
from repro.common.types import BranchType


def fresh(slots=2, policy="allbr", **kw):
    return MultiBlockBTB(
        BTBGeometry(16, 4), BTBGeometry(32, 4),
        slots_per_entry=slots, pull_policy=policy, **kw,
    )


def chained_entry():
    """entry at 0x100: block0 [0x100,+16) term jmp@0x108 -> block1 at
    0x400 [+16) term jmp@0x408 -> block2 at 0x700."""
    entry = MBEntry(start=0x100)
    entry.blocks = [(0x100, 16), (0x400, 16), (0x700, 16)]
    s0 = BranchSlot(pc=0x108, btype=BranchType.UNCOND_DIRECT, target=0x400,
                    blk_id=0, follow=True)
    s1 = BranchSlot(pc=0x408, btype=BranchType.UNCOND_DIRECT, target=0x700,
                    blk_id=1, follow=True)
    entry.slots = [s0, s1]
    return entry, s0, s1


def test_truncate_drops_tail_blocks_and_slots():
    btb = fresh()
    entry, s0, s1 = chained_entry()
    btb._truncate(entry, 1)
    assert entry.blocks == [(0x100, 16)]
    assert entry.slots == [s0]
    assert not s0.follow  # pulled block 1 is gone


def test_truncate_mid_chain_keeps_prefix():
    btb = fresh()
    entry, s0, s1 = chained_entry()
    btb._truncate(entry, 2)
    assert entry.blocks == [(0x100, 16), (0x400, 16)]
    assert entry.slots == [s0, s1]
    assert s0.follow         # block 1 still present
    assert not s1.follow     # its pulled block 2 dropped


def test_truncate_beyond_chain_is_noop():
    btb = fresh()
    entry, s0, s1 = chained_entry()
    btb._truncate(entry, 5)
    assert len(entry.blocks) == 3
    assert s0.follow and s1.follow


def test_may_pull_requires_terminator_position():
    btb = fresh(slots=3)
    entry = MBEntry(start=0x100)
    entry.blocks = [(0x100, 16)]
    early = BranchSlot(pc=0x104, btype=BranchType.UNCOND_DIRECT, target=0x400, blk_id=0)
    late = BranchSlot(pc=0x108, btype=BranchType.COND_DIRECT, target=0x500, blk_id=0)
    entry.slots = [early, late]
    # 'early' is not the last slot in path order: it must not pull.
    assert not btb._may_pull(entry, early)
    assert btb._may_pull(entry, late)


def test_may_pull_respects_chain_capacity():
    btb = fresh(slots=2)
    entry, s0, s1 = chained_entry()  # already at slots+1 = 3 blocks
    extra = BranchSlot(pc=0x708, btype=BranchType.UNCOND_DIRECT, target=0x900, blk_id=2)
    entry.slots.append(extra)
    assert not btb._may_pull(entry, extra)


def test_path_position_and_block_end():
    entry, s0, s1 = chained_entry()
    assert entry.path_position(s0) == 0
    assert entry.path_position(s1) == 1
    assert entry.block_end(0) == 0x100 + 64
    assert entry.block_end(2) == 0x700 + 64
    assert entry.find(1, 0x408) is s1
    assert entry.find(0, 0x408) is None


def test_eligible_types_per_policy():
    cases = {
        "uncond": {BranchType.UNCOND_DIRECT},
        "calldir": {BranchType.UNCOND_DIRECT, BranchType.CALL_DIRECT},
        "allbr": {
            BranchType.UNCOND_DIRECT,
            BranchType.CALL_DIRECT,
            BranchType.COND_DIRECT,
            BranchType.INDIRECT,
            BranchType.CALL_INDIRECT,
        },
    }
    for policy, expected in cases.items():
        btb = fresh(policy=policy)
        eligible = {
            bt for bt in BranchType
            if bt != BranchType.NONE and btb._eligible_type(bt)
        }
        assert eligible == expected, policy
        assert not btb._eligible_type(BranchType.RETURN)
