"""Unit tests for the R-BTB shared overflow storage (§3.5)."""

import pytest

from repro.btb.base import BTBGeometry
from repro.btb.rbtb import RegionBTB
from repro.frontend.engine import PredictionEngine

from tests.conftest import JMP, make_trace


def fresh(slots=1, overflow=4, l1=(16, 4), l2=(32, 4), **kw):
    btb = RegionBTB(
        BTBGeometry(*l1), BTBGeometry(*l2),
        slots_per_entry=slots, overflow_entries=overflow, **kw,
    )
    return btb, PredictionEngine()


def train_jump(btb, eng, pc, target=0x900):
    tr = make_trace([(pc, JMP, True, target), target])
    btb.scan(pc, 0, tr, eng)
    return tr


def test_validates_args():
    with pytest.raises(ValueError):
        fresh(overflow=-1)


def test_displaced_branch_lands_in_overflow():
    btb, eng = fresh(slots=1)
    train_jump(btb, eng, 0x100)
    train_jump(btb, eng, 0x104)  # displaces 0x100 into overflow
    assert btb.overflow.lookup(0x100, 0x100, touch=False) is not None


def test_overflow_branch_still_predicts_with_extra_bubble():
    btb, eng = fresh(slots=1)
    t1 = train_jump(btb, eng, 0x100, 0x900)
    train_jump(btb, eng, 0x104, 0xA00)  # 0x100 spills
    acc = btb.scan(0x100, 0, t1, eng)
    assert acc.event is None           # no misfetch: overflow served it
    assert acc.next_pc == 0x900
    assert acc.bubbles == btb.overflow_bubble


def test_without_overflow_the_same_case_misfetches():
    btb, eng = fresh(slots=1, overflow=0)
    t1 = train_jump(btb, eng, 0x100, 0x900)
    train_jump(btb, eng, 0x104, 0xA00)
    acc = btb.scan(0x100, 0, t1, eng)
    assert acc.event == "misfetch"


def test_overflow_capacity_is_lru_bounded():
    btb, eng = fresh(slots=1, overflow=2)
    # Four branches through a 1-slot region: entry keeps the newest,
    # overflow keeps the 2 most recently displaced.
    for k in range(4):
        train_jump(btb, eng, 0x100 + 4 * k)
    assert len(btb.overflow) == 2
    assert btb.overflow.lookup(0x100, 0x100, touch=False) is None  # oldest gone
    assert btb.overflow.lookup(0x108, 0x108, touch=False) is not None


def test_overflow_requires_region_entry_hit():
    """The overflow is an extension of a resident entry, not a standalone
    BTB: with the region entry absent, overflow content is not consulted."""
    btb, eng = fresh(slots=1)
    t1 = train_jump(btb, eng, 0x100, 0x900)
    train_jump(btb, eng, 0x104, 0xA00)         # spills 0x100
    btb.store.invalidate(0x100)                # region entry gone
    assert btb.overflow.lookup(0x100, 0x100, touch=False) is not None
    acc = btb.scan(0x100, 0, t1, eng)
    assert acc.event == "misfetch"


def test_indirect_target_update_reaches_overflow_slot():
    from tests.conftest import IND

    btb, eng = fresh(slots=1)
    t1 = make_trace([(0x100, IND, True, 0x900), 0x900])
    btb.scan(0x100, 0, t1, eng)
    train_jump(btb, eng, 0x104)  # spill 0x100
    t2 = make_trace([(0x100, IND, True, 0xC00), 0xC00])
    btb.scan(0x100, 0, t2, eng)
    slot = btb.overflow.lookup(0x100, 0x100, touch=False)
    assert slot.target == 0xC00
