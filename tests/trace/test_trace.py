"""Unit tests for the Trace container."""

import pytest

from repro.common.types import BranchType
from repro.trace.trace import Trace

from tests.conftest import make_trace, straight


def test_append_and_len():
    tr = Trace()
    tr.append(pc=0x100)
    tr.append(pc=0x104, btype=BranchType.UNCOND_DIRECT, taken=True, target=0x200)
    assert len(tr) == 2
    assert tr.next_pc(0) == 0x104
    assert tr.next_pc(1) == 0x200


def test_validate_accepts_consistent_flow():
    tr = make_trace(
        straight(0x100, 3)
        + [(0x10C, BranchType.UNCOND_DIRECT, True, 0x200), 0x200]
    )
    tr.validate()


def test_validate_rejects_broken_flow():
    tr = Trace()
    tr.append(pc=0x100)
    tr.append(pc=0x200)  # not pc+4 and no branch
    with pytest.raises(ValueError):
        tr.validate()


def test_validate_rejects_taken_non_branch():
    tr = Trace()
    tr.pc = [0x100, 0x200]
    tr.btype = [0, 0]
    tr.taken = [1, 0]
    tr.target = [0x200, 0]
    for col in ("dst", "src1", "src2", "is_load", "is_store", "maddr"):
        setattr(tr, col, [0, 0])
    with pytest.raises(ValueError):
        tr.validate()


def test_validate_rejects_column_length_mismatch():
    tr = Trace()
    tr.append(pc=0x100)
    tr.maddr.append(0)  # now one column is longer
    with pytest.raises(ValueError):
        tr.validate()


def test_mean_basic_block_size():
    # 4 instructions per taken branch.
    steps = []
    pc = 0x100
    for _ in range(5):
        steps += straight(pc, 3)
        steps.append((pc + 12, BranchType.UNCOND_DIRECT, True, pc + 0x100))
        pc += 0x100
    tr = make_trace(steps + [pc])
    assert tr.mean_basic_block_size() == pytest.approx(21 / 5)


def test_mean_basic_block_size_no_taken():
    tr = make_trace(straight(0x100, 10))
    assert tr.mean_basic_block_size() == 10.0


def test_stats_counts_branch_kinds():
    tr = make_trace(
        [
            (0x100, BranchType.COND_DIRECT, False, 0),
            (0x104, BranchType.COND_DIRECT, True, 0x200),
            (0x200, BranchType.RETURN, True, 0x300),
            0x300,
        ]
    )
    st = tr.stats()
    assert st.get("branches") == 3
    assert st.get("taken_branches") == 2
    assert st.get("branches_cond_direct") == 2
    assert st.get("branches_return") == 1


def test_stats_never_taken_conditionals():
    # One conditional that is never taken (2 executions), one sometimes.
    tr = make_trace(
        [
            (0x100, BranchType.COND_DIRECT, False, 0),
            (0x104, BranchType.UNCOND_DIRECT, True, 0x100),
            (0x100, BranchType.COND_DIRECT, False, 0),
            0x104 + 0,
        ][:3]
        + [(0x104, BranchType.UNCOND_DIRECT, True, 0x200), 0x200]
    )
    st = tr.stats()
    assert st.get("never_taken_cond_dynamic") == 2


def test_slice_preserves_columns():
    tr = make_trace(straight(0x100, 8))
    sub = tr.slice(2, 5)
    assert len(sub) == 3
    assert sub.pc == [0x108, 0x10C, 0x110]


def test_save_load_roundtrip(tmp_path):
    tr = make_trace(
        straight(0x100, 3) + [(0x10C, BranchType.CALL_DIRECT, True, 0x500), 0x500]
    )
    tr.is_load[0] = 1
    tr.maddr[0] = 0xDEAD00
    path = str(tmp_path / "t.npz")
    tr.save(path)
    back = Trace.load(path)
    for col in Trace._COLUMNS:
        assert getattr(back, col) == getattr(tr, col), col
    back.validate()


def test_line_index_matches_per_pc_division():
    from repro.common.types import LINE_BYTES
    from repro.trace.workloads import get_trace

    tr = get_trace("web_frontend", 4_000)
    lines = tr.line_index()
    assert lines == [pc // LINE_BYTES for pc in tr.pc]
    assert tr.line_index() is lines  # cached


def test_line_index_recomputes_after_append():
    tr = Trace(name="t")
    tr.append(pc=0x1000)
    first = tr.line_index()
    assert first == [0x1000 // 64]
    tr.append(pc=0x1040)
    assert tr.line_index() == [0x1000 // 64, 0x1040 // 64]
