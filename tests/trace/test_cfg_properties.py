"""Property-based tests on the workload generator pipeline.

Any reasonable :class:`ProgramSpec` must produce a structurally valid
program whose walker emits a control-flow-consistent trace of the exact
requested length — the foundation every simulation rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import BranchType
from repro.trace.cfg import ProgramSpec, build_program
from repro.trace.synth import synthesize_trace


@st.composite
def specs(draw):
    return ProgramSpec(
        seed=draw(st.integers(min_value=0, max_value=2 ** 32)),
        n_functions=draw(st.integers(min_value=4, max_value=60)),
        n_levels=draw(st.integers(min_value=2, max_value=8)),
        blocks_per_function_mean=draw(st.integers(min_value=4, max_value=20)),
        block_body_mean=draw(st.floats(min_value=1.5, max_value=8.0)),
        loop_trips_mean=draw(st.integers(min_value=2, max_value=20)),
        dispatch_sites=draw(st.integers(min_value=1, max_value=5)),
        dispatch_fanout=draw(st.integers(min_value=1, max_value=16)),
    )


@settings(max_examples=20, deadline=None)
@given(specs(), st.integers(min_value=50, max_value=4000))
def test_generated_trace_is_valid(spec, length):
    program = build_program(spec)
    trace = synthesize_trace(program, length, seed=3)
    assert len(trace) == length
    trace.validate()  # control-flow consistency


@settings(max_examples=20, deadline=None)
@given(specs())
def test_program_structure_invariants(spec):
    program = build_program(spec)
    starts = set(program.block_at)
    entry_level = {f.entry_pc: f.level for f in program.functions}
    for func in program.functions:
        assert func.blocks[-1].term_type == BranchType.RETURN
        for a, b in zip(func.blocks, func.blocks[1:]):
            assert a.end_pc == b.start_pc
        for block in func.blocks:
            if block.term_type in (BranchType.COND_DIRECT, BranchType.UNCOND_DIRECT):
                assert block.taken_target in starts
            if block.term_type == BranchType.CALL_DIRECT:
                assert entry_level[block.taken_target] > func.level
            if block.indirect_behavior is not None:
                for t in block.indirect_behavior.targets:
                    assert t in starts


@settings(max_examples=10, deadline=None)
@given(specs())
def test_same_spec_same_program(spec):
    a = build_program(spec)
    b = build_program(spec)
    assert [f.entry_pc for f in a.functions] == [f.entry_pc for f in b.functions]
    sig = lambda p: [
        (blk.term_type, blk.taken_target, blk.ninsts)
        for f in p.functions
        for blk in f.blocks
    ]
    assert sig(a) == sig(b)
