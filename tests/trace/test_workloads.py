"""Calibration tests: the workload suite must stay in the paper's bands.

These tests pin the aggregate statistics DESIGN.md promises; if a
generator change drifts out of band, the reproduction claims break.
"""

import pytest

from repro.trace.workloads import (
    SERVER_SUITE,
    SMOKE_SUITE,
    WORKLOAD_SPECS,
    get_program,
    get_trace,
    suite_traces,
)

LENGTH = 60_000


@pytest.fixture(scope="module")
def suite_stats():
    out = {}
    for name in SERVER_SUITE:
        tr = get_trace(name, LENGTH)
        out[name] = (tr, tr.stats())
    return out


def test_suite_is_nonempty_and_contains_smoke():
    assert len(SERVER_SUITE) >= 10
    assert set(SMOKE_SUITE) <= set(SERVER_SUITE)


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        get_program("no_such_workload")


def test_traces_are_cached_identity():
    a = get_trace(SERVER_SUITE[0], LENGTH)
    b = get_trace(SERVER_SUITE[0], LENGTH)
    assert a is b


def test_mean_basic_block_sizes_span_paper_range(suite_stats):
    """Fig. 11a needs dynamic BB sizes spanning roughly 7..15, with the
    suite mean near the paper's 9.4."""
    sizes = [tr.mean_basic_block_size() for tr, _ in suite_stats.values()]
    mean = sum(sizes) / len(sizes)
    assert 8.0 <= mean <= 12.5
    assert min(sizes) < 8.5
    assert max(sizes) > 11.0


def test_branch_density_realistic(suite_stats):
    for name, (tr, st) in suite_stats.items():
        density = st.get("branches") / st.get("instructions")
        assert 0.08 <= density <= 0.33, name


def test_never_taken_conditionals_present(suite_stats):
    """Paper §2: ~34.8 % of dynamic branches are never-taken conditional
    branches; the suite average must be in a generous band around it."""
    shares = []
    for name, (tr, st) in suite_stats.items():
        shares.append(st.get("never_taken_cond_dynamic") / st.get("branches"))
    mean = sum(shares) / len(shares)
    assert 0.15 <= mean <= 0.45


def test_footprints_exceed_scaled_l1i(suite_stats):
    """Touched code must pressure the scaled 8 KB L1I (footprints keep
    growing with window length; this checks a 60 K-instruction window)."""
    foots = [st.get("code_footprint_bytes") for _, st in suite_stats.values()]
    assert min(foots) > 5 * 1024
    assert sum(foots) / len(foots) > 8 * 1024


def test_single_target_indirects_exist(suite_stats):
    total_ind = 0
    total_br = 0
    for name, (tr, st) in suite_stats.items():
        total_ind += st.get("branches_indirect", 0) + st.get("branches_call_indirect", 0)
        total_br += st.get("branches")
    assert 0.02 <= total_ind / total_br <= 0.25


def test_all_specs_build(suite_stats):
    for name in WORKLOAD_SPECS:
        assert get_program(name).static_instructions() > 1000


def test_suite_traces_helper():
    traces = suite_traces(2000, names=SMOKE_SUITE)
    assert [t.name for t in traces] == SMOKE_SUITE
    assert all(len(t) == 2000 for t in traces)
