"""Unit tests for the static program generator."""

import pytest

from repro.common.types import ILEN, BranchType
from repro.trace.cfg import CODE_BASE, ProgramSpec, build_program


def small_spec(**kw):
    base = dict(seed=5, n_functions=24, blocks_per_function_mean=8)
    base.update(kw)
    return ProgramSpec(**base)


@pytest.fixture(scope="module")
def program():
    return build_program(small_spec())


def test_block_layout_is_contiguous_within_functions(program):
    for func in program.functions:
        for a, b in zip(func.blocks, func.blocks[1:]):
            assert a.end_pc == b.start_pc


def test_block_map_covers_all_blocks(program):
    count = sum(len(f.blocks) for f in program.functions)
    assert len(program.block_at) == count
    for f in program.functions:
        for b in f.blocks:
            assert program.block_at[b.start_pc] is b


def test_all_branch_targets_are_block_starts(program):
    starts = set(program.block_at)
    for f in program.functions:
        for b in f.blocks:
            if b.taken_target and b.term_type != BranchType.RETURN:
                assert b.taken_target in starts
            if b.indirect_behavior is not None:
                for t in b.indirect_behavior.targets:
                    assert t in starts


def test_calls_go_strictly_deeper(program):
    """The call graph must be acyclic via levels (bounds walk depth)."""
    level_of = {}
    for f in program.functions:
        for b in f.blocks:
            for pc in [b.taken_target] if b.term_type == BranchType.CALL_DIRECT else []:
                level_of[pc] = None  # filled below
    entry_level = {f.entry_pc: f.level for f in program.functions}
    for f in program.functions:
        for b in f.blocks:
            if b.term_type == BranchType.CALL_DIRECT:
                assert entry_level[b.taken_target] > f.level
            if b.term_type == BranchType.CALL_INDIRECT:
                for t in b.indirect_behavior.targets:
                    assert entry_level[t] > f.level


def test_every_function_ends_with_return(program):
    for f in program.functions:
        assert f.blocks[-1].term_type == BranchType.RETURN


def test_conditionals_have_behaviour_and_target(program):
    for f in program.functions:
        for b in f.blocks:
            if b.term_type == BranchType.COND_DIRECT:
                assert b.cond_behavior is not None
                assert b.taken_target in program.block_at


def test_code_starts_at_base(program):
    assert program.functions[0].blocks[0].start_pc == CODE_BASE


def test_instruction_pcs_match_block_layout(program):
    for f in program.functions:
        for b in f.blocks:
            for k, inst in enumerate(b.insts):
                assert inst.pc == b.start_pc + k * ILEN


def test_dispatcher_shape(program):
    entry = program.entry
    spec_sites = small_spec().dispatch_sites
    icalls = [b for b in entry.blocks if b.term_type == BranchType.CALL_INDIRECT]
    assert len(icalls) == spec_sites
    assert entry.blocks[-1].term_type == BranchType.RETURN
    assert entry.blocks[-2].term_type == BranchType.COND_DIRECT
    # The loop back-edge returns to the first block.
    assert entry.blocks[-2].taken_target == entry.blocks[0].start_pc


def test_determinism_same_seed():
    a = build_program(small_spec())
    b = build_program(small_spec())
    assert [f.entry_pc for f in a.functions] == [f.entry_pc for f in b.functions]
    for fa, fb in zip(a.functions, b.functions):
        for ba, bb in zip(fa.blocks, fb.blocks):
            assert ba.term_type == bb.term_type
            assert ba.taken_target == bb.taken_target


def test_different_seed_differs():
    a = build_program(small_spec(seed=5))
    b = build_program(small_spec(seed=6))
    sig_a = [(blk.term_type, blk.ninsts) for f in a.functions for blk in f.blocks]
    sig_b = [(blk.term_type, blk.ninsts) for f in b.functions for blk in f.blocks]
    assert sig_a != sig_b


def test_heat_weights_positive(program):
    assert all(f.heat > 0 for f in program.functions)
    assert len({f.heat for f in program.functions}) > 1


def test_static_instruction_count_consistent(program):
    total = sum(b.ninsts for f in program.functions for b in f.blocks)
    assert program.static_instructions() == total
    assert total > 0
