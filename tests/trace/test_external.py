"""Unit tests for the external CSV trace format."""

import pytest

from repro.common.types import BranchType
from repro.trace.external import (
    TraceFormatError,
    load_trace_csv,
    save_trace_csv,
)
from repro.trace.workloads import get_trace

from tests.conftest import make_trace, straight


def write(tmp_path, text, name="t.csv"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_minimal_roundtrip(tmp_path):
    path = write(
        tmp_path,
        "pc,btype,taken,target\n"
        "0x100,NONE,0,0\n"
        "0x104,UNCOND_DIRECT,1,0x200\n"
        "0x200,NONE,0,0\n",
    )
    trace = load_trace_csv(path)
    assert trace.pc == [0x100, 0x104, 0x200]
    assert trace.btype[1] == BranchType.UNCOND_DIRECT
    assert trace.taken == [0, 1, 0]


def test_numeric_btype_and_decimal_pcs(tmp_path):
    path = write(
        tmp_path,
        "pc,btype,taken,target\n"
        f"256,0,0,0\n"
        f"260,{int(BranchType.COND_DIRECT)},1,512\n"
        "512,0,0,0\n",
    )
    trace = load_trace_csv(path)
    assert trace.btype[1] == BranchType.COND_DIRECT
    assert trace.target[1] == 512


def test_optional_columns_parsed(tmp_path):
    path = write(
        tmp_path,
        "pc,btype,taken,target,dst,src1,src2,is_load,is_store,maddr\n"
        "0x100,NONE,0,0,3,1,2,1,0,0x9000\n",
        )
    trace = load_trace_csv(path, validate=False)
    assert trace.dst[0] == 3 and trace.src1[0] == 1
    assert trace.is_load[0] == 1
    assert trace.maddr[0] == 0x9000


def test_missing_required_column_raises(tmp_path):
    path = write(tmp_path, "pc,btype,taken\n0x100,NONE,0\n")
    with pytest.raises(TraceFormatError, match="missing required"):
        load_trace_csv(path)


def test_bad_integer_raises_with_line_number(tmp_path):
    path = write(tmp_path, "pc,btype,taken,target\nzzz,NONE,0,0\n")
    with pytest.raises(TraceFormatError, match="line 2"):
        load_trace_csv(path)


def test_unknown_btype_name_raises(tmp_path):
    path = write(tmp_path, "pc,btype,taken,target\n0x100,FROB,0,0\n")
    with pytest.raises(TraceFormatError, match="unknown btype"):
        load_trace_csv(path)


def test_blank_and_comment_lines_skipped(tmp_path):
    path = write(
        tmp_path,
        "# hand-annotated trace\n"
        "\n"
        "pc,btype,taken,target\n"
        "0x100,NONE,0,0\n"
        "   \n"
        "# hot loop below\n"
        "0x104,UNCOND_DIRECT,1,0x200\n"
        "0x200,NONE,0,0\n"
        "\n",
    )
    trace = load_trace_csv(path)
    assert trace.pc == [0x100, 0x104, 0x200]


def test_error_line_numbers_account_for_skipped_lines(tmp_path):
    path = write(
        tmp_path,
        "# comment\n"
        "pc,btype,taken,target\n"
        "0x100,NONE,0,0\n"
        "\n"
        "zzz,NONE,0,0\n",  # physical line 5
    )
    with pytest.raises(TraceFormatError, match="line 5"):
        load_trace_csv(path)


def test_comment_only_file_raises(tmp_path):
    path = write(tmp_path, "# nothing but commentary\n\n# more\n")
    with pytest.raises(TraceFormatError, match="missing header"):
        load_trace_csv(path)


def test_empty_file_raises(tmp_path):
    path = write(tmp_path, "")
    with pytest.raises(TraceFormatError):
        load_trace_csv(path)


def test_inconsistent_control_flow_rejected(tmp_path):
    path = write(
        tmp_path,
        "pc,btype,taken,target\n0x100,NONE,0,0\n0x900,NONE,0,0\n",
    )
    with pytest.raises(TraceFormatError, match="inconsistent"):
        load_trace_csv(path)
    # ... unless validation is explicitly disabled.
    trace = load_trace_csv(path, validate=False)
    assert len(trace) == 2


def test_save_load_roundtrip_preserves_everything(tmp_path):
    original = make_trace(
        straight(0x100, 3)
        + [(0x10C, BranchType.CALL_DIRECT, True, 0x500)]
        + straight(0x500, 2)
    )
    original.is_load[1] = 1
    original.maddr[1] = 0xBEEF0
    path = str(tmp_path / "round.csv")
    save_trace_csv(original, path)
    back = load_trace_csv(path)
    for col in type(original)._COLUMNS:
        assert getattr(back, col) == getattr(original, col), col


def test_synthetic_workload_roundtrips_and_simulates(tmp_path):
    """End-to-end: export a synthetic trace, re-import it as 'external',
    and run it through the simulator."""
    from repro.core.config import build_simulator, ibtb

    original = get_trace("db_oltp", 4000)
    path = str(tmp_path / "wl.csv")
    save_trace_csv(original, path)
    back = load_trace_csv(path, name="imported")
    result = build_simulator(ibtb(16), back).run(warmup=1000)
    reference = build_simulator(ibtb(16), original).run(warmup=1000)
    assert result.cycles == reference.cycles


# -- header edge cases --------------------------------------------------------


def test_duplicated_header_column_raises_naming_path(tmp_path):
    path = write(tmp_path, "pc,btype,taken,target,pc\n0x100,NONE,0,0,0x100\n")
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(path)
    assert "duplicated column" in str(info.value)
    assert "pc" in str(info.value)
    assert str(path) in str(info.value)


def test_unknown_extra_column_raises_naming_path(tmp_path):
    """A typo'd column must not be silently ignored (its values would be
    defaulted); the error lists the known columns."""
    path = write(
        tmp_path, "pc,btype,taken,target,is_laod\n0x100,NONE,0,0,1\n"
    )
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(path)
    assert "unknown column" in str(info.value)
    assert "is_laod" in str(info.value)
    assert "known columns" in str(info.value)
    assert str(path) in str(info.value)


def test_header_only_file_raises_naming_path(tmp_path):
    path = write(tmp_path, "pc,btype,taken,target\n")
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(path)
    assert "no instructions" in str(info.value)
    assert str(path) in str(info.value)


# -- transparent compression --------------------------------------------------


def test_gzip_save_load_roundtrip(tmp_path):
    import gzip

    original = make_trace(
        straight(0x100, 2) + [(0x108, BranchType.COND_DIRECT, True, 0x300)]
        + straight(0x300, 1)
    )
    path = str(tmp_path / "t.csv.gz")
    save_trace_csv(original, path)
    # Really gzip on disk, not plain text with a flattering name.
    with open(path, "rb") as fh:
        assert fh.read(2) == b"\x1f\x8b"
    with gzip.open(path, "rt") as fh:
        assert fh.readline().startswith("pc,btype")
    back = load_trace_csv(path)
    for col in type(original)._COLUMNS:
        assert getattr(back, col) == getattr(original, col), col


def test_xz_save_load_roundtrip(tmp_path):
    original = make_trace(straight(0x100, 3))
    path = str(tmp_path / "t.csv.xz")
    save_trace_csv(original, path)
    back = load_trace_csv(path)
    assert back.pc == original.pc


def test_gzip_parse_error_names_path_and_line(tmp_path):
    import gzip

    path = str(tmp_path / "bad.csv.gz")
    with gzip.open(path, "wt") as fh:
        fh.write("pc,btype,taken,target\nzzz,NONE,0,0\n")
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(path)
    assert path in str(info.value)
    assert "line 2" in str(info.value)


def test_corrupt_gzip_raises_trace_format_error_with_path(tmp_path):
    path = tmp_path / "junk.csv.gz"
    path.write_bytes(b"this is not a gzip stream")
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(str(path))
    assert str(path) in str(info.value)


def test_truncated_gzip_raises_trace_format_error_with_path(tmp_path):
    import gzip

    good = tmp_path / "good.csv.gz"
    with gzip.open(str(good), "wt") as fh:
        fh.write("pc,btype,taken,target\n" + "0x100,NONE,0,0\n" * 500)
    data = good.read_bytes()
    bad = tmp_path / "trunc.csv.gz"
    bad.write_bytes(data[: len(data) // 2])
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(str(bad))
    assert str(bad) in str(info.value)


def test_corrupt_xz_raises_trace_format_error_with_path(tmp_path):
    path = tmp_path / "junk.csv.xz"
    path.write_bytes(b"definitely not xz")
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(str(path))
    assert str(path) in str(info.value)


# -- every error names the file path -----------------------------------------


def test_parse_error_message_includes_path(tmp_path):
    path = write(tmp_path, "pc,btype,taken,target\nzzz,NONE,0,0\n")
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(path)
    assert str(path) in str(info.value)
    assert "line 2" in str(info.value)


def test_validation_error_message_includes_path(tmp_path):
    path = write(
        tmp_path,
        "pc,btype,taken,target\n"
        "0x100,COND_DIRECT,1,0x200\n"
        "0x999,NONE,0,0\n",
    )
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(path)
    assert str(path) in str(info.value)


def test_missing_file_raises_trace_format_error_with_path(tmp_path):
    path = str(tmp_path / "nope.csv")
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(path)
    assert path in str(info.value)


def test_unreadable_directory_raises_trace_format_error(tmp_path):
    with pytest.raises(TraceFormatError) as info:
        load_trace_csv(str(tmp_path))
    assert str(tmp_path) in str(info.value)
