"""Unit tests for branch behaviour models."""

import pytest

from repro.common.rng import SplitMix
from repro.trace.behavior import (
    AlwaysTaken,
    BiasedRandom,
    IndirectBehavior,
    LoopBranch,
    NeverTaken,
    PatternBranch,
)


def rng():
    return SplitMix(99)


def test_never_and_always():
    r = rng()
    assert not any(NeverTaken().outcome(r) for _ in range(50))
    assert all(AlwaysTaken().outcome(r) for _ in range(50))


def test_loop_branch_fixed_trips():
    lb = LoopBranch(mean_trips=4, jitter=0)
    r = rng()
    outcomes = [lb.outcome(r) for _ in range(12)]
    # taken 3x, not-taken once, repeating.
    assert outcomes == [True, True, True, False] * 3


def test_loop_branch_single_trip_never_taken():
    lb = LoopBranch(mean_trips=1, jitter=0)
    r = rng()
    assert [lb.outcome(r) for _ in range(4)] == [False] * 4


def test_loop_branch_jitter_bounded():
    lb = LoopBranch(mean_trips=5, jitter=2)
    r = rng()
    for _ in range(40):
        run = 0
        while lb.outcome(r):
            run += 1
        assert 2 <= run + 1 <= 8  # trips within mean +/- jitter (>=1)


def test_loop_branch_reset_clears_state():
    lb = LoopBranch(mean_trips=5, jitter=0)
    r = rng()
    lb.outcome(r)
    lb.reset()
    outcomes = [lb.outcome(r) for _ in range(5)]
    assert outcomes == [True, True, True, True, False]


def test_loop_branch_rejects_bad_trips():
    with pytest.raises(ValueError):
        LoopBranch(mean_trips=0)


def test_biased_random_rough_rate():
    br = BiasedRandom(0.8)
    r = rng()
    taken = sum(br.outcome(r) for _ in range(4000))
    assert 0.74 < taken / 4000 < 0.86


def test_biased_random_validates_p():
    with pytest.raises(ValueError):
        BiasedRandom(1.5)


def test_pattern_branch_cycles():
    pb = PatternBranch([True, False, False])
    r = rng()
    assert [pb.outcome(r) for _ in range(6)] == [True, False, False] * 2
    pb.reset()
    assert pb.outcome(r) is True


def test_pattern_branch_rejects_empty():
    with pytest.raises(ValueError):
        PatternBranch([])


# -- indirect behaviours ---------------------------------------------------------

def test_indirect_single_target():
    ib = IndirectBehavior([0x100], IndirectBehavior.SINGLE)
    r = rng()
    assert all(ib.next_target(r) == 0x100 for _ in range(10))


def test_indirect_single_requires_one_target():
    with pytest.raises(ValueError):
        IndirectBehavior([1, 2], IndirectBehavior.SINGLE)


def test_indirect_round_robin_cycles():
    ib = IndirectBehavior([1, 2, 3], IndirectBehavior.ROUND_ROBIN)
    r = rng()
    assert [ib.next_target(r) for _ in range(6)] == [1, 2, 3, 1, 2, 3]


def test_indirect_random_targets_within_set():
    ib = IndirectBehavior([4, 5, 6], IndirectBehavior.RANDOM)
    r = rng()
    seen = {ib.next_target(r) for _ in range(100)}
    assert seen <= {4, 5, 6}
    assert len(seen) > 1


def test_indirect_sticky_holds_target_for_k_runs():
    ib = IndirectBehavior([1, 2, 3, 4], IndirectBehavior.STICKY, sticky_runs=5)
    r = rng()
    targets = [ib.next_target(r) for _ in range(20)]
    for batch_start in range(0, 20, 5):
        batch = targets[batch_start : batch_start + 5]
        assert len(set(batch)) == 1  # constant within a batch


def test_indirect_rejects_unknown_mode_and_empty_targets():
    with pytest.raises(ValueError):
        IndirectBehavior([1], "bogus")
    with pytest.raises(ValueError):
        IndirectBehavior([], IndirectBehavior.RANDOM)
    with pytest.raises(ValueError):
        IndirectBehavior([1], IndirectBehavior.STICKY, sticky_runs=0)
