"""Property tests for the columnar trace lowering and predictor plans.

The contract (docs/batched_kernels.md): :func:`lower_trace`'s derived
arrays round-trip *exactly* against reference iteration over the
:class:`Trace` — ``line_ix`` vs ``Trace.line_index``, ``next_pc`` vs
``Trace.next_pc``, ``next_br``/``run_end`` vs naive per-instruction
scans — for synthetic traces, for traces materialized from every corpus
ingestion format (CSV, ChampSim, CVP-1, gzip/xz-compressed), and for
empty/one-branch edge cases. :func:`build_predictor_plan` must match
the live :class:`PredictionEngine` decision-for-decision.
"""

import gzip
import lzma

import pytest

from repro.common.types import ILEN, BranchType
from repro.corpus import configure_corpus, load_corpus_trace
from repro.frontend.engine import PredictionEngine
from repro.trace.columnar import (
    BatchPlan,
    build_batch_plan,
    build_predictor_plan,
    geometry_for,
    lower_trace,
)
from repro.trace.external import save_trace_csv
from repro.trace.trace import Trace
from repro.trace.workloads import get_trace


@pytest.fixture
def store(tmp_path, monkeypatch):
    """An isolated corpus store that ``corpus:`` names resolve against."""
    root = tmp_path / "corpus"
    monkeypatch.setenv("REPRO_CORPUS_DIR", str(root))
    return configure_corpus(root)


@pytest.fixture
def trace_csv(tmp_path):
    trace = get_trace("web_frontend", 9_000)
    path = tmp_path / "web_frontend.csv"
    save_trace_csv(trace, str(path))
    return trace, str(path)


# -- reference derivations (naive per-instruction scans) ---------------------


def _ref_next_br(trace):
    n = len(trace)
    out = [n] * n
    nxt = n
    for i in range(n - 1, -1, -1):
        if trace.btype[i]:
            nxt = i
        out[i] = nxt
    return out


def _ref_run_end(trace):
    lines = trace.line_index()
    n = len(trace)
    out = [0] * n
    i = 0
    while i < n:
        j = i
        while j < n and lines[j] == lines[i]:
            j += 1
        for k in range(i, j):
            out[k] = j
        i = j
    return out


def _assert_roundtrip(trace):
    col = lower_trace(trace)
    n = len(trace)
    assert col.n == n
    assert col.line_ix.tolist() == trace.line_index()
    assert col.next_pc.tolist() == [trace.next_pc(i) for i in range(n)]
    assert col.next_br.tolist() == _ref_next_br(trace)
    assert col.run_end.tolist() == _ref_run_end(trace)
    assert col.pc.tolist() == list(trace.pc)
    assert col.btype.tolist() == list(trace.btype)
    assert col.taken.tolist() == list(trace.taken)
    assert col.target.tolist() == list(trace.target)


# -- synthetic workloads -----------------------------------------------------


@pytest.mark.parametrize("name", ["web_frontend", "db_oltp", "gc_runtime"])
def test_roundtrip_synthetic(name):
    _assert_roundtrip(get_trace(name, 8_000))


def test_roundtrip_empty_trace():
    _assert_roundtrip(Trace(name="empty"))


def test_roundtrip_single_instruction():
    trace = Trace(name="one")
    trace.append(0x1000)
    _assert_roundtrip(trace)


def test_roundtrip_single_branch():
    trace = Trace(name="onebr")
    trace.append(0x1000, btype=BranchType.UNCOND_DIRECT, taken=True,
                 target=0x2000)
    _assert_roundtrip(trace)
    col = lower_trace(trace)
    assert col.next_br.tolist() == [0]
    assert col.next_pc.tolist() == [0x2000]


def test_roundtrip_trailing_nonbranch_run():
    trace = Trace(name="tail")
    pc = 0x40  # crosses a line boundary mid-run
    for _ in range(20):
        trace.append(pc)
        pc += ILEN
    _assert_roundtrip(trace)
    col = lower_trace(trace)
    assert all(v == 20 for v in col.next_br.tolist())


# -- corpus ingestion formats ------------------------------------------------

CHAMPSIM_TEXT = (
    "0x100 N\n"
    "0x104 B 1 0x200\n"
    "0x200 J 1 0x300\n"
    "0x300 C 1 0x400\n"
    "0x400 R 1 0x304\n"
    "0x304 I 1 0x500\n"
    "0x500 X 1 0x600\n"
)

CVP1_TEXT = (
    "0x100 aluInstClass\n"
    "0x104 loadInstClass 0x9000\n"
    "0x108 condBranchInstClass 1 0x200\n"
    "0x200 uncondDirectBranchInstClass 1 0x300\n"
    "0x300 uncondIndirectBranchInstClass 1 0x400\n"
)


def _write(tmp_path, name, text, opener=None):
    path = tmp_path / name
    if opener is None:
        path.write_text(text)
    else:
        with opener(str(path), "wt") as fh:
            fh.write(text)
    return str(path)


@pytest.mark.parametrize(
    "name,text,opener",
    [
        ("t.champsim", CHAMPSIM_TEXT, None),
        ("t.champsim.gz", CHAMPSIM_TEXT, gzip.open),
        ("t.champsim.xz", CHAMPSIM_TEXT, lzma.open),
        ("t.cvp1", CVP1_TEXT, None),
        ("t.cvp1.xz", CVP1_TEXT, lzma.open),
    ],
)
def test_roundtrip_corpus_formats(store, tmp_path, name, text, opener):
    path = _write(tmp_path, name, text, opener)
    store.ingest(path, name="fmt")
    _assert_roundtrip(load_corpus_trace("corpus:fmt"))


def test_roundtrip_corpus_csv(store, trace_csv):
    _, path = trace_csv
    store.ingest(path, shard_insts=2_000)
    corpus = load_corpus_trace("corpus:web_frontend")
    _assert_roundtrip(corpus)


# -- predictor plan vs the live engine ---------------------------------------


def _reference_plan_values(trace, bp_size_kb):
    """Drive the real PredictionEngine sub-predictors in exactly the
    order ``PredictionEngine.resolve`` does, recording the decisions."""
    eng = PredictionEngine(bp_size_kb=bp_size_kb)
    n = len(trace)
    pt = [0] * n
    ras_ok = [0] * n
    ind_pred = [0] * n
    for i in range(n):
        bt = trace.btype[i]
        if not bt:
            continue
        pc, taken, target = trace.pc[i], bool(trace.taken[i]), trace.target[i]
        if bt == BranchType.COND_DIRECT:
            predicted, total, idxs = eng.perceptron.predict(pc)
            pt[i] = 1 if predicted else 0
            eng.perceptron.update(taken, total, idxs)
            eng.history.push(taken)
            continue
        eng.history.push(True)
        if bt in (BranchType.UNCOND_DIRECT, BranchType.CALL_DIRECT):
            if bt == BranchType.CALL_DIRECT:
                eng.ras.push(pc + ILEN)
        elif bt == BranchType.RETURN:
            ras_ok[i] = 1 if eng.ras.pop() == target else 0
        else:
            pred = eng.indirect.predict(pc)
            ind_pred[i] = pred if pred is not None else 0
            eng.indirect.update(pc, target)
            if bt == BranchType.CALL_INDIRECT:
                eng.ras.push(pc + ILEN)
    return pt, ras_ok, ind_pred


@pytest.mark.parametrize("name,size", [("web_frontend", 64), ("db_oltp", 2)])
def test_predictor_plan_matches_live_engine(name, size):
    trace = get_trace(name, 8_000)
    plan = build_predictor_plan(lower_trace(trace), geometry_for(size))
    pt, ras_ok, ind_pred = _reference_plan_values(trace, size)
    assert plan.pt.tolist() == pt
    assert plan.ras_ok.tolist() == ras_ok
    assert plan.ind_pred.tolist() == ind_pred


def test_batch_plan_payload_roundtrip():
    trace = get_trace("web_frontend", 4_000)
    geom = geometry_for(64)
    plan = build_batch_plan(trace, geom)
    clone = BatchPlan.from_payload(geom, plan.payload())
    for key in BatchPlan.PAYLOAD_KEYS:
        assert getattr(clone, key) == getattr(plan, key)
    assert clone.geometry == geom
