"""Property-based round-trip tests for trace persistence.

Covers the satellite guarantees: every :class:`BranchType` survives a
CSV round trip, optional columns default correctly when absent, and the
binary ``Trace.save``/``Trace.load`` npz path round-trips everything —
for arbitrary (control-flow-valid) traces, not just the hand-written
fixtures.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.types import ILEN, BranchType
from repro.trace.external import (
    OPTIONAL_DEFAULTS,
    load_trace_csv,
    save_trace_csv,
)
from repro.trace.trace import Trace

BRANCH_TYPES = [bt for bt in BranchType if bt != BranchType.NONE]


@st.composite
def valid_traces(draw):
    """Arbitrary control-flow-consistent traces exercising every column.

    Successor PCs are forced to follow the sampled taken/target bits, so
    ``Trace.validate()`` always passes and ``load_trace_csv`` accepts the
    result.
    """
    n = draw(st.integers(min_value=1, max_value=40))
    trace = Trace(name="prop")
    pc = draw(st.integers(min_value=0x1000, max_value=0xFFFF)) * ILEN
    for _ in range(n):
        btype = draw(st.sampled_from([BranchType.NONE] + BRANCH_TYPES))
        taken = btype != BranchType.NONE and draw(st.booleans())
        target = 0
        if btype != BranchType.NONE:
            target = draw(st.integers(min_value=1, max_value=0xFFFFF)) * ILEN
        is_load = draw(st.booleans())
        is_store = not is_load and draw(st.booleans())
        trace.append(
            pc=pc,
            btype=btype,
            taken=taken,
            target=target,
            dst=draw(st.integers(min_value=-1, max_value=31)),
            src1=draw(st.integers(min_value=-1, max_value=31)),
            src2=draw(st.integers(min_value=-1, max_value=31)),
            is_load=is_load,
            is_store=is_store,
            maddr=draw(st.integers(min_value=0, max_value=2**40)) if (is_load or is_store) else 0,
        )
        pc = target if taken else pc + ILEN
    trace.validate()
    return trace


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(trace=valid_traces())
def test_csv_roundtrip_preserves_every_column(tmp_path_factory, trace):
    path = str(tmp_path_factory.mktemp("prop") / "t.csv")
    save_trace_csv(trace, path)
    back = load_trace_csv(path)
    for col in Trace._COLUMNS:
        assert getattr(back, col) == getattr(trace, col), col


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(trace=valid_traces())
def test_npz_roundtrip_preserves_every_column(tmp_path_factory, trace):
    path = str(tmp_path_factory.mktemp("prop") / "t.npz")
    trace.save(path)
    back = Trace.load(path)
    for col in Trace._COLUMNS:
        assert getattr(back, col) == getattr(trace, col), col
    assert back.name == trace.name


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(trace=valid_traces())
def test_gzipped_csv_roundtrip(tmp_path_factory, trace):
    path = str(tmp_path_factory.mktemp("prop") / "t.csv.gz")
    save_trace_csv(trace, path)
    back = load_trace_csv(path)
    for col in Trace._COLUMNS:
        assert getattr(back, col) == getattr(trace, col), col


@pytest.mark.parametrize("btype", list(BranchType))
def test_every_branch_type_roundtrips_by_name_and_number(tmp_path, btype):
    """Each BranchType survives both its symbolic and numeric rendering."""
    target = 0x200 if btype != BranchType.NONE else 0
    taken = 1 if btype != BranchType.NONE else 0
    next_pc = target if taken else 0x104
    for rendering in (btype.name, str(int(btype))):
        path = tmp_path / f"{btype.name}-{len(rendering)}.csv"
        path.write_text(
            "pc,btype,taken,target\n"
            f"0x100,{rendering},{taken},{target:#x}\n"
            f"{next_pc:#x},NONE,0,0\n"
        )
        back = load_trace_csv(str(path))
        assert back.btype[0] == btype


def test_optional_columns_default_when_absent(tmp_path):
    """A minimal-header file gets exactly the documented defaults."""
    path = tmp_path / "min.csv"
    path.write_text("pc,btype,taken,target\n0x100,NONE,0,0\n")
    back = load_trace_csv(str(path))
    for col, default in OPTIONAL_DEFAULTS.items():
        assert getattr(back, col) == [default], col


def test_optional_columns_default_when_value_empty(tmp_path):
    """Present-but-empty optional cells also take the defaults."""
    path = tmp_path / "empty.csv"
    path.write_text(
        "pc,btype,taken,target,dst,src1,src2,is_load,is_store,maddr\n"
        "0x100,NONE,0,0,,,,,,\n"
    )
    back = load_trace_csv(str(path))
    for col, default in OPTIONAL_DEFAULTS.items():
        assert getattr(back, col) == [default], col
