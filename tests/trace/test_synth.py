"""Unit tests for the dynamic trace walker."""

import pytest

from repro.common.types import BranchType
from repro.trace.cfg import ProgramSpec, build_program
from repro.trace.synth import TraceSynthesizer, synthesize_trace


def make_program(seed=5):
    return build_program(ProgramSpec(seed=seed, n_functions=24, blocks_per_function_mean=8))


@pytest.fixture(scope="module")
def program():
    return make_program()


def test_trace_has_exact_length(program):
    tr = synthesize_trace(program, 5000)
    assert len(tr) == 5000


def test_trace_control_flow_consistent(program):
    tr = synthesize_trace(program, 8000)
    tr.validate()  # raises on any next_pc break


def test_trace_starts_at_entry(program):
    tr = synthesize_trace(program, 100)
    assert tr.pc[0] == program.entry.entry_pc


def test_determinism(program):
    a = synthesize_trace(program, 3000, seed=11)
    b = synthesize_trace(program, 3000, seed=11)
    assert a.pc == b.pc and a.taken == b.taken and a.maddr == b.maddr


def test_seed_changes_walk(program):
    a = synthesize_trace(program, 3000, seed=11)
    b = synthesize_trace(program, 3000, seed=12)
    assert a.pc != b.pc


def test_calls_and_returns_balance_roughly(program):
    tr = synthesize_trace(program, 20000)
    calls = sum(
        1
        for bt in tr.btype
        if bt in (BranchType.CALL_DIRECT, BranchType.CALL_INDIRECT)
    )
    rets = sum(1 for bt in tr.btype if bt == BranchType.RETURN)
    assert calls > 0 and rets > 0
    assert abs(calls - rets) < max(64, 0.1 * calls)  # bounded by live stack depth


def test_returns_target_call_fallthrough(program):
    """Every return (except top-level restarts) lands right after a call."""
    tr = synthesize_trace(program, 20000)
    call_fallthroughs = set()
    for j in range(len(tr)):
        if tr.btype[j] in (BranchType.CALL_DIRECT, BranchType.CALL_INDIRECT):
            call_fallthroughs.add(tr.pc[j] + 4)
    entry = program.entry.entry_pc
    for j in range(len(tr)):
        if tr.btype[j] == BranchType.RETURN:
            assert tr.target[j] in call_fallthroughs or tr.target[j] == entry


def test_loads_have_addresses(program):
    tr = synthesize_trace(program, 10000)
    for j in range(len(tr)):
        if tr.is_load[j] or tr.is_store[j]:
            assert tr.maddr[j] > 0
        else:
            assert tr.maddr[j] == 0


def test_branches_only_on_terminators(program):
    """Branch density must match the CFG: a branch instruction is always
    the last instruction of its block."""
    tr = synthesize_trace(program, 10000)
    for j in range(len(tr)):
        bt = tr.btype[j]
        if bt:
            block = None
            # The branch PC must be the terminator PC of some block.
            # (cheap check via the program's block map)
    # Structural check: every taken branch target begins a block or is a
    # return fall-through.
    starts = set(program.block_at)
    for j in range(len(tr)):
        if tr.taken[j] and tr.btype[j] != BranchType.RETURN:
            assert tr.target[j] in starts


def test_rejects_nonpositive_length(program):
    with pytest.raises(ValueError):
        synthesize_trace(program, 0)


def test_walker_restarts_after_top_level_return(program):
    """A long walk must revisit the entry function (server loop)."""
    tr = synthesize_trace(program, 30000)
    entry = program.entry.entry_pc
    visits = sum(1 for pc in tr.pc if pc == entry)
    assert visits >= 2
