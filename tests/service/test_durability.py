"""Durability and reliability plumbing of the service daemon.

Covers the write-ahead job store (journal round-trip, torn lines,
degraded mode), poison-point circuit breakers (deterministic trip /
half-open with an injected clock), daemon crash recovery over real
sockets (finished and unfinished pre-crash jobs), per-request deadline
propagation (expired-at-dequeue dispatches nothing; mid-batch expiry
classifies per-point instead of killing the daemon), the orphaned-flight
regression (a dying batch resolves every subscriber with a classified
error and the executor keeps running), the paginated job list with TTL
garbage collection, and the liveness/readiness probe split.
"""

import json
import time

import pytest

from repro.core.config import IDEAL_IBTB16
from repro.core.exec import DEADLINE_MESSAGE, configure_disk_cache
from repro.core.exec.faults import ENV_FAULT_DIR, ENV_FAULT_HANG, ENV_FAULT_SPEC
from repro.core.runner import clear_cache
from repro.service import JobStore, PoisonBreaker, ServiceConfig
from repro.service.breaker import CIRCUIT_MESSAGE
from repro.core.exec import PointError, PointOutcome, SweepPoint

from tests.service.test_service_e2e import LENGTH, SPEC, Daemon

RUN = {"config": "ibtb:16", "workload": "web_frontend", "length": LENGTH}


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
    monkeypatch.delenv("REPRO_FAULT_DAEMON_AFTER", raising=False)
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path / "fault-state"))
    clear_cache()
    configure_disk_cache(False)
    yield
    clear_cache()
    configure_disk_cache(False)


# -- job store unit ----------------------------------------------------------


class _FakeJob:
    def __init__(self, job_id="j1", points=2):
        self.id = job_id
        self.kind = "run"
        self.client = "c"
        self.spec = {"config": "ibtb:16", "workload": "web_frontend"}
        self.created = 123.5
        self.points = [None] * points
        self.keys = [f"k{i}" for i in range(points)]
        self.status = "done"
        self.finished = 130.25
        self.failed_points = 0
        self.result = {"ipc": 1.0}


def test_store_round_trips_full_job_lifecycle(tmp_path):
    store = JobStore(tmp_path / "state")
    job = _FakeJob()
    assert store.record_submit(job)
    assert store.record_point(job.id, 0, {"status": "ok", "attempts": 1})
    assert store.record_point(job.id, 1, {"status": "ok", "attempts": 2})
    assert store.record_done(job)
    assert store.appends == 4

    stored = store.load(job.id)
    assert stored is not None and stored.valid
    assert stored.kind == "run" and stored.client == "c"
    assert stored.spec == job.spec
    assert stored.created == job.created
    assert stored.terminal and stored.status == "done"
    assert stored.finished == job.finished
    assert stored.result == {"ipc": 1.0}
    assert stored.outcomes == {
        0: {"status": "ok", "attempts": 1},
        1: {"status": "ok", "attempts": 2},
    }


def test_store_tolerates_torn_trailing_line(tmp_path):
    store = JobStore(tmp_path / "state")
    job = _FakeJob()
    store.record_submit(job)
    store.record_point(job.id, 0, {"status": "ok", "attempts": 1})
    path = store.jobs_dir / f"{job.id}.jsonl"
    with open(path, "a") as fh:
        fh.write('{"rec": "point", "job": "j1", "ind')  # SIGKILL mid-write
    stored = store.load(job.id)
    assert stored is not None and not stored.terminal
    assert stored.outcomes == {0: {"status": "ok", "attempts": 1}}


def test_store_load_all_sorted_and_evict(tmp_path):
    store = JobStore(tmp_path / "state")
    newer, older = _FakeJob("jb"), _FakeJob("ja")
    newer.created, older.created = 200.0, 100.0
    store.record_submit(newer)
    store.record_submit(older)
    assert [s.job_id for s in store.load_all()] == ["ja", "jb"]
    store.evict("ja")
    assert [s.job_id for s in store.load_all()] == ["jb"]
    store.evict("ja")  # idempotent
    assert store.load("ja") is None


def test_store_degrades_on_unwritable_root_instead_of_raising(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file where the store root must be")
    store = JobStore(blocker / "state")  # parent is a file: mkdir fails
    assert store.record_submit(_FakeJob()) is False
    assert store.degraded and "append failed" in store.degraded_reason
    # Every later append is a silent no-op, never an exception.
    assert store.record_done(_FakeJob()) is False
    assert store.appends == 0
    assert store.probe() is False


def test_store_probe_flips_degraded(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("x")
    store = JobStore(blocker / "state")
    assert store.probe() is False
    assert store.degraded and "probe failed" in store.degraded_reason
    healthy = JobStore(tmp_path / "ok")
    assert healthy.probe() is True
    assert not healthy.degraded


# -- circuit breaker unit ----------------------------------------------------


def _crash(key, kind="worker-crash", message="boom"):
    return PointOutcome(
        index=0,
        point=None,
        error=PointError(kind=kind, point_key=key, attempts=3, message=message),
    )


def _ok(key):
    class _R:
        ipc = 1.0

    return PointOutcome(index=0, point=None, result=_R(), attempts=1)


def test_breaker_trips_after_threshold_and_fails_fast():
    now = [0.0]
    breaker = PoisonBreaker(threshold=2, cooldown=10.0, clock=lambda: now[0])
    assert breaker.check("k") is None
    breaker.record("k", _crash("k"))
    assert breaker.check("k") is None  # 1 failure: still closed
    breaker.record("k", _crash("k", kind="timeout", message="hung"))
    assert breaker.state("k") == "open"
    blocked = breaker.check("k")
    assert blocked is not None
    assert blocked.kind == "timeout"  # the cached last real error kind
    assert blocked.attempts == 0
    assert blocked.message.startswith(CIRCUIT_MESSAGE)
    assert "hung" in blocked.message
    assert breaker.counters()["breaker_trips"] == 1
    assert breaker.counters()["breaker_fast_fails"] == 1
    assert breaker.counters()["breaker_open_points"] == 1


def test_breaker_half_open_trial_closes_on_success():
    now = [0.0]
    breaker = PoisonBreaker(threshold=1, cooldown=5.0, clock=lambda: now[0])
    breaker.record("k", _crash("k"))
    assert breaker.check("k") is not None  # open, cooling down
    now[0] = 5.0
    assert breaker.check("k") is None  # the half-open trial
    assert breaker.state("k") == "half-open"
    assert breaker.check("k") is not None  # concurrent callers still blocked
    breaker.record("k", _ok("k"))
    assert breaker.state("k") == "closed"
    assert len(breaker) == 0
    assert breaker.counters()["breaker_closes"] == 1


def test_breaker_half_open_failure_reopens_for_fresh_cooldown():
    now = [0.0]
    breaker = PoisonBreaker(threshold=1, cooldown=5.0, clock=lambda: now[0])
    breaker.record("k", _crash("k"))
    now[0] = 5.0
    assert breaker.check("k") is None
    breaker.record("k", _crash("k"))  # trial crashed again
    assert breaker.state("k") == "open"
    now[0] = 9.0
    assert breaker.check("k") is not None  # cooldown restarted at t=5
    now[0] = 10.0
    assert breaker.check("k") is None


def test_breaker_ignores_exceptions_and_deadline_expiries():
    breaker = PoisonBreaker(threshold=1)
    breaker.record("k", _crash("k", kind="exception"))
    assert breaker.state("k") == "closed" and len(breaker) == 0
    breaker.record(
        "k", _crash("k", kind="timeout", message=f"{DEADLINE_MESSAGE}: late")
    )
    assert breaker.state("k") == "closed" and len(breaker) == 0


# -- crash recovery over real sockets ----------------------------------------


def _durable_config(tmp_path, **kw):
    return ServiceConfig(
        jobs=1,
        drain_timeout=60,
        state_dir=str(tmp_path / "state"),
        **kw,
    )


def test_restarted_daemon_recovers_finished_and_unfinished_jobs(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(_durable_config(tmp_path))
    _, sub, _ = daemon.request("POST", "/v1/run", RUN)
    finished = daemon.wait_job(sub["job"])
    assert finished["status"] == "done"
    assert daemon.drain() == 0

    # Fake an unfinished job by truncating its journal to the submit
    # record — as if the daemon was SIGKILLed before any point landed.
    store = JobStore(tmp_path / "state")
    unfinished_id = "jdeadbeef0000"
    store.append(
        unfinished_id,
        {
            "rec": "submit",
            "schema": 1,
            "job": unfinished_id,
            "kind": "run",
            "client": "recovery-test",
            "spec": dict(RUN),
            "created": time.time(),
            "points": 1,
            "sweep": "s",
        },
    )

    daemon = Daemon(_durable_config(tmp_path))
    try:
        # The finished pre-crash job answers from the journal, marked
        # recovered, result document intact.
        status, doc, _ = daemon.request("GET", f"/v1/jobs/{sub['job']}")
        assert status == 200
        assert doc["recovered"] is True
        assert doc["status"] == "done"
        assert doc["result"] == finished["result"]
        # The unfinished job was re-admitted and converges through the
        # disk cache (its point already executed pre-"crash").
        doc = daemon.wait_job(unfinished_id)
        assert doc["recovered"] is True
        assert doc["status"] == "done"
        assert doc["result"] == finished["result"]
        _, metrics, _ = daemon.request("GET", "/v1/metrics")
        assert metrics["service"]["jobs_recovered"] == 2
        assert metrics["cache"]["result_hits"] >= 1
    finally:
        assert daemon.drain() == 0


def test_unrecoverable_journal_is_evicted_not_fatal(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    store = JobStore(tmp_path / "state")
    bad_id = "jbadbadbad000"
    store.append(
        bad_id,
        {
            "rec": "submit",
            "schema": 1,
            "job": bad_id,
            "kind": "run",
            "client": "c",
            "spec": {"config": "ibtb:16", "workload": "no_such_workload"},
            "created": time.time(),
            "points": 1,
            "sweep": "s",
        },
    )
    daemon = Daemon(_durable_config(tmp_path))
    try:
        status, _, _ = daemon.request("GET", f"/v1/jobs/{bad_id}")
        assert status == 404
        status, health, _ = daemon.request("GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok"
    finally:
        assert daemon.drain() == 0
    assert JobStore(tmp_path / "state").load(bad_id) is None


# -- deadline propagation over real sockets ----------------------------------


def test_expired_deadline_rejects_at_dequeue_without_dispatch(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(ServiceConfig(jobs=1, drain_timeout=60))
    try:
        status, sub, _ = daemon.request(
            "POST", "/v1/run", RUN, headers={"X-Deadline-Ms": "0"}
        )
        assert status == 202
        doc = daemon.wait_job(sub["job"])
        assert doc["status"] == "failed"
        outcome = doc["outcomes"][0]
        assert outcome["kind"] == "timeout"
        assert outcome["message"].startswith(DEADLINE_MESSAGE)
        assert outcome["attempts"] == 0
        _, metrics, _ = daemon.request("GET", "/v1/metrics")
        assert metrics["service"]["points_deadline_rejected"] == 1
        # No worker ever dispatched: no batch ran, no engine counters.
        assert metrics["service"]["batches"] == 0
        assert metrics["resilience"] == {}
    finally:
        assert daemon.drain() == 0


def test_spec_timeout_s_zero_equivalent_to_header(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(ServiceConfig(jobs=1, drain_timeout=60))
    try:
        status, sub, _ = daemon.request(
            "POST", "/v1/run", dict(RUN, timeout_s=0)
        )
        assert status == 202
        doc = daemon.wait_job(sub["job"])
        assert doc["status"] == "failed"
        assert doc["outcomes"][0]["message"].startswith(DEADLINE_MESSAGE)
        # Garbage deadlines are 400s, not daemon damage.
        status, doc, _ = daemon.request(
            "POST", "/v1/run", RUN, headers={"X-Deadline-Ms": "soon"}
        )
        assert status == 400 and "X-Deadline-Ms" in doc["error"]
        status, doc, _ = daemon.request(
            "POST", "/v1/run", dict(RUN, timeout_s="a while")
        )
        assert status == 400 and "timeout_s" in doc["error"]
    finally:
        assert daemon.drain() == 0


def test_mid_batch_deadline_classifies_points_daemon_survives(
    tmp_path, monkeypatch
):
    """A hang fault pins the batch past the job deadline: the hung point
    classifies as a deadline timeout, the daemon stays alive and serves
    the next job normally."""
    monkeypatch.setenv(ENV_FAULT_SPEC, "hang:db_oltp:9")
    monkeypatch.setenv(ENV_FAULT_HANG, "120")
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    # jobs=2 forces the process pool: only worker processes can be
    # killed at the deadline (an in-process serial hang cannot).
    daemon = Daemon(ServiceConfig(jobs=2, drain_timeout=120, timeout=None))
    try:
        status, sub, _ = daemon.request(
            "POST",
            "/v1/run",
            {"config": "ibtb:16", "workload": "db_oltp", "length": LENGTH},
            headers={"X-Deadline-Ms": "4000"},
        )
        assert status == 202
        doc = daemon.wait_job(sub["job"], timeout=60)
        assert doc["status"] == "failed"
        outcome = doc["outcomes"][0]
        assert outcome["kind"] == "timeout"
        assert outcome["message"].startswith(DEADLINE_MESSAGE)
        # Alive and well: an unbounded clean point still executes.
        monkeypatch.delenv(ENV_FAULT_SPEC)
        status, sub, _ = daemon.request("POST", "/v1/run", RUN)
        assert status == 202
        assert daemon.wait_job(sub["job"])["status"] == "done"
        status, ready, _ = daemon.request("GET", "/v1/healthz/ready")
        assert status == 200 and ready["ready"] is True
    finally:
        assert daemon.drain() == 0


# -- breaker end to end ------------------------------------------------------


def test_poison_point_trips_breaker_then_half_open_heals(
    tmp_path, monkeypatch
):
    monkeypatch.setenv(ENV_FAULT_SPEC, "kill:db_oltp:99")
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(
        ServiceConfig(
            jobs=2,
            drain_timeout=120,
            max_retries=0,
            breaker_threshold=2,
            breaker_cooldown=2.0,
        )
    )
    # The generous deadline routes this single point through the worker
    # pool (jobs=2): the kill fault must SIGKILL a *worker process*,
    # not the in-process serial path (i.e. the daemon itself).
    poison = {
        "config": "ibtb:16",
        "workload": "db_oltp",
        "length": LENGTH,
        "timeout_s": 300,
    }
    try:
        # Two jobs crash for real: evidence accumulates across jobs.
        for _ in range(2):
            _, sub, _ = daemon.request("POST", "/v1/run", poison)
            doc = daemon.wait_job(sub["job"], timeout=120)
            assert doc["status"] == "failed"
            assert doc["outcomes"][0]["kind"] == "worker-crash"
            assert not doc["outcomes"][0]["message"].startswith(
                CIRCUIT_MESSAGE
            )
        # Third job fails fast: breaker open, no worker burned.
        _, sub, _ = daemon.request("POST", "/v1/run", poison)
        doc = daemon.wait_job(sub["job"], timeout=30)
        assert doc["status"] == "failed"
        outcome = doc["outcomes"][0]
        assert outcome["kind"] == "worker-crash"
        assert outcome["message"].startswith(CIRCUIT_MESSAGE)
        assert outcome["attempts"] == 0
        _, metrics, _ = daemon.request("GET", "/v1/metrics")
        assert metrics["service"]["breaker_trips"] == 1
        assert metrics["service"]["breaker_fast_fails"] >= 1
        assert metrics["service"]["points_fast_failed"] == 1

        # Cool down, lift the fault: the half-open trial executes for
        # real, succeeds, and closes the breaker.
        monkeypatch.delenv(ENV_FAULT_SPEC)
        time.sleep(2.1)
        _, sub, _ = daemon.request("POST", "/v1/run", poison)
        doc = daemon.wait_job(sub["job"], timeout=120)
        assert doc["status"] == "done"
        assert doc["result"]["ipc"] > 0
        _, metrics, _ = daemon.request("GET", "/v1/metrics")
        assert metrics["service"]["breaker_half_opens"] == 1
        assert metrics["service"]["breaker_closes"] == 1
        assert metrics["service"]["breaker_open_points"] == 0
    finally:
        assert daemon.drain() == 0


# -- orphaned flights (leader death) -----------------------------------------


def test_dying_batch_orphans_resolve_with_classified_errors(
    tmp_path, monkeypatch
):
    """If ``run_points`` raises instead of returning a report, every
    flight of that batch — leader and coalesced twins alike — must
    resolve with a classified error and the executor must keep serving
    (the leader-death regression)."""
    import repro.service.jobs as jobs_mod

    configure_disk_cache(True, tmp_path / "cache", shard=True)
    original = jobs_mod.JobManager._run_batch
    state = {"explode": True}

    def exploding(self, flights, deadline=None):
        if state["explode"]:
            # Die slowly: the twin below must land while the leader's
            # flight is still unresolved, so it coalesces onto it.
            time.sleep(2.0)
            raise RuntimeError("executor pool lost")
        return original(self, flights, deadline)

    monkeypatch.setattr(jobs_mod.JobManager, "_run_batch", exploding)
    daemon = Daemon(ServiceConfig(jobs=1, drain_timeout=60))
    try:
        # Two identical jobs: one leader flight + one coalesced twin.
        _, sub1, _ = daemon.request("POST", "/v1/run", RUN)
        _, sub2, _ = daemon.request("POST", "/v1/run", RUN)
        assert sub2["coalesced"] == 1
        docs = [daemon.wait_job(s["job"], timeout=30) for s in (sub1, sub2)]
        for doc in docs:
            assert doc["status"] == "failed"
            outcome = doc["outcomes"][0]
            assert outcome["kind"] == "exception"
            assert "flight leader died" in outcome["message"]
        _, metrics, _ = daemon.request("GET", "/v1/metrics")
        assert metrics["service"]["orphaned_flights"] == 1
        assert metrics["service"]["flights_inflight"] == 0

        # The executor loop survived: the next batch runs normally.
        state["explode"] = False
        _, sub, _ = daemon.request("POST", "/v1/run", RUN)
        assert daemon.wait_job(sub["job"])["status"] == "done"
    finally:
        assert daemon.drain() == 0


# -- job list, TTL GC, health probes -----------------------------------------


def test_job_list_paginates_and_filters(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(ServiceConfig(jobs=1, drain_timeout=60))
    try:
        ids = []
        for seed in range(3):
            _, sub, _ = daemon.request(
                "POST", "/v1/run", dict(RUN, seed=seed)
            )
            ids.append(sub["job"])
        for job_id in ids:
            daemon.wait_job(job_id)
        status, page, _ = daemon.request("GET", "/v1/jobs?limit=2")
        assert status == 200
        assert [j["id"] for j in page["jobs"]] == ids[:2]
        assert page["next_after"] == ids[1]
        assert page["total"] == 3
        status, page, _ = daemon.request(
            "GET", f"/v1/jobs?limit=2&after={ids[1]}"
        )
        assert [j["id"] for j in page["jobs"]] == ids[2:]
        assert page["next_after"] is None
        status, page, _ = daemon.request("GET", "/v1/jobs?state=done")
        assert len(page["jobs"]) == 3
        status, page, _ = daemon.request("GET", "/v1/jobs?state=running")
        assert page["jobs"] == []
        assert daemon.request("GET", "/v1/jobs?state=bogus")[0] == 400
        assert daemon.request("GET", "/v1/jobs?limit=soon")[0] == 400
    finally:
        assert daemon.drain() == 0


def test_job_ttl_gc_evicts_memory_and_journal(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(_durable_config(tmp_path, job_ttl=3600.0))
    try:
        _, sub, _ = daemon.request("POST", "/v1/run", RUN)
        daemon.wait_job(sub["job"])
        manager = daemon.service.manager
        assert manager.gc_jobs() == 0  # too young
        assert manager.gc_jobs(now=time.time() + 3601.0) == 1
        assert daemon.request("GET", f"/v1/jobs/{sub['job']}")[0] == 404
        _, metrics, _ = daemon.request("GET", "/v1/metrics")
        assert metrics["service"]["jobs_evicted"] == 1
    finally:
        assert daemon.drain() == 0
    assert JobStore(tmp_path / "state").load(sub["job"]) is None


def test_liveness_and_readiness_split(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(_durable_config(tmp_path))
    try:
        status, live, _ = daemon.request("GET", "/v1/healthz/live")
        assert status == 200 and live["status"] == "alive"
        status, ready, _ = daemon.request("GET", "/v1/healthz/ready")
        assert status == 200
        assert ready["ready"] is True
        assert ready["journal_writable"] is True
        assert ready["executor_alive"] is True
        assert ready["heartbeat_age_s"] >= 0.0

        # Degrade the store: readiness fails, liveness does not, and
        # the combined document reports it.
        daemon.service.manager.store._degrade("test-injected")
        status, ready, _ = daemon.request("GET", "/v1/healthz/ready")
        assert status == 503
        assert ready["degraded"] is True
        assert ready["degraded_reason"] == "test-injected"
        assert daemon.request("GET", "/v1/healthz/live")[0] == 200
        status, health, _ = daemon.request("GET", "/v1/healthz")
        assert status == 200 and health["status"] == "degraded"
        _, metrics, _ = daemon.request("GET", "/v1/metrics")
        assert metrics["service"]["store_degraded"] == 1

        # Degraded is advisory, not fatal: jobs still execute (results
        # only lose durability, not correctness).
        _, sub, _ = daemon.request("POST", "/v1/run", RUN)
        assert daemon.wait_job(sub["job"])["status"] == "done"
    finally:
        assert daemon.drain() == 0


def test_draining_daemon_fails_readiness_passes_liveness(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(ServiceConfig(jobs=1, drain_timeout=60))
    loop = daemon.service._loop
    loop.call_soon_threadsafe(daemon.service.manager.begin_drain)
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        status, ready, _ = daemon.request("GET", "/v1/healthz/ready")
        if status == 503:
            break
        time.sleep(0.05)
    assert status == 503 and ready["draining"] is True
    assert daemon.request("GET", "/v1/healthz/live")[0] == 200
    daemon.service.request_drain_threadsafe()
    daemon.thread.join(timeout=60)
    assert not daemon.thread.is_alive()
