"""Unit tests for the service building blocks: coalescing, rate
limiting, metrics and admission control (no sockets, no event loop)."""

import pytest

from repro.core.config import ibtb, rbtb
from repro.core.exec import PointError, PointOutcome, SweepPoint, point_key
from repro.service import (
    AdmissionError,
    ClientLimiter,
    JobManager,
    ServiceMetrics,
    SingleFlight,
    TokenBucket,
)


def _point(config=None, workload="web_frontend"):
    return SweepPoint(config or ibtb(16), workload, 4_000, 1_000, 7)


def _ok_outcome(point, index=0):
    from repro.core.simulator import SimResult

    return PointOutcome(
        index=index,
        point=point,
        result=SimResult(name=point.workload, instructions=10, cycles=20),
        attempts=1,
    )


# -- SingleFlight ------------------------------------------------------------


def test_single_flight_leader_and_coalesce():
    table = SingleFlight()
    p = _point()
    key = point_key(p)
    f1, leader1 = table.admit(key, p)
    f2, leader2 = table.admit(key, p)
    assert leader1 and not leader2
    assert f1 is f2
    assert table.started == 1 and table.coalesced == 1
    assert len(table) == 1


def test_single_flight_fanout_and_retire():
    table = SingleFlight()
    p = _point()
    key = point_key(p)
    flight, _ = table.admit(key, p)
    got = []
    flight.subscribe(lambda ctx, out: got.append((ctx, out)), "a")
    flight.subscribe(lambda ctx, out: got.append((ctx, out)), "b")
    outcome = _ok_outcome(p)
    table.resolve(key, outcome)
    assert [ctx for ctx, _ in got] == ["a", "b"]
    assert all(out is outcome for _, out in got)
    assert len(table) == 0  # retired: a new admit starts a fresh flight
    _, leader = table.admit(key, p)
    assert leader
    table.resolve(key, outcome)
    table.resolve(key, outcome)  # idempotent


def test_single_flight_distinct_points_do_not_coalesce():
    table = SingleFlight()
    a, b = _point(ibtb(16)), _point(rbtb(3))
    _, l1 = table.admit(point_key(a), a)
    _, l2 = table.admit(point_key(b), b)
    assert l1 and l2
    assert table.coalesced == 0


def test_single_flight_abort_all():
    table = SingleFlight()
    p = _point()
    flight, _ = table.admit(point_key(p), p)
    got = []
    flight.subscribe(lambda ctx, out: got.append(out), None)

    def aborted(fl):
        return PointOutcome(
            index=0,
            point=fl.point,
            error=PointError(
                kind="exception", point_key=fl.key, attempts=0, message="drained"
            ),
        )

    assert table.abort_all(aborted) == 1
    assert len(table) == 0
    assert len(got) == 1 and not got[0].ok


# -- token buckets -----------------------------------------------------------


def test_token_bucket_spends_and_refills():
    bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
    assert bucket.take(0.0) == (True, 0.0)
    assert bucket.take(0.0) == (True, 0.0)
    ok, retry = bucket.take(0.0)
    assert not ok and retry == pytest.approx(1.0)
    # Half a second later: still short, retry shrinks accordingly.
    ok, retry = bucket.take(0.5)
    assert not ok and retry == pytest.approx(0.5)
    assert bucket.take(1.5) == (True, 0.0)


def test_token_bucket_never_exceeds_burst():
    bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
    bucket.take(1000.0)  # long idle: capped at burst, not rate*idle
    assert bucket.tokens == pytest.approx(1.0)


def test_client_limiter_disabled_at_zero_rate():
    limiter = ClientLimiter(rate=0.0, burst=1.0)
    assert not limiter.enabled
    for _ in range(100):
        assert limiter.admit("c") == (True, 0.0)


def test_client_limiter_per_client_isolation():
    clock = {"t": 0.0}
    limiter = ClientLimiter(rate=1.0, burst=1.0, clock=lambda: clock["t"])
    assert limiter.admit("a")[0]
    ok, retry = limiter.admit("a")
    assert not ok and retry > 0
    assert limiter.admit("b")[0]  # b has its own bucket


def test_client_limiter_bounded_lru():
    clock = {"t": 0.0}
    limiter = ClientLimiter(
        rate=1.0, burst=5.0, max_clients=3, clock=lambda: clock["t"]
    )
    for name in "abcd":  # d evicts a (oldest)
        limiter.admit(name)
    assert set(limiter._buckets) == {"b", "c", "d"}
    limiter.admit("b")  # refresh b's recency
    limiter.admit("e")  # evicts c now, not b
    assert set(limiter._buckets) == {"b", "d", "e"}


# -- metrics -----------------------------------------------------------------


def test_metrics_snapshot_shape():
    metrics = ServiceMetrics()
    metrics.bump("jobs_submitted")
    metrics.bump("points_requested", 12)
    metrics.fold_resilience({"retries": 2})
    metrics.fold_resilience({"retries": 1, "worker_crashes": 1})
    snap = metrics.snapshot({"result_hits": 3}, queue_depth=4)
    assert snap["schema"] == 1
    assert snap["service"]["jobs_submitted"] == 1
    assert snap["service"]["points_requested"] == 12
    assert snap["service"]["queue_depth"] == 4
    # Every declared key renders even when untouched.
    for key in ServiceMetrics.SERVICE_KEYS:
        assert key in snap["service"]
    assert snap["resilience"] == {"retries": 3, "worker_crashes": 1}
    assert snap["cache"] == {"result_hits": 3}


# -- admission control (JobManager without a loop) ---------------------------


def test_admission_rejects_while_draining():
    manager = JobManager(queue_limit=4)
    manager.begin_drain()
    with pytest.raises(AdmissionError) as exc:
        manager.submit("run", [_point()], "c", {})
    assert exc.value.status == 503
    assert manager.metrics.service["jobs_rejected_draining"] == 1


def test_admission_rejects_when_queue_full():
    manager = JobManager(queue_limit=1)
    manager.submit("run", [_point()], "c", {})  # stays running: no executor
    with pytest.raises(AdmissionError) as exc:
        manager.submit("run", [_point(rbtb(3))], "c", {})
    assert exc.value.status == 429
    assert exc.value.retry_after is not None
    assert manager.metrics.service["jobs_rejected_queue_full"] == 1


def test_admission_rate_limit_carries_retry_after():
    clock = {"t": 0.0}
    manager = JobManager(
        queue_limit=10,
        limiter=ClientLimiter(rate=0.5, burst=1.0, clock=lambda: clock["t"]),
    )
    manager.submit("run", [_point()], "alice", {})
    with pytest.raises(AdmissionError) as exc:
        manager.submit("run", [_point(rbtb(3))], "alice", {})
    assert exc.value.status == 429
    assert exc.value.retry_after == pytest.approx(2.0)
    # A different client is unaffected.
    manager.submit("run", [_point(rbtb(3))], "bob", {})


def test_duplicate_points_within_one_job_coalesce():
    manager = JobManager(queue_limit=4)
    p = _point()
    job = manager.submit("run", [p, p, p], "c", {})
    assert job.coalesced == 2
    assert manager.metrics.service["points_scheduled"] == 1
    assert manager.metrics.service["points_coalesced"] == 2
    # One resolution completes all three indices and finalizes the job.
    manager._resolve_flight(job.keys[0], _ok_outcome(p))
    assert job.status == "done"
    assert job.pending == 0
    assert manager.metrics.service["jobs_completed"] == 1
    assert manager.metrics.service["points_ok"] == 1  # one execution


def test_failed_point_fails_job_with_classified_error():
    manager = JobManager(queue_limit=4)
    p = _point()
    job = manager.submit("run", [p], "c", {})
    manager._resolve_flight(
        job.keys[0],
        PointOutcome(
            index=0,
            point=p,
            error=PointError(
                kind="worker-crash",
                point_key=job.keys[0],
                attempts=3,
                message="killed",
            ),
            attempts=3,
        ),
    )
    assert job.status == "failed"
    assert job.result is None
    assert job.outcomes[0]["kind"] == "worker-crash"
    assert manager.metrics.service["jobs_failed"] == 1
