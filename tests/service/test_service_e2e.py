"""End-to-end tests of the ``repro-sim serve`` daemon over real sockets.

Each test starts a daemon on an ephemeral port in a background thread
with its own event loop, drives it with plain ``http.client`` requests,
then drains it. The acceptance invariants from the service design:

* two identical concurrent sweeps execute every unique point exactly
  once (coalescing observable via ``/v1/metrics``), and the finished
  job's result document is byte-identical to what the one-shot CLI
  sweep (``sweep_results_payload`` over a clean serial run) produces;
* injected worker crashes surface as retries/per-point errors in the
  job report — never a dead daemon — and the converged results are
  byte-identical to a clean run;
* SIGTERM-style drain finishes in-flight work and keeps it cached.
"""

import http.client
import json
import threading
import time

import pytest

from repro.core.config import IDEAL_IBTB16
from repro.core.exec import configure_disk_cache
from repro.core.runner import clear_cache, sweep_compare, sweep_results_payload
from repro.service import Service, ServiceConfig

LENGTH = 8_000
SPEC = {
    "configs": ["ibtb:16", "rbtb:3"],
    "workloads": ["web_frontend", "db_oltp"],
    "length": LENGTH,
}


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_cache()
    configure_disk_cache(False)
    yield
    clear_cache()
    configure_disk_cache(False)


class Daemon:
    """A live service on an ephemeral port, running in its own thread."""

    def __init__(self, config: ServiceConfig):
        self.service = Service(config, quiet=True)
        self.rc = None
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._started.wait(10), "daemon failed to start"

    def _run(self):
        import asyncio

        async def main():
            ready = asyncio.Event()
            task = asyncio.ensure_future(self.service.run(ready=ready))
            await ready.wait()
            self._started.set()
            self.rc = await task

        asyncio.run(main())

    def request(self, method, path, body=None, headers=None, timeout=120):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.service.port, timeout=timeout
        )
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers=headers or {},
        )
        resp = conn.getresponse()
        data = resp.read()
        hdrs = {k.lower(): v for k, v in resp.getheaders()}
        conn.close()
        return resp.status, (json.loads(data) if data else None), hdrs

    def request_raw(self, method, path, timeout=120):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.service.port, timeout=timeout
        )
        conn.request(method, path)
        resp = conn.getresponse()
        data = resp.read()
        conn.close()
        return resp.status, data

    def wait_job(self, job_id, timeout=120):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, doc, _ = self.request("GET", f"/v1/jobs/{job_id}")
            assert status == 200
            if doc["status"] != "running":
                return doc
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} still running after {timeout}s")

    def wait_batches(self, n, timeout=60):
        """Metrics doc once >= *n* batches completed (worker cache
        counters merge into the parent when a batch's run_points
        returns, which is strictly before the ``batches`` bump)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, doc, _ = self.request("GET", "/v1/metrics")
            assert status == 200
            if doc["service"]["batches"] >= n:
                return doc
            time.sleep(0.05)
        raise AssertionError(f"never saw {n} completed batches")

    def drain(self, timeout=60):
        self.service.request_drain_threadsafe()
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "daemon did not drain"
        return self.rc


def _expected_sweep_payload():
    """The document `repro-sim sweep --out` writes for SPEC, computed
    serially with no disk cache — fully independent of the daemon."""
    clear_cache()
    configure_disk_cache(False)
    from repro.cli import parse_config

    configs = [parse_config(s) for s in SPEC["configs"]]
    compared, _, _ = sweep_compare(
        configs,
        IDEAL_IBTB16,
        SPEC["workloads"],
        length=LENGTH,
        warmup=LENGTH // 4,
        jobs=1,
    )
    return sweep_results_payload(compared, IDEAL_IBTB16.label)


def _dump(payload):
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# -- the headline acceptance test --------------------------------------------


def test_concurrent_identical_sweeps_coalesce_and_match_cli(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(ServiceConfig(jobs=2, drain_timeout=60))
    try:
        status1, sub1, _ = daemon.request("POST", "/v1/sweep", SPEC)
        status2, sub2, _ = daemon.request("POST", "/v1/sweep", SPEC)
        assert status1 == status2 == 202
        docs = [daemon.wait_job(sub["job"]) for sub in (sub1, sub2)]
        assert [d["status"] for d in docs] == ["done", "done"]

        metrics = daemon.wait_batches(1)
        service = metrics["service"]
        unique_points = len([IDEAL_IBTB16, *SPEC["configs"]]) * len(
            SPEC["workloads"]
        )
        # ≥1 duplicate coalesced; here the whole second grid coalesces
        # or hits the executed flights' disk entries — either way the
        # cold cache shows exactly one miss (= one execution) per
        # unique point, i.e. 0 duplicate executions.
        assert service["points_requested"] == 2 * unique_points
        assert service["points_coalesced"] >= 1
        assert (
            service["points_scheduled"] + service["points_coalesced"]
            == service["points_requested"]
        )
        assert metrics["cache"]["result_misses"] == unique_points
    finally:
        assert daemon.drain() == 0

    expected = _expected_sweep_payload()
    for doc in docs:
        assert _dump(doc["result"]) == _dump(expected)


def test_worker_faults_surface_as_retries_not_daemon_death(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_FAULT_SPEC", "raise:db_oltp:1;kill:web_frontend:1")
    monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path / "faults"))
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(ServiceConfig(jobs=2, drain_timeout=60))
    try:
        status, sub, _ = daemon.request("POST", "/v1/sweep", SPEC)
        assert status == 202
        doc = daemon.wait_job(sub["job"])
        assert doc["status"] == "done"  # retries converged
        assert doc["failed"] == 0
        # wait_batches, not a bare metrics GET: the job finishes via the
        # streaming hook strictly before the batch returns and folds its
        # resilience counters.
        metrics = daemon.wait_batches(1)
        assert metrics["resilience"].get("retries", 0) >= 1
        # The daemon is alive and well after worker kills.
        status, health, _ = daemon.request("GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok"
    finally:
        assert daemon.drain() == 0

    monkeypatch.delenv("REPRO_FAULT_SPEC")
    assert _dump(doc["result"]) == _dump(_expected_sweep_payload())


def test_unretryable_fault_fails_the_point_not_the_daemon(
    tmp_path, monkeypatch
):
    # Faults outlast the retry budget: the point fails with a
    # classified error, the job reports it, the daemon keeps serving.
    monkeypatch.setenv("REPRO_FAULT_SPEC", "raise:db_oltp:9")
    monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path / "faults"))
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(ServiceConfig(jobs=2, drain_timeout=60))
    try:
        status, sub, _ = daemon.request(
            "POST",
            "/v1/run",
            {"config": "ibtb:16", "workload": "db_oltp", "length": LENGTH},
        )
        assert status == 202
        doc = daemon.wait_job(sub["job"])
        assert doc["status"] == "failed"
        assert doc["outcomes"][0]["status"] == "error"
        assert doc["outcomes"][0]["kind"] == "exception"
        assert doc["result"] is None
        # Still serving: a clean point on the same daemon succeeds.
        status, sub, _ = daemon.request(
            "POST",
            "/v1/run",
            {"config": "ibtb:16", "workload": "kv_store", "length": LENGTH},
        )
        assert status == 202
        doc = daemon.wait_job(sub["job"])
        assert doc["status"] == "done"
        assert doc["result"]["ipc"] > 0
    finally:
        assert daemon.drain() == 0


# -- protocol details --------------------------------------------------------


def test_events_stream_replays_full_ndjson_feed(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(ServiceConfig(jobs=1, drain_timeout=60))
    try:
        _, sub, _ = daemon.request(
            "POST",
            "/v1/run",
            {"config": "rbtb:3", "workload": "web_frontend", "length": LENGTH},
        )
        # Stream while running: blocks until the job finishes, then EOF.
        status, raw = daemon.request_raw(
            "GET", f"/v1/jobs/{sub['job']}/events"
        )
        assert status == 200
        events = [json.loads(line) for line in raw.decode().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "done"
        assert kinds.count("point") == 1
        point = events[kinds.index("point")]
        assert point["status"] == "ok"
        assert point["workload"] == "web_frontend"
    finally:
        assert daemon.drain() == 0


def test_http_error_paths(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(ServiceConfig(jobs=1, drain_timeout=60))
    try:
        assert daemon.request("GET", "/v1/jobs/nope")[0] == 404
        assert daemon.request("GET", "/v1/nothing")[0] == 404
        assert daemon.request("GET", "/v1/sweep")[0] == 405
        status, doc, _ = daemon.request(
            "POST", "/v1/sweep", {"configs": ["bogus:9"]}
        )
        assert status == 400 and "bogus" in doc["error"]
        status, doc, _ = daemon.request(
            "POST", "/v1/run", {"config": "ibtb:16", "workload": "no_such"}
        )
        assert status == 400 and "no_such" in doc["error"]
        status, doc, _ = daemon.request("POST", "/v1/run", {})
        assert status == 400
        status, health, _ = daemon.request("GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok"
    finally:
        assert daemon.drain() == 0


def test_rate_limited_client_gets_429_with_retry_after(tmp_path):
    configure_disk_cache(True, tmp_path / "cache", shard=True)
    daemon = Daemon(
        ServiceConfig(jobs=1, rate=0.001, burst=1.0, drain_timeout=60)
    )
    try:
        run = {"config": "ibtb:16", "workload": "web_frontend", "length": LENGTH}
        hdr = {"X-Client-Id": "greedy"}
        status, _, _ = daemon.request("POST", "/v1/run", run, headers=hdr)
        assert status == 202
        status, doc, hdrs = daemon.request("POST", "/v1/run", run, headers=hdr)
        assert status == 429
        assert "rate limit" in doc["error"]
        assert int(hdrs["retry-after"]) >= 1
        # Another client is unaffected (and coalesces onto the same point).
        status, _, _ = daemon.request(
            "POST", "/v1/run", run, headers={"X-Client-Id": "patient"}
        )
        assert status == 202
    finally:
        assert daemon.drain() == 0


def test_drain_rejects_new_work_but_finishes_inflight(tmp_path):
    cache_root = tmp_path / "cache"
    configure_disk_cache(True, cache_root, shard=True)
    daemon = Daemon(ServiceConfig(jobs=2, drain_timeout=120))
    _, sub, _ = daemon.request("POST", "/v1/sweep", SPEC)
    # Drain immediately: the sweep is still queued or mid-batch.
    daemon.service.request_drain_threadsafe()
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        try:
            status, doc, _ = daemon.request("POST", "/v1/sweep", SPEC, timeout=5)
        except (ConnectionError, OSError):
            break  # listener already closed: equally a rejection
        assert status == 503
        break
    assert daemon.drain() == 0
    # Nothing submitted before the drain was lost: every unique point
    # of the sweep landed in the disk cache for the next process.
    from repro.core.exec import DiskCache, point_key, SweepPoint
    from repro.cli import parse_config

    store = DiskCache(cache_root, shard=True)
    for config in [IDEAL_IBTB16] + [parse_config(s) for s in SPEC["configs"]]:
        for workload in SPEC["workloads"]:
            point = SweepPoint(config, workload, LENGTH, LENGTH // 4, 7)
            assert store.load_result(point_key(point)) is not None
