"""Golden-value regression tests.

These pin exact cycle counts and event counters for two configurations
on one workload. Any change to these numbers means the simulation
*semantics* changed (generator, predictor, BTB logic, timing) — which is
fine when intentional, but must be noticed: re-baseline the constants
and re-run the benchmark suite so EXPERIMENTS.md stays truthful.
"""

from repro.core.config import build_simulator, ibtb, mbbtb
from repro.trace.workloads import get_trace

LENGTH = 12_000
WARMUP = 3_000


def run(cfg):
    return build_simulator(cfg, get_trace("db_oltp", LENGTH)).run(warmup=WARMUP)


def test_golden_ibtb16():
    r = run(ibtb(16))
    assert r.cycles == 15542
    assert r.stats["mispredicts"] == 93.0
    assert r.stats["misfetches"] == 32.0
    assert r.stats["btb_accesses"] == 1094.0
    assert r.stats["fetch_pcs"] == 8989.0


def test_golden_mbbtb_2bs_allbr():
    r = run(mbbtb(2, "allbr"))
    assert r.cycles == 15562
    assert r.stats["mispredicts"] == 108.0
    assert r.stats["misfetches"] == 45.0
    assert r.stats["btb_accesses"] == 824.0
    assert r.stats["fetch_pcs"] == 8998.0


def test_golden_configs_differ_in_access_count():
    """MB-BTB must need fewer accesses to cover the same instructions
    (multi-block chaining) — the defining property, pinned exactly."""
    a = run(ibtb(16))
    b = run(mbbtb(2, "allbr"))
    assert b.stats["btb_accesses"] < a.stats["btb_accesses"]
