"""The generalized CI perf guard (``scripts/perf_guard.py``).

It must guard every committed ``BENCH_*.json`` that carries
engine-relative speedups, skip the ones that only report raw timings,
and stay backward compatible with the original single-file invocation
CI uses.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "perf_guard", REPO / "scripts" / "perf_guard.py"
)
perf_guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_guard)


def _bench(geomean=None, families=None, **extra):
    doc = dict(extra)
    if geomean is not None:
        doc["geomean_speedup"] = geomean
    if families is not None:
        doc["families"] = {
            name: {"speedup": speedup} for name, speedup in families.items()
        }
    return doc


def _write(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


# -- extraction --------------------------------------------------------------


def test_extract_geomean_and_families():
    got = perf_guard.extract(_bench(1.5, {"a": 1.2, "b": 1.8}))
    assert got == (1.5, {"a": 1.2, "b": 1.8})


def test_extract_computes_geomean_from_families_when_absent():
    geomean, families = perf_guard.extract(_bench(families={"a": 2.0, "b": 8.0}))
    assert geomean == pytest.approx(4.0)
    assert families == {"a": 2.0, "b": 8.0}


def test_extract_unguardable_documents():
    assert perf_guard.extract({"phases": {"cold": {"seconds": 3.2}}}) is None
    assert perf_guard.extract({}) is None


def test_committed_baselines_classified_as_expected():
    guardable = set()
    for path in sorted((REPO / "benchmarks" / "results").glob("BENCH_*.json")):
        if perf_guard.extract(json.loads(path.read_text())) is not None:
            guardable.add(path.name)
    assert "BENCH_batch.json" in guardable
    assert "BENCH_kernel.json" in guardable
    assert "BENCH_sweep.json" not in guardable
    assert "BENCH_corpus.json" not in guardable


# -- single-file mode (the original CI invocation) ---------------------------


def test_single_file_within_tolerance(tmp_path, capsys):
    base = _write(tmp_path / "base.json", _bench(2.0, {"f": 2.0}))
    fresh = _write(tmp_path / "fresh.json", _bench(1.9, {"f": 1.9}))
    assert perf_guard.main([fresh, base]) == 0
    assert "ok:" in capsys.readouterr().out


def test_single_file_regression_fails(tmp_path, capsys):
    base = _write(tmp_path / "base.json", _bench(2.0))
    fresh = _write(tmp_path / "fresh.json", _bench(1.5))
    assert perf_guard.main([fresh, base]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_single_file_missing_family_fails(tmp_path):
    base = _write(tmp_path / "base.json", _bench(2.0, {"f": 2.0, "g": 2.0}))
    fresh = _write(tmp_path / "fresh.json", _bench(2.0, {"f": 2.0}))
    assert perf_guard.main([fresh, base]) == 1


def test_single_file_tolerance_flag(tmp_path):
    base = _write(tmp_path / "base.json", _bench(2.0))
    fresh = _write(tmp_path / "fresh.json", _bench(1.5))
    assert perf_guard.main([fresh, base, "--tolerance", "0.30"]) == 0


# -- --all mode --------------------------------------------------------------


def _dirs(tmp_path):
    fresh_dir = tmp_path / "fresh"
    base_dir = tmp_path / "base"
    fresh_dir.mkdir()
    base_dir.mkdir()
    return fresh_dir, base_dir


def test_all_mode_guards_every_guardable_baseline(tmp_path, capsys):
    fresh_dir, base_dir = _dirs(tmp_path)
    _write(base_dir / "BENCH_batch.json", _bench(2.0, {"f": 2.0}))
    _write(base_dir / "BENCH_kernel.json", _bench(3.0))
    _write(base_dir / "BENCH_sweep.json", {"phases": {}})  # unguardable
    _write(fresh_dir / "BENCH_batch.json", _bench(1.95, {"f": 1.95}))
    _write(fresh_dir / "BENCH_kernel.json", _bench(2.9))
    assert perf_guard.main(["--all", str(fresh_dir), str(base_dir)]) == 0
    out = capsys.readouterr().out
    assert "skip BENCH_sweep.json" in out
    assert "ok: 2 benchmark(s)" in out


def test_all_mode_fails_on_any_regression(tmp_path):
    fresh_dir, base_dir = _dirs(tmp_path)
    _write(base_dir / "BENCH_batch.json", _bench(2.0))
    _write(base_dir / "BENCH_kernel.json", _bench(3.0))
    _write(fresh_dir / "BENCH_batch.json", _bench(1.95))
    _write(fresh_dir / "BENCH_kernel.json", _bench(1.0))  # regressed
    assert perf_guard.main(["--all", str(fresh_dir), str(base_dir)]) == 1


def test_all_mode_fails_when_fresh_measurement_missing(tmp_path, capsys):
    fresh_dir, base_dir = _dirs(tmp_path)
    _write(base_dir / "BENCH_batch.json", _bench(2.0))
    assert perf_guard.main(["--all", str(fresh_dir), str(base_dir)]) == 1
    assert "no fresh measurement" in capsys.readouterr().out


def test_all_mode_fails_when_nothing_guardable(tmp_path, capsys):
    fresh_dir, base_dir = _dirs(tmp_path)
    _write(base_dir / "BENCH_sweep.json", {"phases": {}})
    assert perf_guard.main(["--all", str(fresh_dir), str(base_dir)]) == 1
    assert "nothing guarded" in capsys.readouterr().out


def test_default_baseline_resolves_by_name():
    # The committed baseline vs itself is trivially within tolerance —
    # exactly what CI's single-file invocation relies on.
    fresh = str(REPO / "benchmarks" / "results" / "BENCH_kernel.json")
    assert perf_guard.main([fresh]) == 0
