"""Integration tests: the paper's qualitative orderings must hold.

These run short simulations over a few workloads and check the *shape*
conclusions of the paper's evaluation (who wins, in which direction each
mechanism moves). They are the regression net for the benchmark results.
"""

import pytest

from repro.common.stats import geomean
from repro.core.config import IDEAL_IBTB16, bbtb, ibtb, mbbtb, rbtb
from repro.core.runner import run_one

LENGTH = 40_000
WARMUP = 10_000
NAMES = ["web_frontend", "db_oltp", "kv_store", "http_proxy"]


def gmean_ipc(cfg):
    return geomean(
        [run_one(cfg, n, length=LENGTH, warmup=WARMUP).ipc for n in NAMES]
    )


def mean_stat(cfg, fn):
    vals = [fn(run_one(cfg, n, length=LENGTH, warmup=WARMUP)) for n in NAMES]
    return sum(vals) / len(vals)


@pytest.fixture(scope="module")
def ideal():
    return gmean_ipc(IDEAL_IBTB16)


def test_realistic_ibtb_close_to_ideal(ideal):
    real = gmean_ipc(ibtb(16))
    assert real <= ideal * 1.002
    assert real >= ideal * 0.97


def test_rbtb_single_slot_is_the_weakest_region_config():
    """Fig. 5: with one branch slot per region, R-BTB behaves poorly."""
    r1 = gmean_ipc(rbtb(1))
    r3 = gmean_ipc(rbtb(3))
    assert r1 < r3


def test_bbtb_more_slots_is_detrimental():
    """Fig. 5: at iso-storage, more slots per block = fewer entries =
    worse for B-BTB."""
    b1 = gmean_ipc(bbtb(1))
    b3 = gmean_ipc(bbtb(3))
    assert b3 < b1 * 1.001


def test_splitting_helps_single_slot_bbtb():
    plain = gmean_ipc(bbtb(1))
    split = gmean_ipc(bbtb(1, splitting=True))
    assert split >= plain * 0.999


def test_mbbtb_policy_ordering():
    """Fig. 8: pulling more branch kinds monotonically helps (roughly)."""
    uncond = gmean_ipc(mbbtb(2, "uncond"))
    calldir = gmean_ipc(mbbtb(2, "calldir"))
    allbr = gmean_ipc(mbbtb(2, "allbr"))
    assert calldir >= uncond * 0.995
    assert allbr >= uncond * 0.995


def test_mbbtb_raises_fetch_pcs_per_access():
    """Fig. 10: MB-BTB's defining effect."""
    b = mean_stat(bbtb(2), lambda r: r.fetch_pcs_per_access)
    mb = mean_stat(mbbtb(2, "allbr"), lambda r: r.fetch_pcs_per_access)
    assert mb > b * 1.1


def test_rbtb_fetch_pcs_limited_by_region_boundary():
    """§3.2/Fig. 4: R-BTB generates fewer fetch PCs per access."""
    r = mean_stat(rbtb(3), lambda r_: r_.fetch_pcs_per_access)
    i = mean_stat(ibtb(16), lambda r_: r_.fetch_pcs_per_access)
    assert r < i


def test_interleaving_raises_rbtb_fetch_pcs():
    """Fig. 7: 2L1 R-BTB covers two sequential regions."""
    plain = mean_stat(rbtb(2), lambda r: r.fetch_pcs_per_access)
    inter = mean_stat(rbtb(2, interleaved=True), lambda r: r.fetch_pcs_per_access)
    assert inter > plain


def test_ibtb_skip_mode_maximizes_throughput():
    """Fig. 4: I-BTB 16 Skp approaches 16 fetch PCs per access."""
    from repro.core.config import ibtb_skp

    skp = mean_stat(ibtb_skp(ideal_btb=True), lambda r: r.fetch_pcs_per_access)
    base = mean_stat(ibtb(16, ideal_btb=True), lambda r: r.fetch_pcs_per_access)
    assert skp > base
    assert skp > 11.0


def test_bbtb_has_redundancy_others_do_not():
    """§3.4: only block-organized BTBs duplicate branch metadata."""
    rb = run_one(rbtb(2), NAMES[0], length=LENGTH, warmup=WARMUP)
    bb = run_one(bbtb(2), NAMES[0], length=LENGTH, warmup=WARMUP)
    assert rb.structure["l1_redundancy"] == pytest.approx(1.0)
    assert rb.structure["l2_redundancy"] == pytest.approx(1.0)
    # The tiny scaled L1 holds few duplicates in a short run; the larger
    # L2 already shows the paper's ~1.05 duplication ratio.
    assert bb.structure["l2_redundancy"] > 1.0


def test_btb_hit_rates_in_calibrated_band():
    """EXPERIMENTS.md documents L1 ~76-90 %, L2 ~97-99.9 % for I-BTB."""
    r = run_one(ibtb(16), "web_frontend", length=LENGTH, warmup=WARMUP)
    # Short runs are cold-start heavy; full-length calibration lives in
    # EXPERIMENTS.md (L1 ~80 %, L2 ~99 %).
    assert 0.40 <= r.l1_btb_hit_rate <= 0.97
    assert r.l2_btb_hit_rate >= 0.9
