"""Cross-module accounting invariants.

The PC-generation walk must cover every instruction exactly once, the
engine must see every dynamic branch exactly once, and the hit/miss
taxonomy must partition taken branches — with warmup=0 these are exact
equalities against trace ground truth.
"""

import pytest

from repro.core.config import bbtb, build_simulator, hetero_btb, ibtb, mbbtb, rbtb
from repro.trace.workloads import get_trace

LENGTH = 16_000
CONFIGS = [
    ibtb(16),
    rbtb(2),
    rbtb(2, overflow=16),
    bbtb(1, splitting=True),
    mbbtb(2, "allbr"),
    hetero_btb(1, 2),
]


@pytest.fixture(scope="module", params=range(len(CONFIGS)), ids=lambda i: CONFIGS[i].label)
def run(request):
    trace = get_trace("http_proxy", LENGTH)
    sim = build_simulator(CONFIGS[request.param], trace)
    return trace, sim.run(warmup=0)


def test_fetch_pcs_cover_trace_exactly(run):
    trace, result = run
    assert result.stats["fetch_pcs"] == len(trace)


def test_every_branch_resolved_once(run):
    trace, result = run
    branches = sum(1 for bt in trace.btype if bt)
    assert result.stats["dyn_branches"] == branches


def test_taken_branch_accounting(run):
    trace, result = run
    taken = sum(trace.taken)
    assert result.stats["dyn_taken_branches"] == taken
    assert result.stats["btb_taken_lookups"] == taken


def test_hits_do_not_exceed_lookups(run):
    _trace, result = run
    st = result.stats
    hits = st.get("btb_taken_l1_hits", 0) + st.get("btb_taken_l2_hits", 0)
    assert hits <= st["btb_taken_lookups"]


def test_events_bounded_by_branches(run):
    trace, result = run
    st = result.stats
    branches = sum(1 for bt in trace.btype if bt)
    assert st.get("mispredicts", 0) + st.get("misfetches", 0) <= branches


def test_blocks_at_least_accesses(run):
    _trace, result = run
    assert result.stats["blocks_per_access"] >= result.stats["btb_accesses"]


def test_cycles_bounded_below_by_width(run):
    trace, result = run
    # 16-wide machine: cycles >= instructions / 16.
    assert result.cycles >= len(trace) / 16
