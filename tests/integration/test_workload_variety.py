"""Suite-level variety and seed-sensitivity checks.

The whisker plots only mean something if the 12 workloads actually
differ, and the reproduction claims require that conclusions are not an
artifact of one particular walk seed.
"""

import pytest

from repro.common.stats import geomean
from repro.core.config import bbtb, ibtb
from repro.core.runner import run_one
from repro.trace.workloads import SERVER_SUITE, WORKLOAD_SPECS, get_trace

LENGTH = 24_000
WARMUP = 6_000


def test_workloads_have_distinct_programs():
    seeds = [spec.seed for spec in WORKLOAD_SPECS.values()]
    assert len(set(seeds)) == len(seeds)


def test_traces_differ_across_workloads():
    a = get_trace(SERVER_SUITE[0], 4000)
    b = get_trace(SERVER_SUITE[1], 4000)
    assert a.pc != b.pc


def test_ipc_varies_across_suite():
    ipcs = [
        run_one(ibtb(16), name, length=LENGTH, warmup=WARMUP).ipc
        for name in SERVER_SUITE[:6]
    ]
    spread = max(ipcs) / min(ipcs)
    assert spread > 1.1  # meaningfully heterogeneous workloads


def test_seed_robustness_of_an_ordering():
    """A headline conclusion (B-BTB 1BS split >= unsplit) must hold for
    a different walk seed too."""
    for seed in (7, 1234):
        split = geomean(
            [
                run_one(bbtb(1, splitting=True), n, length=LENGTH, warmup=WARMUP, seed=seed).ipc
                for n in SERVER_SUITE[:4]
            ]
        )
        plain = geomean(
            [
                run_one(bbtb(1), n, length=LENGTH, warmup=WARMUP, seed=seed).ipc
                for n in SERVER_SUITE[:4]
            ]
        )
        assert split >= plain * 0.998, f"seed {seed}"


def test_different_seed_different_trace_same_program():
    a = get_trace(SERVER_SUITE[0], 4000, seed=7)
    b = get_trace(SERVER_SUITE[0], 4000, seed=8)
    assert a.pc != b.pc
    # Same static program: identical PC universe.
    assert set(a.pc) & set(b.pc)
