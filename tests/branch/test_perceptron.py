"""Unit tests for the hashed perceptron predictor."""

import pytest

from repro.branch.history import GlobalHistory
from repro.branch.perceptron import HISTORY_LENGTHS, HashedPerceptron


def run_stream(predictor, history, pc, outcomes, measure_from=0):
    correct = total = 0
    for i, taken in enumerate(outcomes):
        pt, s, idxs = predictor.predict(pc)
        predictor.update(taken, s, idxs)
        history.push(taken)
        if i >= measure_from:
            total += 1
            correct += pt == taken
    return correct / total


def fresh(size_kb=64):
    h = GlobalHistory()
    return HashedPerceptron(h, size_kb=size_kb), h


def test_learns_always_taken_quickly():
    p, h = fresh()
    acc = run_stream(p, h, 0x400, [True] * 50, measure_from=5)
    assert acc == 1.0


def test_learns_never_taken_quickly():
    p, h = fresh()
    acc = run_stream(p, h, 0x400, [False] * 50, measure_from=5)
    assert acc == 1.0


def test_learns_alternating_pattern():
    p, h = fresh()
    acc = run_stream(p, h, 0x80, [i % 2 == 0 for i in range(400)], measure_from=200)
    assert acc > 0.95


def test_learns_loop_exit():
    p, h = fresh()
    pattern = ([True] * 7 + [False]) * 60
    acc = run_stream(p, h, 0x123, pattern, measure_from=240)
    assert acc > 0.95


def test_table_sizing_from_kb():
    p64, _ = fresh(64)
    p2, _ = fresh(2)
    assert p64.table_entries == 4096
    assert p2.table_entries == 128
    assert p64.storage_bytes == 16 * 4096


def test_small_predictor_still_functions():
    p, h = fresh(2)
    acc = run_stream(p, h, 0x999, [True] * 40, measure_from=5)
    assert acc == 1.0


def test_rejects_nonpositive_size():
    h = GlobalHistory()
    with pytest.raises(ValueError):
        HashedPerceptron(h, size_kb=0)


def test_history_lengths_geometric_and_bounded():
    assert HISTORY_LENGTHS[0] == 0
    assert list(HISTORY_LENGTHS) == sorted(HISTORY_LENGTHS)
    assert HISTORY_LENGTHS[-1] == 232
    assert len(HISTORY_LENGTHS) == 16


def test_weights_saturate():
    p, h = fresh()
    for _ in range(500):
        pt, s, idxs = p.predict(0x10)
        p.update(True, s, idxs)
        h.push(True)
    assert all(w <= 127 for table in p.tables for w in table)
    pt, s, idxs = p.predict(0x10)
    assert s <= 16 * 127


def test_update_skips_confident_correct():
    """Once |sum| > theta and correct, weights stop moving."""
    p, h = fresh()
    # Drive well past theta with a constant history (no pushes).
    for _ in range(100):
        pt, s, idxs = p.predict(0x44)
        p.update(True, s, idxs)
    pt, s, idxs = p.predict(0x44)
    before = [p.tables[t][i] for t, i in enumerate(idxs)]
    p.update(True, s, idxs)
    after = [p.tables[t][i] for t, i in enumerate(idxs)]
    assert before == after


def test_distinct_pcs_learn_opposite_biases():
    p, h = fresh()
    for _ in range(60):
        pt, s, idxs = p.predict(0x1000)
        p.update(True, s, idxs)
        pt, s, idxs = p.predict(0x2000)
        p.update(False, s, idxs)
    t1, _, _ = p.predict(0x1000)
    t2, _, _ = p.predict(0x2000)
    assert t1 is True
    assert t2 is False
