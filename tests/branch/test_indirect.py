"""Unit tests for the indirect target predictor and the RAS."""

import pytest

from repro.branch.history import GlobalHistory
from repro.branch.indirect import IndirectPredictor, ReturnAddressStack


def test_cold_predictor_returns_none():
    p = IndirectPredictor(GlobalHistory())
    assert p.predict(0x500) is None


def test_predicts_last_seen_target_stable_history():
    h = GlobalHistory()
    p = IndirectPredictor(h)
    p.update(0x500, 0x9000)
    assert p.predict(0x500) == 0x9000


def test_history_changes_index():
    h = GlobalHistory()
    p = IndirectPredictor(h, entries=4096)
    p.update(0x500, 0x9000)
    for _ in range(30):
        h.push(True)
    # Different history context: likely a different entry (cold or stale).
    # We only require no crash and a well-formed result.
    assert p.predict(0x500) in (None, 0x9000)


def test_learns_history_correlated_targets():
    """Same branch alternating between two targets with distinct history
    contexts must be predicted correctly once trained."""
    h = GlobalHistory()
    p = IndirectPredictor(h)
    correct = 0
    trials = 200
    for i in range(trials):
        context = i % 2 == 0
        # Establish context in history.
        for _ in range(8):
            h.push(context)
        target = 0xAAAA if context else 0xBBBB
        if i >= trials // 2:
            correct += p.predict(0x700) == target
        p.update(0x700, target)
    assert correct / (trials // 2) > 0.9


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        IndirectPredictor(GlobalHistory(), entries=1000)


# -- RAS ------------------------------------------------------------------------

def test_ras_push_pop_lifo():
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100


def test_ras_underflow_returns_none():
    ras = ReturnAddressStack(4)
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(3)
    for addr in (1, 2, 3, 4):
        ras.push(addr)
    assert len(ras) == 3
    assert ras.pop() == 4
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None  # 1 was dropped


def test_ras_top_does_not_pop():
    ras = ReturnAddressStack(4)
    ras.push(0x42)
    assert ras.top() == 0x42
    assert len(ras) == 1


def test_ras_clear():
    ras = ReturnAddressStack(4)
    ras.push(1)
    ras.clear()
    assert ras.pop() is None


def test_ras_rejects_bad_depth():
    with pytest.raises(ValueError):
        ReturnAddressStack(0)
