"""Unit tests for global history and folded registers."""

import pytest

from repro.branch.history import MAX_HISTORY, FoldedRegister, GlobalHistory


def test_push_shifts_bits():
    h = GlobalHistory()
    h.push(True)
    h.push(False)
    h.push(True)
    assert h.value(3) == 0b101


def test_value_masks_length():
    h = GlobalHistory()
    for _ in range(10):
        h.push(True)
    assert h.value(4) == 0b1111


def test_history_bounded_at_max():
    h = GlobalHistory()
    for _ in range(MAX_HISTORY + 50):
        h.push(True)
    assert h.bits < (1 << MAX_HISTORY)


def test_fold_length_zero_is_constant():
    h = GlobalHistory()
    f = h.register_fold(0, 8)
    for taken in (True, False, True):
        h.push(taken)
    assert f.value == 0


def test_fold_tracks_short_history_exactly():
    """With length <= width the fold is just the raw history bits."""
    h = GlobalHistory()
    f = h.register_fold(4, 8)
    for taken in (True, False, True, True):
        h.push(taken)
    assert f.value == h.value(4)


def test_fold_matches_rebuild_long():
    h = GlobalHistory()
    f = h.register_fold(23, 7)
    import random

    rng = random.Random(5)
    for _ in range(300):
        h.push(rng.random() < 0.5)
    ref = FoldedRegister(23, 7)
    ref.rebuild(h.bits)
    assert f.value == ref.value


def test_register_fold_too_long_raises():
    h = GlobalHistory()
    with pytest.raises(ValueError):
        h.register_fold(MAX_HISTORY + 1, 8)


def test_folded_register_validates_args():
    with pytest.raises(ValueError):
        FoldedRegister(4, 0)
    with pytest.raises(ValueError):
        FoldedRegister(-1, 4)


def test_fold_value_stays_in_width():
    h = GlobalHistory()
    f = h.register_fold(64, 9)
    for i in range(500):
        h.push(i % 3 == 0)
        assert 0 <= f.value < (1 << 9)


def test_multiple_folds_independent():
    h = GlobalHistory()
    f1 = h.register_fold(8, 6)
    f2 = h.register_fold(32, 6)
    for i in range(100):
        h.push(i % 2 == 0)
    r1 = FoldedRegister(8, 6)
    r1.rebuild(h.bits)
    r2 = FoldedRegister(32, 6)
    r2.rebuild(h.bits)
    assert f1.value == r1.value
    assert f2.value == r2.value
