"""Concurrent-sweep safety of the disk cache: atomic writes + lock sentinels."""

import json
import multiprocessing as mp
import os
import time

from repro.core.exec import DiskCache
from repro.core.exec.diskcache import STALE_LOCK_SECONDS
from repro.core.simulator import SimResult


def _result(tag="x"):
    return SimResult(
        name=tag,
        instructions=100,
        cycles=250,
        stats={"ipc": 0.4},
        structure={"btb_entries": 1024.0},
    )


def test_store_skipped_while_fresh_lock_held(tmp_path):
    cache = DiskCache(tmp_path)
    path = cache.result_path("k1")
    lock = cache.lock_path(path)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text("12345")  # another sweep is mid-write
    cache.store_result("k1", _result())
    assert not path.exists()
    assert cache.counters["lock_skips"] == 1
    assert lock.exists()  # the skipping side never touches the holder's lock


def test_stale_lock_is_broken_and_write_proceeds(tmp_path):
    cache = DiskCache(tmp_path)
    path = cache.result_path("k1")
    lock = cache.lock_path(path)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text("666")  # writer killed long ago
    old = time.time() - STALE_LOCK_SECONDS - 5
    os.utime(lock, (old, old))
    cache.store_result("k1", _result())
    assert cache.counters["lock_skips"] == 0
    assert not lock.exists()
    assert cache.load_result("k1") is not None


def test_lock_released_after_successful_write(tmp_path):
    cache = DiskCache(tmp_path)
    cache.store_result("k1", _result())
    assert not cache.lock_path(cache.result_path("k1")).exists()


def test_lock_released_when_writer_raises(tmp_path):
    cache = DiskCache(tmp_path)
    path = cache.result_path("k1")
    path.parent.mkdir(parents=True, exist_ok=True)

    def boom(tmp):
        raise OSError("disk full")

    try:
        cache._atomic_write(path, boom)
    except OSError:
        pass
    assert not cache.lock_path(path).exists()
    # No temp droppings either.
    assert [p.name for p in path.parent.iterdir()] == []


def _hammer(root, key, rounds):
    cache = DiskCache(root)
    for i in range(rounds):
        cache.store_result(key, _result())


def test_concurrent_writers_never_expose_torn_entry(tmp_path):
    """Regression for corrupted concurrent writes: two sweeps hammering
    the same content-addressed key must never let a reader observe a
    half-written file — ``os.replace`` swaps complete entries only."""
    key = "shared-key"
    workers = [
        mp.Process(target=_hammer, args=(str(tmp_path), key, 60))
        for _ in range(2)
    ]
    for w in workers:
        w.start()
    cache = DiskCache(tmp_path)
    path = cache.result_path(key)
    parses = 0
    deadline = time.monotonic() + 20
    while any(w.is_alive() for w in workers) and time.monotonic() < deadline:
        if path.exists():
            try:
                raw = path.read_text()
            except FileNotFoundError:
                continue
            payload = json.loads(raw)  # a torn write would explode here
            assert payload["cycles"] == 250
            parses += 1
    for w in workers:
        w.join(timeout=30)
        assert w.exitcode == 0
    assert parses > 0  # the race was actually observed
    assert cache.load_result(key) is not None
