"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.core.config import ibtb
from repro.core.exec import SweepPoint
from repro.core.exec.faults import (
    ENV_FAULT_DIR,
    ENV_FAULT_SPEC,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    active_plan,
    claim_attempt,
    maybe_fault,
    point_id,
    stable_hash,
)

POINT = SweepPoint(ibtb(16), "web_frontend", 1000, 100, 7)


# -- spec parsing -------------------------------------------------------------


def test_parse_full_grammar(tmp_path):
    plan = FaultPlan.parse(
        "raise:db_oltp:2; kill:mod5=0 ;hang:*", state_dir=str(tmp_path)
    )
    assert plan.rules == (
        FaultRule("raise", "db_oltp", 2),
        FaultRule("kill", "mod5=0", 1),
        FaultRule("hang", "*", 1),
    )
    assert plan.state_dir == str(tmp_path)


def test_parse_derives_state_dir_from_spec():
    a = FaultPlan.parse("raise:*")
    b = FaultPlan.parse("raise:*")
    c = FaultPlan.parse("kill:*")
    assert a.state_dir == b.state_dir
    assert a.state_dir != c.state_dir


@pytest.mark.parametrize(
    "spec, match",
    [
        ("raise", "malformed fault entry"),
        ("raise:a:b:c", "malformed fault entry"),
        ("explode:*", "unknown fault kind"),
        ("raise::2", "empty selector"),
        ("raise:*:zero", "bad attempt count"),
        ("raise:*:0", "attempt count must be >= 1"),
        ("", "no entries"),
        (" ; ", "no entries"),
    ],
)
def test_parse_rejects_malformed_specs(spec, match):
    with pytest.raises(FaultSpecError, match=match):
        FaultPlan.parse(spec)


# -- selectors ----------------------------------------------------------------


def test_selector_star_matches_everything():
    assert FaultRule("raise", "*").matches(point_id(POINT))


def test_selector_substring():
    pid = point_id(POINT)
    assert pid == "I-BTB 16|web_frontend|L1000|W100|S7"
    assert FaultRule("raise", "web_frontend").matches(pid)
    assert FaultRule("raise", "I-BTB 16").matches(pid)
    assert not FaultRule("raise", "db_oltp").matches(pid)


def test_selector_mod_is_stable_partition():
    pids = [f"cfg|wl{i}|L1000|W100|S7" for i in range(50)]
    matched = [
        pid for pid in pids if FaultRule("raise", "mod5=0").matches(pid)
    ]
    # Deterministic: same answer every call, and consistent with the hash.
    assert matched == [pid for pid in pids if stable_hash(pid) % 5 == 0]
    assert 0 < len(matched) < len(pids)
    # The residues partition the space.
    total = sum(
        FaultRule("raise", f"mod5={r}").matches(pid)
        for pid in pids
        for r in range(5)
    )
    assert total == len(pids)


def test_selector_mod_malformed_never_matches():
    assert not FaultRule("raise", "mod5=x").matches("anything")
    assert not FaultRule("raise", "mod0=0").matches("anything")


# -- attempt accounting -------------------------------------------------------


def test_claim_attempt_is_monotonic_and_per_rule(tmp_path):
    plan = FaultPlan.parse("raise:*;kill:*", state_dir=str(tmp_path))
    assert claim_attempt(plan, "p1", 0) == 1
    assert claim_attempt(plan, "p1", 0) == 2
    assert claim_attempt(plan, "p1", 0) == 3
    # Independent counters per rule and per point.
    assert claim_attempt(plan, "p1", 1) == 1
    assert claim_attempt(plan, "p2", 0) == 1


def test_maybe_fault_fires_exactly_first_n_attempts(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_FAULT_SPEC, "raise:web_frontend:2")
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path))
    for _ in range(2):
        with pytest.raises(InjectedFault, match="injected exception"):
            maybe_fault(POINT)
    # Third and later attempts are clean: the fault burned out.
    maybe_fault(POINT)
    maybe_fault(POINT)


def test_maybe_fault_first_matching_rule_wins(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_FAULT_SPEC, "raise:web_frontend:1;kill:*:9")
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path))
    with pytest.raises(InjectedFault):
        maybe_fault(POINT)  # raise, not kill — or this test would die


def test_maybe_fault_noop_without_spec(monkeypatch):
    monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
    assert active_plan() is None
    maybe_fault(POINT)  # must not touch the filesystem or raise


# -- network fault kinds (dist workers) ---------------------------------------


def test_parse_accepts_network_kinds(tmp_path):
    from repro.core.exec.faults import NET_FAULT_KINDS

    plan = FaultPlan.parse(
        "drop:kv_store;delay:*:2;disconnect:mod3=1", state_dir=str(tmp_path)
    )
    assert [r.kind for r in plan.rules] == ["drop", "delay", "disconnect"]
    assert set(r.kind for r in plan.rules) == set(NET_FAULT_KINDS)


def test_maybe_fault_skips_net_kinds_without_claiming(monkeypatch, tmp_path):
    """Process-side execution ignores network rules entirely — and must
    not burn their attempt budget (the dist worker owns it)."""
    from repro.core.exec.faults import maybe_net_fault

    monkeypatch.setenv(ENV_FAULT_SPEC, "disconnect:*:1")
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path))
    for _ in range(3):
        maybe_fault(POINT)  # no-op, no sentinel claimed
    # The budget is intact: the net-side check still fires its 1 attempt.
    assert maybe_net_fault(POINT) == "disconnect"
    assert maybe_net_fault(POINT) is None


def test_maybe_net_fault_fires_exactly_first_n_attempts(monkeypatch, tmp_path):
    from repro.core.exec.faults import maybe_net_fault

    monkeypatch.setenv(ENV_FAULT_SPEC, "drop:web_frontend:2")
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path))
    assert maybe_net_fault(POINT) == "drop"
    assert maybe_net_fault(POINT) == "drop"
    assert maybe_net_fault(POINT) is None


def test_maybe_net_fault_skips_process_kinds(monkeypatch, tmp_path):
    """A process rule listed first neither fires nor shadows the net
    rule behind it."""
    from repro.core.exec.faults import maybe_net_fault

    monkeypatch.setenv(ENV_FAULT_SPEC, "kill:*:9;delay:web_frontend:1")
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path))
    assert maybe_net_fault(POINT) == "delay"  # kill ignored, not triggered


def test_mixed_spec_counts_attempts_independently(monkeypatch, tmp_path):
    from repro.core.exec.faults import maybe_net_fault

    monkeypatch.setenv(ENV_FAULT_SPEC, "raise:*:1;drop:*:1")
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path))
    assert maybe_net_fault(POINT) == "drop"
    with pytest.raises(InjectedFault):
        maybe_fault(POINT)
    assert maybe_net_fault(POINT) is None
    maybe_fault(POINT)  # both budgets spent


def test_net_fault_delay_env(monkeypatch):
    from repro.core.exec.faults import ENV_FAULT_DELAY, net_fault_delay

    monkeypatch.delenv(ENV_FAULT_DELAY, raising=False)
    assert net_fault_delay() == 2.0
    monkeypatch.setenv(ENV_FAULT_DELAY, "0.25")
    assert net_fault_delay() == 0.25
    monkeypatch.setenv(ENV_FAULT_DELAY, "soon")
    assert net_fault_delay() == 2.0
