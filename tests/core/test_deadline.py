"""Engine-level sweep deadlines: ``run_points(deadline=...)``.

The deadline is the bottom of the service daemon's per-request deadline
plumbing (``X-Deadline-Ms`` / spec ``timeout_s``): an absolute
``time.monotonic`` instant past which queued points fail fast with a
classified ``timeout`` error (message-prefixed ``deadline-exceeded``,
taxonomy unchanged) and running workers are killed. These tests prove
the contract at both ends:

* an already-expired deadline executes *nothing* — serial and parallel;
* a deadline that lands mid-sweep (forced by a hang fault) classifies
  the straggler as deadline-exceeded while finished points keep their
  real results, and the call returns instead of hanging.
"""

import time

import pytest

from repro.core.config import ibtb, rbtb
from repro.core.exec import (
    DEADLINE_MESSAGE,
    RetryPolicy,
    SweepPoint,
    configure_disk_cache,
    run_points,
)
from repro.core.exec.faults import ENV_FAULT_DIR, ENV_FAULT_HANG, ENV_FAULT_SPEC
from repro.core.runner import clear_cache

L, W = 2_500, 500
FAST = RetryPolicy(max_retries=1, backoff=0.01)


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path / "fault-state"))
    clear_cache()
    configure_disk_cache(False)
    yield
    clear_cache()
    configure_disk_cache(False)


def _points(n_workloads=2):
    names = ["web_frontend", "db_oltp", "kv_store"][:n_workloads]
    return [
        SweepPoint(config, name, L, W, 7)
        for config in [ibtb(16), rbtb(3)]
        for name in names
    ]


def _assert_all_deadline(report, n):
    assert len(report.outcomes) == n
    for outcome in report.outcomes:
        assert not outcome.ok
        assert outcome.error.kind == "timeout"
        assert outcome.error.message.startswith(DEADLINE_MESSAGE)
    assert report.counters["deadline_exceeded"] == n
    assert report.counters["failed"] == n


@pytest.mark.parametrize("jobs", [1, 2])
def test_expired_deadline_dispatches_nothing(jobs):
    """A deadline already in the past fails every point without running
    any — the dequeue-side guarantee the service deadline tests rely on."""
    pts = _points()
    t0 = time.monotonic()
    report = run_points(
        pts,
        jobs=jobs,
        strict=False,
        policy=FAST,
        deadline=time.monotonic() - 1.0,
    )
    _assert_all_deadline(report, len(pts))
    # Nothing executed: no successes, no retries, and the sweep returned
    # in far less time than a single real point would need.
    assert report.counters["executed"] == 0
    assert report.counters["retries"] == 0
    assert time.monotonic() - t0 < 5.0


def test_streaming_hook_sees_deadline_outcomes():
    pts = _points(1)
    seen = []
    run_points(
        pts,
        jobs=1,
        strict=False,
        policy=FAST,
        on_outcome=seen.append,
        deadline=time.monotonic() - 1.0,
    )
    assert sorted(o.index for o in seen) == list(range(len(pts)))
    assert all(o.error.message.startswith(DEADLINE_MESSAGE) for o in seen)


def test_mid_sweep_deadline_classifies_stragglers_not_finished_points(
    monkeypatch,
):
    """A hang fault pins one point past the deadline: that point (and
    anything still queued) classifies as deadline-exceeded, the rest
    keep real results, and the call returns promptly instead of waiting
    out the hang."""
    monkeypatch.setenv(ENV_FAULT_SPEC, "hang:db_oltp:9")
    monkeypatch.setenv(ENV_FAULT_HANG, "120")
    pts = _points()  # ibtb/rbtb x web_frontend/db_oltp
    t0 = time.monotonic()
    report = run_points(
        pts,
        jobs=2,
        strict=False,
        # No per-point timeout: only the sweep deadline can end the hang.
        policy=RetryPolicy(max_retries=0, backoff=0.01, timeout=None),
        deadline=time.monotonic() + 6.0,
    )
    assert time.monotonic() - t0 < 60.0
    by_workload = {
        (o.point.config.label, o.point.workload): o for o in report.outcomes
    }
    hung = [o for o in report.outcomes if o.point.workload == "db_oltp"]
    done = [o for o in report.outcomes if o.point.workload != "db_oltp"]
    assert len(hung) == 2 and len(done) == 2
    for outcome in hung:
        assert not outcome.ok
        assert outcome.error.kind == "timeout"
        assert outcome.error.message.startswith(DEADLINE_MESSAGE)
    # Points that finished before the deadline keep their results.
    assert all(o.ok and o.result.ipc > 0 for o in done)
    assert report.counters["deadline_exceeded"] == 2
    assert by_workload  # structure sanity


def test_generous_deadline_changes_nothing(tmp_path):
    """With room to spare, deadline=None and a far deadline are
    bit-identical — the plumbing is free when unused."""
    pts = _points(1)
    free = run_points(pts, jobs=1, strict=False, policy=FAST)
    bounded = run_points(
        pts,
        jobs=1,
        strict=False,
        policy=FAST,
        deadline=time.monotonic() + 600.0,
    )
    assert [o.result.ipc for o in free.outcomes] == [
        o.result.ipc for o in bounded.outcomes
    ]
    assert bounded.counters["deadline_exceeded"] == 0
