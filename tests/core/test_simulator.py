"""End-to-end simulator tests on small traces."""

import pytest

from repro.core.config import bbtb, build_simulator, ibtb, mbbtb, rbtb
from repro.core.simulator import FrontendConfig, SimResult
from repro.trace.workloads import get_trace

LENGTH = 12_000
WARMUP = 3_000


def run(cfg, name="web_frontend", length=LENGTH, warmup=WARMUP):
    sim = build_simulator(cfg, get_trace(name, length))
    return sim.run(warmup=warmup)


@pytest.fixture(scope="module")
def baseline():
    return run(ibtb(16))


def test_result_shape(baseline):
    assert baseline.instructions == LENGTH - WARMUP
    assert baseline.cycles > 0
    assert 0.05 < baseline.ipc < 16.0


def test_all_organizations_complete():
    for cfg in (ibtb(16), rbtb(2), bbtb(1, splitting=True), mbbtb(2, "allbr")):
        result = run(cfg)
        assert result.instructions == LENGTH - WARMUP
        assert result.ipc > 0.05


def test_determinism(baseline):
    again = run(ibtb(16))
    assert again.cycles == baseline.cycles
    assert again.stats == baseline.stats


def test_warmup_excluded_from_measurement():
    full = run(ibtb(16), warmup=0)
    measured = run(ibtb(16), warmup=6000)
    assert measured.instructions == LENGTH - 6000
    assert measured.cycles < full.cycles


def test_warmup_must_be_smaller_than_trace():
    sim = build_simulator(ibtb(16), get_trace("web_frontend", 1000))
    with pytest.raises(ValueError):
        sim.run(warmup=1000)


def test_metrics_properties(baseline):
    assert 0.0 <= baseline.l1_btb_hit_rate <= 1.0
    assert baseline.l1_btb_hit_rate <= baseline.l2_btb_hit_rate
    assert baseline.fetch_pcs_per_access > 1.0
    assert baseline.branch_mpki >= 0.0
    assert baseline.misfetch_pki >= 0.0


def test_events_are_all_resolved(baseline):
    """Misfetch/mispredict events counted at PC-gen must equal the resteer
    count; the run completing at all proves no event was left dangling."""
    st = baseline.stats
    assert st["dyn_branches"] > 0
    assert st["btb_accesses"] > 0


def test_structure_metrics_sampled(baseline):
    assert "l1_slot_occupancy" in baseline.structure
    assert baseline.structure["l1_slot_occupancy"] >= 0.0


def test_taken_penalty_knob_costs_ipc():
    """§3.6.1 limit study mechanism: a 1-cycle taken-branch bubble on L1
    hits must not speed anything up."""
    fast = run(ibtb(16, ideal_btb=True))
    slow = run(ibtb(16, ideal_btb=True).with_(l1_taken_bubble=1))
    assert slow.ipc <= fast.ipc * 1.001


def test_small_frontend_queue_throttles():
    from repro.core.config import build_simulator as build

    trace = get_trace("web_frontend", LENGTH)
    sim = build(ibtb(16), trace)
    sim.fe = FrontendConfig(ftq_entries=2, fetch_width=4, fetch_lines=2)
    narrow = sim.run(warmup=WARMUP)
    wide = run(ibtb(16))
    assert narrow.ipc < wide.ipc


def test_mbbtb_provides_more_pcs_per_access():
    b = run(bbtb(2))
    mb = run(mbbtb(2, "allbr"))
    assert mb.fetch_pcs_per_access > b.fetch_pcs_per_access
