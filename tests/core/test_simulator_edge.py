"""Simulator edge cases and feature knobs."""

import pytest

from repro.backend.scoreboard import OoOBackend
from repro.common.types import BranchType
from repro.core.config import build_simulator, ibtb
from repro.core.simulator import FrontendConfig, Simulator
from repro.frontend.engine import PredictionEngine
from repro.trace.trace import Trace
from repro.trace.workloads import get_trace

from tests.conftest import straight


def mini_sim(trace, frontend=None, memory="none"):
    eng = PredictionEngine()
    cfg = ibtb(16)
    return Simulator(
        trace=trace,
        btb=cfg.build_btb(),
        engine=eng,
        backend=OoOBackend(memory=None),
        memory=None,
        frontend=frontend or FrontendConfig(),
    )


def make_straight_trace(n):
    tr = Trace()
    for pc in straight(0x1000, n):
        tr.append(pc=pc)
    tr.validate()
    return tr


def test_pure_straight_line_achieves_high_ipc():
    """No branches, no memory: IPC should approach the fetch width's
    practical ceiling (> 4 with dependence-free ALU ops)."""
    result = mini_sim(make_straight_trace(4000)).run(warmup=500)
    assert result.ipc > 4.0


def test_single_instruction_trace():
    result = mini_sim(make_straight_trace(1)).run(warmup=0)
    assert result.instructions == 1
    assert result.cycles >= 1


def test_trace_ending_mid_block():
    """The trace may end in the middle of a BTB access; the simulator
    must drain and terminate cleanly."""
    tr = Trace()
    for pc in straight(0x1000, 7):  # not a multiple of any width
        tr.append(pc=pc)
    tr.append(0x101C, BranchType.UNCOND_DIRECT, True, 0x2000)
    tr.append(0x2000)
    tr.validate()
    result = mini_sim(tr).run(warmup=0)
    assert result.instructions == 9


def test_tiny_ftq_still_completes():
    fe = FrontendConfig(ftq_entries=1, fetch_width=2, fetch_lines=1)
    result = mini_sim(make_straight_trace(600), frontend=fe).run(warmup=0)
    assert result.instructions == 600
    assert result.ipc <= 2.1  # fetch width 2 (+ measurement-boundary slack)


def test_single_interleave_serializes_lines():
    wide = mini_sim(make_straight_trace(2000)).run(warmup=200)
    fe = FrontendConfig(interleaves=1)
    narrow = mini_sim(make_straight_trace(2000), frontend=fe).run(warmup=200)
    assert narrow.ipc <= wide.ipc


def test_early_resteer_never_hurts():
    base = build_simulator(ibtb(16), get_trace("rpc_marshal", 20_000)).run(warmup=5_000)
    er = build_simulator(
        ibtb(16).with_(early_resteer=True), get_trace("rpc_marshal", 20_000)
    ).run(warmup=5_000)
    assert er.ipc >= base.ipc * 0.999
    assert er.stats["misfetches"] == base.stats["misfetches"]


def test_blocks_per_access_stat_recorded():
    result = build_simulator(ibtb(16), get_trace("db_oltp", 10_000)).run(warmup=2_000)
    assert result.stats["blocks_per_access"] >= result.stats["btb_accesses"]


def test_no_memory_mode_runs():
    """memory=None (pure frontend/backend study) is supported."""
    result = mini_sim(make_straight_trace(1000)).run(warmup=100)
    assert result.instructions == 900


def test_sample_structure_flag():
    sim = build_simulator(ibtb(16), get_trace("db_oltp", 6_000))
    result = sim.run(warmup=1_000, sample_structure=False)
    assert result.structure == {}


def test_wedge_guard_raises():
    """A backend that never accepts instructions must trip the guard,
    not hang."""

    class StuckBackend:
        def fetch_gate(self, index):
            return 10 ** 12  # never ready

        def admit(self, *a, **k):  # pragma: no cover - never reached
            raise AssertionError

    tr = make_straight_trace(50)
    sim = Simulator(
        trace=tr, btb=ibtb(16).build_btb(), engine=PredictionEngine(),
        backend=StuckBackend(), memory=None,
    )
    with pytest.raises(RuntimeError, match="wedged"):
        sim.run(warmup=0)


def test_zero_instruction_result_rates_are_zero():
    """Degenerate results (measurement window of 0 instructions) must
    report 0 MPKI/PKI instead of raising ZeroDivisionError."""
    from repro.core.simulator import SimResult

    r = SimResult(name="degenerate", instructions=0, cycles=0,
                  stats={"mispredicts": 5.0, "misfetches": 2.0})
    assert r.branch_mpki == 0.0
    assert r.misfetch_pki == 0.0
    assert r.ipc == 0.0


def test_line_avail_lru_bounded():
    """The I-cache availability map stays bounded under huge footprints
    (LRU eviction, not wholesale clearing)."""
    from repro.core.simulator import LINE_AVAIL_ENTRIES

    assert LINE_AVAIL_ENTRIES == 4096
    # A long straight-line trace touches n/16 distinct lines; the run
    # must complete with identical results to the seed behaviour.
    result = mini_sim(make_straight_trace(8_000)).run(warmup=1_000)
    assert result.instructions == 7_000
