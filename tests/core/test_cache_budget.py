"""DiskCache maintenance: sharding, tier stats, LRU prune, lock sweep.

The service daemon keeps one long-lived store under a byte budget
(``repro-sim serve --cache-max-mb``); ``repro-sim cache stats`` /
``cache prune`` expose the same machinery. These tests cover the
machinery directly: shard-layout interop, per-tier accounting, the
stale-lock sweep on the stats path (write-path sweeping alone leaves
never-rewritten keys locked forever), recency-aware eviction, and
concurrent writers racing a prune.
"""

import json
import multiprocessing as mp
import os
import time

import pytest

from repro.core.exec import DiskCache, STALE_LOCK_SECONDS, TIERS
from repro.core.exec.diskcache import ENV_CACHE_SHARDS, lock_path
from repro.core.simulator import SimResult


def _result(tag="x"):
    return SimResult(
        name=tag,
        instructions=100,
        cycles=250,
        stats={"ipc": 0.4},
        structure={"btb_entries": 1024.0},
    )


def _age(path, seconds):
    old = time.time() - seconds
    os.utime(path, (old, old))


# -- shard layout ------------------------------------------------------------


def test_sharded_entries_live_in_two_hex_subdirs(tmp_path):
    cache = DiskCache(tmp_path, shard=True)
    key = "ab12cd" + "0" * 58
    cache.store_result(key, _result())
    assert (cache.results_dir / "ab" / f"{key}.json").is_file()


def test_flat_and_sharded_caches_interoperate(tmp_path):
    flat = DiskCache(tmp_path, shard=False)
    sharded = DiskCache(tmp_path, shard=True)
    flat.store_result("aa" + "0" * 62, _result("flat"))
    sharded.store_result("bb" + "0" * 62, _result("sharded"))
    # Each reads the other's layout transparently.
    assert sharded.load_result("aa" + "0" * 62).name == "flat"
    assert flat.load_result("bb" + "0" * 62).name == "sharded"
    # And neither duplicates an entry that exists under the other layout.
    sharded.store_result("aa" + "0" * 62, _result("flat"))
    stats = flat.tier_stats()
    assert stats["results"]["entries"] == 2


def test_shard_env_default(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_CACHE_SHARDS, "1")
    assert DiskCache(tmp_path).shard is True
    monkeypatch.setenv(ENV_CACHE_SHARDS, "0")
    assert DiskCache(tmp_path).shard is False
    monkeypatch.delenv(ENV_CACHE_SHARDS)
    assert DiskCache(tmp_path).shard is False


# -- tier stats + lock sweeping ----------------------------------------------


def test_tier_stats_counts_and_sizes(tmp_path):
    cache = DiskCache(tmp_path, shard=True)
    cache.store_result("aa" + "0" * 62, _result())
    cache.store_result("ab" + "0" * 62, _result())
    cache.store_obs("cc" + "0" * 62, {"events": []})
    stats = cache.tier_stats()
    assert set(stats) == set(TIERS) | {"total"}
    assert stats["results"]["entries"] == 2
    assert stats["obs"]["entries"] == 1
    assert stats["traces"]["entries"] == 0
    assert stats["total"]["entries"] == 3
    expected_bytes = sum(stats[t]["bytes"] for t in TIERS)
    assert stats["total"]["bytes"] == expected_bytes > 0


def test_stats_sweeps_stale_locks_but_keeps_fresh_ones(tmp_path):
    """The satellite fix: a killed writer's sentinel for a key nobody
    rewrites used to linger forever — the write path only breaks locks
    for the *same* key. The stats/prune walk now sweeps them."""
    cache = DiskCache(tmp_path, shard=False)
    cache.store_result("aa" + "0" * 62, _result())
    stale = lock_path(cache.results_dir / ("dead" + "0" * 60 + ".json"))
    stale.parent.mkdir(parents=True, exist_ok=True)
    stale.write_text("666")
    _age(stale, STALE_LOCK_SECONDS + 10)
    fresh = lock_path(cache.results_dir / ("live" + "0" * 60 + ".json"))
    fresh.write_text("123")
    orphan_tmp = cache.results_dir / ".tmp-orphan.json"
    orphan_tmp.write_text("partial")
    _age(orphan_tmp, STALE_LOCK_SECONDS + 10)

    stats = cache.tier_stats()
    assert not stale.exists()
    assert not orphan_tmp.exists()
    assert fresh.exists()  # a live writer may own this
    assert cache.counters["locks_swept"] == 2
    # Sentinels and temp files are write state, not entries.
    assert stats["results"]["entries"] == 1


# -- LRU prune ---------------------------------------------------------------


def test_prune_evicts_lru_until_budget_fits(tmp_path):
    cache = DiskCache(tmp_path, shard=False)
    keys = [f"{i:02x}" + "0" * 62 for i in range(4)]
    for i, key in enumerate(keys):
        cache.store_result(key, _result(f"r{i}"))
        _age(cache.result_path(key), 1000 - 100 * i)  # keys[0] coldest
    entry_size = cache.result_path(keys[0]).stat().st_size
    summary = cache.prune(max_bytes=2 * entry_size + 1)
    assert summary["evicted"] == 2
    assert summary["kept"] == 2
    assert cache.load_result(keys[0]) is None
    assert cache.load_result(keys[1]) is None
    assert cache.load_result(keys[2]) is not None
    assert cache.load_result(keys[3]) is not None


def test_prune_is_lru_not_fifo_because_hits_touch(tmp_path):
    cache = DiskCache(tmp_path, shard=False)
    old, new = "aa" + "0" * 62, "bb" + "0" * 62
    cache.store_result(old, _result("old"))
    cache.store_result(new, _result("new"))
    _age(cache.result_path(old), 1000)
    _age(cache.result_path(new), 500)
    assert cache.load_result(old) is not None  # hit refreshes mtime
    entry_size = cache.result_path(new).stat().st_size
    cache.prune(max_bytes=entry_size + 1)
    # The older-written but recently-used entry survived.
    assert cache.load_result(old) is not None
    assert cache.load_result(new) is None


def test_prune_respects_fresh_locks_and_tier_selection(tmp_path):
    cache = DiskCache(tmp_path, shard=False)
    locked, other = "aa" + "0" * 62, "bb" + "0" * 62
    cache.store_result(locked, _result())
    cache.store_result(other, _result())
    _age(cache.result_path(locked), 2000)  # coldest → first eviction pick
    _age(cache.result_path(other), 1000)
    lock_path(cache.result_path(locked)).write_text("123")  # live writer
    cache.store_obs("cc" + "0" * 62, {"big": "x" * 4096})

    summary = cache.prune(max_bytes=0, tiers=["results"])
    assert cache.load_result(locked) is not None  # lock protected it
    assert cache.load_result(other) is None
    assert cache.load_obs("cc" + "0" * 62) is not None  # tier not chosen
    assert summary["evicted"] == 1


def test_prune_noop_under_budget(tmp_path):
    cache = DiskCache(tmp_path, shard=True)
    cache.store_result("aa" + "0" * 62, _result())
    summary = cache.prune(max_bytes=1 << 30)
    assert summary == {
        "evicted": 0,
        "evicted_bytes": 0,
        "kept": 1,
        "kept_bytes": cache.result_path("aa" + "0" * 62).stat().st_size,
    }


def test_bad_tier_name_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown cache tier"):
        DiskCache(tmp_path).tier_dir("journal")


# -- concurrent writers under a budget ---------------------------------------


def _writer(root, tag, rounds):
    cache = DiskCache(root, shard=True)
    for i in range(rounds):
        cache.store_result(f"{tag}{i:04d}" + "0" * 56, _result(f"{tag}{i}"))


def test_concurrent_writers_race_prune_without_corruption(tmp_path):
    """Two processes hammer a sharded store while the parent repeatedly
    prunes it to a small budget: no torn entries, no crashes, and the
    final prune lands the store under budget."""
    workers = [
        mp.Process(target=_writer, args=(str(tmp_path), tag, 40))
        for tag in ("aa", "bb")
    ]
    for w in workers:
        w.start()
    cache = DiskCache(tmp_path, shard=True)
    budget = 2048
    while any(w.is_alive() for w in workers):
        cache.prune(budget)
        for path, _stat in cache._iter_entries("results"):
            payload = json.loads(path.read_text())  # torn write would explode
            assert payload["cycles"] == 250
    for w in workers:
        w.join(timeout=30)
        assert w.exitcode == 0
    summary = cache.prune(budget)
    assert summary["kept_bytes"] <= budget
    # Whatever survived is still readable.
    for path, _stat in cache._iter_entries("results"):
        assert json.loads(path.read_text())["instructions"] == 100
