"""Engine integration of batched kernels, worker recycling and jobs=0.

Covers the sweep-engine side of docs/batched_kernels.md: batched
``run_points`` output is bit-identical to the serial interpreter, batch
plans round-trip through the disk cache's plans tier (with hit/miss
counters), worker recycling (``recycle=N``) respawns processes without
losing results or resilience counters, and ``jobs=0`` auto-detects the
CPU count.
"""

import os

import pytest

from repro.core.config import bbtb, ibtb, mbbtb, rbtb
from repro.core.exec import (
    RetryPolicy,
    SweepPoint,
    clear_plan_memo,
    configure_disk_cache,
    fetch_batch_plan,
    fetch_trace,
    plan_key,
    resolve_jobs,
    run_points,
)
from repro.core.exec.faults import ENV_FAULT_DIR, ENV_FAULT_SPEC
from repro.core.passes.kernel import KERNEL_ENV, batch_geometry
from repro.core.runner import clear_cache

L, W = 2_500, 500


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path / "fault-state"))
    clear_cache()
    configure_disk_cache(False)
    yield
    clear_cache()
    configure_disk_cache(False)


def _points():
    return [
        SweepPoint(config, name, L, W, 7)
        for config in [ibtb(16), ibtb(4), rbtb(3), bbtb(2), mbbtb(2, "allbr")]
        for name in ("web_frontend", "db_oltp")
    ]


# -- batched engine through run_points ---------------------------------------


def test_batched_run_points_bit_identical_to_interp_serial(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "interp")
    ref = run_points(_points(), jobs=1)
    clear_cache()
    monkeypatch.setenv(KERNEL_ENV, "batched")
    for jobs in (1, 2):
        clear_cache()
        got = run_points(_points(), jobs=jobs)
        for a, b in zip(ref, got):
            assert a.stats == b.stats
            assert a.cycles == b.cycles
            assert a.structure == b.structure


def test_plan_disk_cache_round_trip(monkeypatch, tmp_path):
    """A cold batched run stores one plan per (workload, geometry); a
    fresh process (simulated by clearing the memo) hits the disk."""
    monkeypatch.setenv(KERNEL_ENV, "batched")
    cache = configure_disk_cache(True, tmp_path)
    pts = _points()
    cold = run_points(pts, jobs=1)
    assert cache.counters["plan_misses"] == 2  # one per workload
    assert cache.counters["plan_hits"] == 0

    clear_cache()
    clear_plan_memo()
    import shutil

    shutil.rmtree(cache.results_dir)  # force re-simulation, keep plans
    cache2 = configure_disk_cache(True, tmp_path)
    warm = run_points(pts, jobs=1)
    assert cache2.counters["plan_hits"] == 2
    assert cache2.counters["plan_misses"] == 0
    assert [r.stats for r in cold] == [r.stats for r in warm]


def test_corrupt_plan_entry_is_dropped_and_rebuilt(monkeypatch, tmp_path):
    monkeypatch.setenv(KERNEL_ENV, "batched")
    cache = configure_disk_cache(True, tmp_path)
    point = _points()[0]
    trace = fetch_trace(point.workload, point.length, point.seed)
    fetch_batch_plan(point, trace)
    key = plan_key(point, batch_geometry(point.config))
    path = cache.plan_path(key)
    assert path.exists()
    path.write_bytes(b"not an npz")
    clear_plan_memo()
    plan = fetch_batch_plan(point, trace)  # corrupt entry: rebuilt
    assert len(plan.line_ix) == len(trace)
    assert cache.counters["plan_misses"] == 2
    assert path.exists()  # re-stored


def test_plan_key_distinguishes_geometry_and_trace():
    a, b = _points()[0], _points()[2]  # same workload, different config
    geom = batch_geometry(a.config)
    assert plan_key(a, geom) == plan_key(b, geom)  # family-shared
    other = SweepPoint(a.config, "db_oltp", L, W, 7)
    assert plan_key(a, geom) != plan_key(other, geom)
    small = batch_geometry(ibtb(16, bp_size_kb=2))
    assert plan_key(a, small) != plan_key(a, geom)


# -- worker recycling ---------------------------------------------------------


def test_recycling_respawns_workers_and_keeps_results(monkeypatch):
    pts = _points()
    ref = run_points(pts, jobs=1)
    clear_cache()
    report = run_points(pts, jobs=2, recycle=2, batch=2, strict=False)
    assert all(o.ok for o in report.outcomes)
    retires = [e for e in report.events if e["kind"] == "worker_retire"]
    assert len(retires) >= 2  # 10 points / recycle=2 across 2 workers
    assert [r.stats for r in ref] == [r.stats for r in report.results]


def test_recycling_preserves_resilience_counters(monkeypatch):
    """recycle=1 retires the worker after every dispatch, yet transient
    faults are still retried and counted exactly as without recycling."""
    monkeypatch.setenv(ENV_FAULT_SPEC, "raise:db_oltp:1")
    pts = _points()[:4]  # ibtb(16)/ibtb(4) x web_frontend/db_oltp
    report = run_points(
        pts,
        jobs=2,
        recycle=1,
        strict=False,
        policy=RetryPolicy(max_retries=2, backoff=0.01),
    )
    assert all(o.ok for o in report.outcomes)
    assert report.counters["exceptions"] == 2  # one per db_oltp point
    assert report.counters["retries"] == 2
    assert any(e["kind"] == "worker_retire" for e in report.events)


# -- jobs auto-detection ------------------------------------------------------


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(-3) == 1
    probe = getattr(os, "process_cpu_count", None) or os.cpu_count
    assert resolve_jobs(0) == max(1, probe() or 1)


def test_resolve_jobs_env_default(monkeypatch):
    """jobs=None consults $REPRO_JOBS; an explicit value always wins."""
    from repro.core.exec import ENV_JOBS

    monkeypatch.delenv(ENV_JOBS, raising=False)
    assert resolve_jobs(None) == 1
    monkeypatch.setenv(ENV_JOBS, "6")
    assert resolve_jobs(None) == 6
    # Explicit values ignore the env var entirely...
    assert resolve_jobs(2) == 2
    # ...including explicit 0, which still means auto-detect the CPUs.
    probe = getattr(os, "process_cpu_count", None) or os.cpu_count
    assert resolve_jobs(0) == max(1, probe() or 1)
    # Env auto-detect and clamping mirror the explicit forms.
    monkeypatch.setenv(ENV_JOBS, "0")
    assert resolve_jobs(None) == max(1, probe() or 1)
    monkeypatch.setenv(ENV_JOBS, "-4")
    assert resolve_jobs(None) == 1
    # Unparsable env values fall back to serial rather than crashing.
    monkeypatch.setenv(ENV_JOBS, "many")
    assert resolve_jobs(None) == 1


def test_jobs_zero_runs_the_sweep(monkeypatch):
    pts = _points()[:2]
    ref = run_points(pts, jobs=1)
    clear_cache()
    got = run_points(pts, jobs=0)
    assert [r.stats for r in ref] == [r.stats for r in got]
