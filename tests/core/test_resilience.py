"""Fault-tolerant sweep execution: taxonomy, retries, crashes, resume.

Fault injection (repro.core.exec.faults, ``REPRO_FAULT_SPEC``) makes
selected points raise / hang / SIGKILL their worker / corrupt their
cache entry on their first N attempts; these tests prove the engine
pinpoints and retries them and that converged results are bit-identical
to fault-free runs.
"""

import pytest

from repro.core.config import ibtb, rbtb
from repro.core.exec import (
    PointError,
    PointOutcome,
    RetryPolicy,
    SweepError,
    SweepJournal,
    SweepPoint,
    configure_disk_cache,
    point_key,
    run_points,
)
from repro.core.exec.faults import ENV_FAULT_DIR, ENV_FAULT_HANG, ENV_FAULT_SPEC
from repro.core.runner import clear_cache

L, W = 2_500, 500
FAST = RetryPolicy(max_retries=2, backoff=0.01)


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    """No memo, no disk cache, no fault spec leaking between tests."""
    monkeypatch.delenv(ENV_FAULT_SPEC, raising=False)
    monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path / "fault-state"))
    clear_cache()
    configure_disk_cache(False)
    yield
    clear_cache()
    configure_disk_cache(False)


def _points(n_workloads=2):
    names = ["web_frontend", "db_oltp", "kv_store"][:n_workloads]
    return [
        SweepPoint(config, name, L, W, 7)
        for config in [ibtb(16), rbtb(3)]
        for name in names
    ]


def _set_faults(monkeypatch, spec, hang_s=None):
    monkeypatch.setenv(ENV_FAULT_SPEC, spec)
    if hang_s is not None:
        monkeypatch.setenv(ENV_FAULT_HANG, str(hang_s))


# -- taxonomy ----------------------------------------------------------------


def test_point_error_kinds_are_closed_set():
    for kind in ("exception", "timeout", "worker-crash", "cache-corrupt"):
        err = PointError(kind=kind, point_key="k", attempts=1, message="m")
        assert err.kind == kind
    with pytest.raises(ValueError, match="unknown PointError kind"):
        PointError(kind="bogus", point_key="k", attempts=1)


def test_point_outcome_ok_requires_result():
    point = SweepPoint(ibtb(16), "web_frontend", L, W, 7)
    assert not PointOutcome(index=0, point=point).ok
    err = PointError(kind="exception", point_key="k", attempts=3)
    assert not PointOutcome(index=0, point=point, error=err).ok


# -- strict/non-strict parity (satellite) ------------------------------------


def test_nonstrict_zero_faults_bit_identical_to_strict_serial():
    pts = _points()
    strict = run_points(pts, jobs=1)
    clear_cache()
    report = run_points(pts, jobs=1, strict=False)
    assert all(o.ok for o in report.outcomes)
    assert [r.stats for r in strict] == [r.stats for r in report.results]
    assert [r.cycles for r in strict] == [r.cycles for r in report.results]
    assert report.counters["ok"] == len(pts)
    assert report.counters["retries"] == 0


def test_nonstrict_zero_faults_bit_identical_to_strict_parallel():
    pts = _points()
    strict = run_points(pts, jobs=1)
    clear_cache()
    report = run_points(pts, jobs=2, strict=False, policy=FAST)
    assert [r.stats for r in strict] == [r.stats for r in report.results]
    assert [r.structure for r in strict] == [
        r.structure for r in report.results
    ]


# -- per-point isolation and retries -----------------------------------------


def test_serial_retry_converges_on_transient_exception(monkeypatch):
    _set_faults(monkeypatch, "raise:db_oltp:2")
    pts = _points()
    clean = run_points([p for p in pts], jobs=1)  # faults only hit resilient path
    clear_cache()
    report = run_points(pts, jobs=1, strict=False, policy=RetryPolicy(
        max_retries=3, backoff=0.01))
    assert all(o.ok for o in report.outcomes)
    assert report.counters["exceptions"] == 4  # 2 configs x 2 attempts
    assert report.counters["retries"] == 4
    assert [r.stats for r in report.results] == [r.stats for r in clean]


def test_exception_does_not_kill_chunk_mates(monkeypatch):
    """max_retries=0: the poisoned points fail, everything else succeeds."""
    _set_faults(monkeypatch, "raise:db_oltp:9")
    report = run_points(
        _points(), jobs=2, strict=False,
        policy=RetryPolicy(max_retries=0, backoff=0.01),
    )
    failed = [o for o in report.outcomes if not o.ok]
    assert len(failed) == 2
    assert all(o.error.kind == "exception" for o in failed)
    assert all(o.point.workload == "db_oltp" for o in failed)
    assert all(o.error.attempts == 1 for o in failed)
    assert all("InjectedFault" in o.error.message for o in failed)
    assert all("InjectedFault" in o.error.traceback for o in failed)
    ok = [o for o in report.outcomes if o.ok]
    assert len(ok) == 2 and all(o.point.workload == "web_frontend" for o in ok)


def test_strict_mode_raises_sweep_error_with_report(monkeypatch):
    _set_faults(monkeypatch, "raise:db_oltp:9")
    with pytest.raises(SweepError, match="exception after 2 attempts") as info:
        run_points(
            _points(), jobs=2,
            policy=RetryPolicy(max_retries=1, backoff=0.01),
        )
    report = info.value.report
    assert len(report.failures) == 2
    # Completed work is not discarded.
    assert sum(o.ok for o in report.outcomes) == 2


def test_worker_kill_pinpoints_poison_point(monkeypatch):
    """A SIGKILLed worker takes only the executing point's attempt with
    it: chunk-mates are re-dispatched blame-free and the sweep converges
    to bit-identical results."""
    pts = _points()
    clean = run_points(pts, jobs=1)
    clear_cache()
    _set_faults(monkeypatch, "kill:db_oltp:1")
    report = run_points(pts, jobs=2, strict=False, policy=FAST)
    assert all(o.ok for o in report.outcomes)
    assert report.counters["worker_crashes"] == 2
    assert [r.stats for r in report.results] == [r.stats for r in clean]


def test_worker_kill_permanent_is_quarantined(monkeypatch):
    _set_faults(monkeypatch, "kill:db_oltp:99")
    report = run_points(
        _points(), jobs=2, strict=False,
        policy=RetryPolicy(max_retries=1, backoff=0.01),
    )
    failed = [o for o in report.outcomes if not o.ok]
    assert {o.point.workload for o in failed} == {"db_oltp"}
    assert all(o.error.kind == "worker-crash" for o in failed)
    assert all(o.error.attempts == 2 for o in failed)
    # Chunk-mates survived the crashes.
    assert all(
        o.ok for o in report.outcomes if o.point.workload == "web_frontend"
    )


def test_hang_is_killed_by_parent_deadline_and_retried(monkeypatch):
    _set_faults(monkeypatch, "hang:db_oltp:1", hang_s=60)
    pts = _points()
    clean = run_points(pts, jobs=1)
    clear_cache()
    report = run_points(
        pts, jobs=2, strict=False,
        policy=RetryPolicy(max_retries=2, timeout=1.0, backoff=0.01),
    )
    assert all(o.ok for o in report.outcomes)
    assert report.counters["timeouts"] == 2
    assert [r.stats for r in report.results] == [r.stats for r in clean]
    kinds = {e["kind"] for e in report.events}
    assert "timeout_kill" in kinds and "retry" in kinds


def test_cache_corrupt_fault_classified_and_healed(monkeypatch, tmp_path):
    configure_disk_cache(True, tmp_path / "cache")
    _set_faults(monkeypatch, "corrupt:db_oltp:1")
    pts = _points()
    report = run_points(pts, jobs=2, strict=False, policy=FAST)
    assert all(o.ok for o in report.outcomes)
    assert report.counters["cache_corrupt"] == 2
    assert report.counters["retries"] == 2


# -- acceptance: mixed 20%+ fault sweep, bit-identical ------------------------


def test_mixed_fault_sweep_bit_identical_to_clean_run(monkeypatch, tmp_path):
    """The ISSUE acceptance scenario, scaled to unit-test size: a sweep
    with a mix of raise / hang-past-timeout / exit(-9) faults injected
    completes under max_retries=3 with results bit-identical to a
    fault-free run."""
    pts = [
        SweepPoint(config, name, L, W, 7)
        for config in [ibtb(16), rbtb(3), ibtb(8)]
        for name in ["web_frontend", "db_oltp", "kv_store"]
    ]
    clean = run_points(pts, jobs=1)
    clear_cache()
    _set_faults(
        monkeypatch,
        "hang:R-BTB:1;kill:db_oltp:1;raise:web_frontend:2",
        hang_s=60,
    )
    report = run_points(
        pts, jobs=2, strict=False,
        policy=RetryPolicy(max_retries=3, timeout=1.5, backoff=0.01),
    )
    assert all(o.ok for o in report.outcomes), [
        (o.index, o.error) for o in report.outcomes if not o.ok
    ]
    assert report.counters["worker_crashes"] >= 1
    assert report.counters["timeouts"] >= 1
    assert report.counters["exceptions"] >= 1
    for got, want in zip(report.results, clean):
        assert got.stats == want.stats
        assert got.cycles == want.cycles
        assert got.structure == want.structure


# -- checkpoint/resume journal ------------------------------------------------


def test_journal_records_and_tolerates_torn_tail(tmp_path):
    journal = SweepJournal(tmp_path / "sweep.jsonl")
    journal.record("aaa")
    journal.record("bbb")
    journal.close()
    with open(journal.path, "a") as fh:
        fh.write('{"key": "ccc"')  # torn final line (SIGKILL mid-write)
    assert journal.completed() == {"aaa", "bbb"}


def test_resume_skips_only_journaled_points(tmp_path):
    configure_disk_cache(True, tmp_path / "cache")
    pts = _points(n_workloads=3)  # 6 points
    first_half, rest = pts[:3], pts[3:]
    journal = SweepJournal(tmp_path / "sweep.jsonl")
    # "Crashed" run completed the first half.
    report1 = run_points(
        first_half, jobs=1, strict=False, policy=FAST, journal=journal
    )
    assert all(o.ok for o in report1.outcomes)
    clear_cache()
    # Resumed run over the full grid executes only the second half.
    report2 = run_points(
        pts, jobs=1, strict=False, policy=FAST, journal=journal, resume=True
    )
    journal.close()
    assert all(o.ok for o in report2.outcomes)
    assert report2.counters["resumed"] == 3
    assert report2.counters["executed"] == 3
    resumed = [o for o in report2.outcomes if o.resumed]
    assert [o.point for o in resumed] == first_half
    # Journal now checkpoints the full grid.
    assert journal.completed() == {point_key(p) for p in pts}


def test_resume_with_corrupt_cache_entry_reruns_point(tmp_path):
    cache = configure_disk_cache(True, tmp_path / "cache")
    pts = _points()
    journal = SweepJournal(tmp_path / "sweep.jsonl")
    run_points(pts, jobs=1, strict=False, policy=FAST, journal=journal)
    clear_cache()
    # Corrupt one journaled artifact: resume must classify and re-run it.
    cache.result_path(point_key(pts[0])).write_text("{half a result")
    report = run_points(
        pts, jobs=1, strict=False, policy=FAST, journal=journal, resume=True
    )
    journal.close()
    assert all(o.ok for o in report.outcomes)
    assert report.counters["resumed"] == len(pts) - 1
    assert report.counters["cache_corrupt"] == 1
    assert report.counters["executed"] == 1
    assert any(e["kind"] == "cache_corrupt" for e in report.events)


def test_resumed_results_bit_identical(tmp_path):
    configure_disk_cache(True, tmp_path / "cache")
    pts = _points()
    clean = run_points(pts, jobs=1)
    clear_cache()
    journal = SweepJournal(tmp_path / "sweep.jsonl")
    run_points(pts[:2], jobs=1, strict=False, policy=FAST, journal=journal)
    clear_cache()
    report = run_points(
        pts, jobs=2, strict=False, policy=FAST, journal=journal, resume=True
    )
    journal.close()
    assert [r.stats for r in report.results] == [r.stats for r in clean]


# -- sweep events -------------------------------------------------------------


def test_report_events_cover_chunk_lifecycle():
    report = run_points(_points(), jobs=2, strict=False, policy=FAST)
    kinds = [e["kind"] for e in report.events]
    assert "chunk_start" in kinds and "chunk_end" in kinds
    assert kinds.count("point_ok") == 4
    starts = [e for e in report.events if e["kind"] == "chunk_start"]
    ends = [e for e in report.events if e["kind"] == "chunk_end"]
    assert {e["chunk"] for e in starts} == {e["chunk"] for e in ends}
    # Timestamps are monotonic non-negative offsets.
    assert all(e["ts"] >= 0 for e in report.events)
