"""Unit tests for the experiment runner."""

import pytest

from repro.common.stats import BoxStats
from repro.core.config import ibtb, rbtb
from repro.core.runner import (
    ComparedConfig,
    clear_cache,
    compare_to_baseline,
    run_one,
    run_suite,
)

L, W = 8_000, 2_000
NAMES = ["web_frontend", "db_oltp"]


def test_run_one_is_memoized():
    clear_cache()
    a = run_one(ibtb(16), "web_frontend", length=L, warmup=W)
    b = run_one(ibtb(16), "web_frontend", length=L, warmup=W)
    assert a is b


def test_cache_key_includes_config():
    clear_cache()
    a = run_one(ibtb(16), "web_frontend", length=L, warmup=W)
    b = run_one(ibtb(8), "web_frontend", length=L, warmup=W)
    assert a is not b


def test_run_suite_order_and_length():
    results = run_suite(ibtb(16), NAMES, length=L, warmup=W)
    assert [r.name for r in results] == NAMES


def test_compare_to_baseline_self_is_unity():
    compared = compare_to_baseline([ibtb(16)], ibtb(16), NAMES, length=L, warmup=W)
    assert all(v == pytest.approx(1.0) for v in compared[0].relative_ipc)


def test_compared_config_box_and_geomean():
    compared = compare_to_baseline(
        [ibtb(16), rbtb(1)], ibtb(16), NAMES, length=L, warmup=W
    )
    for cc in compared:
        assert isinstance(cc.box, BoxStats)
        assert cc.geomean_ipc > 0
        assert cc.mean_fetch_pcs > 0
        assert len(cc.relative_ipc) == len(NAMES)


def test_clear_cache():
    clear_cache()
    a = run_one(ibtb(16), "web_frontend", length=L, warmup=W)
    clear_cache()
    b = run_one(ibtb(16), "web_frontend", length=L, warmup=W)
    assert a is not b
    assert a.cycles == b.cycles  # determinism across cache clears


def test_clear_cache_disk_kwarg_without_disk_cache():
    """disk=True is a no-op when no persistent cache is configured."""
    clear_cache(disk=True)
    a = run_one(ibtb(16), "web_frontend", length=L, warmup=W)
    assert a.cycles > 0


def test_run_suite_jobs_kwarg_default_serial():
    results = run_suite(ibtb(16), NAMES, length=L, warmup=W, jobs=1)
    assert [r.name for r in results] == NAMES
