"""Unit tests for machine configurations."""

import pytest

from repro.btb.bbtb import BlockBTB
from repro.btb.ibtb import InstructionBTB
from repro.btb.mbbtb import MultiBlockBTB
from repro.btb.rbtb import RegionBTB
from repro.core.config import (
    IDEAL_IBTB16,
    PAPER_L1_SLOTS,
    MachineConfig,
    bbtb,
    build_simulator,
    fit_geometry,
    ibtb,
    ibtb_skp,
    mbbtb,
    rbtb,
)
from repro.trace.workloads import get_trace


def test_fit_geometry_iso_slots():
    """Paper §4: organizations are compared at equal branch-slot budgets."""
    budget = 3072
    for slots in (1, 2, 3, 4):
        g = fit_geometry(budget, slots, pref_ways=6)
        total_slots = g.entries * slots
        assert 0.7 * budget <= total_slots <= 1.3 * budget, slots


def test_fit_geometry_pow2_sets():
    g = fit_geometry(3072, 3, 6)
    assert g.sets & (g.sets - 1) == 0


def test_btb_kinds_instantiate():
    assert isinstance(ibtb(16).build_btb(), InstructionBTB)
    assert isinstance(rbtb(2).build_btb(), RegionBTB)
    assert isinstance(bbtb(1, splitting=True).build_btb(), BlockBTB)
    assert isinstance(mbbtb(2, "allbr").build_btb(), MultiBlockBTB)


def test_unknown_kind_raises():
    with pytest.raises(ValueError):
        MachineConfig(btb_kind="bogus").build_btb()


def test_labels_match_paper_nomenclature():
    assert ibtb(8).label == "I-BTB 8"
    assert ibtb_skp().label == "I-BTB 16 Skp"
    assert rbtb(3).label == "R-BTB 3BS"
    assert rbtb(2, interleaved=True).label == "2L1 R-BTB 2BS"
    assert rbtb(4, region_bytes=128).label == "R-BTB 128B 4BS"
    assert bbtb(1, splitting=True).label == "B-BTB 1BS Splt"
    assert bbtb(1, block_insts=32, splitting=True).label == "B-BTB 32 1BS Splt"
    assert mbbtb(2, "calldir").label == "MB-BTB 2BS CallDir"
    assert mbbtb(3, "allbr", block_insts=64).label == "MB-BTB 64 3BS AllBr"


def test_ideal_config_single_level():
    l1, l2 = IDEAL_IBTB16.geometries()
    assert l2 is None
    assert l1.entries >= 4096


def test_slots_scale_entries_down():
    one = rbtb(1).geometries()[0].entries
    four = rbtb(4).geometries()[0].entries
    assert four <= one / 2


def test_geometry_slots_override():
    """Fig. 7's '2Geo 16BS': geometry of 2 slots, but 16 actual slots."""
    cfg = rbtb(16).with_(geometry_slots=2, label="R-BTB 2Geo 16BS")
    geo = cfg.geometries()[0]
    assert geo.entries == rbtb(2).geometries()[0].entries
    btb = cfg.build_btb()
    assert btb.slots_per_entry == 16


def test_with_returns_new_config():
    base = ibtb(16)
    derived = base.with_(bp_size_kb=8)
    assert derived.bp_size_kb == 8
    assert base.bp_size_kb == 64


def test_configs_are_hashable_cache_keys():
    assert hash(ibtb(16)) == hash(ibtb(16))
    assert ibtb(16) == ibtb(16)
    assert ibtb(16) != ibtb(8)


def test_build_simulator_wires_components():
    trace = get_trace("web_frontend", 2000)
    sim = build_simulator(ibtb(16), trace)
    assert sim.trace is trace
    assert sim.memory is not None
    assert sim.backend is not None
    sim_ideal = build_simulator(ibtb(16, ideal_backend=True), trace)
    from repro.backend.scoreboard import IdealBackend

    assert isinstance(sim_ideal.backend, IdealBackend)
