"""Tests for the sweep execution engine: parallelism + persistent cache."""

import json

import pytest

from repro.core.config import bbtb, ibtb, mbbtb, rbtb
from repro.core.exec import (
    DiskCache,
    SweepPoint,
    configure_disk_cache,
    execute_point,
    get_disk_cache,
    point_key,
    run_points,
    trace_key,
)
from repro.core.runner import clear_cache, compare_to_baseline, run_one, run_suite
from repro.trace.workloads import WORKLOAD_SPECS

L, W = 4_000, 1_000
NAMES = ["web_frontend", "db_oltp", "kv_store"]
CONFIGS = [ibtb(16), rbtb(3), mbbtb(2, "allbr")]


@pytest.fixture(autouse=True)
def _isolated_caches():
    """Every test starts and ends with no memo and no disk cache."""
    clear_cache()
    configure_disk_cache(False)
    yield
    clear_cache()
    configure_disk_cache(False)


def _points():
    return [
        SweepPoint(config, name, L, W, 7) for config in CONFIGS for name in NAMES
    ]


# -- parallel-vs-serial determinism -----------------------------------------


def test_parallel_results_bit_identical_to_serial():
    """jobs=4 must reproduce jobs=1 exactly: same stats dict, cycles and
    order for every (config, workload) point (3 configs x 3 workloads)."""
    serial = run_points(_points(), jobs=1)
    parallel = run_points(_points(), jobs=4)
    assert len(serial) == len(parallel) == 9
    for a, b in zip(serial, parallel):
        assert a.name == b.name
        assert a.instructions == b.instructions
        assert a.cycles == b.cycles
        assert a.stats == b.stats
        assert a.structure == b.structure


def test_run_suite_jobs_matches_serial():
    serial = run_suite(CONFIGS[0], NAMES, L, W)
    clear_cache()
    parallel = run_suite(CONFIGS[0], NAMES, L, W, jobs=4)
    assert [r.name for r in parallel] == NAMES
    assert [r.stats for r in serial] == [r.stats for r in parallel]


def test_compare_to_baseline_jobs_matches_serial():
    serial = compare_to_baseline(CONFIGS, ibtb(16), NAMES, L, W)
    clear_cache()
    parallel = compare_to_baseline(CONFIGS, ibtb(16), NAMES, L, W, jobs=4)
    assert [cc.relative_ipc for cc in serial] == [
        cc.relative_ipc for cc in parallel
    ]


# -- cache-key stability ------------------------------------------------------


def test_point_key_stable_across_rebuilt_configs():
    """Two independently constructed but identical configs share a key."""
    a = point_key(SweepPoint(mbbtb(2, "allbr"), "web_frontend", L, W, 7))
    b = point_key(SweepPoint(mbbtb(2, "allbr"), "web_frontend", L, W, 7))
    assert a == b


def test_point_key_changes_with_any_field():
    base = SweepPoint(ibtb(16), "web_frontend", L, W, 7)
    variants = [
        SweepPoint(ibtb(8), "web_frontend", L, W, 7),
        SweepPoint(ibtb(16, scale=0.5), "web_frontend", L, W, 7),
        SweepPoint(ibtb(16), "db_oltp", L, W, 7),
        SweepPoint(ibtb(16), "web_frontend", L + 1, W, 7),
        SweepPoint(ibtb(16), "web_frontend", L, W + 1, 7),
        SweepPoint(ibtb(16), "web_frontend", L, W, 8),
    ]
    keys = {point_key(v) for v in variants}
    assert point_key(base) not in keys
    assert len(keys) == len(variants)


def test_trace_key_depends_on_spec():
    spec = WORKLOAD_SPECS["web_frontend"]
    other = WORKLOAD_SPECS["db_oltp"]
    assert trace_key("web_frontend", spec, L, 7) == trace_key(
        "web_frontend", spec, L, 7
    )
    assert trace_key("web_frontend", spec, L, 7) != trace_key(
        "web_frontend", other, L, 7
    )


# -- persistent disk cache ----------------------------------------------------


def test_disk_cache_round_trip(tmp_path):
    cache = configure_disk_cache(True, tmp_path)
    point = SweepPoint(ibtb(16), "web_frontend", L, W, 7)
    cold = execute_point(point)
    assert cache.counters["result_misses"] == 1
    warm = execute_point(point)
    assert cache.counters["result_hits"] == 1
    assert warm is not cold
    assert warm.stats == cold.stats
    assert warm.cycles == cold.cycles
    assert warm.structure == cold.structure


def test_disk_cache_serves_across_processes_via_run_points(tmp_path):
    configure_disk_cache(True, tmp_path)
    cold = run_points(_points()[:3], jobs=2)
    clear_cache()
    warm = run_points(_points()[:3], jobs=1)
    assert [r.stats for r in cold] == [r.stats for r in warm]
    assert get_disk_cache().counters["result_hits"] >= 3


def test_corrupted_result_file_falls_back_to_recompute(tmp_path):
    cache = configure_disk_cache(True, tmp_path)
    point = SweepPoint(ibtb(16), "web_frontend", L, W, 7)
    good = execute_point(point)
    path = cache.result_path(point_key(point))
    path.write_text("{ this is not json")
    again = execute_point(point)  # must not raise
    assert again.stats == good.stats
    # The corrupt entry was dropped and replaced by the recomputed one.
    assert json.loads(path.read_text())["cycles"] == good.cycles


def test_corrupted_trace_file_falls_back_to_resynthesis(tmp_path):
    cache = configure_disk_cache(True, tmp_path)
    spec = WORKLOAD_SPECS["web_frontend"]
    key = trace_key("web_frontend", spec, L, 7)
    path = cache.trace_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"\x00not-an-npz")
    result = execute_point(SweepPoint(ibtb(16), "web_frontend", L, W, 7))
    assert result.instructions == L - W
    assert cache.counters["trace_misses"] >= 1


def test_truncated_trace_npz_is_a_miss_and_resynthesized(tmp_path):
    """Trace-side mirror of the result-corruption tests: a genuinely
    cached .npz cut off mid-archive must be treated as a miss, dropped,
    and transparently re-synthesized (then re-stored intact)."""
    cache = configure_disk_cache(True, tmp_path)
    spec = WORKLOAD_SPECS["web_frontend"]
    key = trace_key("web_frontend", spec, L, 7)
    good = execute_point(SweepPoint(ibtb(16), "web_frontend", L, W, 7))
    path = cache.trace_path(key)
    assert path.exists()
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    # New config, same trace: misses the result cache, so the truncated
    # trace entry is actually consulted (memos cleared first).
    cache = configure_disk_cache(True, tmp_path)
    again = execute_point(SweepPoint(ibtb(8), "web_frontend", L, W, 7))
    assert again.instructions == good.instructions
    assert cache.counters["trace_misses"] >= 1
    # The broken entry was replaced by a fresh, loadable copy.
    assert cache.load_trace(key) is not None


def test_truncated_result_payload_is_a_miss(tmp_path):
    cache = DiskCache(tmp_path)
    path = cache.result_path("deadbeef")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text('{"name": "x"}')  # valid JSON, missing fields
    assert cache.load_result("deadbeef") is None
    assert not path.exists()


def test_sweep_point_obs_artifact_stored_alongside_result(tmp_path):
    """Observability opt-in: same cache key, artifact stored next to the
    result, cached results only reused once the artifact exists."""
    from repro.obs import ObsSpec

    cache = configure_disk_cache(True, tmp_path)
    plain = SweepPoint(ibtb(16), "web_frontend", L, W, 7)
    observed = SweepPoint(
        ibtb(16), "web_frontend", L, W, 7, obs=ObsSpec(interval=500)
    )
    # Observation does not participate in the cache key.
    key = point_key(plain)
    assert key == point_key(observed)

    base = execute_point(plain)
    assert cache.load_obs(key) is None
    # Cached result without artifact: point re-runs instrumented and is
    # still bit-identical (the golden-equivalence guarantee).
    again = execute_point(observed)
    assert again.stats == base.stats and again.cycles == base.cycles
    payload = cache.load_obs(key)
    assert payload is not None
    # The observation spans the whole run; warmup is recorded alongside.
    assert payload["instructions"] == L
    assert payload["warmup"] == W
    assert sum(payload["event_counts"].values()) > 0
    assert payload["meta"]["workload"] == "web_frontend"
    # Fully cached now: served without recomputing the artifact.
    hits_before = cache.counters["result_hits"]
    assert execute_point(observed).stats == base.stats
    assert cache.counters["result_hits"] == hits_before + 1


def test_corrupt_obs_artifact_is_dropped(tmp_path):
    from repro.obs import ObsSpec

    cache = configure_disk_cache(True, tmp_path)
    point = SweepPoint(
        ibtb(16), "web_frontend", L, W, 7, obs=ObsSpec(interval=500)
    )
    execute_point(point)
    key = point_key(point)
    cache.obs_path(key).write_text("{ nope")
    assert cache.load_obs(key) is None
    assert not cache.obs_path(key).exists()


def test_clear_cache_disk_purges_persistent_entries(tmp_path):
    cache = configure_disk_cache(True, tmp_path)
    point = SweepPoint(ibtb(16), "web_frontend", L, W, 7)
    execute_point(point)
    assert cache.result_path(point_key(point)).exists()
    clear_cache(disk=True)
    assert not cache.result_path(point_key(point)).exists()
    # And a fresh run repopulates without error.
    assert execute_point(point).cycles > 0


def test_run_one_uses_disk_cache_after_memory_clear(tmp_path):
    configure_disk_cache(True, tmp_path)
    a = run_one(bbtb(1), "web_frontend", L, W)
    clear_cache()  # memory only: disk survives
    b = run_one(bbtb(1), "web_frontend", L, W)
    assert a is not b
    assert a.stats == b.stats and a.cycles == b.cycles


# -- chunking edge cases -----------------------------------------------------


def _flat(chunks):
    return [pair for chunk in chunks for pair in chunk]


def test_chunk_points_empty_list():
    from repro.core.exec.engine import _chunk_points

    assert _chunk_points([], jobs=4) == []


def test_chunk_points_more_jobs_than_points():
    from repro.core.exec.engine import _chunk_points

    pts = _points()[:3]
    chunks = _chunk_points(pts, jobs=16)
    # Every point lands in exactly one chunk, no chunk is empty.
    assert all(chunks)
    assert sorted(idx for idx, _ in _flat(chunks)) == [0, 1, 2]
    assert [pts[idx] for idx, _ in _flat(chunks)] == [
        p for _, p in _flat(chunks)
    ]


def test_chunk_points_single_point():
    from repro.core.exec.engine import _chunk_points

    pts = _points()[:1]
    assert _chunk_points(pts, jobs=8) == [[(0, pts[0])]]


def test_chunk_points_single_shared_trace_group_respects_bound():
    from repro.core.exec.engine import _chunk_points

    # Eight configs over ONE workload: a single shared-trace group. With
    # jobs=1 the bound is ceil(8/4)=2, so the group must still be split
    # for load balancing rather than emitted as one giant chunk.
    pts = [
        SweepPoint(ibtb(2**i), "web_frontend", L, W, 7) for i in range(8)
    ]
    chunks = _chunk_points(pts, jobs=1)
    assert [len(c) for c in chunks] == [2, 2, 2, 2]
    assert sorted(idx for idx, _ in _flat(chunks)) == list(range(8))


def test_chunk_points_never_mixes_trace_groups():
    from repro.core.exec.engine import _chunk_points

    pts = _points()  # 3 configs x 3 workloads, same length/seed
    for jobs in (1, 2, 3, 8):
        for chunk in _chunk_points(pts, jobs):
            groups = {
                (p.workload, p.length, p.seed) for _, p in chunk
            }
            assert len(groups) == 1
