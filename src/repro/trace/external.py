"""Import/export dynamic traces in a simple documented text format.

The synthetic workload suite stands in for CVP-1, but users with real
traces (e.g. converted from ChampSim's format) can feed the simulator
through this module. The format is CSV with a header; required columns::

    pc, btype, taken, target

optional columns (default 0 / -1 for registers)::

    dst, src1, src2, is_load, is_store, maddr

``pc``/``target``/``maddr`` accept decimal or 0x-prefixed hex. ``btype``
accepts the numeric :class:`~repro.common.types.BranchType` value or its
name (``COND_DIRECT``, ``RETURN``, ...; case-insensitive). Blank lines
and comment lines (first non-space character ``#``) are skipped anywhere
in the file — before the header, between records, or trailing — so
hand-annotated or tool-generated traces load as-is; error messages still
report physical line numbers. The header may not repeat a column or name
columns outside the set above (a typo'd column would otherwise be
silently ignored and its values defaulted). Loaded traces are validated
for control-flow consistency (each instruction's successor must be the
next record).

Paths ending in ``.gz`` or ``.xz`` are transparently (de)compressed on
both load and save, so ``trace.csv.gz`` works anywhere ``trace.csv``
does. Bulk ingestion of big traces belongs to :mod:`repro.corpus`, which
streams this same format (plus ChampSim-like and CVP-1-like records)
into a sharded on-disk store instead of Python lists.
"""

from __future__ import annotations

import csv
import gzip
import lzma
from typing import Dict, Iterator, Optional, Tuple

from repro.common.types import BranchType
from repro.trace.trace import NO_REG, Trace

REQUIRED_COLUMNS = ("pc", "btype", "taken", "target")
OPTIONAL_DEFAULTS: Dict[str, int] = {
    "dst": NO_REG,
    "src1": NO_REG,
    "src2": NO_REG,
    "is_load": 0,
    "is_store": 0,
    "maddr": 0,
}

#: One parsed instruction record, in :attr:`repro.trace.trace.Trace._COLUMNS`
#: order: (pc, btype, taken, target, dst, src1, src2, is_load, is_store,
#: maddr). The streaming corpus ingester consumes these directly.
Record = Tuple[int, int, int, int, int, int, int, int, int, int]


class TraceFormatError(ValueError):
    """Raised for malformed trace files."""


def open_trace_text(path, mode: str = "r"):
    """Open *path* for text I/O, decompressing ``.gz``/``.xz`` transparently.

    *mode* is ``"r"`` or ``"w"``; compressed paths are detected purely by
    suffix, matching how they were (or will be) written.
    """
    p = str(path)
    if p.endswith(".gz"):
        return gzip.open(p, mode + "t", newline="")
    if p.endswith(".xz"):
        return lzma.open(p, mode + "t", newline="")
    return open(p, mode, newline="")


class _LineFilter:
    """Line iterator that drops blank and ``#`` comment lines.

    Feeds :class:`csv.DictReader` while remembering the *physical* line
    number of the last line yielded, so diagnostics point at the real
    location in the file even when lines were skipped before it.
    """

    def __init__(self, handle) -> None:
        self._numbered = enumerate(handle, start=1)
        self.line_no = 0

    def __iter__(self) -> "_LineFilter":
        return self

    def __next__(self) -> str:
        for no, line in self._numbered:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            self.line_no = no
            return line
        raise StopIteration


def _parse_int(text: str, line_no: int, column: str) -> int:
    text = text.strip()
    if not text:
        raise TraceFormatError(f"line {line_no}: empty value for {column!r}")
    try:
        return int(text, 0)  # handles decimal and 0x-prefixed hex
    except ValueError:
        raise TraceFormatError(
            f"line {line_no}: bad integer {text!r} in column {column!r}"
        ) from None


def _parse_btype(text: str, line_no: int) -> int:
    text = text.strip()
    if text.lstrip("-").isdigit():
        value = int(text)
        try:
            return BranchType(value)
        except ValueError:
            raise TraceFormatError(
                f"line {line_no}: unknown btype value {value}"
            ) from None
    try:
        return BranchType[text.upper()]
    except KeyError:
        raise TraceFormatError(
            f"line {line_no}: unknown btype name {text!r}"
        ) from None


def _check_header(fields) -> None:
    """Reject missing, duplicated, or unknown header columns."""
    known = set(REQUIRED_COLUMNS) | set(OPTIONAL_DEFAULTS)
    missing = [c for c in REQUIRED_COLUMNS if c not in fields]
    if missing:
        raise TraceFormatError(f"missing required columns: {', '.join(missing)}")
    seen = set()
    dupes = []
    for f in fields:
        if f in seen and f not in dupes:
            dupes.append(f)
        seen.add(f)
    if dupes:
        raise TraceFormatError(
            f"duplicated column(s) in header: {', '.join(dupes)}"
        )
    unknown = [f for f in fields if f not in known]
    if unknown:
        raise TraceFormatError(
            f"unknown column(s) in header: {', '.join(unknown)}; "
            f"known columns: {', '.join(list(REQUIRED_COLUMNS) + list(OPTIONAL_DEFAULTS))}"
        )


def iter_csv_records(handle) -> Iterator[Record]:
    """Stream :data:`Record` tuples from an open canonical-CSV handle.

    This is the bounded-memory core shared by :func:`load_trace_csv` and
    the corpus ingestion pipeline: one record is parsed and yielded at a
    time, nothing is accumulated. Raises :class:`TraceFormatError`
    (without a path prefix — callers attach it) on malformed input.
    """
    source = _LineFilter(handle)
    reader = csv.DictReader(source)
    if reader.fieldnames is None:
        raise TraceFormatError("empty trace file (missing header)")
    fields = [f.strip() for f in reader.fieldnames]
    _check_header(fields)
    for row in reader:
        line_no = source.line_no
        row = {k.strip(): (v or "") for k, v in row.items() if k}
        optional = {}
        for column, default in OPTIONAL_DEFAULTS.items():
            raw = row.get(column, "")
            optional[column] = (
                _parse_int(raw, line_no, column) if raw.strip() else default
            )
        yield (
            _parse_int(row["pc"], line_no, "pc"),
            int(_parse_btype(row["btype"], line_no)),
            1 if _parse_int(row["taken"], line_no, "taken") else 0,
            _parse_int(row["target"], line_no, "target"),
            optional["dst"],
            optional["src1"],
            optional["src2"],
            1 if optional["is_load"] else 0,
            1 if optional["is_store"] else 0,
            optional["maddr"],
        )


def load_trace_csv(path: str, name: Optional[str] = None, validate: bool = True) -> Trace:
    """Load a trace from *path*; see module docstring for the format.

    ``.csv.gz`` / ``.csv.xz`` paths are decompressed transparently.
    Every raised :class:`TraceFormatError` — parse errors, validation
    failures, and unreadable files alike — names *path*, so a failing
    point in a big sweep is attributable without a traceback.
    """
    try:
        return _load_trace_csv(path, name, validate)
    except TraceFormatError as exc:
        raise TraceFormatError(f"{path}: {exc}") from None
    except (OSError, EOFError) as exc:
        # gzip.BadGzipFile is an OSError; a truncated gzip stream raises
        # EOFError mid-iteration.
        reason = getattr(exc, "strerror", None) or str(exc) or type(exc).__name__
        raise TraceFormatError(f"{path}: {reason}") from None
    except lzma.LZMAError as exc:
        raise TraceFormatError(f"{path}: {exc}") from None


def _load_trace_csv(path: str, name: Optional[str], validate: bool) -> Trace:
    trace = Trace(name=name or str(path))
    with open_trace_text(path) as handle:
        for record in iter_csv_records(handle):
            trace.append(
                pc=record[0],
                btype=record[1],
                taken=bool(record[2]),
                target=record[3],
                dst=record[4],
                src1=record[5],
                src2=record[6],
                is_load=bool(record[7]),
                is_store=bool(record[8]),
                maddr=record[9],
            )
    if not len(trace):
        raise TraceFormatError("trace file contains no instructions")
    if validate:
        try:
            trace.validate()
        except ValueError as exc:
            raise TraceFormatError(f"inconsistent control flow: {exc}") from exc
    return trace


def save_trace_csv(trace: Trace, path: str) -> None:
    """Write *trace* to *path* in the format :func:`load_trace_csv` reads.

    ``.csv.gz`` / ``.csv.xz`` paths are compressed transparently.
    """
    columns = list(REQUIRED_COLUMNS) + list(OPTIONAL_DEFAULTS)
    with open_trace_text(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for i in range(len(trace)):
            writer.writerow(
                [
                    f"{trace.pc[i]:#x}",
                    BranchType(trace.btype[i]).name,
                    trace.taken[i],
                    f"{trace.target[i]:#x}",
                    trace.dst[i],
                    trace.src1[i],
                    trace.src2[i],
                    trace.is_load[i],
                    trace.is_store[i],
                    f"{trace.maddr[i]:#x}",
                ]
            )
