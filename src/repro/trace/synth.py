"""Dynamic trace synthesis: guided walk over a synthetic program CFG.

The walker executes the :class:`~repro.trace.cfg.Program` like a tiny
interpreter: block bodies are emitted instruction by instruction (with
memory addresses drawn from each static instruction's
:class:`~repro.trace.cfg.MemBehavior`), terminators consult their branch
behaviour objects, calls push the fall-through continuation, returns pop
it. When the top-level function returns with an empty stack the walk
restarts at the program entry — a steady-state server dispatch loop.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.rng import SplitMix
from repro.common.types import BranchType
from repro.trace.cfg import Block, Program
from repro.trace.trace import Trace

#: Hard cap on call depth; the acyclic call-graph levels already bound the
#: depth, this is a defensive backstop.
MAX_CALL_DEPTH = 64


class TraceSynthesizer:
    """Walks a program and produces a :class:`Trace` of a given length."""

    def __init__(self, program: Program, seed: int = 7) -> None:
        self.program = program
        self.rng = SplitMix(seed)
        self._visit_count: Dict[int, int] = {}
        # Per-block column templates for _emit_body: everything except
        # memory addresses is static per block, so bodies are emitted with
        # bulk list.extend instead of per-instruction appends.
        self._body_cache: Dict[int, tuple] = {}
        # Behaviour objects live in the (shared, cached) Program; reset
        # their per-walk state so every synthesis is deterministic.
        for function in program.functions:
            for block in function.blocks:
                if block.cond_behavior is not None:
                    block.cond_behavior.reset()
                if block.indirect_behavior is not None:
                    block.indirect_behavior.reset()

    def synthesize(self, length: int, name: str = "synth") -> Trace:
        """Emit a trace of at least *length* instructions.

        The trace always ends exactly at *length* instructions; the final
        instruction may be mid-block, which is fine for the consumers.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        trace = Trace(name=name)
        block: Block = self.program.entry.blocks[0]
        stack: List[int] = []  # return-target PCs
        while len(trace) < length:
            block = self._run_block(block, stack, trace, length)
        out = trace.slice(0, length)
        out.name = name
        return out

    # -- block execution ------------------------------------------------------

    def _emit_body(self, block: Block, trace: Trace) -> None:
        tpl = self._body_cache.get(block.start_pc)
        if tpl is None:
            insts = block.insts
            tpl = (
                [i.pc for i in insts],
                [i.dst for i in insts],
                [i.src1 for i in insts],
                [i.src2 for i in insts],
                [1 if i.kind == "load" else 0 for i in insts],
                [1 if i.kind == "store" else 0 for i in insts],
                [0] * len(insts),
                [(k, i) for k, i in enumerate(insts) if i.mem is not None],
            )
            self._body_cache[block.start_pc] = tpl
        pcs, dsts, src1s, src2s, loads, stores, zeros, mem_insts = tpl
        if not pcs:
            return
        trace.pc.extend(pcs)
        trace.btype.extend(zeros)
        trace.taken.extend(zeros)
        trace.target.extend(zeros)
        trace.dst.extend(dsts)
        trace.src1.extend(src1s)
        trace.src2.extend(src2s)
        trace.is_load.extend(loads)
        trace.is_store.extend(stores)
        if not mem_insts:
            trace.maddr.extend(zeros)
            return
        # Memory addresses are visit- and RNG-dependent; computing them in
        # static-instruction order preserves the exact RNG call sequence of
        # the per-instruction walker, so traces stay bit-identical.
        maddr_col = [0] * len(pcs)
        visit_count = self._visit_count
        rng = self.rng
        for off, inst in mem_insts:
            visit = visit_count.get(inst.pc, 0)
            visit_count[inst.pc] = visit + 1
            maddr_col[off] = inst.mem.address(visit, rng)
        trace.maddr.extend(maddr_col)

    def _run_block(self, block: Block, stack: List[int], trace: Trace, length: int) -> Block:
        """Execute one block; return the successor block."""
        self._emit_body(block, trace)
        term = block.term_type
        if term == BranchType.NONE:
            return self._block_at(block.end_pc)

        term_pc = block.term_pc
        if term == BranchType.COND_DIRECT:
            taken = block.cond_behavior.outcome(self.rng)
            target = block.taken_target if taken else 0
            trace.append(pc=term_pc, btype=term, taken=taken, target=target)
            if taken:
                return self._block_at(block.taken_target)
            return self._block_at(block.end_pc)

        if term == BranchType.UNCOND_DIRECT:
            trace.append(pc=term_pc, btype=term, taken=True, target=block.taken_target)
            return self._block_at(block.taken_target)

        if term == BranchType.CALL_DIRECT:
            trace.append(pc=term_pc, btype=term, taken=True, target=block.taken_target)
            return self._enter_call(block, stack, block.taken_target)

        if term == BranchType.CALL_INDIRECT:
            target = block.indirect_behavior.next_target(self.rng)
            trace.append(pc=term_pc, btype=term, taken=True, target=target)
            return self._enter_call(block, stack, target)

        if term == BranchType.INDIRECT:
            target = block.indirect_behavior.next_target(self.rng)
            trace.append(pc=term_pc, btype=term, taken=True, target=target)
            return self._block_at(target)

        if term == BranchType.RETURN:
            if stack:
                return_pc = stack.pop()
                trace.append(pc=term_pc, btype=term, taken=True, target=return_pc)
                return self._block_at(return_pc)
            # Top-level return: restart the server loop at program entry.
            entry_pc = self.program.entry.entry_pc
            trace.append(pc=term_pc, btype=term, taken=True, target=entry_pc)
            return self._block_at(entry_pc)

        raise AssertionError(f"unhandled terminator {term!r}")

    def _enter_call(self, block: Block, stack: List[int], callee_pc: int) -> Block:
        if len(stack) >= MAX_CALL_DEPTH:
            raise RuntimeError("call depth exceeded; program generation is broken")
        stack.append(block.end_pc)
        return self._block_at(callee_pc)

    def _block_at(self, pc: int) -> Block:
        block = self.program.block_at.get(pc)
        if block is None:
            raise KeyError(f"no block at pc {pc:#x}; CFG targets are inconsistent")
        return block


def synthesize_trace(program: Program, length: int, seed: int = 7, name: str = "synth") -> Trace:
    """One-shot helper: walk *program* for *length* instructions."""
    return TraceSynthesizer(program, seed=seed).synthesize(length, name=name)
