"""Decode-once columnar trace plans for batched sweep execution.

A sweep runs the *same* workload trace through many machine configs, yet
every per-config engine walks the Python-object :class:`~repro.trace.trace.Trace`
from scratch: re-deriving cache-line indices, scanning forward for the
next branch one instruction at a time, and — most expensively — replaying
the prediction engine (hashed perceptron, folded global history, indirect
table, RAS) whose state provably never depends on the BTB organization
(it trains on trace outcomes only; see ``PredictionEngine.resolve``).

This module pays those costs once per workload:

* :class:`ColumnarTrace` lowers a ``Trace`` into typed numpy arrays —
  PCs, targets, taken bits, branch kinds, fall-through/next-PC — plus
  three derived plans computed with vectorized numpy ops:

  - ``next_br[i]``: index of the first branch at or after ``i`` (``n``
    when none remain), i.e. inter-branch instruction counts; lets a
    scan loop jump over non-branch runs instead of testing each one;
  - ``run_end[i]``: exclusive end of the cache-line run containing
    ``i``; replaces the per-instruction line-segmentation loop;
  - ``line_ix[i]``: per-instruction cache-line index
    (``pc // LINE_BYTES``), shared across configs instead of being
    recomputed per simulator via ``Trace.line_index``.

* :class:`PredictorPlan` replays the prediction engine once and records,
  per branch, exactly the values a per-config kernel needs:
  ``pt`` (perceptron direction prediction), ``ras_ok`` (RAS pop matched
  the return target) and ``ind_pred`` (raw indirect-table read, 0 when
  cold). The replica below mirrors ``PredictionEngine.resolve`` /
  ``HashedPerceptron`` / ``FoldedRegister`` operation-for-operation, so
  batched kernels consuming the plan stay bit-identical to the
  interpreter (enforced by differential goldens in ``tests/kernel/``).

Plans are cached on disk as ``.npz`` through the :class:`DiskCache`
``plans`` tier, keyed by trace content hash (and predictor geometry for
:class:`PredictorPlan`), and pruned by ``repro-sim corpus gc`` when the
backing corpus entry disappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.branch.history import MAX_HISTORY
from repro.branch.indirect import IndirectPredictor
from repro.branch.perceptron import HISTORY_LENGTHS
from repro.common.types import ILEN, LINE_BYTES

#: Version of the columnar/predictor-plan layout *and* of the replica
#: semantics. Bump whenever the derivation or the prediction engine
#: changes so stale cached plans become unreachable.
COLUMNAR_SCHEMA = 1

_M64 = (1 << 64) - 1
_HMASK = (1 << MAX_HISTORY) - 1


# ---------------------------------------------------------------------------
# Columnar lowering
# ---------------------------------------------------------------------------


@dataclass
class ColumnarTrace:
    """Typed-array view of a trace plus vectorized derived plans.

    All arrays have one entry per instruction. ``ops`` (operand tuples
    for the admit loop) and the plain-list views consumed by generated
    kernels are materialized lazily and memoized.
    """

    n: int
    pc: np.ndarray
    btype: np.ndarray
    taken: np.ndarray
    target: np.ndarray
    next_pc: np.ndarray
    next_br: np.ndarray
    run_end: np.ndarray
    line_ix: np.ndarray

    def __post_init__(self) -> None:
        self._lists: Optional[Dict[str, list]] = None

    def lists(self) -> Dict[str, list]:
        """Plain-list views for the generated kernels (list indexing is
        faster than numpy scalar indexing in CPython hot loops)."""
        if self._lists is None:
            self._lists = {
                "line_ix": self.line_ix.tolist(),
                "next_br": self.next_br.tolist(),
                "run_end": self.run_end.tolist(),
            }
        return self._lists


def _derive(pc: np.ndarray, btype: np.ndarray, taken: np.ndarray,
            target: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized next-branch / line-run / line-index derivations."""
    n = len(pc)
    line_ix = pc // LINE_BYTES
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), line_ix
    idx = np.arange(n, dtype=np.int64)
    # next_br[i] = min index j >= i with btype[j] != 0, else n.
    nb = np.where(btype != 0, idx, np.int64(n))
    next_br = np.minimum.accumulate(nb[::-1])[::-1]
    # run_end[i] = exclusive end of the cache-line run containing i.
    chg = np.nonzero(np.diff(line_ix))[0] + 1
    bounds = np.concatenate((chg, [n])).astype(np.int64)
    run_end = bounds[np.searchsorted(bounds, idx, side="right")]
    return next_br, run_end, line_ix


def lower_trace(trace) -> ColumnarTrace:
    """Lower a :class:`~repro.trace.trace.Trace` into columnar form."""
    pc = np.asarray(trace.pc, dtype=np.int64)
    btype = np.asarray(trace.btype, dtype=np.int64)
    taken = np.asarray(trace.taken, dtype=np.int64)
    target = np.asarray(trace.target, dtype=np.int64)
    next_pc = np.where(taken != 0, target, pc + ILEN)
    next_br, run_end, line_ix = _derive(pc, btype, taken, target)
    return ColumnarTrace(
        n=len(pc), pc=pc, btype=btype, taken=taken, target=target,
        next_pc=next_pc, next_br=next_br, run_end=run_end, line_ix=line_ix,
    )


# ---------------------------------------------------------------------------
# Predictor geometry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredictorGeometry:
    """The structural knobs the prediction-engine replay depends on.

    Everything else about a :class:`MachineConfig` (BTB kind/geometry,
    backend, caches) is invisible to the prediction engine — its state
    evolves from trace outcomes only — so one plan serves every config
    sharing this geometry.
    """

    ptable_mask: int
    theta: int
    ind_mask: int
    ras_depth: int

    def key_fields(self) -> Dict[str, int]:
        return {
            "ptable_mask": self.ptable_mask,
            "theta": self.theta,
            "ind_mask": self.ind_mask,
            "ras_depth": self.ras_depth,
        }


def geometry_for(bp_size_kb: int, indirect_entries: int = 4096,
                 ras_depth: int = 64) -> PredictorGeometry:
    """Geometry of the predictors a config of this size elaborates
    (mirrors ``HashedPerceptron.__init__`` sizing)."""
    entries = (bp_size_kb * 1024) // len(HISTORY_LENGTHS)
    table_entries = 32
    while table_entries * 2 <= entries:
        table_entries *= 2
    theta = 2 * len(HISTORY_LENGTHS) + 14
    return PredictorGeometry(
        ptable_mask=table_entries - 1,
        theta=theta,
        ind_mask=indirect_entries - 1,
        ras_depth=ras_depth,
    )


# ---------------------------------------------------------------------------
# Predictor plan
# ---------------------------------------------------------------------------


@dataclass
class PredictorPlan:
    """Per-branch prediction outcomes shared by every config of one
    predictor geometry: ``pt[i]`` (cond direction prediction, 0/1),
    ``ras_ok[i]`` (return target matched the RAS pop, 0/1) and
    ``ind_pred[i]`` (raw indirect-table read at predict time; 0 = cold).
    Entries for non-branches (and for kinds a field does not apply to)
    are zero and never read."""

    geometry: PredictorGeometry
    pt: np.ndarray
    ras_ok: np.ndarray
    ind_pred: np.ndarray

    def __post_init__(self) -> None:
        self._lists: Optional[Dict[str, list]] = None

    def lists(self) -> Dict[str, list]:
        if self._lists is None:
            self._lists = {
                "pt": self.pt.tolist(),
                "ras_ok": self.ras_ok.tolist(),
                "ind_pred": self.ind_pred.tolist(),
            }
        return self._lists


def build_predictor_plan(col: ColumnarTrace,
                         geometry: PredictorGeometry) -> PredictorPlan:
    """Replay the prediction engine once over the trace.

    This is an operation-for-operation replica of
    ``PredictionEngine.resolve`` restricted to the state that evolves
    independently of the BTB: perceptron tables, folded global history,
    indirect table and RAS. Ordering subtleties preserved exactly:

    * conditional branches predict/update the perceptron *before* the
      history (and folds) advance;
    * every other branch kind pushes history *first*, so the indirect
      index is computed with the post-push fold;
    * the indirect table is read (plan value), then updated, and only
      then does an indirect call push the RAS.
    """
    n = col.n
    pt = np.zeros(n, dtype=np.uint8)
    ras_ok = np.zeros(n, dtype=np.uint8)
    ind_pred = np.zeros(n, dtype=np.int64)

    mask = geometry.ptable_mask
    theta = geometry.theta
    ind_mask = geometry.ind_mask
    ras_depth = geometry.ras_depth
    index_width = (mask + 1).bit_length() - 1
    ind_width = (ind_mask + 1).bit_length() - 1

    # Perceptron tables and folded-history registers (table 0 has zero
    # history length: unfolded, indexed by the PC hash alone).
    tables = [[0] * (mask + 1) for _ in HISTORY_LENGTHS]
    # (table, fold slot, length, out_pos) for tables 1..15.
    pgeo = []
    for t, length in enumerate(HISTORY_LENGTHS):
        if length:
            pgeo.append((t, length, length % index_width))
    pfold = [0] * len(HISTORY_LENGTHS)  # fold values, slot per table
    jlen = IndirectPredictor.HISTORY_BITS
    jpos = jlen % ind_width
    jfold = 0
    hbits = 0
    itab = [0] * (ind_mask + 1)
    ras: List[int] = []

    bts = col.btype.tolist()
    pcs = col.pc.tolist()
    tks = col.taken.tolist()
    tgs = col.target.tolist()
    branch_idx = np.nonzero(col.btype)[0].tolist()
    pwm = mask  # fold width mask equals table mask (same width)
    jwm = ind_mask

    for j in branch_idx:
        bt = bts[j]
        pc = pcs[j]
        h = ((0x9E3779B97F4A7C15 ^ pc) * 0xBF58476D1CE4E5B9) & _M64
        h ^= h >> 29
        if bt == 1:
            tk = tks[j]
            # predict: table 0 unfolded, 1..15 folded.
            i0 = h & mask
            total = tables[0][i0]
            idxs = [i0]
            for t, _length, _pos in pgeo:
                ix = (h ^ pfold[t] ^ (t << 3)) & mask
                idxs.append(ix)
                total += tables[t][ix]
            pt[j] = 1 if total >= 0 else 0
            # update (classic margin rule, clamped 8-bit weights).
            predicted = total >= 0
            took = tk == 1
            if not (predicted == took and abs(total) > theta):
                delta = 1 if took else -1
                t = 0
                for ix in idxs:
                    row = tables[t]
                    w = row[ix] + delta
                    if w > 127:
                        w = 127
                    elif w < -128:
                        w = -128
                    row[ix] = w
                    t += 1
            # history push AFTER perceptron work for conditionals...
            bit = tk
            for t, length, pos in pgeo:
                v = (pfold[t] << 1) | bit
                v ^= ((hbits >> (length - 1)) & 1) << pos
                v ^= v >> index_width
                pfold[t] = v & pwm
            v = (jfold << 1) | bit
            v ^= ((hbits >> (jlen - 1)) & 1) << jpos
            v ^= v >> ind_width
            jfold = v & jwm
            hbits = ((hbits << 1) | bit) & _HMASK
            continue
        # ...and BEFORE the type-specific work for every other kind, so
        # the indirect index sees the post-push fold.
        for t, length, pos in pgeo:
            v = (pfold[t] << 1) | 1
            v ^= ((hbits >> (length - 1)) & 1) << pos
            v ^= v >> index_width
            pfold[t] = v & pwm
        v = (jfold << 1) | 1
        v ^= ((hbits >> (jlen - 1)) & 1) << jpos
        v ^= v >> ind_width
        jfold = v & jwm
        hbits = ((hbits << 1) | 1) & _HMASK
        if bt == 2 or bt == 3:
            if bt == 3:
                if len(ras) >= ras_depth:
                    del ras[0]
                ras.append(pc + ILEN)
        elif bt == 4:
            if ras:
                ras_ok[j] = 1 if ras.pop() == tgs[j] else 0
            # empty RAS pops None in the reference engine: never equal.
        else:
            ii = (h ^ jfold) & ind_mask
            ind_pred[j] = itab[ii]
            itab[ii] = tgs[j]
            if bt == 6:
                if len(ras) >= ras_depth:
                    del ras[0]
                ras.append(pc + ILEN)

    return PredictorPlan(geometry=geometry, pt=pt, ras_ok=ras_ok,
                         ind_pred=ind_pred)


# ---------------------------------------------------------------------------
# Batch plan: what a generated batched kernel binds in its prelude
# ---------------------------------------------------------------------------


class BatchPlan:
    """Bundle handed to a batched kernel: the runtime arrays of a
    columnar trace + predictor plan, exposed as plain lists (list
    indexing beats numpy scalar indexing in CPython hot loops). Built
    once per (workload, geometry) and shared by every config in the
    batch; persistable as an ``.npz`` payload through the disk cache's
    ``plans`` tier."""

    __slots__ = ("geometry", "line_ix", "next_br", "run_end",
                 "pt", "ras_ok", "ind_pred")

    #: Arrays persisted per plan (everything a batched kernel reads).
    PAYLOAD_KEYS = ("line_ix", "next_br", "run_end", "pt", "ras_ok",
                    "ind_pred")

    def __init__(self, geometry: PredictorGeometry, line_ix, next_br,
                 run_end, pt, ras_ok, ind_pred) -> None:
        self.geometry = geometry
        self.line_ix = line_ix
        self.next_br = next_br
        self.run_end = run_end
        self.pt = pt
        self.ras_ok = ras_ok
        self.ind_pred = ind_pred

    @classmethod
    def from_parts(cls, col: ColumnarTrace,
                   plan: PredictorPlan) -> "BatchPlan":
        cl = col.lists()
        pl = plan.lists()
        return cls(plan.geometry, cl["line_ix"], cl["next_br"],
                   cl["run_end"], pl["pt"], pl["ras_ok"], pl["ind_pred"])

    @classmethod
    def from_payload(cls, geometry: PredictorGeometry,
                     arrays: Dict[str, np.ndarray]) -> "BatchPlan":
        cols = [np.asarray(arrays[k]).tolist() for k in cls.PAYLOAD_KEYS]
        return cls(geometry, *cols)

    def payload(self) -> Dict[str, np.ndarray]:
        dtypes = {"pt": np.uint8, "ras_ok": np.uint8}
        return {
            k: np.asarray(getattr(self, k), dtype=dtypes.get(k, np.int64))
            for k in self.PAYLOAD_KEYS
        }


def build_batch_plan(trace, geometry: PredictorGeometry) -> BatchPlan:
    """Lower *trace* and replay the predictors for *geometry*."""
    col = lower_trace(trace)
    return BatchPlan.from_parts(col, build_predictor_plan(col, geometry))
