"""Dynamic instruction trace container.

A :class:`Trace` is a column-oriented record of retired instructions, the
same abstraction level as the CVP-1 traces the paper uses: for every
dynamic instruction we know its PC, branch kind, outcome and target, plus
register operands and memory address so a timing model can reconstruct
data-flow and drive the data-side cache hierarchy.

Columns are plain Python lists of ints (fastest to iterate in pure
Python); :meth:`Trace.save` / :meth:`Trace.load` round-trip through
compressed ``.npz`` for persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.common.stats import Stats
from repro.common.types import ILEN, LINE_BYTES, BranchType, is_branch, line_of

#: Number of architectural integer registers modelled.
NUM_REGS = 32

#: Sentinel for "no register operand".
NO_REG = -1


@dataclass
class Trace:
    """Column-oriented dynamic instruction trace.

    All columns have identical length. ``target[i]`` is the *actual* next
    PC for taken branches and 0 otherwise; non-branches always fall
    through to ``pc[i] + 4``.
    """

    name: str = "anon"
    pc: List[int] = field(default_factory=list)
    btype: List[int] = field(default_factory=list)
    taken: List[int] = field(default_factory=list)
    target: List[int] = field(default_factory=list)
    dst: List[int] = field(default_factory=list)
    src1: List[int] = field(default_factory=list)
    src2: List[int] = field(default_factory=list)
    is_load: List[int] = field(default_factory=list)
    is_store: List[int] = field(default_factory=list)
    maddr: List[int] = field(default_factory=list)

    _COLUMNS = (
        "pc",
        "btype",
        "taken",
        "target",
        "dst",
        "src1",
        "src2",
        "is_load",
        "is_store",
        "maddr",
    )

    def __len__(self) -> int:
        return len(self.pc)

    def line_index(self) -> List[int]:
        """Per-instruction cache-line index (``pc // LINE_BYTES``).

        Computed vectorized on first use and cached; the simulator hot
        loop indexes this instead of dividing per access. The cache is
        invalidated by length, so appending after the first call
        recomputes on the next call.
        """
        cached = self.__dict__.get("_line_index")
        if cached is not None and len(cached) == len(self.pc):
            return cached
        if self.pc:
            lines = (np.asarray(self.pc, dtype=np.int64) // LINE_BYTES).tolist()
        else:
            lines = []
        self.__dict__["_line_index"] = lines
        return lines

    def append(
        self,
        pc: int,
        btype: int = BranchType.NONE,
        taken: bool = False,
        target: int = 0,
        dst: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        is_load: bool = False,
        is_store: bool = False,
        maddr: int = 0,
    ) -> None:
        """Append one dynamic instruction."""
        self.pc.append(pc)
        self.btype.append(int(btype))
        self.taken.append(1 if taken else 0)
        self.target.append(target)
        self.dst.append(dst)
        self.src1.append(src1)
        self.src2.append(src2)
        self.is_load.append(1 if is_load else 0)
        self.is_store.append(1 if is_store else 0)
        self.maddr.append(maddr)

    def next_pc(self, i: int) -> int:
        """Architectural successor PC of instruction *i*."""
        if self.taken[i]:
            return self.target[i]
        return self.pc[i] + ILEN

    def validate(self) -> None:
        """Check structural invariants; raise ValueError on violation."""
        n = len(self.pc)
        for col in self._COLUMNS:
            if len(getattr(self, col)) != n:
                raise ValueError(f"column {col} length mismatch")
        for i in range(n - 1):
            if self.next_pc(i) != self.pc[i + 1]:
                raise ValueError(
                    f"control-flow break at index {i}: "
                    f"next_pc={self.next_pc(i):#x} but pc[{i + 1}]={self.pc[i + 1]:#x}"
                )
            if self.taken[i] and not is_branch(self.btype[i]):
                raise ValueError(f"non-branch marked taken at index {i}")

    # -- workload statistics (paper §2 / §4) --------------------------------

    def stats(self) -> Stats:
        """Workload characterization mirroring the paper's reported stats."""
        st = Stats()
        n = len(self.pc)
        st.set("instructions", n)
        lines = set()
        never_taken_pcs: Dict[int, bool] = {}
        run = 0
        runs: List[int] = []
        for i in range(n):
            lines.add(line_of(self.pc[i]))
            bt = self.btype[i]
            run += 1
            if bt:
                st.add("branches")
                st.add(f"branches_{BranchType(bt).name.lower()}")
                if self.taken[i]:
                    st.add("taken_branches")
                    runs.append(run)
                    run = 0
                if bt == BranchType.COND_DIRECT:
                    prev = never_taken_pcs.get(self.pc[i], True)
                    never_taken_pcs[self.pc[i]] = prev and not self.taken[i]
            if self.is_load[i]:
                st.add("loads")
            if self.is_store[i]:
                st.add("stores")
        st.set("code_footprint_bytes", len(lines) * 64)
        if runs:
            st.set("mean_dynamic_bb_size", sum(runs) / len(runs))
        # Dynamic share of never-taken conditional branches, as in §2.
        nt_dyn = 0
        for i in range(n):
            if self.btype[i] == BranchType.COND_DIRECT and never_taken_pcs.get(
                self.pc[i]
            ):
                nt_dyn += 1
        st.set("never_taken_cond_dynamic", nt_dyn)
        return st

    def mean_basic_block_size(self) -> float:
        """Mean number of instructions between taken branches."""
        taken = sum(self.taken)
        if not taken:
            return float(len(self.pc))
        return len(self.pc) / taken

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize to a compressed ``.npz``."""
        arrays = {col: np.asarray(getattr(self, col), dtype=np.int64) for col in self._COLUMNS}
        np.savez_compressed(path, name=np.array(self.name), **arrays)

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Load a trace previously written with :meth:`save`."""
        data = np.load(path, allow_pickle=False)
        trace = cls(name=str(data["name"]))
        for col in cls._COLUMNS:
            setattr(trace, col, [int(v) for v in data[col]])
        return trace

    def slice(self, start: int, stop: Optional[int] = None) -> "Trace":
        """Return a sub-trace covering indices [start, stop)."""
        stop = len(self.pc) if stop is None else stop
        out = Trace(name=f"{self.name}[{start}:{stop}]")
        for col in self._COLUMNS:
            setattr(out, col, getattr(self, col)[start:stop])
        return out
