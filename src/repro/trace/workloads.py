"""Named synthetic workload suite standing in for the CVP-1 server traces.

The paper evaluates 147 proprietary CVP-1 server traces. We cannot ship
those, so this module defines a suite of synthetic datacenter-style
workloads whose *aggregate* statistics bracket the ones the paper reports:
mean dynamic basic-block size around 9.4 (spanning ~7–15 across the suite,
which Fig. 11a needs), ~35 % never-taken conditionals, single-target
indirect branches, instruction footprints that stress a 32 KB L1I, and
conditional-branch predictability giving sub-1 geomean MPKI under the
64 KB perceptron.

Workloads are deterministic functions of their spec (seeded), generated
on first use and cached in-process.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Dict, List

from repro.trace.cfg import ProgramSpec, build_program
from repro.trace.synth import synthesize_trace
from repro.trace.trace import Trace


def _spec(seed: int, **overrides) -> ProgramSpec:
    return replace(ProgramSpec(seed=seed), **overrides)


#: The server suite: name -> ProgramSpec. Footprints, block sizes and
#: branch mixes vary per workload, like heterogeneous datacenter binaries.
WORKLOAD_SPECS: Dict[str, ProgramSpec] = {
    # Web front-end: big footprint, small blocks, call-heavy.
    "web_frontend": _spec(
        11, n_functions=300, blocks_per_function_mean=16, block_body_mean=3.4,
        w_call=0.20, w_never_taken=0.40,
    ),
    # OLTP database: medium blocks, many guard branches.
    "db_oltp": _spec(
        23, n_functions=260, blocks_per_function_mean=15, block_body_mean=4.2,
        w_never_taken=0.44, w_random=0.12, random_bias=0.80,
    ),
    # Analytics column scan: long loops, bigger blocks.
    "db_analytics": _spec(
        37, n_functions=170, blocks_per_function_mean=12, block_body_mean=6.4,
        w_cond=0.46, w_plain=0.24, loop_trips_mean=18, w_never_taken=0.30,
    ),
    # Key-value store: small hot loop plus wide dispatch indirects.
    "kv_store": _spec(
        41, n_functions=240, blocks_per_function_mean=13, block_body_mean=4.0,
        w_indirect_jump=0.07, w_indirect_call=0.05, w_ind_round_robin=0.30,
    ),
    # HTTP proxy: pattern-heavy branches, medium footprint.
    "http_proxy": _spec(
        53, n_functions=250, blocks_per_function_mean=14, block_body_mean=3.8,
        w_pattern=0.26, w_never_taken=0.36,
    ),
    # Message broker: call-chains through many layers.
    "msg_broker": _spec(
        59, n_functions=280, blocks_per_function_mean=12, block_body_mean=4.6,
        n_levels=8, w_call=0.22,
    ),
    # Search ranking: bigger blocks, multiply-heavy.
    "search_rank": _spec(
        67, n_functions=190, blocks_per_function_mean=13, block_body_mean=5.8,
        p_mul=0.12, w_never_taken=0.28, loop_trips_mean=14,
    ),
    # Serialization/RPC marshalling: tiny blocks, branchy.
    "rpc_marshal": _spec(
        71, n_functions=300, blocks_per_function_mean=17, block_body_mean=3.0,
        w_cond=0.58, w_never_taken=0.42,
    ),
    # Garbage-collected runtime: loops with random exits.
    "gc_runtime": _spec(
        79, n_functions=230, blocks_per_function_mean=14, block_body_mean=4.4,
        w_loop=0.22, w_random=0.13, random_bias=0.85,
    ),
    # Template rendering: large straight-line sections.
    "template_render": _spec(
        83, n_functions=160, blocks_per_function_mean=11, block_body_mean=7.6,
        w_plain=0.28, w_cond=0.40, w_never_taken=0.26,
    ),
    # Compression service: tight loops, very predictable.
    "compress_svc": _spec(
        89, n_functions=140, blocks_per_function_mean=10, block_body_mean=6.8,
        loop_trips_mean=24, w_loop=0.24, w_random=0.05,
    ),
    # Ad-server feature lookup: indirect-heavy, random memory.
    "ad_server": _spec(
        97, n_functions=270, blocks_per_function_mean=15, block_body_mean=3.6,
        w_indirect_jump=0.06, w_ind_random=0.28, p_mem_random=0.18,
    ),
}

#: Default evaluation suite (ordering is stable).
SERVER_SUITE: List[str] = list(WORKLOAD_SPECS)

#: A small subset for fast tests / smoke benches.
SMOKE_SUITE: List[str] = ["web_frontend", "db_oltp", "kv_store", "template_render"]


@lru_cache(maxsize=None)
def get_program(name: str):
    """Build (and cache) the static program of workload *name*."""
    try:
        spec = WORKLOAD_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(SERVER_SUITE)}"
        ) from None
    return build_program(spec)


@lru_cache(maxsize=None)
def get_trace(name: str, length: int, seed: int = 7) -> Trace:
    """Synthesize (and cache) a dynamic trace for workload *name*."""
    program = get_program(name)
    return synthesize_trace(program, length, seed=seed, name=name)


def suite_traces(length: int, names=None, seed: int = 7) -> List[Trace]:
    """Traces for every workload in *names* (default: full server suite)."""
    return [get_trace(name, length, seed) for name in (names or SERVER_SUITE)]
