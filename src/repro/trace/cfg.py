"""Static program model and synthetic CFG generator.

A :class:`Program` is a set of functions laid out in a flat address space;
each function is an ordered list of basic blocks; each block carries its
straight-line instructions and one terminator. The generator produces
programs with datacenter-server shape: a top-level dispatch loop calling
into layered handler functions (acyclic call graph, so recursion never
overflows the walker), loops, guard branches, switch-style indirect jumps
and virtual-call-style indirect calls.

The paper's workloads are opaque CVP-1 binaries; what matters for BTB
organization studies is the *distribution* of block sizes, branch kinds
and footprint — those are the generator's explicit knobs (see
:class:`ProgramSpec`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.rng import SplitMix
from repro.common.types import ILEN, BranchType
from repro.trace.behavior import (
    AlwaysTaken,
    BiasedRandom,
    CondBehavior,
    IndirectBehavior,
    LoopBranch,
    NeverTaken,
    PatternBranch,
)

#: Base address of generated code.
CODE_BASE = 0x100000

#: Base address of the global data heap.
HEAP_BASE = 0x10_000000

#: Base address of the stack region.
STACK_BASE = 0x7F_000000


@dataclass
class MemBehavior:
    """Address pattern of one static load/store."""

    base: int
    stride: int
    span: int
    p_random: float = 0.0

    def address(self, visit: int, rng: SplitMix) -> int:
        """Address of the *visit*-th dynamic execution."""
        if self.p_random > 0.0 and rng.uniform() < self.p_random:
            return self.base + (rng.next_u64() % max(self.span, 8)) // 8 * 8
        return self.base + (visit * self.stride) % max(self.span, 8)


@dataclass
class StaticInst:
    """One static non-terminator instruction."""

    pc: int
    kind: str  # 'alu' | 'mul' | 'load' | 'store'
    dst: int
    src1: int
    src2: int
    mem: Optional[MemBehavior] = None


@dataclass
class Block:
    """A basic block: straight-line body plus one terminator.

    ``term_type`` is ``BranchType.NONE`` for plain fall-through blocks
    (the block simply continues into the next one without a branch).
    """

    start_pc: int
    insts: List[StaticInst]
    term_type: BranchType = BranchType.NONE
    taken_target: int = 0
    cond_behavior: Optional[CondBehavior] = None
    indirect_behavior: Optional[IndirectBehavior] = None

    @property
    def ninsts(self) -> int:
        """Total instructions including the terminator (if any)."""
        return len(self.insts) + (1 if self.term_type != BranchType.NONE else 0)

    @property
    def term_pc(self) -> int:
        """PC of the terminator (only meaningful when one exists)."""
        return self.start_pc + len(self.insts) * ILEN

    @property
    def end_pc(self) -> int:
        """First PC after the block."""
        return self.start_pc + self.ninsts * ILEN


@dataclass
class Function:
    """An ordered list of blocks; entry is the first block.

    ``heat`` is the function's Zipf-style popularity weight: hot functions
    attract more call sites, reproducing the hot/cold code split of server
    binaries (a hot path that fits no L1 structure entirely, plus a long
    cold tail).
    """

    name: str
    level: int
    heat: float = 1.0
    blocks: List[Block] = field(default_factory=list)

    @property
    def entry_pc(self) -> int:
        return self.blocks[0].start_pc


@dataclass
class Program:
    """Complete static program: functions plus a block address map."""

    functions: List[Function]
    block_at: Dict[int, Block] = field(default_factory=dict)

    def finalize(self) -> None:
        """(Re)build the block address index."""
        self.block_at = {
            block.start_pc: block
            for function in self.functions
            for block in function.blocks
        }

    @property
    def entry(self) -> Function:
        return self.functions[0]

    def static_instructions(self) -> int:
        """Total static instruction count."""
        return sum(b.ninsts for f in self.functions for b in f.blocks)


@dataclass
class ProgramSpec:
    """Knobs of the synthetic program generator.

    Defaults approximate the CVP-1 server-trace statistics the paper
    reports (mean dynamic basic-block size ≈ 9.4, ≈ 35 % never-taken
    conditionals, ≈ 9 % single-target indirects, footprints well beyond a
    32 KB L1I).
    """

    seed: int = 1
    n_functions: int = 220
    n_levels: int = 6
    blocks_per_function_mean: int = 16
    block_body_mean: float = 4.4
    block_body_max: int = 14
    #: Zipf exponent of the function-popularity distribution.
    heat_exponent: float = 1.2
    #: Maximum backward (loop) conditional edges per function.
    max_loops_per_function: int = 2
    #: Probability that a conditional edge is a backward loop edge.
    p_backward: float = 0.12
    #: Entry-function dispatcher: number of indirect-call sites and the
    #: fan-out of each (how many handler functions each site can reach).
    dispatch_sites: int = 3
    dispatch_fanout: int = 24
    #: Fraction of dispatch sites cycling round-robin (history-learnable)
    #: rather than picking randomly (data-dependent, unpredictable).
    dispatch_round_robin: float = 0.67
    # Terminator mix (relative weights; last block of a function returns).
    w_plain: float = 0.16
    w_cond: float = 0.52
    w_jump: float = 0.08
    w_call: float = 0.17
    w_indirect_jump: float = 0.04
    w_indirect_call: float = 0.03
    # Conditional behaviour mix.
    w_never_taken: float = 0.45
    w_always_taken: float = 0.24
    w_loop: float = 0.20
    w_pattern: float = 0.05
    w_random: float = 0.04
    loop_trips_mean: int = 10
    loop_trips_jitter: int = 1
    random_bias: float = 0.90
    # Indirect behaviour mix.
    w_ind_single: float = 0.85
    w_ind_round_robin: float = 0.10
    w_ind_random: float = 0.05
    indirect_fanout_max: int = 4
    # Instruction mix of block bodies.
    p_load: float = 0.27
    p_store: float = 0.11
    p_mul: float = 0.05
    # Data side.
    heap_span: int = 1 << 22
    stack_frame: int = 256
    p_mem_random: float = 0.08
    # Layout: random gap (in instructions) inserted between functions.
    function_gap_max: int = 8


class ProgramBuilder:
    """Generates a :class:`Program` from a :class:`ProgramSpec`."""

    def __init__(self, spec: ProgramSpec) -> None:
        self.spec = spec
        self.rng = SplitMix(spec.seed)
        self._recent_dsts: List[int] = []
        # Shared data regions (see _make_mem): (base, span_bytes).
        self._hot_regions = [
            (HEAP_BASE + i * (1 << 16), self.rng.choice([4096, 8192, 16384]))
            for i in range(10)
        ]
        self._warm_regions = [
            (HEAP_BASE + (1 << 21) + i * (1 << 19), self.rng.choice([1 << 16, 1 << 17]))
            for i in range(6)
        ]

    # -- instruction bodies ---------------------------------------------------

    def _pick_src(self) -> int:
        if self._recent_dsts and self.rng.uniform() < 0.6:
            return self.rng.choice(self._recent_dsts)
        return self.rng.randint(0, 31)

    def _make_body(self, pc: int, count: int, func_index: int) -> List[StaticInst]:
        spec = self.spec
        insts = []
        for k in range(count):
            roll = self.rng.uniform()
            dst = self.rng.randint(1, 31)
            src1 = self._pick_src()
            src2 = self._pick_src()
            mem = None
            if roll < spec.p_load:
                kind = "load"
                mem = self._make_mem(func_index)
            elif roll < spec.p_load + spec.p_store:
                kind = "store"
                mem = self._make_mem(func_index)
                dst = -1
            elif roll < spec.p_load + spec.p_store + spec.p_mul:
                kind = "mul"
            else:
                kind = "alu"
            if dst >= 0:
                self._recent_dsts.append(dst)
                if len(self._recent_dsts) > 8:
                    self._recent_dsts.pop(0)
            insts.append(
                StaticInst(pc=pc + k * ILEN, kind=kind, dst=dst, src1=src1, src2=src2, mem=mem)
            )
        return insts

    def _make_mem(self, func_index: int) -> MemBehavior:
        """Memory behaviour mix of server code: mostly stack frames and
        shared hot heap structures (cache-resident), a warm tier, and a
        small cold/random tail that produces the DRAM-bound loads."""
        spec = self.spec
        roll = self.rng.uniform()
        if roll < 0.55:
            # Stack-frame access: tiny span, always hits.
            base = STACK_BASE + func_index * spec.stack_frame
            return MemBehavior(base=base, stride=8, span=spec.stack_frame)
        if roll < 0.88:
            # Hot shared structure: many static loads share few regions,
            # so lines are reused across the whole program.
            base, span = self.rng.choice(self._hot_regions)
            stride = self.rng.choice([8, 8, 16, 64])
            return MemBehavior(base=base, stride=stride, span=span, p_random=0.02)
        if roll < 0.985:
            # Warm tier: larger shared tables, mostly L2/LLC resident.
            base, span = self.rng.choice(self._warm_regions)
            stride = self.rng.choice([16, 64])
            return MemBehavior(base=base, stride=stride, span=span, p_random=0.02)
        # Cold tail: random pointer chases over a big span.
        return MemBehavior(
            base=HEAP_BASE + (3 << 22),
            stride=64,
            span=min(spec.heap_span, 1 << 20),
            p_random=max(0.3, spec.p_mem_random),
        )

    # -- behaviours ------------------------------------------------------------

    def _make_cond_behavior(self, is_backward: bool) -> CondBehavior:
        spec = self.spec
        if is_backward:
            # Most loops have a stable trip count (predictable exit once
            # the history tables train); a minority jitter per entry.
            jitter = 0 if self.rng.uniform() < 0.85 else spec.loop_trips_jitter
            return LoopBranch(
                mean_trips=max(2, self.rng.randint(2, spec.loop_trips_mean)),
                jitter=jitter,
            )
        kind = self.rng.weighted_choice(
            ["never", "always", "pattern", "random"],
            [spec.w_never_taken, spec.w_always_taken, spec.w_pattern, spec.w_random],
        )
        if kind == "never":
            return NeverTaken()
        if kind == "always":
            return AlwaysTaken()
        if kind == "pattern":
            length = self.rng.randint(2, 6)
            pattern = [self.rng.uniform() < 0.5 for _ in range(length)]
            if not any(pattern):
                pattern[0] = True
            return PatternBranch(pattern)
        return BiasedRandom(spec.random_bias if self.rng.uniform() < 0.5 else 1 - spec.random_bias)

    # -- whole-program construction ---------------------------------------------

    def build(self) -> Program:
        """Generate the full program."""
        spec = self.spec
        levels = self._assign_levels()
        functions: List[Function] = []
        pc = CODE_BASE
        # First pass: create blocks with bodies, leaving terminators open.
        heats = self._assign_heats(len(levels))
        for index, level in enumerate(levels):
            func = Function(name=f"fn{index:03d}", level=level, heat=heats[index])
            if index == 0:
                # The dispatcher needs one block per call site, a loop
                # back-edge block and a return block.
                n_blocks = spec.dispatch_sites + 2
            else:
                n_blocks = max(3, self.rng.geometric(spec.blocks_per_function_mean))
            for _ in range(n_blocks):
                body = min(spec.block_body_max, max(1, self.rng.geometric(spec.block_body_mean)))
                block = Block(start_pc=pc, insts=self._make_body(pc, body, index))
                func.blocks.append(block)
                # Reserve one slot for a potential terminator.
                pc = block.start_pc + (body + 1) * ILEN
            functions.append(func)
            pc += self.rng.randint(0, spec.function_gap_max) * ILEN
        # Second pass: assign terminators now that all entry PCs exist.
        self._build_dispatcher(functions[0], functions)
        for func in functions[1:]:
            self._assign_terminators(func, functions)
        # Third pass: compact PCs (blocks without terminators shrank by one slot).
        self._relayout(functions)
        program = Program(functions=functions)
        program.finalize()
        return program

    def _assign_levels(self) -> List[int]:
        """Function call-graph levels; calls only go to strictly deeper levels."""
        spec = self.spec
        levels = [0]
        for _ in range(1, spec.n_functions):
            levels.append(self.rng.randint(1, spec.n_levels - 1))
        return levels

    def _assign_heats(self, count: int) -> List[float]:
        """Zipf-style popularity weights, shuffled across function indices."""
        ranks = list(range(1, count + 1))
        # Fisher–Yates shuffle with our deterministic RNG.
        for i in range(count - 1, 0, -1):
            j = self.rng.randint(0, i)
            ranks[i], ranks[j] = ranks[j], ranks[i]
        return [1.0 / (rank ** self.spec.heat_exponent) for rank in ranks]

    def _build_dispatcher(self, entry: Function, functions: List[Function]) -> None:
        """Turn the entry function into a server request-dispatch loop.

        Each of the first ``dispatch_sites`` blocks ends with an indirect
        call that selects (data-dependent, i.e. randomly) among a wide
        fan-out of handler functions; one loop back-edge repeats the
        dispatch several times per "request batch"; the final block
        returns (which restarts the walk at the entry). This is what
        spreads dynamic execution across the whole binary, like the
        server workloads the paper targets.
        """
        spec = self.spec
        handlers = self._callees(functions, entry.level)
        if not handlers:
            raise ValueError("program needs at least one non-entry function")
        blocks = entry.blocks
        n = len(blocks)
        for bi, block in enumerate(blocks):
            if bi == n - 1:
                block.term_type = BranchType.RETURN
            elif bi == n - 2:
                block.term_type = BranchType.COND_DIRECT
                block.taken_target = blocks[0].start_pc
                block.cond_behavior = LoopBranch(mean_trips=12, jitter=4)
            else:
                block.term_type = BranchType.CALL_INDIRECT
                fanout = min(len(handlers), spec.dispatch_fanout)
                # Heat-weighted sample *with replacement*: hot handlers
                # appear several times in the target list, so the uniform
                # dynamic pick reproduces the hot/cold execution split.
                picked = [self._pick_callee(handlers).entry_pc for _ in range(fanout)]
                if len(set(picked)) == 1:
                    block.indirect_behavior = IndirectBehavior(
                        [picked[0]], IndirectBehavior.SINGLE
                    )
                else:
                    # Sticky dispatch: batches of similar requests keep
                    # hitting the same handler before switching.
                    block.indirect_behavior = IndirectBehavior(
                        picked, IndirectBehavior.STICKY, sticky_runs=8
                    )

    def _callees(self, functions: List[Function], level: int) -> List[Function]:
        return [f for f in functions if f.level > level]

    def _pick_callee(self, callees: List[Function]) -> Function:
        return self.rng.weighted_choice(callees, [f.heat for f in callees])

    def _assign_terminators(self, func: Function, functions: List[Function]) -> None:
        spec = self.spec
        n = len(func.blocks)
        callees = self._callees(functions, func.level)
        loops_left = spec.max_loops_per_function
        for bi, block in enumerate(func.blocks):
            if bi == n - 1:
                block.term_type = BranchType.RETURN
                continue
            weights = [
                spec.w_plain,
                spec.w_cond,
                spec.w_jump if bi + 2 < n else 0.0,
                spec.w_call if callees else 0.0,
                spec.w_indirect_jump if bi + 2 < n else 0.0,
                spec.w_indirect_call if callees else 0.0,
            ]
            choice = self.rng.weighted_choice(
                ["plain", "cond", "jump", "call", "ijump", "icall"], weights
            )
            if choice == "plain":
                block.term_type = BranchType.NONE
            elif choice == "cond":
                block.term_type = BranchType.COND_DIRECT
                # Backward (loop) edges with bounded probability and a
                # per-function cap, so nested loops cannot trap the walker.
                backward = bi > 0 and loops_left > 0 and self.rng.uniform() < spec.p_backward
                if backward:
                    loops_left -= 1
                    target_block = func.blocks[self.rng.randint(max(0, bi - 6), bi - 1)]
                else:
                    target_block = func.blocks[self.rng.randint(bi + 1, min(n - 1, bi + 6))]
                block.taken_target = target_block.start_pc
                block.cond_behavior = self._make_cond_behavior(backward)
            elif choice == "jump":
                target_block = func.blocks[self.rng.randint(bi + 2, min(n - 1, bi + 8))]
                block.term_type = BranchType.UNCOND_DIRECT
                block.taken_target = target_block.start_pc
            elif choice == "call":
                block.term_type = BranchType.CALL_DIRECT
                block.taken_target = self._pick_callee(callees).entry_pc
            elif choice == "ijump":
                block.term_type = BranchType.INDIRECT
                block.indirect_behavior = self._make_indirect(
                    [b.start_pc for b in func.blocks[bi + 1 :]]
                )
            else:  # icall
                block.term_type = BranchType.CALL_INDIRECT
                block.indirect_behavior = self._make_indirect([f.entry_pc for f in callees])

    def _make_indirect(self, candidates: List[int]) -> IndirectBehavior:
        spec = self.spec
        mode = self.rng.weighted_choice(
            [IndirectBehavior.SINGLE, IndirectBehavior.ROUND_ROBIN, IndirectBehavior.RANDOM],
            [spec.w_ind_single, spec.w_ind_round_robin, spec.w_ind_random],
        )
        if mode == IndirectBehavior.SINGLE or len(candidates) == 1:
            return IndirectBehavior([self.rng.choice(candidates)], IndirectBehavior.SINGLE)
        fanout = min(len(candidates), self.rng.randint(2, spec.indirect_fanout_max))
        picked = []
        pool = list(candidates)
        for _ in range(fanout):
            choice = self.rng.choice(pool)
            pool.remove(choice)
            picked.append(choice)
        if mode == IndirectBehavior.RANDOM:
            # Data-dependent multi-target jumps still show phase locality.
            return IndirectBehavior(picked, IndirectBehavior.STICKY, sticky_runs=6)
        return IndirectBehavior(picked, mode)

    def _relayout(self, functions: List[Function]) -> None:
        """Re-pack blocks to final PCs and retarget branches.

        The first pass reserved a terminator slot in every block; plain
        fall-through blocks give it back here, so the address map must be
        rebuilt and every ``taken_target`` / indirect target remapped.
        """
        old_to_new: Dict[int, int] = {}
        pc = CODE_BASE
        for func in functions:
            for block in func.blocks:
                old_to_new[block.start_pc] = pc
                new_start = pc
                for k, inst in enumerate(block.insts):
                    inst.pc = new_start + k * ILEN
                block.start_pc = new_start
                pc = block.end_pc
            pc += self.rng.randint(0, self.spec.function_gap_max) * ILEN
        for func in functions:
            for block in func.blocks:
                if block.taken_target:
                    block.taken_target = old_to_new[block.taken_target]
                if block.indirect_behavior is not None:
                    block.indirect_behavior.targets = [
                        old_to_new[t] for t in block.indirect_behavior.targets
                    ]


def build_program(spec: ProgramSpec) -> Program:
    """Convenience wrapper: generate a program from *spec*."""
    return ProgramBuilder(spec).build()
