"""Synthetic workloads: static CFG generation and dynamic trace synthesis."""

from repro.trace.behavior import (
    AlwaysTaken,
    BiasedRandom,
    CondBehavior,
    IndirectBehavior,
    LoopBranch,
    NeverTaken,
    PatternBranch,
)
from repro.trace.external import (
    TraceFormatError,
    load_trace_csv,
    save_trace_csv,
)
from repro.trace.cfg import (
    CODE_BASE,
    Block,
    Function,
    MemBehavior,
    Program,
    ProgramBuilder,
    ProgramSpec,
    StaticInst,
    build_program,
)
from repro.trace.synth import TraceSynthesizer, synthesize_trace
from repro.trace.trace import NO_REG, NUM_REGS, Trace
from repro.trace.workloads import (
    SERVER_SUITE,
    SMOKE_SUITE,
    WORKLOAD_SPECS,
    get_program,
    get_trace,
    suite_traces,
)

__all__ = [
    "AlwaysTaken",
    "BiasedRandom",
    "Block",
    "CODE_BASE",
    "CondBehavior",
    "Function",
    "IndirectBehavior",
    "LoopBranch",
    "MemBehavior",
    "NO_REG",
    "NUM_REGS",
    "NeverTaken",
    "PatternBranch",
    "Program",
    "ProgramBuilder",
    "ProgramSpec",
    "SERVER_SUITE",
    "SMOKE_SUITE",
    "StaticInst",
    "Trace",
    "TraceFormatError",
    "TraceSynthesizer",
    "WORKLOAD_SPECS",
    "build_program",
    "get_program",
    "get_trace",
    "load_trace_csv",
    "save_trace_csv",
    "suite_traces",
    "synthesize_trace",
]
