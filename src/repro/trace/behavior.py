"""Branch behaviour models for synthetic workloads.

Each static conditional/indirect branch in a synthetic program is assigned
a *behaviour* object that decides, per dynamic execution, whether the
branch is taken (conditionals) or which target it jumps to (indirects).
The behaviour mix is what lets the workload suite hit the aggregate
statistics the paper reports for the CVP-1 server traces: ~34.8 % of
dynamic branches are never-taken conditionals, ~15 % are always-taken
conditionals, ~9.1 % are single-target indirects, and conditional branch
MPKI under a 64 KB hashed perceptron sits around 0.8.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.rng import SplitMix


class CondBehavior:
    """Base class: decides taken/not-taken per dynamic instance."""

    def outcome(self, rng: SplitMix) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Reset per-invocation state (e.g. loop trip counters)."""


class NeverTaken(CondBehavior):
    """Conditional branch that is never taken (guard/error checks)."""

    def outcome(self, rng: SplitMix) -> bool:
        return False


class AlwaysTaken(CondBehavior):
    """Conditional branch that is always taken."""

    def outcome(self, rng: SplitMix) -> bool:
        return True


class LoopBranch(CondBehavior):
    """Loop back-edge: taken ``trips - 1`` times, then not taken once.

    Trip counts are re-drawn around *mean_trips* each time the loop is
    re-entered, with bounded jitter, which keeps the branch predictable by
    a history-based predictor while exercising loop exits.
    """

    def __init__(self, mean_trips: int, jitter: int = 0) -> None:
        if mean_trips < 1:
            raise ValueError("mean_trips must be >= 1")
        self.mean_trips = mean_trips
        self.jitter = jitter
        self._remaining: Optional[int] = None

    def _draw_trips(self, rng: SplitMix) -> int:
        if self.jitter <= 0:
            return self.mean_trips
        lo = max(1, self.mean_trips - self.jitter)
        hi = self.mean_trips + self.jitter
        return rng.randint(lo, hi)

    def outcome(self, rng: SplitMix) -> bool:
        if self._remaining is None:
            self._remaining = self._draw_trips(rng)
        self._remaining -= 1
        if self._remaining <= 0:
            self._remaining = None
            return False  # loop exit: fall through
        return True

    def reset(self) -> None:
        self._remaining = None


class BiasedRandom(CondBehavior):
    """Data-dependent branch, taken with probability *p* independently.

    These are the (few) fundamentally unpredictable branches that set the
    floor of the conditional branch MPKI.
    """

    def __init__(self, p_taken: float) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError("p_taken must be in [0, 1]")
        self.p_taken = p_taken

    def outcome(self, rng: SplitMix) -> bool:
        return rng.uniform() < self.p_taken


class PatternBranch(CondBehavior):
    """Branch following a fixed short taken/not-taken pattern.

    Perfectly predictable by a history-based predictor once learned, but
    defeats static bias — exercises the perceptron's history tables and
    makes predictor capacity (Fig. 11b) matter.
    """

    def __init__(self, pattern: Sequence[bool]) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = [bool(b) for b in pattern]
        self._pos = 0

    def outcome(self, rng: SplitMix) -> bool:
        out = self.pattern[self._pos]
        self._pos = (self._pos + 1) % len(self.pattern)
        return out

    def reset(self) -> None:
        self._pos = 0


class IndirectBehavior:
    """Chooses the dynamic target of an indirect branch.

    *targets* are program addresses. ``mode`` selects single-target
    (9.1 % of dynamic branches in CVP-1 behave this way), round-robin
    (vtable-ish cycling, history-predictable) or random (hash-dispatch,
    mostly unpredictable).
    """

    SINGLE = "single"
    ROUND_ROBIN = "round_robin"
    RANDOM = "random"
    #: Holds one target for ``sticky_runs`` executions, then re-picks
    #: randomly: models servers processing batches of similar requests
    #: (mostly predictable dispatch with occasional phase switches).
    STICKY = "sticky"

    MODES = (SINGLE, ROUND_ROBIN, RANDOM, STICKY)

    def __init__(
        self, targets: Sequence[int], mode: str = SINGLE, sticky_runs: int = 8
    ) -> None:
        if not targets:
            raise ValueError("indirect branch needs at least one target")
        if mode not in self.MODES:
            raise ValueError(f"unknown indirect mode {mode!r}")
        if mode == self.SINGLE and len(targets) != 1:
            raise ValueError("single-target behaviour requires exactly one target")
        if sticky_runs < 1:
            raise ValueError("sticky_runs must be >= 1")
        self.targets: List[int] = list(targets)
        self.mode = mode
        self.sticky_runs = sticky_runs
        self._pos = 0
        self._sticky_target: int = targets[0]
        self._sticky_left = 0

    def next_target(self, rng: SplitMix) -> int:
        if self.mode == self.SINGLE:
            return self.targets[0]
        if self.mode == self.ROUND_ROBIN:
            target = self.targets[self._pos]
            self._pos = (self._pos + 1) % len(self.targets)
            return target
        if self.mode == self.STICKY:
            if self._sticky_left <= 0:
                self._sticky_target = rng.choice(self.targets)
                self._sticky_left = self.sticky_runs
            self._sticky_left -= 1
            return self._sticky_target
        return rng.choice(self.targets)

    def reset(self) -> None:
        self._pos = 0
        self._sticky_left = 0
