"""Deterministic fault injection for sweep resilience testing.

Enabled via the ``REPRO_FAULT_SPEC`` environment variable, this module
makes *selected* sweep points misbehave on their first N attempts —
raise, hang, die with SIGKILL, or corrupt their cached artifact — so
tests and the CI chaos-smoke job can prove that retries converge to
bit-identical results. With the variable unset (the production default)
:func:`maybe_fault` is a single dict lookup and the engine hot path is
untouched.

Spec grammar (entries separated by ``;``, first matching rule wins)::

    REPRO_FAULT_SPEC = entry[;entry...]
    entry            = kind ':' selector [':' attempts]
    kind             = raise | hang | kill | corrupt      (process faults)
                     | drop | delay | disconnect          (network faults,
                                                           dist workers only)
    selector         = '*'                 every point
                     | 'mod<k>=<r>'        stable_hash(point) % k == r
                     | <substring>         of "<config label>|<workload>|..."
    attempts         = how many initial attempts fault (default 1)

Examples::

    raise:db_oltp:2        db_oltp points raise on their first 2 attempts
    kill:mod5=0            ~20% of points SIGKILL their worker once
    hang:*:1               every point hangs once (parent timeout kills it)

Attempt counting must survive worker deaths, so it lives on disk: each
execution attempt of a matching point claims a sentinel file (atomic
``O_CREAT|O_EXCL``) under ``REPRO_FAULT_DIR`` (default: a per-spec
directory under the system temp dir). Faults therefore trigger on
exactly the first N attempts regardless of which process runs the point.

Fault kinds ``hang`` and ``kill`` need a parent to recover from them —
use ``jobs >= 2``; in a serial sweep a ``kill`` takes down the whole
process (exactly like a real SIGKILL would) and a ``hang`` sleeps out
``REPRO_FAULT_HANG_S`` (default 3600 s) before raising.
"""

from __future__ import annotations

import hashlib
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from typing import Optional, Tuple

#: Fault plan: which points fail, how, and for how many attempts.
ENV_FAULT_SPEC = "REPRO_FAULT_SPEC"
#: Cross-process attempt-count state directory.
ENV_FAULT_DIR = "REPRO_FAULT_DIR"
#: Seconds a ``hang`` fault sleeps before giving up and raising.
ENV_FAULT_HANG = "REPRO_FAULT_HANG_S"
#: Daemon-level chaos: SIGKILL the *service process itself* (not a
#: worker) once, immediately after its Nth durable journal append —
#: i.e. between appends, with the Nth record already fsynced. A one-shot
#: sentinel under ``REPRO_FAULT_DIR`` makes the restarted daemon immune,
#: so the CI chaos rig can prove crash recovery deterministically.
ENV_FAULT_DAEMON = "REPRO_FAULT_DAEMON_AFTER"

FAULT_KINDS = ("raise", "hang", "kill", "corrupt")

#: Network fault kinds, consumed by the *dist* worker loop
#: (:mod:`repro.dist.worker`) via :func:`maybe_net_fault` — they share
#: the spec grammar and the on-disk attempt counting with the process
#: kinds above, but :func:`maybe_fault` ignores them (a network fault
#: only makes sense where there is a network):
#:
#: * ``drop`` — execute the point but never send its outcome frame; the
#:   coordinator requeues it blame-free at lease end.
#: * ``delay`` — hold the outcome frame for ``REPRO_FAULT_DELAY_S``
#:   seconds before sending (late-result tolerance).
#: * ``disconnect`` — abruptly close the coordinator connection before
#:   executing; the coordinator blames the in-flight point like a
#:   crashed worker and the worker reconnects fresh.
NET_FAULT_KINDS = ("drop", "delay", "disconnect")

#: Seconds a ``delay`` network fault holds an outcome frame.
ENV_FAULT_DELAY = "REPRO_FAULT_DELAY_S"


class InjectedFault(RuntimeError):
    """Raised by ``raise``/``hang`` faults (classified ``exception``)."""


class InjectedCacheCorruption(InjectedFault):
    """Raised by ``corrupt`` faults (classified ``cache-corrupt``)."""


class FaultSpecError(ValueError):
    """Raised for malformed ``REPRO_FAULT_SPEC`` strings."""


def point_id(point) -> str:
    """Stable human-readable identity string of a sweep point."""
    return (
        f"{point.config.label}|{point.workload}"
        f"|L{point.length}|W{point.warmup}|S{point.seed}"
    )


def stable_hash(text: str) -> int:
    """Process-independent hash used by ``mod<k>=<r>`` selectors."""
    return int(hashlib.sha1(text.encode("utf-8")).hexdigest()[:8], 16)


@dataclass(frozen=True)
class FaultRule:
    """One parsed spec entry."""

    kind: str
    selector: str
    attempts: int = 1

    def matches(self, pid: str) -> bool:
        if self.selector == "*":
            return True
        if self.selector.startswith("mod") and "=" in self.selector:
            try:
                k_text, r_text = self.selector[3:].split("=", 1)
                k, r = int(k_text), int(r_text)
            except ValueError:
                return False
            return k > 0 and stable_hash(pid) % k == r
        return self.selector in pid


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULT_SPEC`` plus its attempt-state directory."""

    rules: Tuple[FaultRule, ...]
    state_dir: str

    @classmethod
    def parse(cls, spec: str, state_dir: Optional[str] = None) -> "FaultPlan":
        rules = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) < 2 or len(parts) > 3:
                raise FaultSpecError(
                    f"malformed fault entry {entry!r} "
                    "(expected kind:selector[:attempts])"
                )
            kind, selector = parts[0].strip(), parts[1].strip()
            if kind not in FAULT_KINDS and kind not in NET_FAULT_KINDS:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r} in {entry!r}; "
                    f"expected one of {FAULT_KINDS + NET_FAULT_KINDS}"
                )
            if not selector:
                raise FaultSpecError(f"empty selector in {entry!r}")
            attempts = 1
            if len(parts) == 3:
                try:
                    attempts = int(parts[2])
                except ValueError:
                    raise FaultSpecError(
                        f"bad attempt count {parts[2]!r} in {entry!r}"
                    ) from None
                if attempts < 1:
                    raise FaultSpecError(f"attempt count must be >= 1 in {entry!r}")
            rules.append(FaultRule(kind, selector, attempts))
        if not rules:
            raise FaultSpecError("fault spec contains no entries")
        if state_dir is None:
            tag = hashlib.sha1(spec.encode("utf-8")).hexdigest()[:12]
            state_dir = os.path.join(tempfile.gettempdir(), f"repro-faults-{tag}")
        return cls(rules=tuple(rules), state_dir=state_dir)


_plan_memo: dict = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan named by the environment, or ``None`` when faults are off."""
    spec = os.environ.get(ENV_FAULT_SPEC, "").strip()
    if not spec:
        return None
    state_dir = os.environ.get(ENV_FAULT_DIR, "").strip() or None
    memo_key = (spec, state_dir)
    plan = _plan_memo.get(memo_key)
    if plan is None:
        plan = FaultPlan.parse(spec, state_dir)
        _plan_memo[memo_key] = plan
    return plan


def claim_attempt(plan: FaultPlan, pid: str, rule_index: int) -> int:
    """Atomically claim the next attempt ordinal (1-based) for *pid*.

    Sentinel files make the count shared across processes and immune to
    worker deaths: a killed worker's claim stays on disk, so the next
    attempt sees a higher ordinal and the fault eventually stops firing.
    """
    os.makedirs(plan.state_dir, exist_ok=True)
    tag = hashlib.sha1(pid.encode("utf-8")).hexdigest()[:20]
    attempt = 1
    while True:
        path = os.path.join(plan.state_dir, f"{tag}.r{rule_index}.a{attempt}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            attempt += 1
            continue
        os.close(fd)
        return attempt


def maybe_fault(point) -> None:
    """Trigger the configured fault for *point*, if any.

    No-op (one environment lookup) when ``REPRO_FAULT_SPEC`` is unset.
    Called by the resilient execution paths immediately before the point
    is simulated.
    """
    plan = active_plan()
    if plan is None:
        return
    pid = point_id(point)
    for rule_index, rule in enumerate(plan.rules):
        if rule.kind in NET_FAULT_KINDS:
            # Network kinds belong to the dist worker loop; skipping
            # them here (without claiming an attempt) lets one spec mix
            # process and network chaos.
            continue
        if not rule.matches(pid):
            continue
        attempt = claim_attempt(plan, pid, rule_index)
        if attempt <= rule.attempts:
            _trigger(rule, point, pid, attempt)
        return  # first matching rule wins


def maybe_net_fault(point) -> Optional[str]:
    """The network fault kind to inject for *point*, or ``None``.

    The dist worker's lease loop calls this once per point; the first
    matching **network** rule wins, and attempts are claimed through the
    same on-disk sentinels as process faults — so an injected disconnect
    fires on exactly the first N attempts across reconnects and worker
    respawns. Process-kind rules are skipped without claiming attempts,
    mirroring :func:`maybe_fault`'s treatment of network kinds.
    """
    plan = active_plan()
    if plan is None:
        return None
    pid = point_id(point)
    for rule_index, rule in enumerate(plan.rules):
        if rule.kind not in NET_FAULT_KINDS:
            continue
        if not rule.matches(pid):
            continue
        attempt = claim_attempt(plan, pid, rule_index)
        if attempt <= rule.attempts:
            return rule.kind
        return None  # first matching net rule wins
    return None


def net_fault_delay() -> float:
    """Seconds a ``delay`` fault holds an outcome (``REPRO_FAULT_DELAY_S``)."""
    try:
        return float(os.environ.get(ENV_FAULT_DELAY, "2.0"))
    except ValueError:
        return 2.0


def _trigger(rule: FaultRule, point, pid: str, attempt: int) -> None:
    if rule.kind == "raise":
        raise InjectedFault(f"injected exception for {pid} (attempt {attempt})")
    if rule.kind == "corrupt":
        _corrupt_cached_result(point)
        raise InjectedCacheCorruption(
            f"injected cache corruption for {pid} (attempt {attempt})"
        )
    if rule.kind == "hang":
        time.sleep(float(os.environ.get(ENV_FAULT_HANG, "3600")))
        raise InjectedFault(f"injected hang elapsed for {pid} (attempt {attempt})")
    if rule.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise AssertionError(f"unhandled fault kind {rule.kind!r}")  # pragma: no cover


def maybe_kill_daemon(appends: int) -> None:
    """SIGKILL this process after its *appends*-th journal append, once.

    No-op (one environment lookup) unless ``REPRO_FAULT_DAEMON_AFTER``
    is a positive integer. The kill fires at most once per fault-state
    directory: the first process to reach the threshold claims an
    ``O_CREAT|O_EXCL`` sentinel and dies; the restarted daemon finds the
    sentinel claimed and runs to completion. Called by the service job
    store (:mod:`repro.service.store`) right after each fsynced append.
    """
    spec = os.environ.get(ENV_FAULT_DAEMON, "").strip()
    if not spec:
        return
    try:
        threshold = int(spec)
    except ValueError:
        raise FaultSpecError(
            f"{ENV_FAULT_DAEMON} must be an integer, got {spec!r}"
        ) from None
    if threshold <= 0 or appends < threshold:
        return
    state_dir = os.environ.get(ENV_FAULT_DIR, "").strip() or os.path.join(
        tempfile.gettempdir(), "repro-faults-daemon"
    )
    os.makedirs(state_dir, exist_ok=True)
    sentinel = os.path.join(state_dir, "daemon.killed")
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # already fired once: the recovered daemon survives
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def _corrupt_cached_result(point) -> None:
    """Truncate the point's cached result (if present) to garbage, so the
    retry exercises the corruption-tolerant cache read path."""
    from repro.core.exec.engine import get_disk_cache, point_key

    disk = get_disk_cache()
    if disk is None:
        return
    path = disk.result_path(point_key(point))
    if path.exists():
        path.write_text("{corrupt")
