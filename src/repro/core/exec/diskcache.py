"""Persistent on-disk cache for simulation results and synthesized traces.

Layout (everything under one root, default ``~/.cache/repro-btb``,
overridable via ``REPRO_CACHE_DIR``)::

    <root>/v<SCHEMA>/results/<sha256>.json   SimResult payloads
    <root>/v<SCHEMA>/traces/<sha256>.npz     Trace columns (compressed)
    <root>/v<SCHEMA>/plans/<sha256>.npz      batch plans (columnar trace
                                             derivations + per-geometry
                                             predictor outcomes consumed
                                             by the batched kernels; a
                                             ``__meta__`` JSON member
                                             records provenance for
                                             ``corpus gc``)
    <root>/v<SCHEMA>/obs/<sha256>.json       observability artifacts
                                             (repro.obs observation dumps,
                                             stored alongside the result
                                             under the same key)

With sharding enabled (``shard=True``, or ``REPRO_CACHE_SHARDS=1`` —
the service daemon's default) each tier fans its entries out into 256
two-hex-digit subdirectories (``results/ab/<sha256>.json``), so a store
holding millions of entries never concentrates them in one directory.
Keys are unchanged either way, and reads transparently find entries
written under the other layout, so flat and sharded stores interoperate
on the same root.

Size discipline for long-lived stores: :meth:`DiskCache.tier_stats`
reports per-tier entry counts and byte sizes (sweeping abandoned
``.lock`` sentinels on the way through), and :meth:`DiskCache.prune`
evicts least-recently-used entries until the store fits a byte budget —
successful loads touch the entry's mtime, so recency tracks use, not
creation. The service daemon applies the budget continuously
(``repro-sim serve --cache-max-mb``); ``repro-sim cache stats`` /
``cache prune`` expose the same machinery on the command line.

Writes are atomic (temp file + ``os.replace``), so a crashed or killed
run never leaves a half-written entry behind. Concurrent sweeps sharing
one cache are additionally serialized per key with a ``.lock`` sentinel
(created ``O_CREAT|O_EXCL``): a second process finding a fresh lock for
the same key simply skips its write — entries are content-addressed, so
the concurrent writer is producing identical bytes. A stale lock (left
by a killed writer, older than :data:`STALE_LOCK_SECONDS`) is broken
and reclaimed. Reads are corruption tolerant: any unreadable entry is
deleted and treated as a miss — the engine recomputes instead of
crashing.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.core.exec.cachekey import CACHE_SCHEMA
from repro.core.simulator import SimResult
from repro.trace.trace import Trace

#: Environment variable overriding the cache root directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default cache root (expanded at construction time).
DEFAULT_CACHE_DIR = "~/.cache/repro-btb"

#: Age (seconds) past which a ``.lock`` sentinel is presumed abandoned
#: by a killed writer and may be broken by the next one.
STALE_LOCK_SECONDS = 60.0

#: Set to ``1``/``true`` to shard cache tiers into 256 two-hex-digit
#: subdirectories (for stores expected to hold millions of entries).
ENV_CACHE_SHARDS = "REPRO_CACHE_SHARDS"

#: The cache tiers, in the order maintenance commands report them.
TIERS = ("results", "traces", "plans", "obs")


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-btb``."""
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR).expanduser()


# -- shared write discipline -------------------------------------------------
#
# The ``.lock``-sentinel + temp-file + ``os.replace`` protocol below is
# used by every on-disk store in the repo (this cache, and the trace
# corpus of :mod:`repro.corpus`): writes are atomic, concurrent writers
# of the same content-addressed entry are serialized per key, and a lock
# abandoned by a killed writer is broken after :data:`STALE_LOCK_SECONDS`.


def lock_path(path: Path) -> Path:
    """The per-key write-lock sentinel guarding *path*."""
    return path.with_name(path.name + ".lock")


def drop_file(path: Path) -> None:
    """Best-effort unlink (missing files and races are fine)."""
    try:
        path.unlink()
    except OSError:
        pass


def acquire_lock(path: Path, stale_after: float = STALE_LOCK_SECONDS) -> bool:
    """Take the write lock for *path*; ``False`` when another writer holds
    a fresh one (for content-addressed entries its write is identical)."""
    lock = lock_path(path)
    for _ in range(2):
        try:
            fd = os.open(str(lock), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = max(0.0, time.time() - lock.stat().st_mtime)
            except OSError:
                continue  # lock vanished between open and stat: retry
            if age < stale_after:
                return False
            drop_file(lock)  # abandoned by a killed writer: break it
            continue
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        return True
    return False


def release_lock(path: Path) -> None:
    """Release the write lock for *path* (idempotent)."""
    drop_file(lock_path(path))


def atomic_write(path: Path, writer) -> bool:
    """Write via *writer(tmp_path)* then atomically rename into place.

    Guarded by the per-key lock sentinel: returns ``False`` (without
    writing) when a concurrent writer already holds the key.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    if not acquire_lock(path):
        return False
    try:
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=path.suffix
        )
        os.close(fd)
        try:
            writer(tmp)
            os.replace(tmp, path)
        except BaseException:
            drop_file(Path(tmp))
            raise
    finally:
        release_lock(path)
    return True


class DiskCache:
    """Content-addressed result/trace store with hit/miss counters."""

    def __init__(self, root=None, shard: Optional[bool] = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self.version_dir = self.root / f"v{CACHE_SCHEMA}"
        self.results_dir = self.version_dir / "results"
        self.traces_dir = self.version_dir / "traces"
        self.plans_dir = self.version_dir / "plans"
        self.obs_dir = self.version_dir / "obs"
        if shard is None:
            env = os.environ.get(ENV_CACHE_SHARDS, "").strip().lower()
            shard = env not in ("", "0", "false", "no")
        self.shard = bool(shard)
        self.counters: Dict[str, int] = {
            "result_hits": 0,
            "result_misses": 0,
            "trace_hits": 0,
            "trace_misses": 0,
            "plan_hits": 0,
            "plan_misses": 0,
            "lock_skips": 0,
        }

    # -- paths / plumbing ---------------------------------------------------

    def _entry_path(self, tier_dir: Path, key: str, suffix: str) -> Path:
        """Path of *key* in *tier_dir*, honouring the shard layout.

        The preferred layout (sharded when ``self.shard``, flat
        otherwise) wins, but an entry that already exists under the
        *other* layout is found and reused, so flat and sharded caches
        interoperate on one root.
        """
        flat = tier_dir / f"{key}{suffix}"
        sharded = tier_dir / key[:2] / f"{key}{suffix}"
        preferred, other = (sharded, flat) if self.shard else (flat, sharded)
        if not preferred.exists() and other.exists():
            return other
        return preferred

    def result_path(self, key: str) -> Path:
        return self._entry_path(self.results_dir, key, ".json")

    def trace_path(self, key: str) -> Path:
        return self._entry_path(self.traces_dir, key, ".npz")

    def plan_path(self, key: str) -> Path:
        return self._entry_path(self.plans_dir, key, ".npz")

    def obs_path(self, key: str) -> Path:
        return self._entry_path(self.obs_dir, key, ".json")

    def tier_dir(self, tier: str) -> Path:
        """Directory of one named tier (a member of :data:`TIERS`)."""
        if tier not in TIERS:
            raise ValueError(f"unknown cache tier {tier!r}; expected one of {TIERS}")
        return {
            "results": self.results_dir,
            "traces": self.traces_dir,
            "plans": self.plans_dir,
            "obs": self.obs_dir,
        }[tier]

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's mtime on a hit so eviction is LRU, not FIFO."""
        try:
            os.utime(path)
        except OSError:
            pass

    @staticmethod
    def lock_path(path: Path) -> Path:
        """The per-key write-lock sentinel guarding *path*."""
        return lock_path(path)

    def _acquire_lock(self, path: Path) -> bool:
        """Take the write lock for *path*; False when another writer holds
        a fresh one (its content-addressed write will be identical)."""
        return acquire_lock(path)

    def _atomic_write(self, path: Path, writer) -> bool:
        """Write via *writer(tmp_path)* then atomically rename into place.

        Guarded by the per-key lock sentinel: returns ``False`` (without
        writing) when a concurrent sweep is already writing this key.
        """
        wrote = atomic_write(path, writer)
        if not wrote:
            self.counters["lock_skips"] += 1
        return wrote

    @staticmethod
    def _drop(path: Path) -> None:
        drop_file(path)

    def merge_counters(self, other: Dict[str, int]) -> None:
        """Fold hit/miss counters from a worker process into ours."""
        for key, value in other.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)

    # -- results ------------------------------------------------------------

    def load_result(self, key: str) -> Optional[SimResult]:
        """Fetch a cached :class:`SimResult`, or ``None`` on miss.

        Corrupted or truncated entries are removed and count as misses.
        """
        path = self.result_path(key)
        try:
            payload = json.loads(path.read_text())
            result = SimResult(
                name=str(payload["name"]),
                instructions=int(payload["instructions"]),
                cycles=int(payload["cycles"]),
                stats={str(k): float(v) for k, v in payload["stats"].items()},
                structure={
                    str(k): float(v) for k, v in payload["structure"].items()
                },
            )
        except FileNotFoundError:
            self.counters["result_misses"] += 1
            return None
        except Exception:
            self._drop(path)
            self.counters["result_misses"] += 1
            return None
        self.counters["result_hits"] += 1
        self._touch(path)
        return result

    def store_result(self, key: str, result: SimResult) -> None:
        payload = {
            "name": result.name,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "stats": result.stats,
            "structure": result.structure,
        }
        text = json.dumps(payload, sort_keys=True)
        self._atomic_write(
            self.result_path(key), lambda tmp: Path(tmp).write_text(text)
        )

    # -- traces -------------------------------------------------------------

    def load_trace(self, key: str) -> Optional[Trace]:
        """Fetch a cached :class:`Trace`, or ``None`` on miss/corruption."""
        path = self.trace_path(key)
        if not path.exists():
            self.counters["trace_misses"] += 1
            return None
        try:
            trace = Trace.load(str(path))
        except Exception:
            self._drop(path)
            self.counters["trace_misses"] += 1
            return None
        self.counters["trace_hits"] += 1
        self._touch(path)
        return trace

    def store_trace(self, key: str, trace: Trace) -> None:
        self._atomic_write(self.trace_path(key), lambda tmp: trace.save(tmp))

    # -- batch plans --------------------------------------------------------

    def load_plan(self, key: str):
        """Fetch a cached batch plan: ``(arrays, meta)`` or ``None``.

        ``arrays`` maps payload column names to numpy arrays; ``meta`` is
        the provenance dict stored with the entry. Corrupted entries are
        removed and count as misses.
        """
        import numpy as np

        path = self.plan_path(key)
        if not path.exists():
            self.counters["plan_misses"] += 1
            return None
        try:
            with np.load(str(path)) as npz:
                meta = json.loads(str(npz["__meta__"]))
                arrays = {
                    name: npz[name]
                    for name in npz.files
                    if name != "__meta__"
                }
        except Exception:
            self._drop(path)
            self.counters["plan_misses"] += 1
            return None
        self.counters["plan_hits"] += 1
        self._touch(path)
        return arrays, meta

    def store_plan(self, key: str, arrays: Dict, meta: Dict) -> None:
        """Store a batch-plan payload (compressed npz) with provenance."""
        import numpy as np

        payload = dict(arrays)
        payload["__meta__"] = np.array(json.dumps(meta, sort_keys=True))

        def write(tmp: str) -> None:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **payload)

        self._atomic_write(self.plan_path(key), write)

    def adopt_plan(self, key: str, blob: bytes) -> bool:
        """Adopt raw plan-entry bytes fetched from a remote store.

        The bytes are written atomically and then validated through the
        normal load path; an unreadable blob is dropped (leaving the
        entry absent, exactly like a corrupt on-disk entry) and ``False``
        is returned so the caller falls back to building locally.
        """
        path = self.plan_path(key)
        wrote = self._atomic_write(
            path, lambda tmp: Path(tmp).write_bytes(blob)
        )
        if not wrote:
            return False
        probe = self.load_plan(key)
        if probe is None:
            return False  # load_plan already dropped the bad entry
        # The probe load bumped plan_hits; the adopted entry has not
        # served a real hit yet, so take it back.
        self.counters["plan_hits"] -= 1
        self.counters["plan_adopted"] = self.counters.get("plan_adopted", 0) + 1
        return True

    def iter_plans(self):
        """Yield ``(path, meta)`` for every stored plan (for ``corpus gc``).

        Unreadable entries are dropped on the way through, matching the
        corruption tolerance of the load path.
        """
        import numpy as np

        if not self.plans_dir.is_dir():
            return
        for path in sorted(self.plans_dir.rglob("*.npz")):
            try:
                with np.load(str(path)) as npz:
                    meta = json.loads(str(npz["__meta__"]))
            except Exception:
                self._drop(path)
                continue
            yield path, meta

    # -- observability artifacts --------------------------------------------

    def load_obs(self, key: str) -> Optional[dict]:
        """Fetch a stored observation dump, or ``None`` on miss/corruption."""
        path = self.obs_path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except Exception:
            self._drop(path)
            return None

    def store_obs(self, key: str, payload: dict) -> None:
        """Store an observation dump (JSON) under the result's key."""
        text = json.dumps(payload, sort_keys=True)
        self._atomic_write(
            self.obs_path(key), lambda tmp: Path(tmp).write_text(text)
        )

    # -- maintenance --------------------------------------------------------

    def _iter_entries(self, tier: str):
        """Yield ``(path, stat)`` for every entry of *tier*, sweeping
        abandoned write state on the way through.

        ``.lock`` sentinels older than :data:`STALE_LOCK_SECONDS` and
        orphaned ``.tmp-*`` spill files are removed here — the write
        path only breaks a stale lock when the *same key* is written
        again, so without this sweep a killed writer's sentinel for a
        never-rewritten key would linger forever. Fresh locks (a writer
        may be live) are left alone, as are the temp files next to them.
        """
        tier_root = self.tier_dir(tier)
        if not tier_root.is_dir():
            return
        now = time.time()
        for path in sorted(tier_root.rglob("*")):
            if not path.is_file():
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent eviction/writer
            age = max(0.0, now - stat.st_mtime)
            if path.name.endswith(".lock") or path.name.startswith(".tmp-"):
                if age > STALE_LOCK_SECONDS:
                    self._drop(path)
                    self.counters["locks_swept"] = (
                        self.counters.get("locks_swept", 0) + 1
                    )
                continue
            yield path, stat

    def tier_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier entry counts and byte sizes (``repro-sim cache stats``).

        Returns ``{tier: {"entries": n, "bytes": b}}`` for every member
        of :data:`TIERS` plus a ``"total"`` rollup. Stale ``.lock``
        sentinels and orphaned temp files encountered during the walk
        are swept (see :meth:`_iter_entries`); the count removed is
        reported under ``counters["locks_swept"]``.
        """
        stats: Dict[str, Dict[str, int]] = {}
        total_entries = total_bytes = 0
        for tier in TIERS:
            entries = size = 0
            for _path, stat in self._iter_entries(tier):
                entries += 1
                size += stat.st_size
            stats[tier] = {"entries": entries, "bytes": size}
            total_entries += entries
            total_bytes += size
        stats["total"] = {"entries": total_entries, "bytes": total_bytes}
        return stats

    def prune(
        self, max_bytes: int, tiers: Optional[Sequence[str]] = None
    ) -> Dict[str, int]:
        """Evict least-recently-used entries until the store fits *max_bytes*.

        Recency is the entry's mtime, which loads refresh on every hit
        (:meth:`_touch`), so a hot entry survives a prune that removes a
        colder but newer one. Only the named *tiers* (default: all) are
        measured and evicted. Entries guarded by a fresh ``.lock`` are
        skipped — a live writer owns them. Returns eviction counters:
        ``{"evicted": n, "evicted_bytes": b, "kept": n, "kept_bytes": b}``.
        """
        chosen = list(tiers) if tiers is not None else list(TIERS)
        entries = []
        for tier in chosen:
            entries.extend(self._iter_entries(tier))
        total = sum(stat.st_size for _p, stat in entries)
        evicted = evicted_bytes = 0
        if total > max_bytes:
            entries.sort(key=lambda item: (item[1].st_mtime, str(item[0])))
            for path, stat in entries:
                if total - evicted_bytes <= max_bytes:
                    break
                lock = lock_path(path)
                if lock.exists():
                    try:
                        if time.time() - lock.stat().st_mtime < STALE_LOCK_SECONDS:
                            continue  # live writer: not ours to evict
                    except OSError:
                        pass
                self._drop(path)
                evicted += 1
                evicted_bytes += stat.st_size
        self.counters["evicted"] = self.counters.get("evicted", 0) + evicted
        self.counters["evicted_bytes"] = (
            self.counters.get("evicted_bytes", 0) + evicted_bytes
        )
        return {
            "evicted": evicted,
            "evicted_bytes": evicted_bytes,
            "kept": len(entries) - evicted,
            "kept_bytes": total - evicted_bytes,
        }

    def clear(self) -> None:
        """Remove every cached entry, including stale schema versions."""
        shutil.rmtree(self.root, ignore_errors=True)

    def snapshot(self) -> Dict[str, int]:
        """Copy of the hit/miss counters (for timing harnesses)."""
        return dict(self.counters)
