"""Persistent on-disk cache for simulation results and synthesized traces.

Layout (everything under one root, default ``~/.cache/repro-btb``,
overridable via ``REPRO_CACHE_DIR``)::

    <root>/v<SCHEMA>/results/<sha256>.json   SimResult payloads
    <root>/v<SCHEMA>/traces/<sha256>.npz     Trace columns (compressed)
    <root>/v<SCHEMA>/plans/<sha256>.npz      batch plans (columnar trace
                                             derivations + per-geometry
                                             predictor outcomes consumed
                                             by the batched kernels; a
                                             ``__meta__`` JSON member
                                             records provenance for
                                             ``corpus gc``)
    <root>/v<SCHEMA>/obs/<sha256>.json       observability artifacts
                                             (repro.obs observation dumps,
                                             stored alongside the result
                                             under the same key)

Writes are atomic (temp file + ``os.replace``), so a crashed or killed
run never leaves a half-written entry behind. Concurrent sweeps sharing
one cache are additionally serialized per key with a ``.lock`` sentinel
(created ``O_CREAT|O_EXCL``): a second process finding a fresh lock for
the same key simply skips its write — entries are content-addressed, so
the concurrent writer is producing identical bytes. A stale lock (left
by a killed writer, older than :data:`STALE_LOCK_SECONDS`) is broken
and reclaimed. Reads are corruption tolerant: any unreadable entry is
deleted and treated as a miss — the engine recomputes instead of
crashing.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from repro.core.exec.cachekey import CACHE_SCHEMA
from repro.core.simulator import SimResult
from repro.trace.trace import Trace

#: Environment variable overriding the cache root directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default cache root (expanded at construction time).
DEFAULT_CACHE_DIR = "~/.cache/repro-btb"

#: Age (seconds) past which a ``.lock`` sentinel is presumed abandoned
#: by a killed writer and may be broken by the next one.
STALE_LOCK_SECONDS = 60.0


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-btb``."""
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR).expanduser()


# -- shared write discipline -------------------------------------------------
#
# The ``.lock``-sentinel + temp-file + ``os.replace`` protocol below is
# used by every on-disk store in the repo (this cache, and the trace
# corpus of :mod:`repro.corpus`): writes are atomic, concurrent writers
# of the same content-addressed entry are serialized per key, and a lock
# abandoned by a killed writer is broken after :data:`STALE_LOCK_SECONDS`.


def lock_path(path: Path) -> Path:
    """The per-key write-lock sentinel guarding *path*."""
    return path.with_name(path.name + ".lock")


def drop_file(path: Path) -> None:
    """Best-effort unlink (missing files and races are fine)."""
    try:
        path.unlink()
    except OSError:
        pass


def acquire_lock(path: Path, stale_after: float = STALE_LOCK_SECONDS) -> bool:
    """Take the write lock for *path*; ``False`` when another writer holds
    a fresh one (for content-addressed entries its write is identical)."""
    lock = lock_path(path)
    for _ in range(2):
        try:
            fd = os.open(str(lock), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = max(0.0, time.time() - lock.stat().st_mtime)
            except OSError:
                continue  # lock vanished between open and stat: retry
            if age < stale_after:
                return False
            drop_file(lock)  # abandoned by a killed writer: break it
            continue
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        return True
    return False


def release_lock(path: Path) -> None:
    """Release the write lock for *path* (idempotent)."""
    drop_file(lock_path(path))


def atomic_write(path: Path, writer) -> bool:
    """Write via *writer(tmp_path)* then atomically rename into place.

    Guarded by the per-key lock sentinel: returns ``False`` (without
    writing) when a concurrent writer already holds the key.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    if not acquire_lock(path):
        return False
    try:
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=path.suffix
        )
        os.close(fd)
        try:
            writer(tmp)
            os.replace(tmp, path)
        except BaseException:
            drop_file(Path(tmp))
            raise
    finally:
        release_lock(path)
    return True


class DiskCache:
    """Content-addressed result/trace store with hit/miss counters."""

    def __init__(self, root=None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self.version_dir = self.root / f"v{CACHE_SCHEMA}"
        self.results_dir = self.version_dir / "results"
        self.traces_dir = self.version_dir / "traces"
        self.plans_dir = self.version_dir / "plans"
        self.obs_dir = self.version_dir / "obs"
        self.counters: Dict[str, int] = {
            "result_hits": 0,
            "result_misses": 0,
            "trace_hits": 0,
            "trace_misses": 0,
            "plan_hits": 0,
            "plan_misses": 0,
            "lock_skips": 0,
        }

    # -- paths / plumbing ---------------------------------------------------

    def result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    def trace_path(self, key: str) -> Path:
        return self.traces_dir / f"{key}.npz"

    def plan_path(self, key: str) -> Path:
        return self.plans_dir / f"{key}.npz"

    def obs_path(self, key: str) -> Path:
        return self.obs_dir / f"{key}.json"

    @staticmethod
    def lock_path(path: Path) -> Path:
        """The per-key write-lock sentinel guarding *path*."""
        return lock_path(path)

    def _acquire_lock(self, path: Path) -> bool:
        """Take the write lock for *path*; False when another writer holds
        a fresh one (its content-addressed write will be identical)."""
        return acquire_lock(path)

    def _atomic_write(self, path: Path, writer) -> bool:
        """Write via *writer(tmp_path)* then atomically rename into place.

        Guarded by the per-key lock sentinel: returns ``False`` (without
        writing) when a concurrent sweep is already writing this key.
        """
        wrote = atomic_write(path, writer)
        if not wrote:
            self.counters["lock_skips"] += 1
        return wrote

    @staticmethod
    def _drop(path: Path) -> None:
        drop_file(path)

    def merge_counters(self, other: Dict[str, int]) -> None:
        """Fold hit/miss counters from a worker process into ours."""
        for key, value in other.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)

    # -- results ------------------------------------------------------------

    def load_result(self, key: str) -> Optional[SimResult]:
        """Fetch a cached :class:`SimResult`, or ``None`` on miss.

        Corrupted or truncated entries are removed and count as misses.
        """
        path = self.result_path(key)
        try:
            payload = json.loads(path.read_text())
            result = SimResult(
                name=str(payload["name"]),
                instructions=int(payload["instructions"]),
                cycles=int(payload["cycles"]),
                stats={str(k): float(v) for k, v in payload["stats"].items()},
                structure={
                    str(k): float(v) for k, v in payload["structure"].items()
                },
            )
        except FileNotFoundError:
            self.counters["result_misses"] += 1
            return None
        except Exception:
            self._drop(path)
            self.counters["result_misses"] += 1
            return None
        self.counters["result_hits"] += 1
        return result

    def store_result(self, key: str, result: SimResult) -> None:
        payload = {
            "name": result.name,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "stats": result.stats,
            "structure": result.structure,
        }
        text = json.dumps(payload, sort_keys=True)
        self._atomic_write(
            self.result_path(key), lambda tmp: Path(tmp).write_text(text)
        )

    # -- traces -------------------------------------------------------------

    def load_trace(self, key: str) -> Optional[Trace]:
        """Fetch a cached :class:`Trace`, or ``None`` on miss/corruption."""
        path = self.trace_path(key)
        if not path.exists():
            self.counters["trace_misses"] += 1
            return None
        try:
            trace = Trace.load(str(path))
        except Exception:
            self._drop(path)
            self.counters["trace_misses"] += 1
            return None
        self.counters["trace_hits"] += 1
        return trace

    def store_trace(self, key: str, trace: Trace) -> None:
        self._atomic_write(self.trace_path(key), lambda tmp: trace.save(tmp))

    # -- batch plans --------------------------------------------------------

    def load_plan(self, key: str):
        """Fetch a cached batch plan: ``(arrays, meta)`` or ``None``.

        ``arrays`` maps payload column names to numpy arrays; ``meta`` is
        the provenance dict stored with the entry. Corrupted entries are
        removed and count as misses.
        """
        import numpy as np

        path = self.plan_path(key)
        if not path.exists():
            self.counters["plan_misses"] += 1
            return None
        try:
            with np.load(str(path)) as npz:
                meta = json.loads(str(npz["__meta__"]))
                arrays = {
                    name: npz[name]
                    for name in npz.files
                    if name != "__meta__"
                }
        except Exception:
            self._drop(path)
            self.counters["plan_misses"] += 1
            return None
        self.counters["plan_hits"] += 1
        return arrays, meta

    def store_plan(self, key: str, arrays: Dict, meta: Dict) -> None:
        """Store a batch-plan payload (compressed npz) with provenance."""
        import numpy as np

        payload = dict(arrays)
        payload["__meta__"] = np.array(json.dumps(meta, sort_keys=True))

        def write(tmp: str) -> None:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **payload)

        self._atomic_write(self.plan_path(key), write)

    def iter_plans(self):
        """Yield ``(path, meta)`` for every stored plan (for ``corpus gc``).

        Unreadable entries are dropped on the way through, matching the
        corruption tolerance of the load path.
        """
        import numpy as np

        if not self.plans_dir.is_dir():
            return
        for path in sorted(self.plans_dir.glob("*.npz")):
            try:
                with np.load(str(path)) as npz:
                    meta = json.loads(str(npz["__meta__"]))
            except Exception:
                self._drop(path)
                continue
            yield path, meta

    # -- observability artifacts --------------------------------------------

    def load_obs(self, key: str) -> Optional[dict]:
        """Fetch a stored observation dump, or ``None`` on miss/corruption."""
        path = self.obs_path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except Exception:
            self._drop(path)
            return None

    def store_obs(self, key: str, payload: dict) -> None:
        """Store an observation dump (JSON) under the result's key."""
        text = json.dumps(payload, sort_keys=True)
        self._atomic_write(
            self.obs_path(key), lambda tmp: Path(tmp).write_text(text)
        )

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Remove every cached entry, including stale schema versions."""
        shutil.rmtree(self.root, ignore_errors=True)

    def snapshot(self) -> Dict[str, int]:
        """Copy of the hit/miss counters (for timing harnesses)."""
        return dict(self.counters)
