"""Sweep execution engine: cached point execution and a process pool.

The unit of work is a :class:`SweepPoint` — one independent
(config, workload, length, warmup, seed) simulation, exactly the
parallelism grain of the paper's ChampSim campaigns. Three layers:

* :func:`execute_point` runs one point, consulting the persistent disk
  cache (results *and* synthesized traces) when one is configured;
* :func:`run_points` fans a list of points across ``multiprocessing``
  workers. Points are chunked so that points sharing a trace land in the
  same chunk (each worker synthesizes/loads the trace once) and results
  are reassembled by original index, so parallel output is bit-identical
  to serial, in the same order;
* :func:`configure_disk_cache` / :func:`get_disk_cache` manage the
  process-wide persistent cache (enabled explicitly, or via the
  ``REPRO_DISK_CACHE`` environment variable).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, build_simulator
from repro.core.exec.cachekey import result_key, trace_key
from repro.core.exec.diskcache import DiskCache
from repro.core.simulator import SimResult
from repro.obs.observer import ObsSpec, Observer
from repro.trace.workloads import WORKLOAD_SPECS, get_trace

#: Set to ``1``/``true`` (enable, default root) or a directory path to
#: enable the persistent cache without touching code.
ENV_DISK_CACHE = "REPRO_DISK_CACHE"

_disk_cache: Optional[DiskCache] = None
_disk_cache_configured = False

#: In-process memo of traces loaded from the disk cache (or synthesized),
#: keyed by (workload, length, seed). ``workloads.get_trace`` memoizes
#: synthesis; this additionally memoizes disk loads.
_trace_memo: Dict[Tuple[str, int, int], object] = {}


def configure_disk_cache(
    enabled: bool = True, root=None
) -> Optional[DiskCache]:
    """Install (or disable) the process-wide persistent cache.

    Returns the active :class:`DiskCache`, or ``None`` when disabled.
    """
    global _disk_cache, _disk_cache_configured
    _disk_cache = DiskCache(root) if enabled else None
    _disk_cache_configured = True
    _trace_memo.clear()
    return _disk_cache


def env_cache_root() -> Optional[str]:
    """The directory ``REPRO_DISK_CACHE`` names, if it names one (the
    variable also accepts plain on/off values like ``1``/``0``)."""
    env = os.environ.get(ENV_DISK_CACHE, "").strip()
    if env and env != "0" and env.lower() not in ("1", "true", "false", "yes"):
        return env
    return None


def get_disk_cache() -> Optional[DiskCache]:
    """The active persistent cache, resolving ``REPRO_DISK_CACHE`` lazily."""
    global _disk_cache, _disk_cache_configured
    if not _disk_cache_configured:
        env = os.environ.get(ENV_DISK_CACHE, "").strip()
        if env and env != "0" and env.lower() != "false":
            _disk_cache = DiskCache(env_cache_root())
        else:
            _disk_cache = None
        _disk_cache_configured = True
    return _disk_cache


def clear_trace_memo() -> None:
    """Drop the in-process trace memo (tests use this for isolation)."""
    _trace_memo.clear()


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation: the unit of sweep parallelism.

    ``obs`` optionally requests observability (event trace + interval
    metrics, see :mod:`repro.obs`) for this point. Observation never
    changes simulated behaviour, so it is deliberately **excluded from
    the cache key**: the artifact is stored next to the cached result
    (``DiskCache.store_obs``) under the same key, and a cached result
    satisfies an observed point only if its artifact is present too.
    """

    config: MachineConfig
    workload: str
    length: int
    warmup: int
    seed: int = 7
    obs: Optional[ObsSpec] = None


def point_key(point: SweepPoint) -> str:
    """Persistent-cache key of *point* (content hash, schema-versioned).

    ``point.obs`` is intentionally not hashed — see :class:`SweepPoint`.
    """
    return result_key(
        point.config,
        point.workload,
        WORKLOAD_SPECS.get(point.workload),
        point.length,
        point.warmup,
        point.seed,
    )


def fetch_trace(workload: str, length: int, seed: int):
    """Trace for *workload*, via memo -> disk cache -> synthesis."""
    memo_key = (workload, length, seed)
    trace = _trace_memo.get(memo_key)
    if trace is not None:
        return trace
    disk = get_disk_cache()
    spec = WORKLOAD_SPECS.get(workload)
    if disk is not None and spec is not None:
        key = trace_key(workload, spec, length, seed)
        trace = disk.load_trace(key)
        if trace is None:
            trace = get_trace(workload, length, seed)
            disk.store_trace(key, trace)
    else:
        trace = get_trace(workload, length, seed)
    _trace_memo[memo_key] = trace
    return trace


def execute_point(point: SweepPoint) -> SimResult:
    """Simulate one point, going through the persistent cache if enabled.

    When ``point.obs`` is set, the run is instrumented and the resulting
    observation dump is stored alongside the cached result; a prior
    cached result only short-circuits the run if its observation
    artifact already exists (otherwise the point is re-simulated to
    produce it — observation does not perturb results, so the refreshed
    result is identical).
    """
    disk = get_disk_cache()
    key = None
    if disk is not None:
        key = point_key(point)
        hit = disk.load_result(key)
        if hit is not None and (
            point.obs is None or disk.obs_path(key).exists()
        ):
            return hit
    trace = fetch_trace(point.workload, point.length, point.seed)
    probe = None
    if point.obs is not None:
        probe = Observer.from_spec(
            point.obs,
            meta={"config": point.config.label, "workload": point.workload},
        )
    sim = build_simulator(point.config, trace, probe=probe)
    result = sim.run(warmup=point.warmup)
    if disk is not None:
        disk.store_result(key, result)
        if probe is not None:
            from repro.obs.export import observation_to_json

            disk.store_obs(key, observation_to_json(probe.observation()))
    return result


# -- process-pool fan-out ---------------------------------------------------


def _worker_run_chunk(payload):
    """Run one chunk of (index, point) pairs in a worker process.

    The worker reconfigures its own disk cache from the shipped root so
    behaviour is identical under fork and spawn start methods. Returns
    the indexed results plus the worker's cache counters, which the
    parent folds back into its own.
    """
    cache_root, chunk = payload
    disk = configure_disk_cache(enabled=cache_root is not None, root=cache_root)
    pairs = [(index, execute_point(point)) for index, point in chunk]
    counters = disk.snapshot() if disk is not None else {}
    return pairs, counters


def _chunk_points(
    points: Sequence[SweepPoint], jobs: int
) -> List[List[Tuple[int, SweepPoint]]]:
    """Chunk points for the pool, grouping shared-trace points together.

    Points are bucketed by (workload, length, seed) so a worker reuses
    one synthesized trace across its whole chunk; chunks are bounded so
    the pool stays load-balanced even when one workload dominates.
    """
    order = sorted(
        range(len(points)),
        key=lambda i: (points[i].workload, points[i].length, points[i].seed, i),
    )
    bound = max(1, ceil(len(points) / (jobs * 4)))
    chunks: List[List[Tuple[int, SweepPoint]]] = []
    current: List[Tuple[int, SweepPoint]] = []
    current_group = None
    for i in order:
        point = points[i]
        group = (point.workload, point.length, point.seed)
        if current and (group != current_group or len(current) >= bound):
            chunks.append(current)
            current = []
        current_group = group
        current.append((i, point))
    if current:
        chunks.append(current)
    return chunks


def run_points(points: Sequence[SweepPoint], jobs: int = 1) -> List[SimResult]:
    """Execute every point; results are positionally ordered like *points*.

    ``jobs=1`` runs serially in-process. ``jobs>1`` fans chunks across a
    process pool; because each point is an independent deterministic
    simulation and results are reassembled by index, the output is
    bit-identical to the serial run.
    """
    points = list(points)
    jobs = max(1, int(jobs))
    if jobs == 1 or len(points) <= 1:
        return [execute_point(point) for point in points]
    chunks = _chunk_points(points, jobs)
    disk = get_disk_cache()
    cache_root = str(disk.root) if disk is not None else None
    payloads = [(cache_root, chunk) for chunk in chunks]
    out: List[Optional[SimResult]] = [None] * len(points)
    with multiprocessing.get_context().Pool(
        processes=min(jobs, len(chunks))
    ) as pool:
        for pairs, counters in pool.imap_unordered(_worker_run_chunk, payloads):
            if disk is not None:
                disk.merge_counters(counters)
            for index, result in pairs:
                out[index] = result
    return out
