"""Sweep execution engine: cached point execution and a resilient pool.

The unit of work is a :class:`SweepPoint` — one independent
(config, workload, length, warmup, seed) simulation, exactly the
parallelism grain of the paper's ChampSim campaigns. Three layers:

* :func:`execute_point` runs one point, consulting the persistent disk
  cache (results *and* synthesized traces) when one is configured;
* :func:`run_points` fans a list of points across a pool of persistent
  ``multiprocessing`` workers (one process serves many chunks, so warm
  state — trace memo, compiled kernels — is paid for once per worker).
  Points are chunked so that points sharing a trace land in the same
  chunk, chunks are dispatched with trace affinity (a worker keeps
  getting groups it has already loaded; concurrent workers warm
  *different* traces), and results are reassembled by original index,
  so parallel output is bit-identical to serial, in the same order. Sweeps degrade gracefully instead of
  aborting (see :mod:`repro.core.exec.resilience` and
  ``docs/robustness.md``): workers stream per-point outcomes back over a
  pipe and catch per-point exceptions, the parent detects crashed or
  hung workers, pinpoints the poison point (the first unreported one in
  the chunk), and re-dispatches it alone with exponential backoff up to
  ``RetryPolicy.max_retries``; ``strict=False`` returns partial results
  plus classified failures instead of raising, and a
  :class:`~repro.core.exec.resilience.SweepJournal` checkpoint lets an
  interrupted sweep resume with only its unfinished points;
* :func:`configure_disk_cache` / :func:`get_disk_cache` manage the
  process-wide persistent cache (enabled explicitly, or via the
  ``REPRO_DISK_CACHE`` environment variable).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from math import ceil
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import MachineConfig, build_simulator
from repro.core.exec.cachekey import CACHE_SCHEMA, digest, result_key, trace_key
from repro.core.exec.diskcache import DiskCache
from repro.core.exec.faults import InjectedCacheCorruption, maybe_fault
from repro.core.exec.resilience import (
    DEADLINE_MESSAGE,
    DEFAULT_POLICY,
    PointError,
    PointOutcome,
    RetryPolicy,
    SweepError,
    SweepJournal,
    SweepReport,
)
from repro.core.simulator import SimResult
from repro.obs.observer import ObsSpec, Observer
from repro.trace.workloads import WORKLOAD_SPECS, get_trace

#: Workload names with this prefix resolve to ingested corpus traces
#: (see :mod:`repro.corpus.resolve`; imported lazily — the corpus
#: package reuses this package's disk-cache write discipline, so a
#: top-level import here would be circular).
CORPUS_PREFIX = "corpus:"


def _corpus_resolve():
    from repro.corpus import resolve

    return resolve

#: Set to ``1``/``true`` (enable, default root) or a directory path to
#: enable the persistent cache without touching code.
ENV_DISK_CACHE = "REPRO_DISK_CACHE"

_disk_cache: Optional[DiskCache] = None
_disk_cache_configured = False

#: In-process memo of traces loaded from the disk cache (or synthesized),
#: keyed by (workload, length, seed). ``workloads.get_trace`` memoizes
#: synthesis; this additionally memoizes disk loads.
_trace_memo: Dict[Tuple[str, int, int], object] = {}

#: In-process memo of batch plans (columnar derivations + predictor
#: replay consumed by batched kernels), keyed by
#: (workload, length, seed, PredictorGeometry). Chunk dispatch groups
#: points by trace, so a warm worker amortizes one plan across every
#: config of a geometry family, exactly like the trace memo.
_plan_memo: Dict[Tuple, object] = {}


def configure_disk_cache(
    enabled: bool = True, root=None, shard: Optional[bool] = None
) -> Optional[DiskCache]:
    """Install (or disable) the process-wide persistent cache.

    *shard* opts the store into the 256-way directory layout (``None``
    defers to ``REPRO_CACHE_SHARDS``; the service daemon shards by
    default). Returns the active :class:`DiskCache`, or ``None`` when
    disabled.
    """
    global _disk_cache, _disk_cache_configured
    _disk_cache = DiskCache(root, shard=shard) if enabled else None
    _disk_cache_configured = True
    _trace_memo.clear()
    _plan_memo.clear()
    return _disk_cache


def env_cache_root() -> Optional[str]:
    """The directory ``REPRO_DISK_CACHE`` names, if it names one (the
    variable also accepts plain on/off values like ``1``/``0``)."""
    env = os.environ.get(ENV_DISK_CACHE, "").strip()
    if env and env != "0" and env.lower() not in ("1", "true", "false", "yes"):
        return env
    return None


def get_disk_cache() -> Optional[DiskCache]:
    """The active persistent cache, resolving ``REPRO_DISK_CACHE`` lazily."""
    global _disk_cache, _disk_cache_configured
    if not _disk_cache_configured:
        env = os.environ.get(ENV_DISK_CACHE, "").strip()
        if env and env != "0" and env.lower() != "false":
            _disk_cache = DiskCache(env_cache_root())
        else:
            _disk_cache = None
        _disk_cache_configured = True
    return _disk_cache


def clear_trace_memo() -> None:
    """Drop the in-process trace memo (tests use this for isolation)."""
    _trace_memo.clear()


def clear_plan_memo() -> None:
    """Drop the in-process batch-plan memo (tests use this for isolation)."""
    _plan_memo.clear()


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation: the unit of sweep parallelism.

    ``obs`` optionally requests observability (event trace + interval
    metrics, see :mod:`repro.obs`) for this point. Observation never
    changes simulated behaviour, so it is deliberately **excluded from
    the cache key**: the artifact is stored next to the cached result
    (``DiskCache.store_obs``) under the same key, and a cached result
    satisfies an observed point only if its artifact is present too.
    """

    config: MachineConfig
    workload: str
    length: int
    warmup: int
    seed: int = 7
    obs: Optional[ObsSpec] = None


def point_key(point: SweepPoint) -> str:
    """Persistent-cache key of *point* (content hash, schema-versioned).

    For ``corpus:`` workloads the spec is the ingested trace's content
    hash plus the canonical slice spec
    (:func:`repro.corpus.resolve.corpus_point_spec`), so re-ingesting
    identical content keeps cached results valid while changed content
    invalidates them. ``point.obs`` is intentionally not hashed — see
    :class:`SweepPoint`.
    """
    spec = WORKLOAD_SPECS.get(point.workload)
    if spec is None and point.workload.startswith(CORPUS_PREFIX):
        spec = _corpus_resolve().corpus_point_spec(point.workload)
    return result_key(
        point.config,
        point.workload,
        spec,
        point.length,
        point.warmup,
        point.seed,
    )


def fetch_trace(workload: str, length: int, seed: int):
    """Trace for *workload*, via memo -> disk cache -> synthesis.

    ``corpus:`` workloads materialize from the corpus store instead
    (truncated to *length*; *seed* is irrelevant to a recorded trace) —
    they already live on disk in sharded form, so they bypass the disk
    cache's trace tier.
    """
    memo_key = (workload, length, seed)
    trace = _trace_memo.get(memo_key)
    if trace is not None:
        return trace
    if workload.startswith(CORPUS_PREFIX):
        trace = _corpus_resolve().load_corpus_trace(workload, length)
        _trace_memo[memo_key] = trace
        return trace
    disk = get_disk_cache()
    spec = WORKLOAD_SPECS.get(workload)
    if disk is not None and spec is not None:
        key = trace_key(workload, spec, length, seed)
        trace = disk.load_trace(key)
        if trace is None:
            trace = get_trace(workload, length, seed)
            disk.store_trace(key, trace)
    else:
        trace = get_trace(workload, length, seed)
    _trace_memo[memo_key] = trace
    return trace


def plan_key(point: SweepPoint, geometry) -> str:
    """Persistent-cache key of the batch plan *point* consumes.

    Content-addressed exactly like :func:`point_key` but per
    (trace identity, predictor geometry) instead of per config — every
    config of one geometry family shares the entry.
    """
    from repro.trace.columnar import COLUMNAR_SCHEMA

    spec = WORKLOAD_SPECS.get(point.workload)
    if spec is None and point.workload.startswith(CORPUS_PREFIX):
        spec = _corpus_resolve().corpus_point_spec(point.workload)
    return digest(
        {
            "kind": "plan",
            "schema": [CACHE_SCHEMA, COLUMNAR_SCHEMA],
            "workload": point.workload,
            "spec": spec,
            "length": point.length,
            "seed": point.seed,
            "geometry": geometry.key_fields(),
        }
    )


#: Optional hook for pulling batch plans from a remote store: a callable
#: ``key -> Optional[bytes]`` returning raw ``.npz`` bytes (or ``None``).
#: The dist worker installs one pointing at its coordinator, so a cold
#: worker reuses plans the fleet already built instead of re-deriving
#: them. Consulted only after a disk miss; a failed fetch falls back to
#: the local build, so it can never change results.
_remote_plan_fetcher: Optional[Callable[[str], Optional[bytes]]] = None


def set_remote_plan_fetcher(
    fetcher: Optional[Callable[[str], Optional[bytes]]]
) -> None:
    """Install (or clear, with ``None``) the remote batch-plan fetcher."""
    global _remote_plan_fetcher
    _remote_plan_fetcher = fetcher


def fetch_batch_plan(point: SweepPoint, trace):
    """Batch plan for *point*, via memo -> disk cache -> remote -> build.

    The stored entry's ``__meta__`` carries a ``source`` marker —
    ``"synth"`` for synthetic workloads, the corpus content hash for
    ``corpus:`` ones — so ``repro-sim corpus gc`` can prune plans whose
    backing corpus entry is gone.
    """
    from repro.core.passes.kernel import batch_geometry
    from repro.trace.columnar import BatchPlan, build_batch_plan

    geometry = batch_geometry(point.config)
    memo_key = (point.workload, point.length, point.seed, geometry)
    plan = _plan_memo.get(memo_key)
    if plan is not None:
        return plan
    disk = get_disk_cache()
    key = plan_key(point, geometry) if disk is not None else None
    if disk is not None:
        hit = disk.load_plan(key)
        if hit is not None:
            arrays, _meta = hit
            try:
                plan = BatchPlan.from_payload(geometry, arrays)
            except Exception:
                plan = None  # missing columns: rebuild below
        if plan is not None and len(plan.line_ix) == len(trace):
            _plan_memo[memo_key] = plan
            return plan
        plan = None
    if disk is not None and _remote_plan_fetcher is not None:
        # Remote tier between the disk cache and a local build: adopt
        # the fetched bytes into the disk cache, then load through the
        # normal (corruption-tolerant) path.
        blob = _remote_plan_fetcher(key)
        if blob and disk.adopt_plan(key, blob):
            hit = disk.load_plan(key)
            if hit is not None:
                arrays, _meta = hit
                try:
                    plan = BatchPlan.from_payload(geometry, arrays)
                except Exception:
                    plan = None
            if plan is not None and len(plan.line_ix) == len(trace):
                _plan_memo[memo_key] = plan
                return plan
            plan = None
    plan = build_batch_plan(trace, geometry)
    if disk is not None:
        source = "synth"
        if point.workload.startswith(CORPUS_PREFIX):
            spec = _corpus_resolve().corpus_point_spec(point.workload)
            source = spec["content"]
        meta = {
            "workload": point.workload,
            "length": point.length,
            "seed": point.seed,
            "geometry": geometry.key_fields(),
            "source": source,
        }
        disk.store_plan(key, plan.payload(), meta)
    _plan_memo[memo_key] = plan
    return plan


def execute_point(point: SweepPoint) -> SimResult:
    """Simulate one point, going through the persistent cache if enabled.

    When ``point.obs`` is set, the run is instrumented and the resulting
    observation dump is stored alongside the cached result; a prior
    cached result only short-circuits the run if its observation
    artifact already exists (otherwise the point is re-simulated to
    produce it — observation does not perturb results, so the refreshed
    result is identical).
    """
    disk = get_disk_cache()
    key = None
    if disk is not None:
        key = point_key(point)
        hit = disk.load_result(key)
        if hit is not None and (
            point.obs is None or disk.obs_path(key).exists()
        ):
            return hit
    trace = fetch_trace(point.workload, point.length, point.seed)
    probe = None
    if point.obs is not None:
        probe = Observer.from_spec(
            point.obs,
            meta={"config": point.config.label, "workload": point.workload},
        )
    sim = build_simulator(point.config, trace, probe=probe)
    bplan = None
    if sim.kernel_engine() == "batched":
        # Batched points consume the shared per-(trace, geometry) plan;
        # the plan fetch is memoized, so a warm worker builds it once
        # for every config of the family.
        bplan = fetch_batch_plan(point, trace)
    result = sim.run(warmup=point.warmup, batch_plan=bplan)
    if disk is not None:
        disk.store_result(key, result)
        if probe is not None:
            from repro.obs.export import observation_to_json

            disk.store_obs(key, observation_to_json(probe.observation()))
    return result


# -- resilient process fan-out ----------------------------------------------


def _attempt_once(point: SweepPoint) -> SimResult:
    """One execution attempt, with fault injection hooked in front.

    ``maybe_fault`` is a no-op single env lookup unless
    ``REPRO_FAULT_SPEC`` is set, so the hot path is unchanged.
    """
    maybe_fault(point)
    return execute_point(point)


def _classify_exception(exc: BaseException) -> str:
    """Map a worker-side exception onto the PointError taxonomy."""
    return (
        "cache-corrupt" if isinstance(exc, InjectedCacheCorruption) else "exception"
    )


def _worker_main(conn, cache_root, cache_shard: bool = False) -> None:
    """Persistent worker loop: run chunks until told to shut down.

    The worker reconfigures its own disk cache from the shipped root so
    behaviour is identical under fork and spawn start methods, then
    blocks on the pipe for chunk jobs ``(pairs, timeout)``. A ``None``
    job (or pipe EOF) is a clean shutdown. Keeping the process alive
    across chunks is what makes parallel cold sweeps win: the in-process
    trace memo and the compiled-kernel cache are warmed once per
    *worker*, not once per *chunk*.

    For each chunk the worker streams one message per point back:

    * ``("ok", index, result, seconds, counters)`` — point succeeded;
    * ``("err", index, kind, message, traceback, counters)`` — the point
      raised; the worker keeps going through the rest of its chunk, so
      one poison point never takes down its chunk-mates;
    * ``("defer", index, counters)`` — the chunk's soft wall-clock
      budget ran out before this point started; the parent re-dispatches
      it in a fresh chunk (no blame, no attempt consumed);
    * ``("done", counters)`` — chunk finished; the worker is idle again
      and can be handed its next chunk.

    Every message carries a cumulative counter snapshot: if the process
    is killed mid-chunk the parent still folds in the last one seen.
    """
    disk = configure_disk_cache(
        enabled=cache_root is not None, root=cache_root, shard=cache_shard
    )
    snap = (lambda: disk.snapshot()) if disk is not None else (lambda: {})
    try:
        while True:
            try:
                job = conn.recv()
            except (EOFError, OSError):
                return
            if job is None:
                return
            pairs, timeout, deadline_remaining = job
            budget = timeout * len(pairs) if timeout is not None else None
            start = time.monotonic()
            deadline_at = (
                start + deadline_remaining
                if deadline_remaining is not None
                else None
            )
            for position, (index, point) in enumerate(pairs):
                # Hard deadline check: every point past it (first
                # included — an expired deadline guarantees nothing) is
                # handed back undone; the parent classifies it.
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    conn.send(("defer", index, snap()))
                    continue
                # Soft budget check between points: the first point
                # always runs (guaranteeing progress), later ones are
                # handed back if earlier ones consumed the chunk's
                # whole budget.
                if (
                    budget is not None
                    and position
                    and time.monotonic() - start > budget
                ):
                    conn.send(("defer", index, snap()))
                    continue
                t0 = time.monotonic()
                try:
                    result = _attempt_once(point)
                except Exception as exc:
                    conn.send(
                        (
                            "err",
                            index,
                            _classify_exception(exc),
                            f"{type(exc).__name__}: {exc}",
                            traceback_module.format_exc(),
                            snap(),
                        )
                    )
                else:
                    conn.send(("ok", index, result, time.monotonic() - t0, snap()))
            conn.send(("done", snap()))
    finally:
        try:
            conn.close()
        except Exception:
            pass


#: Default worker count for CLI sweeps when ``--jobs`` is not given.
ENV_JOBS = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None, default_auto: bool = False) -> int:
    """Normalize a job count; ``0`` auto-detects the usable CPU count.

    ``None`` (the CLI's "flag not given") consults the ``REPRO_JOBS``
    environment variable, defaulting to ``1``; an unparsable value is
    ignored. An **explicit** ``0`` always auto-detects, overriding
    ``REPRO_JOBS``. Auto-detection uses :func:`os.process_cpu_count`
    (affinity-aware, Python >= 3.13) when available, falling back to
    :func:`os.cpu_count`.

    *default_auto* flips the ``None``-and-no-env default from ``1`` to
    auto-detect. The dist worker uses it so a remote worker sizes itself
    to **its own** host: precedence there is explicit ``--jobs``, then
    the worker host's ``REPRO_JOBS``, then the worker host's CPU count —
    the coordinator's job count is never consulted (it does not travel
    over the wire).
    """
    if jobs is None:
        env = os.environ.get(ENV_JOBS, "").strip()
        try:
            jobs = int(env) if env else (0 if default_auto else 1)
        except ValueError:
            jobs = 0 if default_auto else 1
    jobs = int(jobs)
    if jobs == 0:
        probe = getattr(os, "process_cpu_count", None) or os.cpu_count
        jobs = probe() or 1
    return max(1, jobs)


def _chunk_pairs(
    pairs: Sequence[Tuple[int, SweepPoint]],
    jobs: int,
    batch: Optional[int] = None,
) -> List[List[Tuple[int, SweepPoint]]]:
    """Chunk (index, point) pairs, grouping shared-trace points together.

    Points are bucketed by (workload, length, seed) so a worker reuses
    one synthesized trace across its whole chunk; within a bucket they
    are ordered by predictor size so configs sharing a batch-plan
    geometry land adjacent (one plan build serves the run of them when
    the batched engine is active); chunks are bounded so the pool stays
    load-balanced even when one workload dominates. *batch* overrides
    the load-balancing bound with an explicit chunk size.
    """
    order = sorted(
        range(len(pairs)),
        key=lambda i: (
            pairs[i][1].workload,
            pairs[i][1].length,
            pairs[i][1].seed,
            pairs[i][1].config.bp_size_kb,
            pairs[i][0],
        ),
    )
    if batch is not None:
        bound = max(1, int(batch))
    else:
        bound = max(1, ceil(len(pairs) / (jobs * 4)))
    chunks: List[List[Tuple[int, SweepPoint]]] = []
    current: List[Tuple[int, SweepPoint]] = []
    current_group = None
    for i in order:
        index, point = pairs[i]
        group = (point.workload, point.length, point.seed)
        if current and (group != current_group or len(current) >= bound):
            chunks.append(current)
            current = []
        current_group = group
        current.append((index, point))
    if current:
        chunks.append(current)
    return chunks


def _chunk_points(
    points: Sequence[SweepPoint], jobs: int
) -> List[List[Tuple[int, SweepPoint]]]:
    """Chunk points for the pool (see :func:`_chunk_pairs`)."""
    return _chunk_pairs(list(enumerate(points)), jobs)


@dataclass
class _PendingChunk:
    chunk_id: int
    pairs: List[Tuple[int, SweepPoint]]
    not_before: float = 0.0


def _chunk_group(chunk: _PendingChunk) -> Tuple[str, int, int]:
    """The shared-trace group of a chunk (chunks never mix groups)."""
    point = chunk.pairs[0][1]
    return (point.workload, point.length, point.seed)


@dataclass
class _LiveWorker:
    """One persistent pool member. ``chunk is None`` means idle."""

    proc: multiprocessing.process.BaseProcess
    conn: object
    slot: int
    last_msg: float
    chunk: Optional[_PendingChunk] = None
    #: Shared-trace groups this worker has already loaded (dispatch
    #: affinity: keep handing it chunks whose trace it holds in memo).
    groups: Set[Tuple[str, int, int]] = field(default_factory=set)
    reported: Set[int] = field(default_factory=set)
    deferred: List[Tuple[int, SweepPoint]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    eof: bool = False
    killed: bool = False
    #: Points dispatched to this worker over its lifetime; when it
    #: crosses the recycle threshold the worker is retired after its
    #: current chunk (bounding per-process memory growth from memos).
    dispatched: int = 0
    retiring: bool = False


class _SweepState:
    """Shared bookkeeping of one resilient sweep (serial or parallel)."""

    def __init__(
        self,
        points: Sequence[SweepPoint],
        policy: RetryPolicy,
        journal: Optional[SweepJournal],
        resume: bool,
        on_outcome: Optional[Callable[[PointOutcome], None]] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.points = list(points)
        self.policy = policy
        self.journal = journal
        self.on_outcome = on_outcome
        #: Absolute ``time.monotonic()`` instant past which no further
        #: point may start (and running points are killed): the sweep's
        #: hard deadline, propagated by the service daemon from
        #: per-request deadlines. ``None`` disables it.
        self.deadline = deadline
        self.report = SweepReport()
        self.report.bump("points", len(self.points))
        self.attempts: Dict[int, int] = {}
        self.outcomes: Dict[int, PointOutcome] = {}
        self.t0 = time.monotonic()
        self.pairs = self._resume_filter(resume)

    def now(self) -> float:
        return time.monotonic() - self.t0

    def deadline_expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def deadline_remaining(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` when unbounded)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def _notify(self, index: int) -> None:
        """Stream one *final* outcome to the submission hook.

        The hook serves live progress consumers (the ``repro-sim serve``
        daemon streams these into job event feeds), so it must never be
        able to poison the sweep: exceptions are swallowed.
        """
        if self.on_outcome is None:
            return
        try:
            self.on_outcome(self.outcomes[index])
        except Exception:
            pass

    def _resume_filter(self, resume: bool) -> List[Tuple[int, SweepPoint]]:
        """Skip journaled points whose cached result still loads."""
        pairs = list(enumerate(self.points))
        if not resume or self.journal is None:
            return pairs
        done = self.journal.completed()
        if not done:
            return pairs
        disk = get_disk_cache()
        remaining: List[Tuple[int, SweepPoint]] = []
        for index, point in pairs:
            key = point_key(point)
            if key in done and disk is not None:
                result = disk.load_result(key)
                if result is not None:
                    self.outcomes[index] = PointOutcome(
                        index=index, point=point, result=result, resumed=True
                    )
                    self.report.bump("resumed")
                    self.report.record(self.now(), "resume_skip", index=index)
                    self._notify(index)
                    continue
                # Journal says done but the artifact is unreadable:
                # classified cache-corrupt, transparently re-run.
                self.report.bump("cache_corrupt")
                self.report.record(self.now(), "cache_corrupt", index=index)
            remaining.append((index, point))
        return remaining

    def point_succeeded(
        self, index: int, point: SweepPoint, result: SimResult, duration: float
    ) -> None:
        self.attempts[index] = self.attempts.get(index, 0) + 1
        self.outcomes[index] = PointOutcome(
            index=index,
            point=point,
            result=result,
            attempts=self.attempts[index],
            duration=duration,
        )
        self.report.bump("executed")
        self.report.bump("ok")
        if self.journal is not None:
            self.journal.record(point_key(point))
        self._notify(index)

    def point_failed(
        self, index: int, point: SweepPoint, kind: str, message: str, tb: str = ""
    ) -> bool:
        """Record one failed attempt; returns True when retries remain."""
        self.attempts[index] = self.attempts.get(index, 0) + 1
        counter = {
            "exception": "exceptions",
            "timeout": "timeouts",
            "worker-crash": "worker_crashes",
            "cache-corrupt": "cache_corrupt",
        }[kind]
        self.report.bump(counter)
        if self.attempts[index] <= self.policy.max_retries:
            self.report.bump("retries")
            return True
        self.outcomes[index] = PointOutcome(
            index=index,
            point=point,
            error=PointError(
                kind=kind,
                point_key=point_key(point),
                attempts=self.attempts[index],
                message=message,
                traceback=tb,
            ),
            attempts=self.attempts[index],
        )
        self.report.bump("failed")
        self._notify(index)
        return False

    def point_deadline(self, index: int, point: SweepPoint) -> None:
        """Fail one point terminally because the sweep deadline passed.

        Never retried (more attempts cannot beat an expired deadline)
        and idempotent: a point that already has an outcome keeps it.
        """
        if index in self.outcomes:
            return
        attempts = self.attempts.get(index, 0)
        self.outcomes[index] = PointOutcome(
            index=index,
            point=point,
            error=PointError(
                kind="timeout",
                point_key=point_key(point),
                attempts=attempts,
                message=f"{DEADLINE_MESSAGE}: sweep deadline passed "
                "before this point completed",
            ),
            attempts=attempts,
        )
        self.report.bump("deadline_exceeded")
        self.report.bump("failed")
        self.report.record(self.now(), "deadline_exceeded", index=index)
        self._notify(index)

    def finish(self) -> SweepReport:
        """Assemble the positionally ordered outcome list."""
        for index, point in enumerate(self.points):
            if index not in self.outcomes:  # interrupted before completion
                self.outcomes[index] = PointOutcome(
                    index=index,
                    point=point,
                    error=PointError(
                        kind="exception",
                        point_key=point_key(point),
                        attempts=self.attempts.get(index, 0),
                        message="sweep interrupted before this point completed",
                    ),
                    attempts=self.attempts.get(index, 0),
                )
        self.report.outcomes = [
            self.outcomes[index] for index in range(len(self.points))
        ]
        return self.report


def _run_serial_resilient(state: _SweepState) -> SweepReport:
    """In-process resilient execution (``jobs=1`` with a policy/journal)."""
    policy = state.policy
    try:
        for index, point in state.pairs:
            while True:
                if state.deadline_expired():
                    # Past the deadline nothing more is dispatched —
                    # remaining points fail fast with a classified
                    # timeout instead of burning more wall-clock.
                    state.point_deadline(index, point)
                    break
                t0 = time.monotonic()
                try:
                    result = _attempt_once(point)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    kind = _classify_exception(exc)
                    retrying = state.point_failed(
                        index,
                        point,
                        kind,
                        f"{type(exc).__name__}: {exc}",
                        traceback_module.format_exc(),
                    )
                    state.report.record(
                        state.now(),
                        "point_error",
                        index=index,
                        error=kind,
                        attempt=state.attempts[index],
                        final=not retrying,
                    )
                    if not retrying:
                        break
                    delay = policy.delay(state.attempts[index])
                    state.report.record(
                        state.now(), "retry", index=index, delay=round(delay, 3)
                    )
                    time.sleep(delay)
                else:
                    state.point_succeeded(
                        index, point, result, time.monotonic() - t0
                    )
                    state.report.record(
                        state.now(),
                        "point_ok",
                        index=index,
                        attempt=state.attempts[index],
                    )
                    break
    except KeyboardInterrupt:
        state.report.interrupted = True
    return state.finish()


def _run_parallel_resilient(
    state: _SweepState,
    jobs: int,
    batch: Optional[int] = None,
    recycle: int = 0,
) -> SweepReport:
    """Process fan-out with crash/hang detection and per-point retries.

    A pool of at most *jobs* persistent workers; chunks are dispatched
    to idle workers over a duplex pipe, so one process serves many
    chunks and its warm state (trace memo, compiled kernels, imports)
    is paid for once per worker instead of once per chunk. A dead or
    hung worker is reaped or killed individually and a replacement is
    spawned on demand, so crashes still can't poison the pool. Workers
    stream per-point outcomes, so after a crash the first unreported
    point of the worker's current chunk is the one that was executing —
    it is blamed and quarantined into a singleton retry chunk while its
    chunk-mates are re-dispatched blame-free.

    *recycle* > 0 retires a worker cleanly after it has been handed that
    many points (``maxtasksperchild`` discipline: a fresh process
    replaces it on demand, bounding memo/kernel memory growth on long
    sweeps without losing counters — the retiree's final snapshot is
    folded in at reap time like any other shutdown).
    """
    policy = state.policy
    ctx = multiprocessing.get_context()
    disk = get_disk_cache()
    cache_root = str(disk.root) if disk is not None else None
    cache_shard = bool(disk.shard) if disk is not None else False
    allowance = policy.allowance()

    pending: List[_PendingChunk] = []
    next_chunk_id = 0

    def schedule(pairs, delay: float = 0.0) -> None:
        nonlocal next_chunk_id
        if not pairs:
            return
        pending.append(
            _PendingChunk(next_chunk_id, list(pairs), state.now() + delay)
        )
        next_chunk_id += 1

    for chunk_pairs in _chunk_pairs(state.pairs, jobs, batch):
        schedule(chunk_pairs)

    live: Dict[object, _LiveWorker] = {}
    free_slots = set(range(jobs))

    def spawn() -> _LiveWorker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, cache_root, cache_shard),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot = min(free_slots)
        free_slots.discard(slot)
        worker = _LiveWorker(
            proc=proc, conn=parent_conn, slot=slot, last_msg=state.now()
        )
        live[parent_conn] = worker
        return worker

    def assign(worker: _LiveWorker, chunk: _PendingChunk) -> bool:
        """Hand *chunk* to an idle worker; False if its pipe is dead."""
        try:
            worker.conn.send(
                (chunk.pairs, policy.timeout, state.deadline_remaining())
            )
        except (BrokenPipeError, OSError):
            worker.eof = True
            return False
        worker.chunk = chunk
        worker.dispatched += len(chunk.pairs)
        worker.groups.add(_chunk_group(chunk))
        worker.reported = set()
        worker.deferred = []
        worker.last_msg = state.now()
        state.report.record(
            state.now(),
            "chunk_start",
            slot=worker.slot,
            chunk=chunk.chunk_id,
            points=len(chunk.pairs),
        )
        return True

    def handle_message(worker: _LiveWorker, msg) -> None:
        tag = msg[0]
        if tag == "ok":
            _, index, result, duration, counters = msg
            worker.counters = counters
            worker.reported.add(index)
            point = dict(worker.chunk.pairs)[index]
            state.point_succeeded(index, point, result, duration)
            state.report.record(
                state.now(),
                "point_ok",
                index=index,
                slot=worker.slot,
                attempt=state.attempts[index],
            )
        elif tag == "err":
            _, index, kind, message, tb, counters = msg
            worker.counters = counters
            worker.reported.add(index)
            point = dict(worker.chunk.pairs)[index]
            retrying = state.point_failed(index, point, kind, message, tb)
            state.report.record(
                state.now(),
                "point_error",
                index=index,
                slot=worker.slot,
                error=kind,
                attempt=state.attempts[index],
                final=not retrying,
            )
            if retrying:
                delay = policy.delay(state.attempts[index])
                state.report.record(
                    state.now(), "retry", index=index, delay=round(delay, 3)
                )
                schedule([(index, point)], delay)
        elif tag == "defer":
            _, index, counters = msg
            worker.counters = counters
            worker.reported.add(index)
            worker.deferred.append((index, dict(worker.chunk.pairs)[index]))
            state.report.bump("deferred")
            state.report.record(
                state.now(), "defer", index=index, slot=worker.slot
            )
        elif tag == "done":
            worker.counters = msg[1]
            if worker.chunk is not None:
                state.report.record(
                    state.now(),
                    "chunk_end",
                    slot=worker.slot,
                    chunk=worker.chunk.chunk_id,
                )
                schedule(worker.deferred)
                worker.deferred = []
                worker.chunk = None  # idle: ready for the next chunk
                if recycle and worker.dispatched >= recycle:
                    # Retire cleanly between chunks; the reap pass folds
                    # its counters and frees the slot for a respawn.
                    worker.retiring = True
                    state.report.record(
                        state.now(),
                        "worker_retire",
                        slot=worker.slot,
                        dispatched=worker.dispatched,
                    )
                    try:
                        worker.conn.send(None)
                    except Exception:
                        worker.eof = True

    def reap(conn, worker: _LiveWorker) -> None:
        """Fold counters, blame/re-dispatch unfinished work, free the slot."""
        # Drain anything still buffered in the pipe before judging.
        while True:
            try:
                if not conn.poll():
                    break
                handle_message(worker, conn.recv())
            except (EOFError, OSError):
                break
        worker.proc.join(timeout=5)
        conn.close()
        del live[conn]
        free_slots.add(worker.slot)
        if disk is not None and worker.counters:
            disk.merge_counters(worker.counters)
        if worker.chunk is None:
            return  # died (or shut down) idle: nothing to blame
        # Worker died without finishing its chunk: the first unreported
        # point is the one that was executing — blame it, re-dispatch
        # the rest of the chunk blame-free.
        state.report.record(
            state.now(), "chunk_end", slot=worker.slot, chunk=worker.chunk.chunk_id
        )
        schedule(worker.deferred)
        unreported = [
            (index, point)
            for index, point in worker.chunk.pairs
            if index not in worker.reported
        ]
        if not unreported:
            return
        if state.deadline_expired():
            # The sweep deadline killed this worker: every unfinished
            # point of its chunk fails terminally as deadline-exceeded —
            # no blame game, no retries, no re-dispatch.
            for index, point in unreported:
                state.point_deadline(index, point)
            return
        kind = "timeout" if worker.killed else "worker-crash"
        suspect_index, suspect_point = unreported[0]
        retrying = state.point_failed(
            suspect_index,
            suspect_point,
            kind,
            f"worker pid {worker.proc.pid} "
            + (
                "killed after exceeding its wall-clock budget"
                if worker.killed
                else f"died with exit code {worker.proc.exitcode} mid-point"
            ),
        )
        state.report.record(
            state.now(),
            "timeout_kill" if worker.killed else "worker_crash",
            slot=worker.slot,
            chunk=worker.chunk.chunk_id,
            index=suspect_index,
            attempt=state.attempts[suspect_index],
            final=not retrying,
        )
        if retrying:
            delay = policy.delay(state.attempts[suspect_index])
            state.report.record(
                state.now(), "retry", index=suspect_index, delay=round(delay, 3)
            )
            schedule([(suspect_index, suspect_point)], delay)
        schedule(unreported[1:])

    try:
        while pending or any(w.chunk is not None for w in live.values()):
            now = state.now()
            if state.deadline_expired():
                # Deadline passed: fail everything still queued without
                # dispatching a single worker, and kill workers mid-
                # chunk — reap() classifies their unfinished points as
                # deadline-exceeded timeouts.
                for chunk in pending:
                    for index, point in chunk.pairs:
                        state.point_deadline(index, point)
                pending.clear()
                for worker in live.values():
                    if worker.chunk is not None and not worker.killed:
                        worker.killed = True
                        worker.proc.kill()
            # Dispatch every eligible chunk: reuse an idle warm worker,
            # spawn a fresh one only while the pool is below *jobs*.
            # Affinity rules keep each trace loaded by as few workers as
            # possible: an idle worker first takes a chunk whose trace
            # it already holds, then a group no pool member has touched
            # (so concurrent workers warm *different* traces instead of
            # racing to synthesize the same one), then anything left.
            while True:
                eligible = [c for c in pending if c.not_before <= now]
                if not eligible:
                    break
                worker = next(
                    (
                        w
                        for w in live.values()
                        if w.chunk is None
                        and not w.eof
                        and not w.killed
                        and not w.retiring
                    ),
                    None,
                )
                if worker is None:
                    if not free_slots:
                        break
                    worker = spawn()
                pool_groups = set()
                for w in live.values():
                    pool_groups |= w.groups
                chunk = next(
                    (
                        c
                        for candidates in (
                            [c for c in eligible if _chunk_group(c) in worker.groups],
                            [c for c in eligible if _chunk_group(c) not in pool_groups],
                            eligible,
                        )
                        for c in sorted(candidates, key=lambda c: c.chunk_id)
                    ),
                )
                pending.remove(chunk)
                if not assign(worker, chunk):
                    # Pipe already dead: the reap below respawns capacity
                    # and the chunk goes back in the queue untouched.
                    pending.append(chunk)
                    break
            if not live:
                if not pending:
                    # Deadline expiry just drained the whole queue with
                    # no worker ever spawned: re-check the loop guard.
                    continue
                # Everything is waiting out a backoff delay.
                wake = min(chunk.not_before for chunk in pending)
                time.sleep(min(max(wake - state.now(), 0.0), 0.5) + 0.001)
                continue
            # Message arrival (and pipe EOF on worker death) wakes the
            # wait immediately; the timeout only paces backoff wakeups
            # and hang detection, so relax it when neither is armed.
            busy = any(w.chunk is not None for w in live.values())
            armed = allowance is not None or state.deadline is not None
            poll = 0.05 if (pending or (armed and busy)) else 0.25
            ready = mp_connection.wait(list(live), timeout=poll)
            for conn in ready:
                worker = live[conn]
                while True:
                    try:
                        if not conn.poll():
                            break
                        msg = conn.recv()
                    except (EOFError, OSError):
                        worker.eof = True
                        break
                    worker.last_msg = state.now()
                    handle_message(worker, msg)
            now = state.now()
            for conn, worker in list(live.items()):
                if worker.eof or not worker.proc.is_alive():
                    reap(conn, worker)
                elif (
                    allowance is not None
                    and worker.chunk is not None
                    and not worker.killed
                    and now - worker.last_msg > allowance
                ):
                    worker.killed = True
                    worker.proc.kill()
        # All work done: shut the idle pool down and fold its counters.
        for worker in live.values():
            try:
                worker.conn.send(None)
            except Exception:
                pass
        deadline = time.monotonic() + 5
        while live:
            for conn, worker in list(live.items()):
                if worker.eof or not worker.proc.is_alive():
                    reap(conn, worker)
                elif time.monotonic() > deadline:
                    worker.proc.kill()
                    reap(conn, worker)
            if live:
                time.sleep(0.005)
    except KeyboardInterrupt:
        state.report.interrupted = True
        for worker in live.values():
            try:
                worker.proc.kill()
            except Exception:
                pass
        for worker in live.values():
            worker.proc.join(timeout=5)
        for conn in list(live):
            conn.close()
    return state.finish()


def run_points(
    points: Sequence[SweepPoint],
    jobs: int = 1,
    *,
    strict: bool = True,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[SweepJournal] = None,
    resume: bool = False,
    batch: Optional[int] = None,
    recycle: int = 0,
    on_outcome: Optional[Callable[[PointOutcome], None]] = None,
    deadline: Optional[float] = None,
    dispatch: Optional[str] = None,
):
    """Execute every point; results are positionally ordered like *points*.

    ``jobs=1`` runs serially in-process. ``jobs=0`` auto-detects the
    CPU count (:func:`resolve_jobs`). ``jobs>1`` fans chunks across
    worker processes; because each point is an independent deterministic
    simulation and results are reassembled by index, the output is
    bit-identical to the serial run. *batch* caps the chunk size
    explicitly (points per worker dispatch); *recycle* > 0 retires each
    worker process after that many dispatched points and respawns on
    demand.

    Resilience (``docs/robustness.md``): failures are retried with
    exponential backoff up to ``policy.max_retries`` (crashed/hung
    workers included — the poison point is pinpointed and quarantined so
    its chunk-mates survive). With ``strict=True`` (default) the return
    value is a plain ``List[SimResult]`` and a :class:`SweepError` is
    raised if any point still fails after retries — completed work is
    preserved in the report, the disk cache and the journal. With
    ``strict=False`` the full :class:`SweepReport` is returned: partial
    results plus classified failures, never an exception. *journal*
    (with ``resume=True``) skips points whose completion was
    checkpointed by a previous run and whose cached result still loads.

    *on_outcome* is the async-submission hook used by the service
    daemon (``repro-sim serve``): it is called once per point with the
    **final** :class:`~repro.core.exec.resilience.PointOutcome` — after
    a success, after retries are exhausted, or on a resume skip — from
    the dispatching thread, as outcomes stream in. Exceptions it raises
    are swallowed; it must never block for long.

    *deadline* is an absolute :func:`time.monotonic` instant: once it
    passes, queued points fail fast (classified ``timeout`` with a
    ``deadline-exceeded`` message, **no worker dispatched**) and running
    workers are killed — their unfinished points classify the same way.
    It is the bottom of the service daemon's per-request deadline
    plumbing (``X-Deadline-Ms`` / job ``timeout_s``), layered on the
    per-point ``RetryPolicy.timeout`` machinery, not replacing it.

    *dispatch* selects a remote execution fabric instead of the local
    backends: ``"dist://host:port"`` drains the points through the
    work-stealing coordinator listening there (started in-process on
    demand; ``repro-sim worker`` processes connect and execute). All
    resilience semantics above — retries, taxonomy, journal/resume,
    deadline, ``on_outcome`` streaming — apply unchanged, and results
    stay bit-identical to local execution. *jobs* is ignored (worker
    processes size themselves; see :func:`resolve_jobs`).
    """
    points = list(points)
    if dispatch is not None:
        for point in points:
            if point.obs is not None:
                raise ValueError(
                    "observability capture is not supported with "
                    "dispatch=dist:// (artifacts would land on remote "
                    "workers); run observed points locally"
                )
        from repro.dist.coordinator import run_dist

        state = _SweepState(
            points, policy or DEFAULT_POLICY, journal, resume, on_outcome,
            deadline,
        )
        report = (
            run_dist(state, dispatch, batch) if state.pairs else state.finish()
        )
        if strict:
            if report.interrupted:
                raise KeyboardInterrupt
            if report.failures:
                raise SweepError(report)
            return report.results
        return report
    jobs = resolve_jobs(jobs)
    # A deadline must be able to preempt a *running* point, which only
    # the process pool can do (kill the worker); in-process serial
    # execution enforces it between points only. So with a deadline and
    # jobs > 1, even a single point goes through the pool.
    if jobs == 1 or (len(points) <= 1 and deadline is None):
        if (
            strict
            and policy is None
            and journal is None
            and not resume
            and on_outcome is None
            and deadline is None
        ):
            # Legacy fast path: zero resilience overhead.
            return [execute_point(point) for point in points]
        state = _SweepState(
            points, policy or DEFAULT_POLICY, journal, resume, on_outcome,
            deadline,
        )
        report = _run_serial_resilient(state) if state.pairs else state.finish()
    else:
        state = _SweepState(
            points, policy or DEFAULT_POLICY, journal, resume, on_outcome,
            deadline,
        )
        report = (
            _run_parallel_resilient(state, jobs, batch, recycle)
            if state.pairs
            else state.finish()
        )
    if strict:
        if report.interrupted:
            raise KeyboardInterrupt
        if report.failures:
            raise SweepError(report)
        return report.results
    return report
