"""Sweep execution engine: parallel point runner + persistent caches.

Five layers (see ``docs/performance.md`` and ``docs/robustness.md``):

* :mod:`repro.core.exec.cachekey` — content-hash keys (schema-versioned);
* :mod:`repro.core.exec.diskcache` — persistent result/trace store under
  ``~/.cache/repro-btb`` (``REPRO_CACHE_DIR`` overrides), safe for
  concurrent sweeps (atomic writes + per-key lock sentinels);
* :mod:`repro.core.exec.resilience` — error taxonomy, retry policy,
  sweep reports and the checkpoint/resume journal;
* :mod:`repro.core.exec.faults` — deterministic fault injection
  (``REPRO_FAULT_SPEC``) for tests and the CI chaos-smoke job;
* :mod:`repro.core.exec.engine` — cached single-point execution and the
  deterministic, fault-tolerant process fan-out used by
  :func:`repro.core.runner.run_suite` / ``compare_to_baseline`` /
  ``sweep_compare``.
"""

from repro.core.exec.cachekey import (
    CACHE_SCHEMA,
    canonical_json,
    digest,
    result_key,
    sweep_key,
    trace_key,
)
from repro.core.exec.diskcache import (
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ENV_CACHE_SHARDS,
    STALE_LOCK_SECONDS,
    TIERS,
    DiskCache,
    default_cache_dir,
)
from repro.core.exec.engine import (
    ENV_DISK_CACHE,
    ENV_JOBS,
    SweepPoint,
    clear_plan_memo,
    clear_trace_memo,
    configure_disk_cache,
    env_cache_root,
    execute_point,
    fetch_batch_plan,
    fetch_trace,
    get_disk_cache,
    plan_key,
    point_key,
    resolve_jobs,
    run_points,
    set_remote_plan_fetcher,
)
from repro.core.exec.faults import (
    ENV_FAULT_DELAY,
    ENV_FAULT_DIR,
    ENV_FAULT_HANG,
    ENV_FAULT_SPEC,
    FAULT_KINDS,
    NET_FAULT_KINDS,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedCacheCorruption,
    InjectedFault,
    maybe_net_fault,
)
from repro.core.exec.resilience import (
    DEADLINE_MESSAGE,
    DEFAULT_POLICY,
    ERROR_KINDS,
    PointError,
    PointOutcome,
    RetryPolicy,
    SweepError,
    SweepJournal,
    SweepReport,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEADLINE_MESSAGE",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_POLICY",
    "DiskCache",
    "ENV_CACHE_DIR",
    "ENV_CACHE_SHARDS",
    "ENV_DISK_CACHE",
    "ENV_FAULT_DELAY",
    "ENV_FAULT_DIR",
    "ENV_FAULT_HANG",
    "ENV_FAULT_SPEC",
    "ENV_JOBS",
    "ERROR_KINDS",
    "FAULT_KINDS",
    "NET_FAULT_KINDS",
    "STALE_LOCK_SECONDS",
    "TIERS",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedCacheCorruption",
    "InjectedFault",
    "PointError",
    "PointOutcome",
    "RetryPolicy",
    "SweepError",
    "SweepJournal",
    "SweepPoint",
    "SweepReport",
    "canonical_json",
    "clear_plan_memo",
    "clear_trace_memo",
    "configure_disk_cache",
    "default_cache_dir",
    "digest",
    "env_cache_root",
    "execute_point",
    "fetch_batch_plan",
    "fetch_trace",
    "get_disk_cache",
    "maybe_net_fault",
    "plan_key",
    "point_key",
    "resolve_jobs",
    "result_key",
    "run_points",
    "set_remote_plan_fetcher",
    "sweep_key",
    "trace_key",
]
