"""Sweep execution engine: parallel point runner + persistent caches.

Three layers (see ``docs/performance.md``):

* :mod:`repro.core.exec.cachekey` — content-hash keys (schema-versioned);
* :mod:`repro.core.exec.diskcache` — persistent result/trace store under
  ``~/.cache/repro-btb`` (``REPRO_CACHE_DIR`` overrides);
* :mod:`repro.core.exec.engine` — cached single-point execution and the
  deterministic process-pool fan-out used by
  :func:`repro.core.runner.run_suite` / ``compare_to_baseline``.
"""

from repro.core.exec.cachekey import (
    CACHE_SCHEMA,
    canonical_json,
    digest,
    result_key,
    trace_key,
)
from repro.core.exec.diskcache import (
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    DiskCache,
    default_cache_dir,
)
from repro.core.exec.engine import (
    ENV_DISK_CACHE,
    SweepPoint,
    clear_trace_memo,
    configure_disk_cache,
    env_cache_root,
    execute_point,
    fetch_trace,
    get_disk_cache,
    point_key,
    run_points,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "DiskCache",
    "ENV_CACHE_DIR",
    "ENV_DISK_CACHE",
    "SweepPoint",
    "canonical_json",
    "clear_trace_memo",
    "configure_disk_cache",
    "default_cache_dir",
    "digest",
    "env_cache_root",
    "execute_point",
    "fetch_trace",
    "get_disk_cache",
    "point_key",
    "result_key",
    "run_points",
    "trace_key",
]
