"""Fault-tolerance primitives for the sweep engine.

A sweep at paper scale (hundreds of (config x workload) points, hours of
wall-clock) must degrade gracefully: one point that raises, hangs or
OOM-kills its worker may not abort the campaign and discard completed
work. This module defines the shared vocabulary the engine uses to make
that happen (see ``docs/robustness.md``):

* :class:`PointError` — the structured error taxonomy. Every failure is
  one of four kinds: ``exception`` (the point raised), ``timeout`` (the
  point exceeded its wall-clock budget and its worker was killed),
  ``worker-crash`` (the worker process died without reporting — SIGKILL,
  OOM, segfault), ``cache-corrupt`` (a persisted artifact for the point
  could not be read back).
* :class:`PointOutcome` — per-point result wrapper: either a
  :class:`~repro.core.simulator.SimResult` or a :class:`PointError`,
  plus attempt count and bookkeeping. ``run_points(..., strict=False)``
  returns these instead of raising.
* :class:`RetryPolicy` — retry/backoff/timeout knobs.
* :class:`SweepReport` — everything a non-strict sweep returns: ordered
  outcomes, resilience counters, and a wall-clock event log that
  ``repro.obs.export.sweep_chrome_trace`` renders for Perfetto.
* :class:`SweepError` — raised by strict sweeps when failures remain
  after retries; carries the full report (completed work included).
* :class:`SweepJournal` — append-only JSONL checkpoint of completed
  point keys, enabling ``repro-sim sweep --resume`` after a SIGKILL.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.core.simulator import SimResult

#: The closed set of failure kinds (the error taxonomy).
ERROR_KINDS = ("exception", "timeout", "worker-crash", "cache-corrupt")


@dataclass(frozen=True)
class PointError:
    """One classified point failure.

    ``kind`` is always a member of :data:`ERROR_KINDS`; ``attempts`` is
    the number of execution attempts spent before giving up;
    ``traceback`` carries the worker-side formatted traceback when one
    exists (empty for crashes/timeouts, where there is no Python frame
    to unwind).
    """

    kind: str
    point_key: str
    attempts: int
    message: str = ""
    traceback: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ERROR_KINDS:
            raise ValueError(
                f"unknown PointError kind {self.kind!r}; "
                f"expected one of {ERROR_KINDS}"
            )


@dataclass
class PointOutcome:
    """The outcome of one sweep point: a result or a classified error."""

    index: int
    point: Any  # SweepPoint (kept loose to avoid an import cycle)
    result: Optional[SimResult] = None
    error: Optional[PointError] = None
    attempts: int = 0
    resumed: bool = False
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout policy for resilient sweeps.

    ``max_retries`` bounds *re*-tries: a point is attempted at most
    ``max_retries + 1`` times. ``timeout`` is the soft per-point
    wall-clock budget in seconds (``None`` disables deadlines entirely);
    workers check it between points, and the parent kills a worker that
    goes silent past :meth:`allowance`. Retries are re-dispatched after
    exponential backoff: ``backoff * 2**(attempts-1)``, capped.
    """

    max_retries: int = 2
    timeout: Optional[float] = None
    backoff: float = 0.25
    backoff_cap: float = 30.0

    def delay(self, attempts: int) -> float:
        """Backoff before re-dispatching a point that failed *attempts* times."""
        return min(self.backoff_cap, self.backoff * (2 ** max(0, attempts - 1)))

    def allowance(self) -> Optional[float]:
        """Parent-side silence budget before a worker is presumed hung."""
        if self.timeout is None:
            return None
        return self.timeout + max(2.0, self.timeout)


#: Policy used when the caller does not provide one. Fault-free sweeps
#: behave exactly as before under it (retries only trigger on failure).
DEFAULT_POLICY = RetryPolicy()

#: Resilience counters carried by every report (all start at zero).
COUNTER_NAMES = (
    "points",
    "executed",
    "ok",
    "failed",
    "retries",
    "exceptions",
    "timeouts",
    "worker_crashes",
    "cache_corrupt",
    "resumed",
    "deferred",
    "deadline_exceeded",
)

#: Message prefix of every deadline failure (``PointError.kind`` stays
#: ``"timeout"`` — the taxonomy is closed — but callers that need to
#: distinguish "the sweep's deadline passed" from "one point overran its
#: budget" can match on this prefix, as the service daemon does).
DEADLINE_MESSAGE = "deadline-exceeded"


def _zero_counters() -> Dict[str, int]:
    return {name: 0 for name in COUNTER_NAMES}


@dataclass
class SweepReport:
    """Partial-results return value of ``run_points(..., strict=False)``.

    ``outcomes`` is positionally ordered like the input points.
    ``events`` is a wall-clock log of scheduler decisions (dispatches,
    retries, kills, resume skips) suitable for
    :func:`repro.obs.export.sweep_chrome_trace`.
    """

    outcomes: List[PointOutcome] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=_zero_counters)
    events: List[Dict[str, Any]] = field(default_factory=list)
    interrupted: bool = False

    @property
    def results(self) -> List[Optional[SimResult]]:
        """Per-point results (``None`` where the point failed)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def failures(self) -> List[PointOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def bump(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def record(self, ts: float, kind: str, **fields: Any) -> None:
        """Append one scheduler event at wall-clock offset *ts* seconds."""
        self.events.append({"ts": round(ts, 6), "kind": kind, **fields})


class SweepError(RuntimeError):
    """Raised by strict sweeps when points still fail after retries.

    Carries the full :class:`SweepReport` — completed results are not
    discarded, and anything cacheable was already persisted.
    """

    def __init__(self, report: SweepReport) -> None:
        self.report = report
        failures = report.failures
        if failures:
            first = failures[0]
            err = first.error
            msg = (
                f"{len(failures)} of {len(report.outcomes)} sweep points "
                f"failed; first: point #{first.index} "
                f"({err.kind} after {err.attempts} attempts): {err.message}"
            )
            if err.traceback:
                msg += "\n" + err.traceback.rstrip()
        else:  # pragma: no cover - defensive
            msg = "sweep failed"
        super().__init__(msg)


class SweepJournal:
    """Append-only JSONL checkpoint of completed point keys.

    One line per completed point: ``{"key": "<sha256>"}``. The file is
    flushed and fsynced per record, so a SIGKILLed sweep loses at most
    the in-flight point; a torn final line (kill mid-write) is tolerated
    on read. ``repro-sim sweep --resume`` loads the journal and skips
    every completed point whose cached result still loads.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None

    def completed(self) -> Set[str]:
        """Keys recorded so far (a torn trailing line is ignored)."""
        keys: Set[str] = set()
        try:
            text = self.path.read_text()
        except OSError:
            return keys
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                keys.add(str(payload["key"]))
            except (ValueError, KeyError, TypeError):
                continue  # torn/corrupt line: worth at most one re-run
        return keys

    def record(self, key: str) -> None:
        """Durably append one completed point key."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps({"key": key}) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def discard(self) -> None:
        """Close and delete the journal (fresh, non-resumed sweeps)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
