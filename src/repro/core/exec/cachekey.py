"""Content-hash cache keys for the persistent sweep caches.

A cache entry must be addressable by *what it means*, not by object
identity: the key of a simulation result is a SHA-256 digest over a
canonical JSON rendering of everything the result depends on — the
:class:`~repro.core.config.MachineConfig`, the resolved
:class:`~repro.trace.cfg.ProgramSpec` of the workload, the run
parameters (length, warmup, seed) and a cache-schema version. Two
configs built independently with the same fields therefore share a key,
and changing any field (or the schema version) changes the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass

#: Version of the cached payloads *and* of the simulation semantics they
#: capture. Bump this whenever the simulator timing model, the trace
#: synthesizer, or the stored JSON/npz layout changes: old entries
#: become unreachable (they live under a different ``v<N>/`` directory)
#: instead of being served stale.
CACHE_SCHEMA = 1


def _plain(obj):
    """Reduce *obj* to JSON-serializable plain data, deterministically."""
    if is_dataclass(obj) and not isinstance(obj, type):
        fields = asdict(obj)
        return {
            "__type__": type(obj).__name__,
            **{k: _plain(v) for k, v in fields.items()},
        }
    if isinstance(obj, dict):
        return {str(k): _plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for cache keying")


def canonical_json(obj) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(_plain(obj), sort_keys=True, separators=(",", ":"))


def digest(payload) -> str:
    """SHA-256 hex digest of the canonical rendering of *payload*."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def trace_key(workload: str, spec, length: int, seed: int) -> str:
    """Key of a synthesized trace: workload spec + synthesis parameters."""
    return digest(
        {
            "kind": "trace",
            "schema": CACHE_SCHEMA,
            "workload": workload,
            "spec": spec,
            "length": length,
            "seed": seed,
        }
    )


def sweep_key(point_keys) -> str:
    """Key identifying a whole sweep: the set of its point keys.

    Order-insensitive, so the same grid of (config, workload) points
    maps to the same checkpoint journal regardless of enumeration order
    — this is what lets ``repro-sim sweep --resume`` find the journal of
    the interrupted run.
    """
    return digest(
        {
            "kind": "sweep",
            "schema": CACHE_SCHEMA,
            "points": sorted(point_keys),
        }
    )


def result_key(
    config, workload: str, spec, length: int, warmup: int, seed: int
) -> str:
    """Key of a :class:`~repro.core.simulator.SimResult`."""
    return digest(
        {
            "kind": "result",
            "schema": CACHE_SCHEMA,
            "config": config,
            "workload": workload,
            "spec": spec,
            "length": length,
            "warmup": warmup,
            "seed": seed,
        }
    )
