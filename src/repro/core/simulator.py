"""Cycle-level decoupled-front-end simulator (the paper's Fig. 1/Fig. 3).

One-pass, timing-directed, trace-driven: the front end walks the correct
dynamic path; predictor and BTB state decide whether each control
transfer would have been followed correctly, and wrong speculation
charges the Fig.-3 penalties:

* L1 BTB hit, predicted-taken branch      -> 0 bubbles (configurable);
* L2 BTB hit, taken branch                -> 3 bubbles on the next PC;
* non-return indirect branch              -> +1 bubble;
* BTB miss on a decode-recoverable branch -> *misfetch*: PC generation
  stalls until the branch reaches decode;
* direction / indirect-target misprediction -> PC generation stalls
  until the branch executes.

Each cycle: PC generation performs one BTB access (if the FTQ has space
and no resteer is pending) and pushes cache-line-granular FTQ entries
(issuing FDIP prefetches); the fetch stage pops up to 8 lines / 16
instructions across distinct I-cache interleaves and admits them to the
back-end model, which returns complete/commit times.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.types import LINE_BYTES
from repro.btb.base import attach_probe
from repro.frontend.engine import MISFETCH, PredictionEngine
from repro.frontend.ftq import FetchTargetQueue
from repro.obs.events import ICACHE_WAIT, RESTEER
from repro.obs.probe import NULL_PROBE

#: Bound on the I-cache line availability map. Lines past this are
#: evicted least-recently-touched first; the map is never wholesale
#: cleared (which would force a re-miss of every hot line).
LINE_AVAIL_ENTRIES = 4096


@dataclass
class FrontendConfig:
    """Front-end shape per Table 1."""

    ftq_entries: int = 64
    fetch_width: int = 16
    fetch_lines: int = 8
    interleaves: int = 8
    #: Pipeline stages from fetch to decode (ITLB | I$1 | I$2 | I$3 | DEC
    #: with the ITLB overlapped: 4 cycles).
    decode_depth: int = 4
    #: Resteer misfetches from predecode (2 stages before decode) instead
    #: of decode — the early-resteer optimization of Ishii et al.
    early_resteer: bool = False


@dataclass
class SimResult:
    """Outcome of one simulation (measurement window only)."""

    name: str
    instructions: int
    cycles: int
    stats: Dict[str, float] = field(default_factory=dict)
    structure: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def branch_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.stats.get("mispredicts", 0.0) / self.instructions

    @property
    def misfetch_pki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.stats.get("misfetches", 0.0) / self.instructions

    @property
    def fetch_pcs_per_access(self) -> float:
        accesses = self.stats.get("btb_accesses", 0.0)
        if not accesses:
            return 0.0
        return self.stats.get("fetch_pcs", 0.0) / accesses

    @property
    def l1_btb_hit_rate(self) -> float:
        lookups = self.stats.get("btb_taken_lookups", 0.0)
        if not lookups:
            return 0.0
        return self.stats.get("btb_taken_l1_hits", 0.0) / lookups

    @property
    def l2_btb_hit_rate(self) -> float:
        """Taken branches hitting L1 *or* L2 over all taken lookups."""
        lookups = self.stats.get("btb_taken_lookups", 0.0)
        if not lookups:
            return 0.0
        hits = self.stats.get("btb_taken_l1_hits", 0.0) + self.stats.get(
            "btb_taken_l2_hits", 0.0
        )
        return hits / lookups


class Simulator:
    """Ties trace, BTB organization, predictors, memory and back-end."""

    def __init__(
        self,
        trace,
        btb,
        engine: PredictionEngine,
        backend,
        memory=None,
        frontend: Optional[FrontendConfig] = None,
        probe=None,
        config=None,
    ) -> None:
        self.trace = trace
        self.btb = btb
        self.engine = engine
        self.backend = backend
        self.memory = memory
        self.fe = frontend if frontend is not None else FrontendConfig()
        self.stats = engine.stats  # one shared counter bag
        #: Observability probe (see :mod:`repro.obs`); the default
        #: :data:`NULL_PROBE` keeps the run uninstrumented.
        self.probe = probe if probe is not None else NULL_PROBE
        #: The MachineConfig this simulator elaborates (when known); the
        #: pass pipeline needs it to specialize a compiled tick kernel.
        self.config = config

    def kernel_engine(self) -> str:
        """Engine :meth:`run` will use: ``"batched"``, ``"compiled"`` or
        ``"interp"``.

        The compiled/batched engines need the elaborating config (for
        the pass pipeline), an uninstrumented run (probe call sites are
        elided, not guarded), the stock frontend/backend/memory shapes,
        and a fresh stats bag (the interpreter's warm-snapshot
        subtraction and the kernel's local counters only agree from
        zero). Anything else falls back to the reference interpreter —
        bit-identical, slower. ``"batched"`` additionally requires the
        caller to hand :meth:`run` a shared
        :class:`~repro.trace.columnar.BatchPlan`; without one, the run
        degrades to the compiled per-config kernel (same results).
        """
        # Imported lazily: repro.core.passes.dag imports this module.
        from repro.core.passes.kernel import kernel_mode, supports

        mode = kernel_mode()
        if mode == "interp":
            return "interp"
        if not supports(self.config):
            return "interp"
        if self.probe.enabled or self.memory is None:
            return "interp"
        if self.fe != FrontendConfig(early_resteer=self.config.early_resteer):
            return "interp"
        from repro.backend.scoreboard import IdealBackend, OoOBackend

        expected = IdealBackend if self.config.ideal_backend else OoOBackend
        if type(self.backend) is not expected:
            return "interp"
        if self.stats._counters:
            return "interp"
        return mode

    def run(
        self,
        warmup: int = 0,
        sample_structure: bool = True,
        batch_plan=None,
    ) -> SimResult:
        """Simulate the whole trace; measure after *warmup* instructions.

        Dispatches to the batched kernel when eligible and a shared
        *batch_plan* was provided, else to the per-config compiled
        kernel when eligible (see :meth:`kernel_engine`), else to the
        reference interpreter below. All engines produce bit-identical
        :class:`SimResult`s.
        """
        engine = self.kernel_engine()
        if engine == "batched" and batch_plan is not None:
            from repro.core.passes.kernel import get_batch_kernel

            return get_batch_kernel(self.config).fn(
                self, batch_plan, warmup, sample_structure
            )
        if engine in ("compiled", "batched"):
            from repro.core.passes.kernel import get_kernel

            return get_kernel(self.config).fn(self, warmup, sample_structure)
        return self._run_interp(warmup, sample_structure)

    def _run_interp(
        self, warmup: int = 0, sample_structure: bool = True
    ) -> SimResult:
        """Reference interpreter (the readable, always-correct engine)."""
        tr = self.trace
        n = len(tr.pc)
        if warmup >= n:
            raise ValueError("warmup must be smaller than the trace")
        fe = self.fe
        mem = self.memory
        backend = self.backend
        btb = self.btb
        engine = self.engine
        st = self.stats
        pcs = tr.pc
        btypes = tr.btype
        is_load = tr.is_load
        is_store = tr.is_store
        dsts = tr.dst
        src1s = tr.src1
        src2s = tr.src2
        maddrs = tr.maddr
        #: Per-instruction cache-line index, computed once per trace
        #: (vectorized) instead of dividing per access in the loop below.
        line_ix = tr.line_index()

        probe = self.probe
        probe_on = probe.enabled
        if probe_on:
            probe.begin(tr.name, n, warmup, st)
            attach_probe(btb, probe)
            engine.probe = probe
            if mem is not None:
                mem.set_probe(probe)

        ftq = FetchTargetQueue(fe.ftq_entries, probe if probe_on else None)
        line_avail: "OrderedDict[int, int]" = OrderedDict()

        # Hoist hot-path bound-method lookups out of the cycle loop.
        st_add = st.add
        btb_scan = btb.scan
        ftq_push = ftq.push
        ftq_head = ftq.head
        ftq_consume = ftq.consume
        ftq_has_space = ftq.has_space
        fetch_gate = backend.fetch_gate
        backend_admit = backend.admit
        line_avail_get = line_avail.get
        line_avail_touch = line_avail.move_to_end
        line_avail_evict = line_avail.popitem
        mem_prefetch = mem.ifetch_prefetch if mem is not None else None
        mem_ifetch = mem.ifetch if mem is not None else None

        cycle = 0
        i_pcgen = 0
        admitted = 0
        pcgen_ready = 0
        pcgen_stalled = False
        pending_events: Dict[int, str] = {}
        warm_commit = 0
        warm_snapshot: Optional[Dict[str, float]] = None
        if warmup == 0:
            # Measure from the very beginning (exact accounting).
            warm_snapshot = st.as_dict()
        last_commit = 0
        max_cycles = 1000 + n * 64
        interleave_mask = fe.interleaves - 1

        while admitted < n:
            if probe_on:
                probe.on_cycle(cycle, len(ftq), admitted)
            # ---- PC generation ------------------------------------------------
            if (
                i_pcgen < n
                and not pcgen_stalled
                and cycle >= pcgen_ready
                and ftq_has_space()
            ):
                access = btb_scan(pcs[i_pcgen], i_pcgen, tr, engine)
                if access.count > 0:
                    st_add("btb_accesses")
                    st_add("fetch_pcs", access.count)
                    st_add("blocks_per_access", access.blocks)
                    # Segment the covered indices into cache lines and
                    # issue FDIP prefetches.
                    seg_start = i_pcgen
                    seg_line = line_ix[seg_start]
                    seg_count = 1
                    for j in range(i_pcgen + 1, i_pcgen + access.count):
                        line = line_ix[j]
                        if line == seg_line:
                            seg_count += 1
                            continue
                        ftq_push(seg_line, seg_start, seg_count, cycle)
                        if mem_prefetch is not None:
                            mem_prefetch(seg_line * LINE_BYTES, cycle)
                        seg_start, seg_line, seg_count = j, line, 1
                    ftq_push(seg_line, seg_start, seg_count, cycle)
                    if mem_prefetch is not None:
                        mem_prefetch(seg_line * LINE_BYTES, cycle)
                    i_pcgen += access.count
                    if access.event is not None:
                        pending_events[access.event_index] = access.event
                        pcgen_stalled = True
                    else:
                        pcgen_ready = cycle + 1 + access.bubbles
                else:
                    i_pcgen = n  # trace exhausted mid-access

            # ---- Fetch --------------------------------------------------------
            lines_used = 0
            insts_used = 0
            interleaves_used = 0
            while lines_used < fe.fetch_lines and insts_used < fe.fetch_width:
                head = ftq_head()
                if head is None or not head.consumable(cycle):
                    break
                il_bit = 1 << (head.line & interleave_mask)
                if interleaves_used & il_bit:
                    break
                if fetch_gate(head.first_index) > cycle:
                    break
                avail = line_avail_get(head.line)
                if avail is None:
                    if mem_ifetch is not None:
                        avail = mem_ifetch(head.line * LINE_BYTES, cycle)
                    else:
                        avail = cycle
                    line_avail[head.line] = avail
                    if len(line_avail) > LINE_AVAIL_ENTRIES:
                        line_avail_evict(last=False)
                else:
                    line_avail_touch(head.line)
                if avail > cycle:
                    if probe_on:
                        probe.emit(ICACHE_WAIT, head.line, avail - cycle)
                    break
                take = min(head.count, fe.fetch_width - insts_used)
                decode_ready = cycle + fe.decode_depth
                first = head.first_index
                for k in range(take):
                    j = first + k
                    bt = btypes[j]
                    complete, commit = backend_admit(
                        j,
                        decode_ready,
                        pcs[j],
                        bt != 0,
                        is_load[j] == 1,
                        is_store[j] == 1,
                        dsts[j],
                        src1s[j],
                        src2s[j],
                        maddrs[j],
                    )
                    last_commit = commit
                    if pending_events:
                        kind = pending_events.pop(j, None)
                        if kind is not None:
                            if kind == MISFETCH:
                                resteer = decode_ready
                                if fe.early_resteer:
                                    resteer = max(cycle, decode_ready - 2)
                            else:
                                resteer = complete
                            resume = resteer + 1
                            if resume > pcgen_ready:
                                pcgen_ready = resume
                            pcgen_stalled = False
                            if probe_on:
                                probe.emit_at(
                                    resteer,
                                    RESTEER,
                                    j,
                                    0 if kind == MISFETCH else 1,
                                )
                admitted += take
                insts_used += take
                interleaves_used |= il_bit
                lines_used += 1
                ftq_consume(take)
                if admitted >= warmup and warm_snapshot is None:
                    warm_commit = last_commit
                    warm_snapshot = st.as_dict()

            cycle += 1
            if cycle > max_cycles:
                raise RuntimeError(
                    f"simulator wedged at cycle {cycle} "
                    f"(admitted {admitted}/{n}, ftq={len(ftq)})"
                )

        if probe_on:
            probe.finish(cycle, admitted)

        if warm_snapshot is None:
            warm_snapshot = {}
            warm_commit = 0
        final = st.as_dict()
        measured = {
            key: final[key] - warm_snapshot.get(key, 0.0) for key in final
        }
        structure: Dict[str, float] = {}
        if sample_structure and hasattr(btb, "slot_occupancy"):
            structure["l1_slot_occupancy"] = btb.slot_occupancy(1)
            structure["l1_redundancy"] = btb.redundancy_ratio(1)
            store = getattr(btb, "store", None)
            has_l2 = getattr(btb, "has_l2", store is not None and store.l2 is not None)
            if has_l2:
                structure["l2_slot_occupancy"] = btb.slot_occupancy(2)
                structure["l2_redundancy"] = btb.redundancy_ratio(2)
        return SimResult(
            name=tr.name,
            instructions=n - warmup,
            cycles=max(1, last_commit - warm_commit),
            stats=measured,
            structure=structure,
        )
