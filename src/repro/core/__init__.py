"""Core: the cycle-level simulator, machine configs and experiment runner."""

from repro.core.config import (
    DEFAULT_SCALE,
    IDEAL_IBTB16,
    MachineConfig,
    bbtb,
    build_simulator,
    fit_geometry,
    hetero_btb,
    ibtb,
    ibtb_skp,
    mbbtb,
    rbtb,
)
from repro.core.exec import (
    DiskCache,
    SweepPoint,
    configure_disk_cache,
    execute_point,
    get_disk_cache,
    run_points,
)
from repro.core.runner import (
    DEFAULT_LENGTH,
    DEFAULT_WARMUP,
    ComparedConfig,
    clear_cache,
    compare_to_baseline,
    run_one,
    run_suite,
)
from repro.core.simulator import FrontendConfig, SimResult, Simulator

__all__ = [
    "ComparedConfig",
    "DiskCache",
    "SweepPoint",
    "configure_disk_cache",
    "execute_point",
    "get_disk_cache",
    "run_points",
    "DEFAULT_LENGTH",
    "DEFAULT_SCALE",
    "DEFAULT_WARMUP",
    "FrontendConfig",
    "IDEAL_IBTB16",
    "MachineConfig",
    "SimResult",
    "Simulator",
    "bbtb",
    "build_simulator",
    "clear_cache",
    "compare_to_baseline",
    "fit_geometry",
    "hetero_btb",
    "ibtb",
    "ibtb_skp",
    "mbbtb",
    "rbtb",
    "run_one",
    "run_suite",
]
