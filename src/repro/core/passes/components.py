"""Explicit declarations of the simulator's pipeline components.

The interpreter's cycle loop interleaves several logical pipeline
stages. For the pass pipeline each stage is declared as a
:class:`Component` with explicit data-flow ports: the sets of simulator
state it reads and writes. :class:`~repro.core.passes.dag.GenDAGPass`
turns the declarations into a dependency DAG for one :class:`MachineConfig`
(dropping components the config makes dead), and
:class:`~repro.core.passes.schedule.SchedulePass` orders the survivors.

``emitter`` names the :class:`~repro.core.passes.codegen.CodegenPass`
method that contributes the component's code; nested components (the
L2 BTB level, the R-BTB overflow pool, the d-side memory) are emitted
inside their parent's block and carry ``parent`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple


@dataclass(frozen=True)
class Component:
    """One declared pipeline component.

    ``reads``/``writes`` are port names over the shared per-cycle state
    (``ftq``, ``pending_events``, ``line_avail``, ``stats`` ...); the DAG
    pass derives producer -> consumer edges from them. ``live`` decides,
    per config, whether the component exists at all — a dead component
    is elided from the schedule and contributes zero generated code.
    """

    name: str
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    #: CodegenPass emitter method name ("" for nested components that
    #: are emitted inside their parent's block).
    emitter: str = ""
    #: Name of the enclosing component for nested/elidable sub-stages.
    parent: Optional[str] = None
    #: Predicate MachineConfig -> bool; None means always live.
    live: Optional[Callable] = field(default=None, compare=False)

    def is_live(self, config) -> bool:
        return True if self.live is None else bool(self.live(config))


def _has_l2(config) -> bool:
    return not config.ideal_btb


def _has_overflow(config) -> bool:
    return config.btb_kind == "rbtb" and config.overflow_entries > 0


def _ooo_backend(config) -> bool:
    return not config.ideal_backend


#: The declared pipeline, in program order of the reference interpreter.
#: The obs probe component is declared live only for instrumented runs —
#: compiled kernels are only built for uninstrumented runs, so it is
#: always elided (NULL_PROBE call sites are removed entirely, not just
#: guarded).
PIPELINE: Tuple[Component, ...] = (
    Component(
        name="pcgen.btb_access",
        reads=("pcgen_state", "trace", "btb", "engine", "ftq_space"),
        writes=("access", "stats", "btb", "engine"),
        emitter="emit_pcgen",
    ),
    Component(
        name="btb.l2_level",
        reads=("btb",),
        writes=("btb",),
        parent="pcgen.btb_access",
        live=_has_l2,
    ),
    Component(
        name="rbtb.overflow_pool",
        reads=("btb",),
        writes=("btb",),
        parent="pcgen.btb_access",
        live=_has_overflow,
    ),
    Component(
        name="pcgen.ftq_push",
        reads=("access", "pcgen_state"),
        writes=("ftq", "pending_events", "pcgen_state", "stats"),
        parent="pcgen.btb_access",
    ),
    Component(
        name="pcgen.fdip_prefetch",
        reads=("access", "memory"),
        writes=("memory",),
        parent="pcgen.ftq_push",
    ),
    Component(
        name="fetch.icache",
        reads=("ftq", "line_avail", "memory", "backend_gate"),
        writes=("line_avail", "memory"),
        emitter="emit_fetch",
    ),
    Component(
        name="fetch.backend_admit",
        reads=("ftq", "trace", "backend"),
        writes=("backend", "pcgen_state", "pending_events", "commit"),
        parent="fetch.icache",
    ),
    Component(
        name="backend.dside_memory",
        reads=("backend", "memory"),
        writes=("memory",),
        parent="fetch.backend_admit",
        live=_ooo_backend,
    ),
    Component(
        name="obs.probe",
        reads=("stats", "ftq", "access", "commit"),
        writes=("probe",),
        parent=None,
        live=lambda config: False,  # compiled kernels are uninstrumented
    ),
)


def live_components(config) -> Tuple[Component, ...]:
    """The components that exist for *config* (dead ones elided)."""
    return tuple(c for c in PIPELINE if c.is_live(config))


def elided_components(config) -> Tuple[str, ...]:
    """Names of the components *config* makes dead."""
    return tuple(c.name for c in PIPELINE if not c.is_live(config))
