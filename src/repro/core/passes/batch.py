"""Batched (plan-consuming) kernel codegen for multi-config sweeps.

:class:`BatchPass` extends :class:`~repro.core.passes.codegen.CodegenPass`
to emit the *batched* variant of a config's kernel: one that consumes a
shared :class:`~repro.trace.columnar.BatchPlan` instead of replaying the
prediction engine and re-deriving trace geometry per config. A batch of
K compatible configs (same workload, same predictor geometry — the
*structural family*) advances through one decode of the trace: the plan
is built once and every config's kernel reads it.

Why config-major rather than per-instruction lockstep
-----------------------------------------------------

A literal lockstep kernel — one loop advancing K machine states one
instruction at a time — is the wrong shape for CPython: each config's
machine state (BTB contents, FTQ, cache/backend rings, cycle counts)
diverges immediately, so a lockstep body must juggle K copies of every
local through dict/list indirection, forfeiting exactly the
local-variable specialization that made the compiled kernels fast
(docs/compiled_kernels.md). What *is* shared across configs is
everything derived from the trace alone:

* the columnar arrays and their derived plans (``next_br``, ``run_end``,
  ``line_ix``) — the decode-once part, and
* the entire prediction-engine evolution (perceptron, folded history,
  indirect table, RAS): ``PredictionEngine.resolve`` trains on trace
  outcomes only, never on BTB state, so its per-branch outcomes are
  config-invariant within a geometry family.

So the batch executes config-major — each config runs its own
specialized kernel, with every trace-derived and predictor-derived read
hoisted into the shared plan. On top of the plan reads, the batched
variant uses the derived arrays for two structural loop optimizations
the per-config kernels cannot do (they would have to pay the derivation
per config):

* **non-branch gap skipping**: scan loops jump over runs of non-branch
  instructions via ``next_br`` instead of testing ``btype`` per
  instruction;
* **line-run segmentation**: FTQ segmentation jumps from cache-line run
  boundary to boundary via ``run_end`` instead of comparing per-PC line
  indices.

Both transforms consume exactly the instructions the reference loops
consume, so results stay bit-identical to the interpreter (enforced by
the differential goldens in ``tests/kernel/``).

One observable difference is documented in docs/batched_kernels.md:
batched kernels leave the live predictor *objects* untouched (their
evolution lives in the plan), so post-run inspection of
``sim.engine.perceptron`` etc. sees cold state. ``SimResult`` — the only
thing sweeps consume — is bit-identical.
"""

from __future__ import annotations

from repro.core.passes.codegen import COUNTERS, CodegenPass, _Writer


class BatchPass(CodegenPass):
    """Emit the plan-consuming batched kernel variant for one config."""

    def __call__(self, plan, schedule) -> str:
        self.plan = plan
        w = _Writer()
        cfg = plan.config
        w.line(
            f"# batched kernel for config {cfg.label!r} "
            f"(btb_kind={cfg.btb_kind})"
        )
        w.line(f"# schedule: {' -> '.join(schedule.names())}")
        if plan.elided:
            w.line(f"# elided components: {', '.join(plan.elided)}")
        w.line()
        with w.block("def kernel_run(sim, bplan, warmup, sample_structure):"):
            self._emit_prelude(w)
            with w.block("while admitted < n:"):
                for comp in schedule.emitted:
                    w.line(f"# -- component: {comp.name} " + "-" * 20)
                    getattr(self, comp.emitter)(w)
                self._emit_cycle_advance(w)
            self._emit_finalize(w)
        return w.source()

    # -- prelude ----------------------------------------------------------

    def _emit_prelude(self, w: _Writer) -> None:
        p = self.plan
        w.lines(
            "tr = sim.trace",
            "n = len(tr.pc)",
            "if warmup >= n:",
            "    raise ValueError(\"warmup must be smaller than the trace\")",
            "pcs = tr.pc",
            "btypes = tr.btype",
            "takens = tr.taken",
            "targets = tr.target",
            "dsts = tr.dst",
            "src1s = tr.src1",
            "src2s = tr.src2",
            "loads_col = tr.is_load",
            "stores_col = tr.is_store",
            "maddrs = tr.maddr",
            "btb = sim.btb",
            "engine = sim.engine",
            "st = engine.stats",
        )
        # Shared batch plan. The geometry guard catches a plan built for
        # a different predictor family; the length guard catches a plan
        # built from a different trace slice.
        w.lines(
            "pg = bplan.geometry",
            f"if (pg.ptable_mask != {p.ptable_mask} or pg.theta != {p.theta}"
            f" or pg.ind_mask != {p.ind_mask}"
            f" or pg.ras_depth != {p.ras_depth}):",
            "    raise RuntimeError(\"batched kernel/plan mismatch: geometry\")",
            "line_ix = bplan.line_ix",
            "if len(line_ix) != n:",
            "    raise RuntimeError(\"batched kernel/plan mismatch: trace length\")",
            "next_br = bplan.next_br",
            "run_end = bplan.run_end",
            "pt_plan = bplan.pt",
            "rasok_plan = bplan.ras_ok",
            "ind_plan = bplan.ind_pred",
        )
        # BTB internals (unchanged from the per-config kernel).
        w.lines(
            "store = btb.store",
            "l1arr = store.l1",
            f"if l1arr.sets != {p.l1_set_mask + 1}:",
            "    raise RuntimeError(\"compiled kernel/config mismatch: btb geometry\")",
            "l1_sets = l1arr._sets",
        )
        if p.has_l2:
            w.line("store_lookup = store.lookup")
        kind = p.btb_kind
        if kind == "ibtb":
            w.line("ibtb_train = btb._train")
        elif kind == "rbtb":
            w.line("rb_train = btb._train")
            if self._rb_overflow():
                w.lines("ovf_arr = btb.overflow", "ovf_set = ovf_arr._sets[0]")
        elif kind == "bbtb":
            w.line("bb_train = btb._train_branch")
        elif kind == "mbbtb":
            w.lines("mb_train = btb._train_branch", "mb_update = btb._update_slot")
        # Memory internals.
        w.lines(
            "mem = sim.memory",
            "itlb_arr = mem.itlb.array",
            "itlb_sets = itlb_arr._sets",
            "itlb_translate = mem.itlb.translate",
            "l1i = mem.l1i",
            "l1i_arr = l1i.array",
            "l1i_sets = l1i_arr._sets",
            "l1i_pending = l1i._pending",
            "l1i_access = l1i.access",
            "l1i_prefetch = l1i.prefetch",
            f"if (l1i_arr.sets != {p.l1i_set_mask + 1} or l1i.latency != {p.l1i_latency}"
            f" or itlb_arr.sets != {p.itlb_set_mask + 1}"
            f" or mem.itlb.latency != {p.itlb_latency}):",
            "    raise RuntimeError(\"compiled kernel/config mismatch: memory\")",
        )
        # Backend internals.
        w.line("backend = sim.backend")
        if p.ideal_backend:
            w.lines(
                "reg_ready = backend._reg_ready",
                "commit_ring = backend._commit_ring",
                f"if len(commit_ring) != {p.bk_window}:",
                "    raise RuntimeError(\"compiled kernel/config mismatch: backend\")",
            )
        else:
            w.lines(
                "reg_ready = backend._reg_ready",
                "commit_ring = backend._commit_ring",
                "cw_ring = backend._commit_width_ring",
                "disp_ring = backend._dispatch_width_ring",
                "fq_ring = backend._fq_ring",
                "load_ring = backend._load_ring",
                "store_ring = backend._store_ring",
                "nloads = backend._loads",
                "nstores = backend._stores",
                f"if (len(commit_ring) != {p.bk_rob} or len(disp_ring) != {p.bk_width}"
                f" or len(fq_ring) != {p.bk_fq} or len(load_ring) != {p.bk_load_ports}"
                f" or len(store_ring) != {p.bk_store_ports}):",
                "    raise RuntimeError(\"compiled kernel/config mismatch: backend\")",
                "dtlb_arr = mem.dtlb.array",
                "dtlb_sets = dtlb_arr._sets",
                "dtlb_translate = mem.dtlb.translate",
                "l1d = mem.l1d",
                "l1d_arr = l1d.array",
                "l1d_sets = l1d_arr._sets",
                "l1d_pending = l1d._pending",
                "l1d_access = l1d.access",
                "l1d_prefetch = l1d.prefetch",
                "dstride = mem.dstride",
                "dstab = dstride._table",
                f"if (l1d_arr.sets != {p.l1d_set_mask + 1} or l1d.latency != {p.l1d_latency}"
                f" or dtlb_arr.sets != {p.dtlb_set_mask + 1}"
                f" or mem.dtlb.latency != {p.dtlb_latency}"
                f" or dstride.table_entries != {p.dstride_entries}"
                f" or dstride.degree != {p.dstride_degree}):",
                "    raise RuntimeError(\"compiled kernel/config mismatch: memory\")",
            )
        # Per-run queues and loop state.
        w.lines(
            "ftq = deque()",
            "ftq_append = ftq.append",
            "ftq_popleft = ftq.popleft",
            "line_avail = OrderedDict()",
            "line_avail_get = line_avail.get",
            "line_avail_touch = line_avail.move_to_end",
            "line_avail_evict = line_avail.popitem",
            "pending_events = {}",
            "cycle = 0",
            "i_pcgen = 0",
            "admitted = 0",
            "acc_cycle = -1",
            "pcgen_ready = 0",
            "pcgen_stalled = False",
            "last_commit = backend._last_commit",
            "warm_commit = 0",
            "warm_done = warmup == 0",
            "max_cycles = 1000 + n * 64",
        )
        for local, _name in COUNTERS:
            w.line(f"c_{local} = 0")
        for local, _name in COUNTERS:
            w.line(f"w_{local} = 0")

    # -- resolve: plan reads instead of predictor replay ------------------

    def _emit_resolve(self, w: _Writer) -> None:
        """Plan-consuming PredictionEngine.resolve.

        Same inputs/outputs as the parent emitter (res: 0=seq,
        1=redirect, 2=misfetch, 3=mispredict), but the perceptron sum,
        RAS pop and indirect-table read come from the shared plan; all
        predictor *training* was done once at plan-build time. The only
        per-config piece left is the BTB-fallback indirect prediction
        (``predicted == 0 and known``) — it reads this config's slot.
        """
        w.line("c_dbr += 1")
        with w.block("if taken:"):
            w.line("c_dtk += 1")
        with w.block("if bt == 1:"):  # COND_DIRECT
            w.line("pt = pt_plan[j] == 1")
            with w.block("if not known:"):
                with w.block("if taken:"):
                    w.lines("c_mp += 1", "c_mpcu += 1", "res = 3")
                with w.block("else:"):
                    w.line("res = 0")
            with w.block("elif pt != taken:"):
                w.lines("c_mp += 1", "c_mpc += 1", "res = 3")
            with w.block("else:"):
                w.line("res = 1 if taken else 0")
        with w.block("else:"):
            with w.block("if bt == 2 or bt == 3:"):  # UNCOND/CALL_DIRECT
                with w.block("if known:"):
                    w.line("res = 1")
                with w.block("else:"):
                    w.lines("c_mf += 1", "res = 2")
            with w.block("elif bt == 4:"):  # RETURN
                with w.block("if rasok_plan[j]:"):
                    with w.block("if known:"):
                        w.line("res = 1")
                    with w.block("else:"):
                        w.lines("c_mf += 1", "res = 2")
                with w.block("else:"):
                    w.lines("c_mp += 1", "c_mpr += 1", "res = 3")
            with w.block("else:"):  # INDIRECT / CALL_INDIRECT
                w.line("predicted = ind_plan[j]")
                with w.block("if predicted == 0 and known:"):
                    w.line("predicted = slot.target")
                with w.block("if not known:"):
                    w.lines("c_mp += 1", "c_mpiu += 1", "res = 3")
                with w.block("elif predicted != target:"):
                    w.lines("c_mp += 1", "c_mpi += 1", "res = 3")
                with w.block("else:"):
                    w.line("res = 1")

    # -- scan loops with next_br gap skipping -----------------------------

    def _emit_gap_skip(self, w: _Writer, room_expr: str) -> None:
        """Jump over a run of non-branch instructions in one step.

        Emitted at the top of a scan loop body, after ``j`` is computed
        and bounds-checked. ``room_expr`` is the number of instructions
        the enclosing loop could still consume (fetch-width or
        region/block span). Consumes exactly the instructions the
        reference one-at-a-time loop would: each non-branch advances
        ``pc`` by 4 and ``count`` by 1, capped by the room; ``continue``
        re-checks the loop condition so natural-exit ``else`` clauses
        (bbtb/mbbtb split bubbles) still fire.
        """
        w.line("nb = next_br[j]")
        with w.block("if nb > j:"):
            w.line("gap = nb - j")
            w.line(f"room = {room_expr}")
            with w.block("if gap >= room:"):
                w.lines("pc += room << 2", "count += room", "continue")
            w.lines("pc += gap << 2", "count += gap")
            with w.block("if nb >= n:"):
                w.line("continue")
            w.line("j = nb")

    def _emit_scan_ibtb(self, w: _Writer) -> None:
        cfg = self.plan.config
        w.line("pc = pcs[i_pcgen]")
        with w.block(f"while count < {cfg.width}:"):
            w.line("j = i_pcgen + count")
            with w.block("if j >= n:"):
                w.line("break")
            self._emit_gap_skip(w, f"{cfg.width} - count")
            w.line("bt = btypes[j]")
            w.line("count += 1")
            self._emit_store_lookup(w, "pc")
            w.line("slot = entry")
            w.lines("known = slot is not None", "taken = takens[j] == 1", "target = targets[j]")
            self._emit_note_btb(w, "lvl")
            self._emit_resolve(w)
            with w.block("if taken:"):
                with w.block("if slot is None:"):
                    w.line("ibtb_train(pc, bt, True, target, None)")
                with w.block("else:"):
                    w.line("slot.target = target")
            with w.block("if res == 0:"):
                w.lines("pc += 4", "continue")
            with w.block("if res == 1:"):
                self._redirect_bubbles(w)
                if cfg.skip_taken:
                    w.lines("pc = target", "blocks += 1", "continue")
                else:
                    w.lines("acc_bubbles = bubbles", "break")
            w.lines("acc_event = res", "acc_ei = j", "break")

    def _emit_scan_rbtb(self, w: _Writer) -> None:
        p = self.plan
        cfg = p.config
        rb = cfg.region_bytes
        overflow = self._rb_overflow()
        interleaved = cfg.interleaved
        w.line("pc = pcs[i_pcgen]")
        w.line("btb._tick = rb_tick = btb._tick + 1")
        if interleaved:
            w.line("done = False")
            outer = w.block("for _rno in range(2):")
            outer.__enter__()
        w.line(f"region = pc & -{rb}")
        if interleaved:
            with w.block("if _rno:"):
                w.line(f"pk = region >> {p.index_shift}")
                with w.block(f"if pk not in l1_sets[pk & {p.l1_set_mask}]:"):
                    w.line("break")
        self._emit_store_lookup(w, "region")
        w.line(f"region_end = region + {rb}")
        with w.block("while pc < region_end:"):
            w.line("j = i_pcgen + count")
            with w.block("if j >= n:"):
                if interleaved:
                    w.line("done = True")
                w.line("break")
            self._emit_gap_skip(w, "(region_end - pc) >> 2")
            w.line("bt = btypes[j]")
            w.line("count += 1")
            w.lines("slot = None", "from_overflow = False")
            with w.block("if entry is not None:"):
                w.line("spos = 0")
                with w.block("for s_ in entry.slots:"):
                    with w.block("if s_.pc == pc:"):
                        w.lines("slot = s_", "break")
                    w.line("spos += 1")
                with w.block("if slot is not None:"):
                    w.line("entry.ticks[spos] = rb_tick")
                if overflow:
                    with w.block("else:"):
                        w.line("oe = ovf_set.get(pc)")
                        with w.block("if oe is not None:"):
                            w.lines(
                                "ovf_arr._tick = ovt = ovf_arr._tick + 1",
                                "oe[1] = ovt",
                                "slot = oe[0]",
                                "from_overflow = True",
                            )
            w.lines("known = slot is not None", "taken = takens[j] == 1", "target = targets[j]")
            w.line("nlvl = lvl if known else 0")
            self._emit_note_btb(w, "nlvl")
            self._emit_resolve(w)
            with w.block("if taken:"):
                with w.block("if slot is not None:"):
                    w.line("slot.target = target")
                with w.block("else:"):
                    w.line("rb_train(region, entry, pc, bt, True, target, None)")
            with w.block("if res == 0:"):
                w.lines("pc += 4", "continue")
            with w.block("if res == 1:"):
                if p.has_l2:
                    w.line(f"bubbles = 3 if lvl == 2 else {cfg.l1_taken_bubble}")
                else:
                    w.line(f"bubbles = {cfg.l1_taken_bubble}")
                if overflow:
                    with w.block("if from_overflow:"):
                        w.line(f"bubbles += {p.rb_overflow_bubble}")
                with w.block("if bt == 5 or bt == 6:"):
                    w.line("bubbles += 1")
                w.line("acc_bubbles = bubbles")
                if interleaved:
                    w.line("done = True")
                w.line("break")
            w.lines("acc_event = res", "acc_ei = j")
            if interleaved:
                w.line("done = True")
            w.line("break")
        if interleaved:
            with w.block("if done:"):
                w.line("break")
            w.line("pc = region_end")
            outer.__exit__(None, None, None)

    def _emit_scan_bbtb(self, w: _Writer) -> None:
        p = self.plan
        cfg = p.config
        w.line("pc = pcs[i_pcgen]")
        w.line("block_start = pc")
        self._emit_store_lookup(w, "pc")
        with w.block("if entry is not None:"):
            w.line("end_pc = entry.start + entry.length * 4")
        with w.block("else:"):
            w.line(f"end_pc = pc + {cfg.block_insts * 4}")
        w.line("btb._tick = bb_tick = btb._tick + 1")
        with w.block("while pc < end_pc:"):
            w.line("j = i_pcgen + count")
            with w.block("if j >= n:"):
                w.line("break")
            self._emit_gap_skip(w, "(end_pc - pc) >> 2")
            w.line("bt = btypes[j]")
            w.line("count += 1")
            w.line("slot = None")
            with w.block("if entry is not None:"):
                w.line("spos = 0")
                with w.block("for s_ in entry.slots:"):
                    with w.block("if s_.pc == pc:"):
                        w.lines("slot = s_", "break")
                    w.line("spos += 1")
                with w.block("if slot is not None:"):
                    w.line("entry.ticks[spos] = bb_tick")
            w.lines("known = slot is not None", "taken = takens[j] == 1", "target = targets[j]")
            w.line("nlvl = lvl if known else 0")
            self._emit_note_btb(w, "nlvl")
            self._emit_resolve(w)
            with w.block("if taken:"):
                with w.block("if slot is not None:"):
                    w.line("slot.target = target")
                with w.block("else:"):
                    w.line("entry = bb_train(entry, block_start, pc, bt, True, target, None)")
            with w.block("if res == 0:"):
                w.lines("pc += 4", "continue")
            with w.block("if res == 1:"):
                self._redirect_bubbles(w)
                w.lines("acc_bubbles = bubbles", "break")
            w.lines("acc_event = res", "acc_ei = j", "break")
        if cfg.split_bubble:
            with w.block("else:"):
                w.line(
                    f"acc_bubbles = {cfg.split_bubble} "
                    "if (entry is not None and entry.split) else 0"
                )

    def _emit_scan_mbbtb(self, w: _Writer) -> None:
        p = self.plan
        cfg = p.config
        w.line("pc = pcs[i_pcgen]")
        w.line("block_start = pc")
        self._emit_store_lookup(w, "pc")
        w.line("blk = 0")
        with w.block("if entry is not None:"):
            w.lines("bs_, bl_ = entry.blocks[0]", "end_pc = bs_ + bl_ * 4")
        with w.block("else:"):
            w.line(f"end_pc = pc + {cfg.block_insts * 4}")
        with w.block("while pc < end_pc:"):
            w.line("j = i_pcgen + count")
            with w.block("if j >= n:"):
                w.line("break")
            self._emit_gap_skip(w, "(end_pc - pc) >> 2")
            w.line("bt = btypes[j]")
            w.line("count += 1")
            w.line("slot = None")
            with w.block("if entry is not None:"):
                with w.block("for s_ in entry.slots:"):
                    with w.block("if s_.blk_id == blk and s_.pc == pc:"):
                        w.lines("slot = s_", "break")
            w.lines("known = slot is not None", "taken = takens[j] == 1", "target = targets[j]")
            w.line("nlvl = lvl if known else 0")
            self._emit_note_btb(w, "nlvl")
            self._emit_resolve(w)
            with w.block("if taken:"):
                with w.block("if slot is not None:"):
                    with w.block("if slot.btype == 5 or slot.btype == 6:"):
                        w.line("mb_update(entry, slot, target)")
                    with w.block("else:"):
                        w.line("slot.target = target")
                with w.block("else:"):
                    w.line(
                        "entry = mb_train(entry, block_start, blk, pc, bt, True, target, None)"
                    )
            with w.block("else:"):
                with w.block("if slot is not None:"):
                    if cfg.immediate_downgrade:
                        with w.block("if slot.follow:"):
                            w.line(
                                "mb_train(entry, block_start, blk, pc, bt, False, target, slot)"
                            )
                        with w.block("elif slot.btype == 1:"):
                            w.line("slot.stabl_ctr = -1")
                    else:
                        with w.block("if slot.btype == 1:"):
                            w.line("slot.stabl_ctr = -1")
            with w.block("if res == 0:"):
                w.lines("pc += 4", "continue")
            with w.block("if res == 1:"):
                with w.block(
                    "if (slot is not None and slot.follow and entry is not None "
                    "and slot.blk_id + 1 < len(entry.blocks) "
                    "and entry.blocks[slot.blk_id + 1][0] == target):"
                ):
                    w.lines(
                        "blk = slot.blk_id + 1",
                        "pc = target",
                        "bs_, bl_ = entry.blocks[blk]",
                        "end_pc = bs_ + bl_ * 4",
                        "blocks += 1",
                        "continue",
                    )
                self._redirect_bubbles(w)
                w.lines("acc_bubbles = bubbles", "break")
            w.lines("acc_event = res", "acc_ei = j", "break")
        if cfg.split_bubble:
            with w.block("else:"):
                w.line(
                    f"acc_bubbles = {cfg.split_bubble} "
                    "if (entry is not None and entry.split) else 0"
                )

    # -- FTQ push via line-run segmentation -------------------------------

    def emit_access_commit(self, w: _Writer) -> None:
        """Segment the covered indices into cache lines by jumping
        between ``run_end`` boundaries instead of comparing per-PC line
        indices; pushes and prefetches are unchanged."""
        with w.block("if count > 0:"):
            w.lines("c_acc += 1", "c_fpc += count", "c_bpa += blocks")
            w.lines("seg_start = i_pcgen", "end_ = i_pcgen + count")
            with w.block("while True:"):
                w.line("seg_line = line_ix[seg_start]")
                w.line("re_ = run_end[seg_start]")
                w.line("nxt = re_ if re_ < end_ else end_")
                w.line("seg_count = nxt - seg_start")
                with w.block("if nxt >= end_:"):
                    w.line("break")
                w.line(
                    "ftq_append([seg_line, seg_start, seg_count, cycle, 0 if ftq else 1])"
                )
                self._emit_fdip_prefetch(w, "seg_line")
                w.line("seg_start = nxt")
            w.line(
                "ftq_append([seg_line, seg_start, seg_count, cycle, 0 if ftq else 1])"
            )
            self._emit_fdip_prefetch(w, "seg_line")
            w.line("i_pcgen += count")
            with w.block("if acc_event:"):
                w.lines("pending_events[acc_ei] = acc_event", "pcgen_stalled = True")
            with w.block("else:"):
                w.line("pcgen_ready = cycle + 1 + acc_bubbles")
        with w.block("else:"):
            w.line("i_pcgen = n")

    # -- finalization -----------------------------------------------------

    def _emit_finalize(self, w: _Writer) -> None:
        """Identical to the parent finalize except that there is no live
        predictor state to write back (the plan owns that evolution;
        the engine's predictor objects were never touched)."""
        p = self.plan
        w.line("backend._last_commit = last_commit")
        if not p.ideal_backend:
            w.lines(
                "backend._loads = nloads",
                "backend._stores = nstores",
                "backend._count += admitted",
            )
        w.line("sc = st._counters")
        w.line("measured = {}")
        for local, name in COUNTERS:
            if name == "btb_taken_l2_hits" and not p.has_l2:
                continue
            with w.block(f"if c_{local}:"):
                w.line(f'sc["{name}"] = sc.get("{name}", 0.0) + c_{local}')
                w.line(f'measured["{name}"] = float(c_{local} - w_{local})')
        w.line("structure = {}")
        with w.block("if sample_structure:"):
            w.line('structure["l1_slot_occupancy"] = btb.slot_occupancy(1)')
            w.line('structure["l1_redundancy"] = btb.redundancy_ratio(1)')
            if p.has_l2:
                w.line('structure["l2_slot_occupancy"] = btb.slot_occupancy(2)')
                w.line('structure["l2_redundancy"] = btb.redundancy_ratio(2)')
        # Division-by-zero guard: a warmup-only window would leave
        # cyc == 0; clamp exactly as the interpreter does.
        w.line("cyc = last_commit - warm_commit")
        with w.block("if cyc < 1:"):
            w.line("cyc = 1")
        w.line("return SimResult(")
        w.line("    name=tr.name,")
        w.line("    instructions=n - warmup,")
        w.line("    cycles=cyc,")
        w.line("    stats=measured,")
        w.line("    structure=structure,")
        w.line(")")
