"""Kernel compilation, selection and the per-config kernel cache.

``get_kernel(config)`` runs the pass pipeline (GenDAG -> Schedule ->
Codegen), ``compile()``s the generated source and memoizes the result by
a content-hash of the kernel-relevant config fields — two configs built
independently with the same fields share one kernel, and re-running a
sweep over a config family compiles each distinct shape exactly once.

Engine selection is environment-driven: ``REPRO_KERNEL=compiled``
(default) uses the specialized kernels where supported and falls back to
the reference interpreter elsewhere; ``REPRO_KERNEL=interp`` forces the
interpreter everywhere. Results are bit-identical either way, so the
knob never enters result-cache keys (see ``repro.core.exec.cachekey``).
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from repro.core.exec.cachekey import digest
from repro.core.passes.codegen import CodegenPass
from repro.core.passes.dag import GenDAGPass, KernelPlan
from repro.core.passes.schedule import Schedule, SchedulePass

#: Valid values of the ``REPRO_KERNEL`` environment variable.
KERNEL_MODES = ("compiled", "interp", "batched")

#: Environment variable selecting the engine.
KERNEL_ENV = "REPRO_KERNEL"

#: Version of the codegen. Bumping it invalidates the in-process kernel
#: cache keys; it deliberately does NOT touch ``CACHE_SCHEMA`` because
#: kernels produce bit-identical results — persisted sweep results stay
#: valid across kernel changes.
KERNEL_SCHEMA = 2

#: BTB organizations the codegen knows how to specialize. The
#: heterogeneous hierarchy keeps its own storage scheme and stays on the
#: reference interpreter.
SUPPORTED_KINDS = ("ibtb", "rbtb", "bbtb", "mbbtb")


class KernelConfigError(ValueError):
    """Malformed engine selection (bad ``REPRO_KERNEL`` value)."""


def kernel_mode(env: Optional[Dict[str, str]] = None) -> str:
    """Resolve the engine mode from the environment.

    Raises :class:`KernelConfigError` on a malformed value so CLIs can
    exit with a one-line configuration error instead of silently running
    the wrong engine.
    """
    source = env if env is not None else os.environ
    raw = source.get(KERNEL_ENV)
    if raw is None or raw == "":
        return "compiled"
    mode = raw.strip().lower()
    if mode not in KERNEL_MODES:
        choices = "|".join(KERNEL_MODES)
        raise KernelConfigError(
            f"invalid {KERNEL_ENV}={raw!r} (expected {choices})"
        )
    return mode


def supports(config) -> bool:
    """True when the pass pipeline can specialize *config*."""
    return (
        config is not None
        and getattr(config, "btb_kind", None) in SUPPORTED_KINDS
    )


@dataclass(frozen=True)
class CompiledKernel:
    """One compiled per-config run function plus its provenance."""

    key: str
    source: str
    fn: Callable
    plan: KernelPlan
    schedule: Schedule


_CACHE: Dict[str, CompiledKernel] = {}
_HITS = 0
_MISSES = 0


def kernel_key(config) -> str:
    """Content-hash key of the kernel *config* elaborates to.

    The label is excluded: it never reaches the generated code, so
    renamed-but-identical configs share one kernel.
    """
    return digest(
        {
            "kind": "kernel",
            "schema": KERNEL_SCHEMA,
            "config": replace(config, label=""),
        }
    )


def get_kernel(config) -> CompiledKernel:
    """Compiled kernel for *config*, building it on first use."""
    global _HITS, _MISSES
    if not supports(config):
        raise KernelConfigError(
            f"config {getattr(config, 'label', config)!r} is not compilable "
            f"(btb_kind must be one of {SUPPORTED_KINDS})"
        )
    key = kernel_key(config)
    kernel = _CACHE.get(key)
    if kernel is not None:
        _HITS += 1
        return kernel
    _MISSES += 1
    plan = GenDAGPass()(config)
    schedule = SchedulePass()(plan)
    source = CodegenPass()(plan, schedule)
    namespace = _exec_namespace()
    code = compile(source, f"<kernel:{config.label}>", "exec")
    exec(code, namespace)
    kernel = CompiledKernel(
        key=key,
        source=source,
        fn=namespace["kernel_run"],
        plan=plan,
        schedule=schedule,
    )
    _CACHE[key] = kernel
    return kernel


def get_batch_kernel(config) -> CompiledKernel:
    """Batched (plan-consuming) kernel variant for *config*.

    Same pass pipeline as :func:`get_kernel` with
    :class:`~repro.core.passes.batch.BatchPass` as the codegen stage;
    cached separately (a ``variant`` discriminator joins the key) so the
    compiled and batched variants of one config coexist.
    """
    global _HITS, _MISSES
    if not supports(config):
        raise KernelConfigError(
            f"config {getattr(config, 'label', config)!r} is not compilable "
            f"(btb_kind must be one of {SUPPORTED_KINDS})"
        )
    key = digest(
        {
            "kind": "kernel",
            "schema": KERNEL_SCHEMA,
            "variant": "batched",
            "config": replace(config, label=""),
        }
    )
    kernel = _CACHE.get(key)
    if kernel is not None:
        _HITS += 1
        return kernel
    _MISSES += 1
    from repro.core.passes.batch import BatchPass

    plan = GenDAGPass()(config)
    schedule = SchedulePass()(plan)
    source = BatchPass()(plan, schedule)
    namespace = _exec_namespace()
    code = compile(source, f"<batch-kernel:{config.label}>", "exec")
    exec(code, namespace)
    kernel = CompiledKernel(
        key=key,
        source=source,
        fn=namespace["kernel_run"],
        plan=plan,
        schedule=schedule,
    )
    _CACHE[key] = kernel
    return kernel


_GEOMETRY_MEMO: Dict[int, object] = {}


def batch_geometry(config):
    """Predictor geometry of the batch family *config* belongs to.

    Derived through the same elaboration the kernel plan uses (so a plan
    built for this geometry is exact for every config mapping here) and
    memoized by the only config field the predictors depend on.
    """
    from repro.trace.columnar import PredictorGeometry

    geom = _GEOMETRY_MEMO.get(config.bp_size_kb)
    if geom is None:
        plan = GenDAGPass()(config)
        geom = PredictorGeometry(
            ptable_mask=plan.ptable_mask,
            theta=plan.theta,
            ind_mask=plan.ind_mask,
            ras_depth=plan.ras_depth,
        )
        _GEOMETRY_MEMO[config.bp_size_kb] = geom
    return geom


def _exec_namespace() -> Dict[str, object]:
    # Imported here (not at module top) to avoid a circular import:
    # repro.core.simulator lazily imports this package for dispatch.
    from repro.core.simulator import SimResult

    return {
        "SimResult": SimResult,
        "deque": deque,
        "OrderedDict": OrderedDict,
    }


def kernel_cache_info() -> Dict[str, int]:
    """In-process kernel cache statistics (for benchmarks/diagnostics)."""
    return {"entries": len(_CACHE), "hits": _HITS, "misses": _MISSES}


def kernel_cache_clear() -> None:
    """Drop all compiled kernels (test/benchmark isolation)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0
