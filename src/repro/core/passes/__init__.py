"""Pass pipeline that compiles specialized per-config simulation kernels.

The interpreter in :mod:`repro.core.simulator` re-branches on the full
:class:`~repro.core.config.MachineConfig` every cycle. This package
removes that overhead the way pymtl3's pass pipeline does for RTL
models — elaborate once, schedule statically, generate a specialized
tick — except the "tick" here is the whole cycle loop:

1. :class:`~repro.core.passes.dag.GenDAGPass` elaborates the config
   into a :class:`~repro.core.passes.dag.KernelPlan`: the component DAG
   (PC-gen/BTB access, FTQ push, FDIP prefetch, fetch, backend admit,
   d-side memory, obs probe) with dead components marked, plus every
   structural constant (masks, latencies, fold geometry) hoisted out of
   the hardware objects the config would build.
2. :class:`~repro.core.passes.schedule.SchedulePass` topologically
   sorts the live components into the static per-cycle order.
3. :class:`~repro.core.passes.codegen.CodegenPass` walks the schedule
   and emits Python source for one specialized run function: config
   values become literals, attribute lookups become locals, probe hooks
   vanish entirely, and dead components contribute no code.
4. :mod:`~repro.core.passes.kernel` ``compile()``s the source and
   caches the kernel by config content-hash.

The compiled kernel *reuses the reference hardware state objects*
(BTB stores, predictor tables, caches) and only inlines their hot
paths; rare mutations (allocate, L2 promote, split, pull) call the
reference methods on the same objects, so results are bit-identical to
the interpreter by construction — and the differential golden tests
(tests/kernel/) verify it.
"""

from repro.core.passes.dag import GenDAGPass, KernelPlan
from repro.core.passes.kernel import (
    CompiledKernel,
    KernelConfigError,
    KERNEL_MODES,
    get_kernel,
    kernel_cache_info,
    kernel_mode,
    supports,
)
from repro.core.passes.schedule import SchedulePass
from repro.core.passes.codegen import CodegenPass

__all__ = [
    "CodegenPass",
    "CompiledKernel",
    "GenDAGPass",
    "KERNEL_MODES",
    "KernelConfigError",
    "KernelPlan",
    "SchedulePass",
    "get_kernel",
    "kernel_cache_info",
    "kernel_mode",
    "supports",
]
