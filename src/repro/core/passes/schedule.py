"""SchedulePass: static per-cycle ordering of the live components.

Kahn topological sort over the port-derived DAG, with declaration order
as the tie-breaker so the schedule reproduces the reference
interpreter's program order exactly. The result is a :class:`Schedule`
whose top-level entries (components with an ``emitter``) drive
:class:`~repro.core.passes.codegen.CodegenPass`; nested components are
emitted inside their parent and appear in :attr:`Schedule.order` for
introspection only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.passes.components import Component
from repro.core.passes.dag import KernelPlan


@dataclass(frozen=True)
class Schedule:
    """The static stage order for one config's cycle function."""

    #: Every live component, topologically ordered.
    order: Tuple[Component, ...]
    #: The subset with emitters, in emission order.
    emitted: Tuple[Component, ...]

    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.order)


class ScheduleError(RuntimeError):
    """The component DAG has a cycle (a declaration bug)."""


class SchedulePass:
    def __call__(self, plan: KernelPlan) -> Schedule:
        components = plan.components
        decl_pos = {c.name: i for i, c in enumerate(components)}
        by_name = {c.name: c for c in components}
        remaining = {c.name: set(plan.edges.get(c.name, ())) for c in components}
        ordered: List[Component] = []
        while remaining:
            ready = sorted(
                (name for name, deps in remaining.items() if not deps),
                key=decl_pos.__getitem__,
            )
            if not ready:
                stuck = ", ".join(sorted(remaining))
                raise ScheduleError(f"component DAG has a cycle among: {stuck}")
            for name in ready:
                ordered.append(by_name[name])
                del remaining[name]
            for deps in remaining.values():
                deps.difference_update(ready)
        emitted = tuple(c for c in ordered if c.emitter)
        return Schedule(order=tuple(ordered), emitted=emitted)
