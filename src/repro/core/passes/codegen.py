"""CodegenPass: emit specialized Python source for one config's run loop.

The generated function reproduces :meth:`Simulator.run` exactly for one
:class:`MachineConfig`, with every configuration branch resolved at
generation time:

* config values are literals (masks, latencies, widths, thresholds);
* attribute lookups are flattened to locals bound once in the prelude;
* the probe, the L2 BTB level (ideal configs), the R-BTB overflow pool,
  the d-side memory (ideal backend) and other dead components emit no
  code at all;
* the hashed perceptron, folded-history updates and the per-kind BTB
  scan are fully unrolled/inlined.

Bit-identity strategy: the kernel operates on the *same hardware state
objects* the interpreter would use (``sim.btb``, ``sim.engine``,
``sim.memory``, ``sim.backend``). Hot paths are inlined against their
internals (set-dicts, weight tables, ring buffers); rare paths
(allocate, L2 promote, split/pull, cache miss) call the reference
methods on those objects. Inlined fast paths are written so that a
fall-through to the reference method re-executes only side-effect-free
probes (a failed ``dict.get`` has no LRU effect), which keeps LRU tick
sequencing and replacement decisions identical to the interpreter.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.passes.dag import KernelPlan
from repro.core.passes.schedule import Schedule

MASK64 = (1 << 64) - 1
_HASH_K = 0x9E3779B97F4A7C15
_HASH_MUL = 0xBF58476D1CE4E5B9

#: (local suffix, stats counter name), in writeback order. The measured
#: dict includes a key iff its end-of-run total is > 0, matching the
#: interpreter (counters only ever increment).
COUNTERS = (
    ("acc", "btb_accesses"),
    ("fpc", "fetch_pcs"),
    ("bpa", "blocks_per_access"),
    ("dbr", "dyn_branches"),
    ("dtk", "dyn_taken_branches"),
    ("tlk", "btb_taken_lookups"),
    ("l1h", "btb_taken_l1_hits"),
    ("l2h", "btb_taken_l2_hits"),
    ("mp", "mispredicts"),
    ("mpc", "mispredicts_cond"),
    ("mpcu", "mispredicts_cond_untracked"),
    ("mf", "misfetches"),
    ("mpr", "mispredicts_return"),
    ("mpiu", "mispredicts_ind_untracked"),
    ("mpi", "mispredicts_indirect"),
)


class _Writer:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._level = 0

    def line(self, text: str = "") -> None:
        self._lines.append(("    " * self._level + text) if text else "")

    def lines(self, *texts: str) -> None:
        for t in texts:
            self.line(t)

    def push(self) -> None:
        self._level += 1

    def pop(self) -> None:
        self._level -= 1

    def block(self, header: str) -> "_Block":
        self.line(header)
        return _Block(self)

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


class _Block:
    def __init__(self, writer: _Writer) -> None:
        self._w = writer

    def __enter__(self) -> "_Block":
        self._w.push()
        return self

    def __exit__(self, *exc) -> None:
        self._w.pop()


def _pow2(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _ring_index(expr: str, size: int) -> str:
    """Modulo by a ring size, strength-reduced for powers of two."""
    if _pow2(size):
        return f"{expr} & {size - 1}"
    return f"{expr} % {size}"


class CodegenPass:
    """Generate the specialized run-function source for one plan."""

    def __call__(self, plan: KernelPlan, schedule: Schedule) -> str:
        self.plan = plan
        w = _Writer()
        cfg = plan.config
        w.line(f"# compiled kernel for config {cfg.label!r} (btb_kind={cfg.btb_kind})")
        w.line(f"# schedule: {' -> '.join(schedule.names())}")
        if plan.elided:
            w.line(f"# elided components: {', '.join(plan.elided)}")
        w.line()
        with w.block("def kernel_run(sim, warmup, sample_structure):"):
            self._emit_prelude(w)
            with w.block("while admitted < n:"):
                for comp in schedule.emitted:
                    w.line(f"# -- component: {comp.name} " + "-" * 20)
                    getattr(self, comp.emitter)(w)
                self._emit_cycle_advance(w)
            self._emit_finalize(w)
        return w.source()

    # -- prelude: bind everything to locals ------------------------------

    def _emit_prelude(self, w: _Writer) -> None:
        p = self.plan
        w.lines(
            "tr = sim.trace",
            "n = len(tr.pc)",
            "if warmup >= n:",
            "    raise ValueError(\"warmup must be smaller than the trace\")",
            "pcs = tr.pc",
            "btypes = tr.btype",
            "takens = tr.taken",
            "targets = tr.target",
            "dsts = tr.dst",
            "src1s = tr.src1",
            "src2s = tr.src2",
            "loads_col = tr.is_load",
            "stores_col = tr.is_store",
            "maddrs = tr.maddr",
            "line_ix = tr.line_index()",
            "btb = sim.btb",
            "engine = sim.engine",
            "st = engine.stats",
        )
        # Engine internals. The geometry asserts catch a Simulator wired
        # with hardware that does not match its declared config.
        w.lines(
            "perc = engine.perceptron",
            f"if perc.table_entries != {p.ptable_mask + 1}:",
            "    raise RuntimeError(\"compiled kernel/config mismatch: perceptron\")",
        )
        for t in range(16):
            w.line(f"ptab{t} = perc.tables[{t}]")
        w.lines("hist = engine.history", "hbits = hist.bits", "ind = engine.indirect")
        for fs in p.folds:
            w.line(f"{fs.local} = {fs.attr_path}.value")
        w.lines(
            "itab = ind._targets",
            f"if len(itab) != {p.ind_mask + 1}:",
            "    raise RuntimeError(\"compiled kernel/config mismatch: indirect\")",
            "ras = engine.ras._stack",
        )
        # BTB internals.
        w.lines(
            "store = btb.store",
            "l1arr = store.l1",
            f"if l1arr.sets != {p.l1_set_mask + 1}:",
            "    raise RuntimeError(\"compiled kernel/config mismatch: btb geometry\")",
            "l1_sets = l1arr._sets",
        )
        if p.has_l2:
            w.line("store_lookup = store.lookup")
        kind = p.btb_kind
        if kind == "ibtb":
            w.line("ibtb_train = btb._train")
        elif kind == "rbtb":
            w.line("rb_train = btb._train")
            if self._rb_overflow():
                w.lines("ovf_arr = btb.overflow", "ovf_set = ovf_arr._sets[0]")
        elif kind == "bbtb":
            w.line("bb_train = btb._train_branch")
        elif kind == "mbbtb":
            w.lines("mb_train = btb._train_branch", "mb_update = btb._update_slot")
        # Memory internals (always present in compiled runs).
        w.lines(
            "mem = sim.memory",
            "itlb_arr = mem.itlb.array",
            "itlb_sets = itlb_arr._sets",
            "itlb_translate = mem.itlb.translate",
            "l1i = mem.l1i",
            "l1i_arr = l1i.array",
            "l1i_sets = l1i_arr._sets",
            "l1i_pending = l1i._pending",
            "l1i_access = l1i.access",
            "l1i_prefetch = l1i.prefetch",
            f"if (l1i_arr.sets != {p.l1i_set_mask + 1} or l1i.latency != {p.l1i_latency}"
            f" or itlb_arr.sets != {p.itlb_set_mask + 1}"
            f" or mem.itlb.latency != {p.itlb_latency}):",
            "    raise RuntimeError(\"compiled kernel/config mismatch: memory\")",
        )
        # Backend internals.
        w.line("backend = sim.backend")
        if p.ideal_backend:
            w.lines(
                "reg_ready = backend._reg_ready",
                "commit_ring = backend._commit_ring",
                f"if len(commit_ring) != {p.bk_window}:",
                "    raise RuntimeError(\"compiled kernel/config mismatch: backend\")",
            )
        else:
            w.lines(
                "reg_ready = backend._reg_ready",
                "commit_ring = backend._commit_ring",
                "cw_ring = backend._commit_width_ring",
                "disp_ring = backend._dispatch_width_ring",
                "fq_ring = backend._fq_ring",
                "load_ring = backend._load_ring",
                "store_ring = backend._store_ring",
                "nloads = backend._loads",
                "nstores = backend._stores",
                f"if (len(commit_ring) != {p.bk_rob} or len(disp_ring) != {p.bk_width}"
                f" or len(fq_ring) != {p.bk_fq} or len(load_ring) != {p.bk_load_ports}"
                f" or len(store_ring) != {p.bk_store_ports}):",
                "    raise RuntimeError(\"compiled kernel/config mismatch: backend\")",
                # d-side memory (live only with the OoO backend)
                "dtlb_arr = mem.dtlb.array",
                "dtlb_sets = dtlb_arr._sets",
                "dtlb_translate = mem.dtlb.translate",
                "l1d = mem.l1d",
                "l1d_arr = l1d.array",
                "l1d_sets = l1d_arr._sets",
                "l1d_pending = l1d._pending",
                "l1d_access = l1d.access",
                "l1d_prefetch = l1d.prefetch",
                "dstride = mem.dstride",
                "dstab = dstride._table",
                f"if (l1d_arr.sets != {p.l1d_set_mask + 1} or l1d.latency != {p.l1d_latency}"
                f" or dtlb_arr.sets != {p.dtlb_set_mask + 1}"
                f" or mem.dtlb.latency != {p.dtlb_latency}"
                f" or dstride.table_entries != {p.dstride_entries}"
                f" or dstride.degree != {p.dstride_degree}):",
                "    raise RuntimeError(\"compiled kernel/config mismatch: memory\")",
            )
        # Per-run queues and loop state.
        w.lines(
            "ftq = deque()",
            "ftq_append = ftq.append",
            "ftq_popleft = ftq.popleft",
            "line_avail = OrderedDict()",
            "line_avail_get = line_avail.get",
            "line_avail_touch = line_avail.move_to_end",
            "line_avail_evict = line_avail.popitem",
            "pending_events = {}",
            f"HM = (1 << 256) - 1",
            "cycle = 0",
            "i_pcgen = 0",
            "admitted = 0",
            "acc_cycle = -1",
            "pcgen_ready = 0",
            "pcgen_stalled = False",
            "last_commit = backend._last_commit",
            "warm_commit = 0",
            "warm_done = warmup == 0",
            "max_cycles = 1000 + n * 64",
        )
        for local, _name in COUNTERS:
            w.line(f"c_{local} = 0")
        for local, _name in COUNTERS:
            w.line(f"w_{local} = 0")

    def _rb_overflow(self) -> bool:
        cfg = self.plan.config
        return cfg.btb_kind == "rbtb" and cfg.overflow_entries > 0

    # -- shared emitters --------------------------------------------------

    def _emit_hash(self, w: _Writer, out: str, value_expr: str) -> None:
        """Inline mix_hash for a single value."""
        w.line(f"{out} = ({_HASH_K} ^ {value_expr} & {MASK64}) * {_HASH_MUL} & {MASK64}")
        w.line(f"{out} ^= {out} >> 29")

    def _emit_history_push(self, w: _Writer, bit: str) -> None:
        """Unrolled GlobalHistory.push for all registered folds."""
        for fs in self.plan.folds:
            wm = (1 << fs.width) - 1
            w.line(
                f"v = (({fs.local} << 1) | {bit}) ^ "
                f"(((hbits >> {fs.length - 1}) & 1) << {fs.out_pos})"
            )
            w.line(f"v ^= v >> {fs.width}")
            w.line(f"{fs.local} = v & {wm}")
        w.line(f"hbits = ((hbits << 1) | {bit}) & HM")

    def _emit_note_btb(self, w: _Writer, lvl_expr: str) -> None:
        """Inline PredictionEngine.note_btb (taken branches only)."""
        with w.block("if taken:"):
            w.line("c_tlk += 1")
            with w.block(f"if {lvl_expr} == 1:"):
                w.line("c_l1h += 1")
            if self.plan.has_l2:
                with w.block(f"elif {lvl_expr} == 2:"):
                    w.line("c_l2h += 1")

    def _emit_ras_push(self, w: _Writer) -> None:
        w.line(f"if len(ras) >= {self.plan.ras_depth}:")
        w.line("    del ras[0]")
        w.line("ras.append(pc + 4)")

    def _emit_resolve(self, w: _Writer) -> None:
        """Inline PredictionEngine.resolve.

        Inputs: pc, bt, taken, target, known, slot. Output: res with
        0=seq, 1=redirect, 2=misfetch, 3=mispredict.
        """
        p = self.plan
        pm = p.ptable_mask
        w.line("c_dbr += 1")
        with w.block("if taken:"):
            w.line("c_dtk += 1")
        with w.block("if bt == 1:"):  # COND_DIRECT
            # perceptron.predict — one fused expression: no index locals
            # on the (hot) no-train path; the train arm recomputes each
            # index from h and the fold locals, which are unchanged until
            # the history push below.
            self._emit_hash(w, "h", "pc")
            index = [f"h & {pm}"]
            index += [f"(h ^ pf{t} ^ {t << 3}) & {pm}" for t in range(1, 16)]
            w.line(
                "total = "
                + " + ".join(f"ptab{t}[{ix}]" for t, ix in enumerate(index))
            )
            w.line("pt = total >= 0")
            # perceptron.update (skip iff pt == taken and abs(total) > theta)
            with w.block(
                f"if pt != taken or ({-p.theta} <= total <= {p.theta}):"
            ):
                with w.block("if taken:"):
                    for t, ix in enumerate(index):
                        w.line(f"i = {ix}")
                        w.line(f"wt = ptab{t}[i] + 1")
                        w.line("if wt < 128:")
                        w.line(f"    ptab{t}[i] = wt")
                with w.block("else:"):
                    for t, ix in enumerate(index):
                        w.line(f"i = {ix}")
                        w.line(f"wt = ptab{t}[i] - 1")
                        w.line("if wt > -129:")
                        w.line(f"    ptab{t}[i] = wt")
            # history.push(taken)
            w.line("hb = 1 if taken else 0")
            self._emit_history_push(w, "hb")
            with w.block("if not known:"):
                with w.block("if taken:"):
                    w.lines("c_mp += 1", "c_mpcu += 1", "res = 3")
                with w.block("else:"):
                    w.line("res = 0")
            with w.block("elif pt != taken:"):
                w.lines("c_mp += 1", "c_mpc += 1", "res = 3")
            with w.block("else:"):
                w.line("res = 1 if taken else 0")
        with w.block("else:"):
            # All remaining types are unconditionally taken.
            self._emit_history_push(w, "1")
            with w.block("if bt == 2 or bt == 3:"):  # UNCOND_DIRECT / CALL_DIRECT
                with w.block("if bt == 3:"):
                    self._emit_ras_push(w)
                with w.block("if known:"):
                    w.line("res = 1")
                with w.block("else:"):
                    w.lines("c_mf += 1", "res = 2")
            with w.block("elif bt == 4:"):  # RETURN
                with w.block("if ras:"):
                    w.line("ras_ok = ras.pop() == target")
                with w.block("else:"):
                    w.line("ras_ok = False")
                with w.block("if not ras_ok:"):
                    w.lines("c_mp += 1", "c_mpr += 1", "res = 3")
                with w.block("elif known:"):
                    w.line("res = 1")
                with w.block("else:"):
                    w.lines("c_mf += 1", "res = 2")
            with w.block("else:"):  # INDIRECT / CALL_INDIRECT
                self._emit_hash(w, "h2", "pc")
                w.line(f"ii = (h2 ^ jf) & {p.ind_mask}")
                w.line("predicted = itab[ii]")
                with w.block("if predicted == 0 and known:"):
                    w.line("predicted = slot.target")
                w.line("itab[ii] = target")
                with w.block("if bt == 6:"):
                    self._emit_ras_push(w)
                with w.block("if not known:"):
                    w.lines("c_mp += 1", "c_mpiu += 1", "res = 3")
                with w.block("elif predicted != target:"):
                    w.lines("c_mp += 1", "c_mpi += 1", "res = 3")
                with w.block("else:"):
                    w.line("res = 1")

    def _emit_store_lookup(self, w: _Writer, key_expr: str) -> None:
        """Inline TwoLevelStore.lookup -> (lvl, entry).

        L1 hit is inlined (touch included); L1 miss falls through to the
        reference method, whose internal L1 re-probe is a side-effect-free
        dict miss. Single-level stores elide the L2 path entirely.
        """
        p = self.plan
        w.line(f"sk = ({key_expr}) >> {p.index_shift}")
        w.line(f"se = l1_sets[sk & {p.l1_set_mask}].get(sk)")
        with w.block("if se is not None:"):
            w.lines(
                "l1arr._tick = stt = l1arr._tick + 1",
                "se[1] = stt",
                "lvl = 1",
                "entry = se[0]",
            )
        with w.block("else:"):
            if p.has_l2:
                w.line(f"lvl, entry = store_lookup({key_expr})")
            else:
                w.lines("lvl = 0", "entry = None")

    # -- cycle advance -----------------------------------------------------

    def _emit_cycle_advance(self, w: _Writer) -> None:
        """Advance time, skipping provably-idle cycles in one jump.

        A cycle where PC generation did not fire (``acc_cycle != cycle``)
        and fetch took nothing (``lines_used == 0``) changes no simulator
        state except an idempotent LRU touch of the blocked head line, so
        the interpreter's cycle-by-cycle spin through a stall is
        observationally a no-op until the earliest of: PC generation's
        resteer release (``pcgen_ready``), the FTQ head becoming
        consumable, its fetch-gate slot freeing, or its I-cache line
        arriving. All of those times are already known and none can move
        while the machine is idle, so jumping straight to the minimum is
        bit-identical to spinning — including the wedge diagnostic, which
        still fires at exactly ``max_cycles + 1``.
        """
        p = self.plan
        if p.ideal_backend:
            gate_ring, gate_n = "commit_ring", p.bk_window
        else:
            gate_ring, gate_n = "fq_ring", p.bk_fq
        with w.block("if lines_used or acc_cycle == cycle:"):
            w.line("cycle += 1")
        with w.block("else:"):
            w.line("nxt = max_cycles + 1")
            with w.block(
                f"if i_pcgen < n and pcgen_ready > cycle and not pcgen_stalled "
                f"and len(ftq) < {p.ftq_entries}:"
            ):
                w.line("nxt = pcgen_ready")
            with w.block("if ftq:"):
                w.line("head = ftq[0]")
                w.line("t = head[3]")
                with w.block("if not head[4]:"):
                    w.line("t += 1")
                w.line("first = head[1]")
                with w.block(f"if first >= {gate_n}:"):
                    w.line(f"g = {gate_ring}[{_ring_index('first', gate_n)}]")
                    with w.block("if g > t:"):
                        w.line("t = g")
                w.line("av = line_avail_get(head[0])")
                with w.block("if av is not None and av > t:"):
                    w.line("t = av")
                with w.block("if t < nxt:"):
                    w.line("nxt = t")
            with w.block("if nxt > max_cycles:"):
                w.line("nxt = max_cycles + 1")
            w.line("cycle = nxt if nxt > cycle else cycle + 1")
        with w.block("if cycle > max_cycles:"):
            w.line("raise RuntimeError(")
            w.line("    f\"simulator wedged at cycle {cycle} \"")
            w.line("    f\"(admitted {admitted}/{n}, ftq={len(ftq)})\"")
            w.line(")")

    # -- PC generation ----------------------------------------------------

    def emit_pcgen(self, w: _Writer) -> None:
        p = self.plan
        with w.block(
            f"if i_pcgen < n and not pcgen_stalled and cycle >= pcgen_ready "
            f"and len(ftq) < {p.ftq_entries}:"
        ):
            w.line("acc_cycle = cycle")
            w.lines("count = 0", "blocks = 1", "acc_event = 0", "acc_ei = -1", "acc_bubbles = 0")
            getattr(self, f"_emit_scan_{p.btb_kind}")(w)
            w.line("# -- component: pcgen.ftq_push " + "-" * 20)
            self.emit_access_commit(w)

    def _redirect_bubbles(self, w: _Writer) -> None:
        """Common REDIRECT bubble computation (Fig. 3 penalties)."""
        p = self.plan
        if p.has_l2:
            w.line(f"bubbles = 3 if lvl == 2 else {p.config.l1_taken_bubble}")
        else:
            w.line(f"bubbles = {p.config.l1_taken_bubble}")
        with w.block("if bt == 5 or bt == 6:"):
            w.line("bubbles += 1")

    def _emit_scan_ibtb(self, w: _Writer) -> None:
        cfg = self.plan.config
        w.line("pc = pcs[i_pcgen]")
        with w.block(f"while count < {cfg.width}:"):
            w.line("j = i_pcgen + count")
            with w.block("if j >= n:"):
                w.line("break")
            w.line("bt = btypes[j]")
            w.line("count += 1")
            with w.block("if bt == 0:"):
                w.lines("pc += 4", "continue")
            self._emit_store_lookup(w, "pc")
            w.line("slot = entry")
            w.lines("known = slot is not None", "taken = takens[j] == 1", "target = targets[j]")
            self._emit_note_btb(w, "lvl")
            self._emit_resolve(w)
            with w.block("if taken:"):
                with w.block("if slot is None:"):
                    w.line("ibtb_train(pc, bt, True, target, None)")
                with w.block("else:"):
                    w.line("slot.target = target")
            with w.block("if res == 0:"):
                w.lines("pc += 4", "continue")
            with w.block("if res == 1:"):
                self._redirect_bubbles(w)
                if cfg.skip_taken:
                    w.lines("pc = target", "blocks += 1", "continue")
                else:
                    w.lines("acc_bubbles = bubbles", "break")
            w.lines("acc_event = res", "acc_ei = j", "break")

    def _emit_scan_rbtb(self, w: _Writer) -> None:
        p = self.plan
        cfg = p.config
        rb = cfg.region_bytes
        overflow = self._rb_overflow()
        interleaved = cfg.interleaved
        w.line("pc = pcs[i_pcgen]")
        w.line("btb._tick = rb_tick = btb._tick + 1")
        if interleaved:
            w.line("done = False")
            outer = w.block("for _rno in range(2):")
            outer.__enter__()
        # pc & -region_bytes == pc & ~(region_bytes - 1)
        w.line(f"region = pc & -{rb}")
        if interleaved:
            with w.block("if _rno:"):
                w.line(f"pk = region >> {p.index_shift}")
                with w.block(f"if pk not in l1_sets[pk & {p.l1_set_mask}]:"):
                    w.line("break")
        self._emit_store_lookup(w, "region")
        w.line(f"region_end = region + {rb}")
        with w.block("while pc < region_end:"):
            w.line("j = i_pcgen + count")
            with w.block("if j >= n:"):
                if interleaved:
                    w.line("done = True")
                w.line("break")
            w.line("bt = btypes[j]")
            w.line("count += 1")
            with w.block("if bt == 0:"):
                w.lines("pc += 4", "continue")
            w.lines("slot = None", "from_overflow = False")
            with w.block("if entry is not None:"):
                w.line("spos = 0")
                with w.block("for s_ in entry.slots:"):
                    with w.block("if s_.pc == pc:"):
                        w.lines("slot = s_", "break")
                    w.line("spos += 1")
                with w.block("if slot is not None:"):
                    w.line("entry.ticks[spos] = rb_tick")
                if overflow:
                    with w.block("else:"):
                        w.line("oe = ovf_set.get(pc)")
                        with w.block("if oe is not None:"):
                            w.lines(
                                "ovf_arr._tick = ovt = ovf_arr._tick + 1",
                                "oe[1] = ovt",
                                "slot = oe[0]",
                                "from_overflow = True",
                            )
            w.lines("known = slot is not None", "taken = takens[j] == 1", "target = targets[j]")
            w.line("nlvl = lvl if known else 0")
            self._emit_note_btb(w, "nlvl")
            self._emit_resolve(w)
            with w.block("if taken:"):
                with w.block("if slot is not None:"):
                    w.line("slot.target = target")
                with w.block("else:"):
                    w.line("rb_train(region, entry, pc, bt, True, target, None)")
            with w.block("if res == 0:"):
                w.lines("pc += 4", "continue")
            with w.block("if res == 1:"):
                if p.has_l2:
                    w.line(f"bubbles = 3 if lvl == 2 else {cfg.l1_taken_bubble}")
                else:
                    w.line(f"bubbles = {cfg.l1_taken_bubble}")
                if overflow:
                    with w.block("if from_overflow:"):
                        w.line(f"bubbles += {p.rb_overflow_bubble}")
                with w.block("if bt == 5 or bt == 6:"):
                    w.line("bubbles += 1")
                w.line("acc_bubbles = bubbles")
                if interleaved:
                    w.line("done = True")
                w.line("break")
            w.lines("acc_event = res", "acc_ei = j")
            if interleaved:
                w.line("done = True")
            w.line("break")
        if interleaved:
            with w.block("if done:"):
                w.line("break")
            w.line("pc = region_end")
            outer.__exit__(None, None, None)

    def _emit_scan_bbtb(self, w: _Writer) -> None:
        p = self.plan
        cfg = p.config
        w.line("pc = pcs[i_pcgen]")
        w.line("block_start = pc")
        self._emit_store_lookup(w, "pc")
        with w.block("if entry is not None:"):
            w.line("end_pc = entry.start + entry.length * 4")
        with w.block("else:"):
            w.line(f"end_pc = pc + {cfg.block_insts * 4}")
        w.line("btb._tick = bb_tick = btb._tick + 1")
        with w.block("while pc < end_pc:"):
            w.line("j = i_pcgen + count")
            with w.block("if j >= n:"):
                w.line("break")
            w.line("bt = btypes[j]")
            w.line("count += 1")
            with w.block("if bt == 0:"):
                w.lines("pc += 4", "continue")
            w.line("slot = None")
            with w.block("if entry is not None:"):
                w.line("spos = 0")
                with w.block("for s_ in entry.slots:"):
                    with w.block("if s_.pc == pc:"):
                        w.lines("slot = s_", "break")
                    w.line("spos += 1")
                with w.block("if slot is not None:"):
                    w.line("entry.ticks[spos] = bb_tick")
            w.lines("known = slot is not None", "taken = takens[j] == 1", "target = targets[j]")
            w.line("nlvl = lvl if known else 0")
            self._emit_note_btb(w, "nlvl")
            self._emit_resolve(w)
            with w.block("if taken:"):
                with w.block("if slot is not None:"):
                    w.line("slot.target = target")
                with w.block("else:"):
                    w.line("entry = bb_train(entry, block_start, pc, bt, True, target, None)")
            with w.block("if res == 0:"):
                w.lines("pc += 4", "continue")
            with w.block("if res == 1:"):
                self._redirect_bubbles(w)
                w.lines("acc_bubbles = bubbles", "break")
            w.lines("acc_event = res", "acc_ei = j", "break")
        if cfg.split_bubble:
            with w.block("else:"):
                w.line(
                    f"acc_bubbles = {cfg.split_bubble} "
                    "if (entry is not None and entry.split) else 0"
                )

    def _emit_scan_mbbtb(self, w: _Writer) -> None:
        p = self.plan
        cfg = p.config
        w.line("pc = pcs[i_pcgen]")
        w.line("block_start = pc")
        self._emit_store_lookup(w, "pc")
        w.line("blk = 0")
        with w.block("if entry is not None:"):
            w.lines("bs_, bl_ = entry.blocks[0]", "end_pc = bs_ + bl_ * 4")
        with w.block("else:"):
            w.line(f"end_pc = pc + {cfg.block_insts * 4}")
        with w.block("while pc < end_pc:"):
            w.line("j = i_pcgen + count")
            with w.block("if j >= n:"):
                w.line("break")
            w.line("bt = btypes[j]")
            w.line("count += 1")
            with w.block("if bt == 0:"):
                w.lines("pc += 4", "continue")
            w.line("slot = None")
            with w.block("if entry is not None:"):
                with w.block("for s_ in entry.slots:"):
                    with w.block("if s_.blk_id == blk and s_.pc == pc:"):
                        w.lines("slot = s_", "break")
            w.lines("known = slot is not None", "taken = takens[j] == 1", "target = targets[j]")
            w.line("nlvl = lvl if known else 0")
            self._emit_note_btb(w, "nlvl")
            self._emit_resolve(w)
            with w.block("if taken:"):
                with w.block("if slot is not None:"):
                    with w.block("if slot.btype == 5 or slot.btype == 6:"):
                        w.line("mb_update(entry, slot, target)")
                    with w.block("else:"):
                        w.line("slot.target = target")
                with w.block("else:"):
                    w.line(
                        "entry = mb_train(entry, block_start, blk, pc, bt, True, target, None)"
                    )
            with w.block("else:"):
                with w.block("if slot is not None:"):
                    if cfg.immediate_downgrade:
                        # A follow slot downgrades via the reference method
                        # (truncate + follow clear + the stabl reset).
                        with w.block("if slot.follow:"):
                            w.line(
                                "mb_train(entry, block_start, blk, pc, bt, False, target, slot)"
                            )
                        with w.block("elif slot.btype == 1:"):
                            w.line("slot.stabl_ctr = -1")
                    else:
                        with w.block("if slot.btype == 1:"):
                            w.line("slot.stabl_ctr = -1")
            with w.block("if res == 0:"):
                w.lines("pc += 4", "continue")
            with w.block("if res == 1:"):
                with w.block(
                    "if (slot is not None and slot.follow and entry is not None "
                    "and slot.blk_id + 1 < len(entry.blocks) "
                    "and entry.blocks[slot.blk_id + 1][0] == target):"
                ):
                    w.lines(
                        "blk = slot.blk_id + 1",
                        "pc = target",
                        "bs_, bl_ = entry.blocks[blk]",
                        "end_pc = bs_ + bl_ * 4",
                        "blocks += 1",
                        "continue",
                    )
                self._redirect_bubbles(w)
                w.lines("acc_bubbles = bubbles", "break")
            w.lines("acc_event = res", "acc_ei = j", "break")
        if cfg.split_bubble:
            with w.block("else:"):
                w.line(
                    f"acc_bubbles = {cfg.split_bubble} "
                    "if (entry is not None and entry.split) else 0"
                )

    # -- FTQ push + FDIP prefetch ----------------------------------------

    def _emit_fdip_prefetch(self, w: _Writer, line_var: str) -> None:
        """Inline MemoryHierarchy.ifetch_prefetch (ITLB warm + L1I pf)."""
        p = self.plan
        w.line(f"la = {line_var} << 6")
        w.line("pg = la >> 12")
        w.line(f"pe = itlb_sets[pg & {p.itlb_set_mask}].get(pg)")
        with w.block("if pe is not None:"):
            w.lines("itlb_arr._tick = ptt = itlb_arr._tick + 1", "pe[1] = ptt")
        with w.block("else:"):
            w.line("itlb_translate(la, cycle)")
        with w.block(
            f"if {line_var} not in l1i_sets[{line_var} & {p.l1i_set_mask}] "
            f"and {line_var} not in l1i_pending:"
        ):
            w.line("l1i_prefetch(la, cycle)")

    def emit_access_commit(self, w: _Writer) -> None:
        """Consume one Access: stats, line segmentation, FTQ pushes,
        FDIP prefetches and the pending-event / bubble bookkeeping."""
        with w.block("if count > 0:"):
            w.lines("c_acc += 1", "c_fpc += count", "c_bpa += blocks")
            w.lines(
                "seg_start = i_pcgen",
                "seg_line = line_ix[seg_start]",
                "seg_count = 1",
            )
            with w.block("for jj in range(i_pcgen + 1, i_pcgen + count):"):
                w.line("line = line_ix[jj]")
                with w.block("if line == seg_line:"):
                    w.lines("seg_count += 1", "continue")
                w.line(
                    "ftq_append([seg_line, seg_start, seg_count, cycle, 0 if ftq else 1])"
                )
                self._emit_fdip_prefetch(w, "seg_line")
                w.lines("seg_start = jj", "seg_line = line", "seg_count = 1")
            w.line(
                "ftq_append([seg_line, seg_start, seg_count, cycle, 0 if ftq else 1])"
            )
            self._emit_fdip_prefetch(w, "seg_line")
            w.line("i_pcgen += count")
            with w.block("if acc_event:"):
                w.lines("pending_events[acc_ei] = acc_event", "pcgen_stalled = True")
            with w.block("else:"):
                w.line("pcgen_ready = cycle + 1 + acc_bubbles")
        with w.block("else:"):
            w.line("i_pcgen = n")

    # -- fetch + backend admit + d-side memory ----------------------------

    def _emit_ifetch(self, w: _Writer) -> None:
        """Inline MemoryHierarchy.ifetch -> avail for head line hline."""
        p = self.plan
        w.line("la = hline << 6")
        w.line("pg = la >> 12")
        w.line(f"pe = itlb_sets[pg & {p.itlb_set_mask}].get(pg)")
        with w.block("if pe is not None:"):
            w.lines(
                "itlb_arr._tick = ptt = itlb_arr._tick + 1",
                "pe[1] = ptt",
                "tlb_done = cycle",
            )
        with w.block("else:"):
            w.line(f"tlb_done = itlb_translate(la, cycle) - {p.itlb_latency}")
        w.line(f"ce = l1i_sets[hline & {p.l1i_set_mask}].get(hline)")
        with w.block("if ce is not None:"):
            w.lines(
                "l1i_arr._tick = ctt = l1i_arr._tick + 1",
                "ce[1] = ctt",
                "hr = ce[0]",
                f"data_done = cycle if hr <= cycle else hr - {p.l1i_latency}",
            )
        with w.block("else:"):
            w.line(f"data_done = l1i_access(la, cycle) - {p.l1i_latency}")
        w.line("avail = tlb_done if tlb_done > data_done else data_done")
        with w.block("if avail < cycle:"):
            w.line("avail = cycle")

    def _emit_dstride(self, w: _Writer, addr: str, cycle_var: str) -> None:
        """Inline IPStridePrefetcher.on_access for an L1D hit."""
        p = self.plan
        w.line("pcj = pcs[j2]")
        w.line("ds = dstab.get(pcj)")
        with w.block("if ds is None:"):
            with w.block(f"if len(dstab) >= {p.dstride_entries}:"):
                w.line("del dstab[next(iter(dstab))]")
            w.line(f"dstab[pcj] = ({addr}, 0, 0)")
        with w.block("else:"):
            w.lines("pla, pls, pcf = ds", f"stride = {addr} - pla")
            with w.block("if stride != 0 and stride == pls:"):
                with w.block("if pcf < 3:"):
                    w.line("pcf += 1")
            with w.block("else:"):
                with w.block("if pcf > 0:"):
                    w.line("pcf -= 1")
            w.line(f"dstab[pcj] = ({addr}, stride, pcf)")
            with w.block("if pcf >= 2 and stride != 0:"):
                for d in range(1, p.dstride_degree + 1):
                    mult = "stride" if d == 1 else f"stride * {d}"
                    w.line(f"pfa = {addr} + {mult}")
                    w.line("pfl = pfa >> 6")
                    with w.block(
                        f"if pfl not in l1d_sets[pfl & {p.l1d_set_mask}] "
                        "and pfl not in l1d_pending:"
                    ):
                        w.line(f"l1d_prefetch(pfa, {cycle_var})")

    def _emit_l1d_access(self, w: _Writer, addr: str, cycle_var: str, out: Optional[str]) -> None:
        """Inline Cache.access on the L1D (hit fast path + prefetcher)."""
        p = self.plan
        w.line(f"aline = {addr} >> 6")
        w.line(f"le = l1d_sets[aline & {p.l1d_set_mask}].get(aline)")
        with w.block("if le is not None:"):
            w.lines(
                "l1d_arr._tick = ldt = l1d_arr._tick + 1",
                "le[1] = ldt",
            )
            if out:
                w.line("hr = le[0]")
                w.line(
                    f"{out} = {cycle_var} + {p.l1d_latency} "
                    f"if hr <= {cycle_var} else hr"
                )
            self._emit_dstride(w, addr, cycle_var)
        with w.block("else:"):
            w.line("dstride._pc = pcs[j2]")
            if out:
                w.line(f"{out} = l1d_access({addr}, {cycle_var})")
            else:
                w.line(f"l1d_access({addr}, {cycle_var})")

    def _emit_dtlb(self, w: _Writer, addr: str, cycle_var: str, out: Optional[str]) -> None:
        p = self.plan
        w.line(f"pg = {addr} >> 12")
        w.line(f"de = dtlb_sets[pg & {p.dtlb_set_mask}].get(pg)")
        with w.block("if de is not None:"):
            w.lines("dtlb_arr._tick = dtt = dtlb_arr._tick + 1", "de[1] = dtt")
            if out:
                w.line(f"{out} = {cycle_var} + {p.dtlb_latency}")
        with w.block("else:"):
            if out:
                w.line(f"{out} = dtlb_translate({addr}, {cycle_var})")
            else:
                w.line(f"dtlb_translate({addr}, {cycle_var})")

    def _emit_admit_ooo(self, w: _Writer) -> None:
        p = self.plan
        bw, rob, fq = p.bk_width, p.bk_rob, p.bk_fq
        w.line(f"bwx = {_ring_index('j2', bw)}")
        w.line(f"robx = {_ring_index('j2', rob)}")
        w.line("dispatch = decode_ready + 1")
        with w.block(f"if j2 >= {bw}:"):
            w.line("prevd = disp_ring[bwx] + 1")
            with w.block("if prevd > dispatch:"):
                w.line("dispatch = prevd")
        with w.block(f"if j2 >= {rob}:"):
            w.line("rob_free = commit_ring[robx]")
            with w.block("if rob_free > dispatch:"):
                w.line("dispatch = rob_free")
        w.line("disp_ring[bwx] = dispatch")
        w.line(f"fq_ring[{_ring_index('j2', fq)}] = dispatch")
        w.line("ready = dispatch + 1")
        w.line("s1 = src1s[j2]")
        with w.block("if s1 >= 0 and reg_ready[s1] > ready:"):
            w.line("ready = reg_ready[s1]")
        w.line("s2 = src2s[j2]")
        with w.block("if s2 >= 0 and reg_ready[s2] > ready:"):
            w.line("ready = reg_ready[s2]")
        with w.block("if loads_col[j2]:"):
            w.line(f"lslot = nloads % {p.bk_load_ports}")
            w.line("lr = load_ring[lslot] + 1")
            w.line("issue = ready if ready > lr else lr")
            w.line("load_ring[lslot] = issue")
            w.line("nloads += 1")
            # memory.load inline
            w.line("a = maddrs[j2]")
            self._emit_dtlb(w, "a", "issue", "tlb_done")
            self._emit_l1d_access(w, "a", "issue", "data_done")
            w.line("complete = tlb_done if tlb_done > data_done else data_done")
        with w.block("elif stores_col[j2]:"):
            w.line(f"sslot = nstores % {p.bk_store_ports}")
            w.line("sr = store_ring[sslot] + 1")
            w.line("issue = ready if ready > sr else sr")
            w.line("store_ring[sslot] = issue")
            w.line("nstores += 1")
            # memory.store inline
            w.line("a = maddrs[j2]")
            self._emit_dtlb(w, "a", "issue", None)
            self._emit_l1d_access(w, "a", "issue", None)
            w.line("complete = issue + 1")
        if p.bk_branch_latency == p.bk_alu_latency:
            with w.block("else:"):
                w.line(f"complete = ready + {p.bk_alu_latency}")
        else:
            with w.block("elif btypes[j2] != 0:"):
                w.line(f"complete = ready + {p.bk_branch_latency}")
            with w.block("else:"):
                w.line(f"complete = ready + {p.bk_alu_latency}")
        w.line("d = dsts[j2]")
        with w.block("if d >= 0:"):
            w.line("reg_ready[d] = complete")
        w.line("commit = complete if complete >= last_commit else last_commit")
        with w.block(f"if j2 >= {bw}:"):
            w.line("prevc = cw_ring[bwx] + 1")
            with w.block("if prevc > commit:"):
                w.line("commit = prevc")
        w.line("cw_ring[bwx] = commit")
        w.line("commit_ring[robx] = commit")
        w.line("last_commit = commit")

    def _emit_admit_ideal(self, w: _Writer) -> None:
        p = self.plan
        w.line("ready = decode_ready + 1")
        w.line("s1 = src1s[j2]")
        with w.block("if s1 >= 0 and reg_ready[s1] > ready:"):
            w.line("ready = reg_ready[s1]")
        w.line("s2 = src2s[j2]")
        with w.block("if s2 >= 0 and reg_ready[s2] > ready:"):
            w.line("ready = reg_ready[s2]")
        w.line("complete = ready + 1")
        w.line("d = dsts[j2]")
        with w.block("if d >= 0:"):
            w.line("reg_ready[d] = complete")
        w.line("commit = complete if complete >= last_commit else last_commit")
        w.line(f"commit_ring[{_ring_index('j2', p.bk_window)}] = commit")
        w.line("last_commit = commit")

    def emit_fetch(self, w: _Writer) -> None:
        p = self.plan
        w.lines("lines_used = 0", "insts_used = 0", "il_used = 0")
        with w.block(
            f"while lines_used < {p.fetch_lines} and insts_used < {p.fetch_width}:"
        ):
            with w.block("if not ftq:"):
                w.line("break")
            w.line("head = ftq[0]")
            w.line("enq = head[3]")
            with w.block("if head[4]:"):
                with w.block("if enq > cycle:"):
                    w.line("break")
            with w.block("elif enq >= cycle:"):
                w.line("break")
            w.line("hline = head[0]")
            w.line(f"il_bit = 1 << (hline & {p.interleave_mask})")
            with w.block("if il_used & il_bit:"):
                w.line("break")
            w.line("first = head[1]")
            # fetch_gate inline
            if p.ideal_backend:
                gate_ring = f"commit_ring[{_ring_index('first', p.bk_window)}]"
                gate_min = p.bk_window
            else:
                gate_ring = f"fq_ring[{_ring_index('first', p.bk_fq)}]"
                gate_min = p.bk_fq
            with w.block(f"if first >= {gate_min} and {gate_ring} > cycle:"):
                w.line("break")
            w.line("avail = line_avail_get(hline)")
            with w.block("if avail is None:"):
                self._emit_ifetch(w)
                w.line("line_avail[hline] = avail")
                with w.block(f"if len(line_avail) > {p.line_avail_entries}:"):
                    w.line("line_avail_evict(last=False)")
            with w.block("else:"):
                w.line("line_avail_touch(hline)")
            with w.block("if avail > cycle:"):
                w.line("break")
            w.line("hcount = head[2]")
            w.line(f"room = {p.fetch_width} - insts_used")
            w.line("take = hcount if hcount < room else room")
            w.line(f"decode_ready = cycle + {p.decode_depth}")
            with w.block("for j2 in range(first, first + take):"):
                if p.ideal_backend:
                    self._emit_admit_ideal(w)
                else:
                    self._emit_admit_ooo(w)
                with w.block("if pending_events:"):
                    w.line("kind = pending_events.pop(j2, None)")
                    with w.block("if kind is not None:"):
                        with w.block("if kind == 2:"):
                            if p.early_resteer:
                                w.line("resteer = decode_ready - 2")
                                with w.block("if resteer < cycle:"):
                                    w.line("resteer = cycle")
                            else:
                                w.line("resteer = decode_ready")
                        with w.block("else:"):
                            w.line("resteer = complete")
                        w.line("resume = resteer + 1")
                        with w.block("if resume > pcgen_ready:"):
                            w.line("pcgen_ready = resume")
                        w.line("pcgen_stalled = False")
            w.lines(
                "admitted += take",
                "insts_used += take",
                "il_used |= il_bit",
                "lines_used += 1",
            )
            with w.block("if take == hcount:"):
                w.line("ftq_popleft()")
            with w.block("else:"):
                w.lines("head[2] = hcount - take", "head[1] = first + take")
            with w.block("if not warm_done and admitted >= warmup:"):
                w.line("warm_commit = last_commit")
                for local, _name in COUNTERS:
                    w.line(f"w_{local} = c_{local}")
                w.line("warm_done = True")

    # -- finalization ------------------------------------------------------

    def _emit_finalize(self, w: _Writer) -> None:
        p = self.plan
        # Write live predictor/backend state back onto the objects so a
        # post-run inspection sees exactly what the interpreter leaves.
        w.line("hist.bits = hbits")
        for fs in p.folds:
            w.line(f"{fs.attr_path}.value = {fs.local}")
        w.line("backend._last_commit = last_commit")
        if not p.ideal_backend:
            w.lines(
                "backend._loads = nloads",
                "backend._stores = nstores",
                "backend._count += admitted",
            )
        w.line("sc = st._counters")
        w.line("measured = {}")
        for local, name in COUNTERS:
            if name == "btb_taken_l2_hits" and not p.has_l2:
                continue
            with w.block(f"if c_{local}:"):
                w.line(f'sc["{name}"] = sc.get("{name}", 0.0) + c_{local}')
                w.line(f'measured["{name}"] = float(c_{local} - w_{local})')
        w.line("structure = {}")
        with w.block("if sample_structure:"):
            w.line('structure["l1_slot_occupancy"] = btb.slot_occupancy(1)')
            w.line('structure["l1_redundancy"] = btb.redundancy_ratio(1)')
            if p.has_l2:
                w.line('structure["l2_slot_occupancy"] = btb.slot_occupancy(2)')
                w.line('structure["l2_redundancy"] = btb.redundancy_ratio(2)')
        w.line("cyc = last_commit - warm_commit")
        with w.block("if cyc < 1:"):
            w.line("cyc = 1")
        w.line("return SimResult(")
        w.line("    name=tr.name,")
        w.line("    instructions=n - warmup,")
        w.line("    cycles=cyc,")
        w.line("    stats=measured,")
        w.line("    structure=structure,")
        w.line(")")
