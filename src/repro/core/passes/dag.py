"""GenDAGPass: elaborate a MachineConfig into a kernel plan.

The pass instantiates the same hardware objects ``build_simulator``
would create (throwaway copies), reads every structural constant the
generated code needs (set masks, index shifts, fold geometry, latencies,
ring sizes), and builds the component dependency DAG from the port
declarations in :mod:`repro.core.passes.components`. Reading constants
off real objects instead of re-deriving them keeps the codegen immune
to drift in the sizing formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.backend.scoreboard import IdealBackend, OoOBackend
from repro.core.passes.components import (
    Component,
    elided_components,
    live_components,
)
from repro.core.simulator import FrontendConfig, LINE_AVAIL_ENTRIES
from repro.frontend.engine import PredictionEngine
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy


@dataclass(frozen=True)
class FoldSpec:
    """Geometry of one folded-history register (local-variable form)."""

    local: str  # generated local variable name
    length: int
    width: int
    out_pos: int
    attr_path: str  # how to bind/write back on the live engine


@dataclass
class KernelPlan:
    """Everything codegen needs, hoisted out of the hardware objects."""

    config: object
    # -- component DAG ---------------------------------------------------
    components: Tuple[Component, ...] = ()
    elided: Tuple[str, ...] = ()
    #: component name -> names it must run after (port-derived edges).
    edges: Dict[str, List[str]] = field(default_factory=dict)
    # -- BTB -------------------------------------------------------------
    btb_kind: str = "ibtb"
    index_shift: int = 2
    l1_set_mask: int = 0
    has_l2: bool = True
    rb_overflow_bubble: int = 1
    # -- prediction engine ----------------------------------------------
    ptable_mask: int = 0
    theta: int = 0
    folds: Tuple[FoldSpec, ...] = ()
    ind_mask: int = 0
    ras_depth: int = 64
    # -- frontend --------------------------------------------------------
    ftq_entries: int = 64
    fetch_width: int = 16
    fetch_lines: int = 8
    interleave_mask: int = 7
    decode_depth: int = 4
    early_resteer: bool = False
    line_avail_entries: int = LINE_AVAIL_ENTRIES
    # -- backend ---------------------------------------------------------
    ideal_backend: bool = False
    bk_width: int = 16
    bk_rob: int = 352
    bk_fq: int = 128
    bk_load_ports: int = 3
    bk_store_ports: int = 2
    bk_branch_latency: int = 1
    bk_alu_latency: int = 1
    bk_window: int = 8192
    # -- memory ----------------------------------------------------------
    l1i_set_mask: int = 0
    l1i_latency: int = 3
    itlb_set_mask: int = 0
    itlb_latency: int = 1
    l1d_set_mask: int = 0
    l1d_latency: int = 5
    dtlb_set_mask: int = 0
    dtlb_latency: int = 1
    dstride_entries: int = 256
    dstride_degree: int = 2


def _fold_specs(engine: PredictionEngine) -> Tuple[FoldSpec, ...]:
    specs: List[FoldSpec] = []
    for t, fold in enumerate(engine.perceptron._folds):
        if fold is None:
            continue
        specs.append(
            FoldSpec(
                local=f"pf{t}",
                length=fold.length,
                width=fold.width,
                out_pos=fold._out_pos,
                attr_path=f"perc._folds[{t}]",
            )
        )
    ind = engine.indirect._fold
    specs.append(
        FoldSpec(
            local="jf",
            length=ind.length,
            width=ind.width,
            out_pos=ind._out_pos,
            attr_path="ind._fold",
        )
    )
    return tuple(specs)


class GenDAGPass:
    """Elaborate *config* into a :class:`KernelPlan`."""

    def __call__(self, config) -> KernelPlan:
        btb = config.build_btb()
        engine = PredictionEngine(bp_size_kb=config.bp_size_kb)
        mem = MemoryHierarchy(MemoryConfig(scale=config.scale))
        backend = IdealBackend() if config.ideal_backend else OoOBackend()
        fe = FrontendConfig(early_resteer=config.early_resteer)

        components = live_components(config)
        plan = KernelPlan(
            config=config,
            components=components,
            elided=elided_components(config),
            edges=self._edges(components),
            btb_kind=config.btb_kind,
            index_shift=btb.store._shift,
            l1_set_mask=btb.store.l1.sets - 1,
            has_l2=btb.store.l2 is not None,
            ptable_mask=engine.perceptron._mask,
            theta=engine.perceptron.theta,
            folds=_fold_specs(engine),
            ind_mask=engine.indirect._mask,
            ras_depth=engine.ras.depth,
            ftq_entries=fe.ftq_entries,
            fetch_width=fe.fetch_width,
            fetch_lines=fe.fetch_lines,
            interleave_mask=fe.interleaves - 1,
            decode_depth=fe.decode_depth,
            early_resteer=fe.early_resteer,
            ideal_backend=config.ideal_backend,
            l1i_set_mask=mem.l1i.array.sets - 1,
            l1i_latency=mem.l1i.latency,
            itlb_set_mask=mem.itlb.array.sets - 1,
            itlb_latency=mem.itlb.latency,
            l1d_set_mask=mem.l1d.array.sets - 1,
            l1d_latency=mem.l1d.latency,
            dtlb_set_mask=mem.dtlb.array.sets - 1,
            dtlb_latency=mem.dtlb.latency,
            dstride_entries=mem.dstride.table_entries,
            dstride_degree=mem.dstride.degree,
        )
        if config.btb_kind == "rbtb":
            plan.rb_overflow_bubble = btb.overflow_bubble
        if config.ideal_backend:
            plan.bk_window = backend.window
        else:
            plan.bk_width = backend.width
            plan.bk_rob = backend.rob_size
            plan.bk_fq = backend.frontend_queue
            plan.bk_load_ports = len(backend._load_ring)
            plan.bk_store_ports = len(backend._store_ring)
            plan.bk_branch_latency = backend.branch_latency
            plan.bk_alu_latency = backend.alu_latency
        return plan

    @staticmethod
    def _edges(components: Tuple[Component, ...]) -> Dict[str, List[str]]:
        """Producer -> consumer edges derived from the port declarations.

        A component that reads port P depends on every earlier-declared
        component that writes P (the declaration order encodes the
        reference interpreter's program order, which breaks write/write
        ties the same way the interpreter does). Nested components
        additionally depend on their parent.
        """
        by_name = {c.name: c for c in components}
        edges: Dict[str, List[str]] = {c.name: [] for c in components}
        for i, comp in enumerate(components):
            deps: List[str] = []
            for earlier in components[:i]:
                if set(comp.reads) & set(earlier.writes):
                    deps.append(earlier.name)
            if comp.parent and comp.parent in by_name:
                if comp.parent not in deps:
                    deps.append(comp.parent)
            edges[comp.name] = deps
        return edges
