"""Experiment runner: config × workload sweeps with layered caching.

The benchmark harness regenerates every figure by sweeping configs over
the workload suite. Many figures share points (e.g. the ideal I-BTB 16
baseline normalizes everything), so results go through two cache layers:

* an in-process memo keyed by (config, workload, length, warmup, seed) —
  all immutable — exactly as before;
* optionally, the persistent disk cache of :mod:`repro.core.exec`
  (results as JSON, synthesized traces as ``.npz``), so repeated
  *invocations* skip both simulation and trace synthesis.

``run_suite`` and ``compare_to_baseline`` accept ``jobs=N`` to fan the
independent (config, workload) points across a process pool; parallel
results are bit-identical to serial and come back in the same order
(see :func:`repro.core.exec.run_points`).

Workload names resolve through the engine: synthetic suite names come
from :mod:`repro.trace.workloads`, while ``corpus:<name>[@<slice>]``
names resolve against the trace corpus store (:mod:`repro.corpus`) and
are cache-keyed by the entry's content hash, so re-ingesting identical
trace content keeps every cached result valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.stats import BoxStats, geomean
from repro.core.config import MachineConfig
from repro.core.exec import (
    RetryPolicy,
    SweepError,
    SweepJournal,
    SweepPoint,
    SweepReport,
    clear_trace_memo,
    execute_point,
    get_disk_cache,
    run_points,
)
from repro.core.simulator import SimResult

#: Default per-trace lengths (instructions). The paper warms 50 M and
#: measures 50 M; we scale to what pure Python can sweep (DESIGN.md).
DEFAULT_LENGTH = 160_000
DEFAULT_WARMUP = 40_000

_cache: Dict[Tuple, SimResult] = {}


def run_one(
    config: MachineConfig,
    workload: str,
    length: int = DEFAULT_LENGTH,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 7,
) -> SimResult:
    """Simulate one (config, workload) point, memoized (and disk-cached
    when a persistent cache is configured)."""
    key = (config, workload, length, warmup, seed)
    hit = _cache.get(key)
    if hit is not None:
        return hit
    result = execute_point(SweepPoint(config, workload, length, warmup, seed))
    _cache[key] = result
    return result


def run_suite(
    config: MachineConfig,
    workloads: Optional[Sequence[str]] = None,
    length: int = DEFAULT_LENGTH,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 7,
    jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
) -> List[SimResult]:
    """Simulate *config* across the workload suite.

    ``jobs>1`` runs the missing points on a process pool; the returned
    list is ordered by workload regardless of *jobs* and bit-identical
    to the serial run. *policy* configures retries/timeouts for the
    fanned-out points (see ``docs/robustness.md``).
    """
    names = _suite_names(workloads)
    _run_missing(
        [(config, name, length, warmup, seed) for name in names], jobs, policy
    )
    return [run_one(config, name, length, warmup, seed) for name in names]


def clear_cache(disk: bool = False) -> None:
    """Drop memoized results (tests use this for isolation).

    Always clears the in-process result memo and the trace memo. With
    ``disk=True``, additionally purges the persistent on-disk cache (if
    one is configured) — every stored result and trace file is removed.

    Cache-invalidation rule: persistent entries are content-addressed by
    a hash that includes ``repro.core.exec.cachekey.CACHE_SCHEMA``. Any
    change to simulation semantics, trace synthesis, or the stored
    payload layout must bump that schema version; old entries then live
    under a stale ``v<N>/`` directory and can never be served. Calling
    ``clear_cache(disk=True)`` removes all schema versions' files.
    """
    _cache.clear()
    clear_trace_memo()
    if disk:
        cache = get_disk_cache()
        if cache is not None:
            cache.clear()


@dataclass
class ComparedConfig:
    """One config's suite results normalized to a baseline, per workload."""

    config: MachineConfig
    results: List[SimResult]
    relative_ipc: List[float]

    @property
    def box(self) -> BoxStats:
        return BoxStats.from_values(self.relative_ipc)

    @property
    def geomean_ipc(self) -> float:
        return geomean([r.ipc for r in self.results])

    @property
    def mean_fetch_pcs(self) -> float:
        vals = [r.fetch_pcs_per_access for r in self.results]
        return sum(vals) / len(vals) if vals else 0.0


def compare_to_baseline(
    configs: Iterable[MachineConfig],
    baseline: MachineConfig,
    workloads: Optional[Sequence[str]] = None,
    length: int = DEFAULT_LENGTH,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 7,
    jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
) -> List[ComparedConfig]:
    """The paper's standard presentation: per-workload IPC of each config
    divided by the baseline's IPC on the same workload.

    With ``jobs>1`` every missing (config, workload) point — baseline
    included — is fanned out at once, maximizing pool utilization.
    """
    configs = list(configs)
    names = _suite_names(workloads)
    _run_missing(
        [
            (config, name, length, warmup, seed)
            for config in [baseline, *configs]
            for name in names
        ],
        jobs,
        policy,
    )
    base = run_suite(baseline, names, length, warmup, seed)
    base_ipc = [r.ipc for r in base]
    out = []
    for config in configs:
        results = run_suite(config, names, length, warmup, seed)
        rel = [r.ipc / b for r, b in zip(results, base_ipc)]
        out.append(ComparedConfig(config=config, results=results, relative_ipc=rel))
    return out


def sweep_compare(
    configs: Iterable[MachineConfig],
    baseline: MachineConfig,
    workloads: Optional[Sequence[str]] = None,
    length: int = DEFAULT_LENGTH,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 7,
    jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[SweepJournal] = None,
    resume: bool = False,
    strict: bool = True,
    batch: Optional[int] = None,
    recycle: int = 0,
    dispatch: Optional[str] = None,
) -> Tuple[List[ComparedConfig], SweepReport, List[str]]:
    """Fault-tolerant sweep + comparison: the ``repro-sim sweep`` engine.

    Runs every missing (config, workload) point — baseline included —
    through the resilient :func:`repro.core.exec.run_points` (even with
    ``jobs=1``, so retries, fault injection and checkpoint/resume apply
    to serial sweeps too), then builds the baseline-relative comparison.

    With ``strict=True`` a :class:`SweepError` propagates if any point
    still fails after retries (completed work stays memoized, cached and
    journaled). With ``strict=False`` the sweep degrades gracefully:
    workloads with a failed point (baseline included) are dropped from
    the comparison and returned in the third element, and the
    :class:`SweepReport` carries the classified failures.

    *dispatch* (``"dist://host:port"``) drains the missing points onto
    the distributed worker fleet instead of local processes — results
    and resilience semantics are identical (``docs/distributed.md``).
    """
    configs = list(configs)
    names = _suite_names(workloads)
    keys = [
        (config, name, length, warmup, seed)
        for config in [baseline, *configs]
        for name in names
    ]
    missing = [key for key in dict.fromkeys(keys) if key not in _cache]
    report = SweepReport()
    if missing:
        points = [SweepPoint(*key) for key in missing]
        report = run_points(
            points,
            jobs=jobs,
            strict=False,
            policy=policy,
            journal=journal,
            resume=resume,
            batch=batch,
            recycle=recycle,
            dispatch=dispatch,
        )
        for key, outcome in zip(missing, report.outcomes):
            if outcome.ok:
                _cache[key] = outcome.result
        if strict and report.interrupted:
            raise KeyboardInterrupt
        if strict and report.failures:
            raise SweepError(report)
    failed_names = sorted({o.point.workload for o in report.failures})
    good = [name for name in names if name not in failed_names]
    compared = (
        compare_to_baseline(configs, baseline, good, length, warmup, seed)
        if good
        else []
    )
    return compared, report, failed_names


def sweep_results_payload(
    compared: Sequence[ComparedConfig], baseline_label: str
) -> dict:
    """Deterministic per-point results document.

    Used by ``repro-sim sweep --out`` and by the service daemon's sweep
    jobs: fault-injected runs must produce byte-identical output to
    clean runs, and a coalesced service sweep must match the one-shot
    CLI, so everything is plain sorted JSON derived from SimResults.
    """
    configs = {}
    relative = {}
    for cc in compared:
        per_workload = {}
        for result in cc.results:
            per_workload[result.name] = {
                "instructions": result.instructions,
                "cycles": result.cycles,
                "ipc": result.ipc,
                "branch_mpki": result.branch_mpki,
                "misfetch_pki": result.misfetch_pki,
                "stats": result.stats,
            }
        configs[cc.config.label] = per_workload
        relative[cc.config.label] = {
            r.name: rel for r, rel in zip(cc.results, cc.relative_ipc)
        }
    return {
        "schema": 1,
        "baseline": baseline_label,
        "configs": configs,
        "relative_ipc": relative,
    }


# -- internals ---------------------------------------------------------------


def _suite_names(workloads: Optional[Sequence[str]]) -> List[str]:
    from repro.trace.workloads import SERVER_SUITE

    return list(workloads) if workloads is not None else list(SERVER_SUITE)


def _run_missing(
    keys: Sequence[Tuple], jobs: int, policy: Optional[RetryPolicy] = None
) -> None:
    """Execute the not-yet-memoized points (in parallel when jobs > 1)
    and fill the in-process memo."""
    missing = [key for key in dict.fromkeys(keys) if key not in _cache]
    if not missing or (jobs <= 1 and policy is None):
        return  # serial paths go through run_one's own memoization
    points = [SweepPoint(*key) for key in missing]
    for key, result in zip(
        missing, run_points(points, jobs=jobs, policy=policy)
    ):
        _cache[key] = result
