"""Experiment runner: config × workload sweeps with result caching.

The benchmark harness regenerates every figure by sweeping configs over
the workload suite. Many figures share points (e.g. the ideal I-BTB 16
baseline normalizes everything), so results are memoized in-process keyed
by (config, workload, length, warmup, seed) — all immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.stats import BoxStats, geomean
from repro.core.config import MachineConfig, build_simulator
from repro.core.simulator import SimResult
from repro.trace.workloads import SERVER_SUITE, get_trace

#: Default per-trace lengths (instructions). The paper warms 50 M and
#: measures 50 M; we scale to what pure Python can sweep (DESIGN.md).
DEFAULT_LENGTH = 160_000
DEFAULT_WARMUP = 40_000

_cache: Dict[Tuple, SimResult] = {}


def run_one(
    config: MachineConfig,
    workload: str,
    length: int = DEFAULT_LENGTH,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 7,
) -> SimResult:
    """Simulate one (config, workload) point, memoized."""
    key = (config, workload, length, warmup, seed)
    hit = _cache.get(key)
    if hit is not None:
        return hit
    trace = get_trace(workload, length, seed)
    sim = build_simulator(config, trace)
    result = sim.run(warmup=warmup)
    _cache[key] = result
    return result


def run_suite(
    config: MachineConfig,
    workloads: Optional[Sequence[str]] = None,
    length: int = DEFAULT_LENGTH,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 7,
) -> List[SimResult]:
    """Simulate *config* across the workload suite."""
    names = list(workloads) if workloads is not None else SERVER_SUITE
    return [run_one(config, name, length, warmup, seed) for name in names]


def clear_cache() -> None:
    """Drop memoized results (tests use this for isolation)."""
    _cache.clear()


@dataclass
class ComparedConfig:
    """One config's suite results normalized to a baseline, per workload."""

    config: MachineConfig
    results: List[SimResult]
    relative_ipc: List[float]

    @property
    def box(self) -> BoxStats:
        return BoxStats.from_values(self.relative_ipc)

    @property
    def geomean_ipc(self) -> float:
        return geomean([r.ipc for r in self.results])

    @property
    def mean_fetch_pcs(self) -> float:
        vals = [r.fetch_pcs_per_access for r in self.results]
        return sum(vals) / len(vals) if vals else 0.0


def compare_to_baseline(
    configs: Iterable[MachineConfig],
    baseline: MachineConfig,
    workloads: Optional[Sequence[str]] = None,
    length: int = DEFAULT_LENGTH,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 7,
) -> List[ComparedConfig]:
    """The paper's standard presentation: per-workload IPC of each config
    divided by the baseline's IPC on the same workload."""
    base = run_suite(baseline, workloads, length, warmup, seed)
    base_ipc = [r.ipc for r in base]
    out = []
    for config in configs:
        results = run_suite(config, workloads, length, warmup, seed)
        rel = [r.ipc / b for r, b in zip(results, base_ipc)]
        out.append(ComparedConfig(config=config, results=results, relative_ipc=rel))
    return out
