"""Machine configurations: Table 1 presets and the named BTB variants.

A :class:`MachineConfig` is an immutable description of one simulated
machine (BTB organization + sizes + predictor + back-end flavour);
:func:`build_simulator` instantiates fresh hardware state for a trace.

Storage parity follows the paper's §4 methodology: the number of *branch
slots* is held constant across organizations, so an organization with
``s`` slots per entry gets ``1/s`` of the I-BTB's entry count. Paper
totals are L1 = 3 K and L2 = 13 K branch slots; the ``scale`` factor
(default 1/4) shrinks totals and the cache hierarchy together with the
synthetic footprints (DESIGN.md §Scaling).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.backend.scoreboard import IdealBackend, OoOBackend
from repro.btb.base import BTBGeometry
from repro.btb.bbtb import BlockBTB
from repro.btb.hetero import HeterogeneousBTB
from repro.btb.ibtb import InstructionBTB
from repro.btb.mbbtb import MultiBlockBTB
from repro.btb.rbtb import RegionBTB
from repro.core.simulator import FrontendConfig, Simulator
from repro.frontend.engine import PredictionEngine
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy

#: Paper Table 1 branch-slot totals (I-BTB entry counts).
PAPER_L1_SLOTS = 3072
PAPER_L2_SLOTS = 13312
PAPER_IDEAL_SLOTS = 512 * 1024

#: Default cache/footprint scale (see DESIGN.md).
DEFAULT_SCALE = 0.25

#: Default BTB capacity scale (calibrated against the paper's hit rates).
DEFAULT_BTB_SCALE = 1 / 64


def _pow2_floor(value: int) -> int:
    p = 1
    while p * 2 <= value:
        p *= 2
    return p


def fit_geometry(total_slots: int, slots_per_entry: int, pref_ways: int) -> BTBGeometry:
    """Sets/ways holding ``total_slots / slots_per_entry`` entries,
    with power-of-two sets near the preferred associativity."""
    entries = max(pref_ways, total_slots // slots_per_entry)
    sets = max(1, _pow2_floor(entries // pref_ways))
    ways = max(1, round(entries / sets))
    return BTBGeometry(sets=sets, ways=ways)


@dataclass(frozen=True)
class MachineConfig:
    """One simulated machine. Hashable (used as a result-cache key)."""

    label: str = "I-BTB 16"
    btb_kind: str = "ibtb"  # 'ibtb' | 'rbtb' | 'bbtb' | 'mbbtb' | 'hetero'
    slots: int = 1
    #: L2 slots per region entry for the heterogeneous hierarchy.
    l2_slots: int = 4
    width: int = 16  # I-BTB banks per access
    skip_taken: bool = False
    region_bytes: int = 64
    block_insts: int = 16
    interleaved: bool = False
    splitting: bool = False
    pull_policy: str = "allbr"
    pull_last_slot: bool = False
    immediate_downgrade: bool = True
    ideal_btb: bool = False
    l1_taken_bubble: int = 0
    split_bubble: int = 0
    bp_size_kb: int = 64
    scale: float = DEFAULT_SCALE
    #: BTB capacity scale, separate from the cache/footprint scale: tuned
    #: so the realistic L1 BTB hit rate lands in the paper's ~76 % band
    #: against the synthetic hot working sets (see EXPERIMENTS.md).
    btb_scale: float = DEFAULT_BTB_SCALE
    ideal_backend: bool = False
    #: Use another slot count's geometry (Fig. 7's "2Geo 16BS" configs).
    geometry_slots: Optional[int] = None
    #: Early resteer on misfetches (Ishii et al., cited §7.2): the wrong
    #: next-PC is detected at predecode, 2 stages before decode.
    early_resteer: bool = False
    #: Shared overflow branch slots for R-BTB (§3.5); 0 disables.
    overflow_entries: int = 0

    def with_(self, **overrides) -> "MachineConfig":
        """Derived config (dataclasses.replace wrapper)."""
        return replace(self, **overrides)

    # -- hardware instantiation -------------------------------------------------

    def geometries(self):
        """(L1 geometry, L2 geometry-or-None) for this config."""
        geo_slots = self.geometry_slots if self.geometry_slots is not None else self.slots
        if self.ideal_btb:
            total = max(4096, int(PAPER_IDEAL_SLOTS * self.scale))
            return fit_geometry(total, geo_slots, 32), None
        l1 = fit_geometry(int(PAPER_L1_SLOTS * self.btb_scale), geo_slots, 6)
        l2_slots = self.l2_slots if self.btb_kind == "hetero" else geo_slots
        l2 = fit_geometry(int(PAPER_L2_SLOTS * self.btb_scale), l2_slots, 13)
        return l1, l2

    def build_btb(self):
        l1, l2 = self.geometries()
        if self.btb_kind == "ibtb":
            return InstructionBTB(
                l1, l2, width=self.width, skip_taken=self.skip_taken,
                l1_taken_bubble=self.l1_taken_bubble,
            )
        if self.btb_kind == "rbtb":
            return RegionBTB(
                l1, l2, slots_per_entry=self.slots, region_bytes=self.region_bytes,
                interleaved=self.interleaved, l1_taken_bubble=self.l1_taken_bubble,
                overflow_entries=self.overflow_entries,
            )
        if self.btb_kind == "bbtb":
            return BlockBTB(
                l1, l2, slots_per_entry=self.slots, block_insts=self.block_insts,
                splitting=self.splitting, split_bubble=self.split_bubble,
                l1_taken_bubble=self.l1_taken_bubble,
            )
        if self.btb_kind == "hetero":
            return HeterogeneousBTB(
                l1, l2, l1_slots=self.slots, l2_slots=self.l2_slots,
                block_insts=self.block_insts, region_bytes=self.region_bytes,
                l1_taken_bubble=self.l1_taken_bubble,
            )
        if self.btb_kind == "mbbtb":
            return MultiBlockBTB(
                l1, l2, slots_per_entry=self.slots, block_insts=self.block_insts,
                pull_policy=self.pull_policy, pull_last_slot=self.pull_last_slot,
                split_bubble=self.split_bubble, l1_taken_bubble=self.l1_taken_bubble,
                immediate_downgrade=self.immediate_downgrade,
            )
        raise ValueError(f"unknown btb_kind {self.btb_kind!r}")


def build_simulator(config: MachineConfig, trace, probe=None) -> Simulator:
    """Fresh simulator (all-new hardware state) for *config* on *trace*.

    *probe* optionally attaches a :mod:`repro.obs` observer; ``None``
    (the default) leaves the run uninstrumented (NullProbe fast path).
    """
    engine = PredictionEngine(bp_size_kb=config.bp_size_kb)
    memory = MemoryHierarchy(MemoryConfig(scale=config.scale))
    if config.ideal_backend:
        backend = IdealBackend()
    else:
        backend = OoOBackend(memory=memory)
    return Simulator(
        trace=trace,
        btb=config.build_btb(),
        engine=engine,
        backend=backend,
        memory=memory,
        frontend=FrontendConfig(early_resteer=config.early_resteer),
        probe=probe,
        config=config,
    )


# -- named configurations used throughout the benchmarks -----------------------

def ibtb(width: int = 16, **kw) -> MachineConfig:
    """Instruction BTB with *width* banked probes per access."""
    return MachineConfig(label=f"I-BTB {width}", btb_kind="ibtb", width=width, **kw)


def ibtb_skp(**kw) -> MachineConfig:
    """Fig. 4's "Skp" idealization: 16 fetch PCs per access regardless
    of taken branches."""
    return MachineConfig(
        label="I-BTB 16 Skp", btb_kind="ibtb", width=16, skip_taken=True, **kw
    )


def rbtb(slots: int, region_bytes: int = 64, interleaved: bool = False,
         overflow: int = 0, **kw) -> MachineConfig:
    """Region BTB; *overflow* > 0 adds the §3.5 shared spill pool."""
    prefix = "2L1 " if interleaved else ""
    size = f" {region_bytes}B" if region_bytes != 64 else ""
    ovf = f" +ovf{overflow}" if overflow else ""
    return MachineConfig(
        label=f"{prefix}R-BTB{size} {slots}BS{ovf}",
        btb_kind="rbtb", slots=slots, region_bytes=region_bytes,
        interleaved=interleaved, overflow_entries=overflow, **kw,
    )


def bbtb(slots: int, splitting: bool = False, block_insts: int = 16, **kw) -> MachineConfig:
    """Block BTB; *splitting* enables §6.3 entry splitting."""
    suffix = " Splt" if splitting else ""
    size = f" {block_insts}" if block_insts != 16 else ""
    return MachineConfig(
        label=f"B-BTB{size} {slots}BS{suffix}",
        btb_kind="bbtb", slots=slots, splitting=splitting,
        block_insts=block_insts, **kw,
    )


def mbbtb(slots: int, pull_policy: str = "allbr", block_insts: int = 16, **kw) -> MachineConfig:
    """MultiBlock BTB with the given §6.4.2 pull policy."""
    policy_name = {"uncond": "UncndDir", "calldir": "CallDir", "allbr": "AllBr"}[pull_policy]
    size = f" {block_insts}" if block_insts != 16 else ""
    return MachineConfig(
        label=f"MB-BTB{size} {slots}BS {policy_name}",
        btb_kind="mbbtb", slots=slots, pull_policy=pull_policy,
        block_insts=block_insts, **kw,
    )


def hetero_btb(l1_slots: int = 1, l2_slots: int = 2, **kw) -> MachineConfig:
    """Heterogeneous hierarchy (§3.6.2 future work): B-BTB L1 over a
    dense R-BTB L2."""
    return MachineConfig(
        label=f"Het B{l1_slots}/R{l2_slots}",
        btb_kind="hetero", slots=l1_slots, l2_slots=l2_slots, **kw,
    )


#: The paper's normalization baseline: idealistic 512K-entry I-BTB 16.
IDEAL_IBTB16 = ibtb(16, ideal_btb=True).with_(label="ideal I-BTB 16")
