"""Core value types shared across the simulator.

The ISA model is deliberately abstract: fixed 4-byte instructions (like
ARMv8, the ISA of the CVP-1 traces used in the paper), 64-byte cache lines,
and the branch taxonomy the paper's BTB organizations care about.
"""

from __future__ import annotations

import enum

#: Instruction length in bytes (fixed-length ISA, as in ARMv8).
ILEN = 4

#: Cache line size in bytes.
LINE_BYTES = 64

#: Instructions per cache line.
LINE_INSTS = LINE_BYTES // ILEN


class BranchType(enum.IntEnum):
    """Branch taxonomy used by the BTB organizations.

    ``NONE`` marks non-branch instructions so traces can carry a uniform
    per-instruction type column.
    """

    NONE = 0
    #: Conditional direct branch (may be taken or not taken).
    COND_DIRECT = 1
    #: Unconditional direct jump (not a call).
    UNCOND_DIRECT = 2
    #: Direct call (unconditional, pushes a return address).
    CALL_DIRECT = 3
    #: Function return (indirect, predicted by the RAS).
    RETURN = 4
    #: Indirect jump through a register.
    INDIRECT = 5
    #: Indirect call through a register.
    CALL_INDIRECT = 6


#: Branch types that are unconditionally taken.
UNCONDITIONAL_TYPES = frozenset(
    {
        BranchType.UNCOND_DIRECT,
        BranchType.CALL_DIRECT,
        BranchType.RETURN,
        BranchType.INDIRECT,
        BranchType.CALL_INDIRECT,
    }
)

#: Branch types whose target is encoded in the instruction bytes, hence
#: recoverable at decode (a BTB miss on these is a *misfetch*, resolved at
#: decode; indirect targets are only known at execute).
DIRECT_TYPES = frozenset(
    {BranchType.COND_DIRECT, BranchType.UNCOND_DIRECT, BranchType.CALL_DIRECT}
)

#: Branch types whose target comes from a register.
INDIRECT_TYPES = frozenset(
    {BranchType.RETURN, BranchType.INDIRECT, BranchType.CALL_INDIRECT}
)

#: Branch types that push a return address on the RAS.
CALL_TYPES = frozenset({BranchType.CALL_DIRECT, BranchType.CALL_INDIRECT})


def is_branch(btype: int) -> bool:
    """Return True when *btype* denotes any branch kind."""
    return btype != BranchType.NONE


def is_unconditional(btype: int) -> bool:
    """Return True when *btype* is always taken."""
    return btype in UNCONDITIONAL_TYPES


def is_direct(btype: int) -> bool:
    """Return True when the target is computable from instruction bytes."""
    return btype in DIRECT_TYPES


def is_indirect(btype: int) -> bool:
    """Return True when the target comes from a register (incl. returns)."""
    return btype in INDIRECT_TYPES


def is_call(btype: int) -> bool:
    """Return True when the branch pushes a return address."""
    return btype in CALL_TYPES


def line_of(pc: int) -> int:
    """Cache-line-aligned address containing *pc*."""
    return pc & ~(LINE_BYTES - 1)


def region_of(pc: int, region_bytes: int) -> int:
    """*region_bytes*-aligned address containing *pc*."""
    return pc & ~(region_bytes - 1)
