"""Deterministic random-number helpers.

All stochastic behaviour in the project (workload synthesis, branch
behaviour assignment) flows through :class:`SplitMix`, a tiny, fast,
seedable generator, so that every simulation is bit-reproducible and
sub-streams can be derived for independent components.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1


class SplitMix:
    """SplitMix64 PRNG: fast, high-quality, trivially seedable."""

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = seed & MASK64

    def next_u64(self) -> int:
        """Next 64-bit value."""
        self.state = (self.state + 0x9E3779B97F4A7C15) & MASK64
        z = self.state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
        return z ^ (z >> 31)

    def uniform(self) -> float:
        """Float in [0, 1)."""
        return self.next_u64() / float(1 << 64)

    def randint(self, lo: int, hi: int) -> int:
        """Integer in [lo, hi] inclusive."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        return lo + self.next_u64() % (hi - lo + 1)

    def choice(self, seq):
        """Uniformly pick one element of *seq*."""
        if not seq:
            raise ValueError("choice from empty sequence")
        return seq[self.next_u64() % len(seq)]

    def weighted_choice(self, items, weights) -> object:
        """Pick ``items[i]`` with probability proportional to ``weights[i]``."""
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        point = self.uniform() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if point < acc:
                return item
        return items[-1]

    def geometric(self, mean: float) -> int:
        """Geometric-ish positive integer with the given mean (>= 1)."""
        if mean < 1.0:
            raise ValueError("mean must be >= 1")
        if mean == 1.0:
            return 1
        p = 1.0 / mean
        count = 1
        while self.uniform() > p:
            count += 1
            if count > 64 * mean:  # hard safety bound
                break
        return count

    def split(self) -> "SplitMix":
        """Derive an independent child stream."""
        return SplitMix(self.next_u64() ^ 0xA5A5A5A5DEADBEEF)


def mix_hash(*values: int) -> int:
    """Deterministic 64-bit hash of a tuple of ints (for index hashing)."""
    h = 0x9E3779B97F4A7C15
    for v in values:
        h ^= v & MASK64
        h = (h * 0xBF58476D1CE4E5B9) & MASK64
        h ^= h >> 29
    return h
