"""Generic set-associative table with pluggable replacement.

Every hardware structure in this project that is organized as sets × ways
(BTB levels, caches, TLBs, indirect predictor tables with tags) builds on
:class:`SetAssociative`. Keeping one implementation makes replacement
behaviour uniform and heavily tested.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


def _require_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")


class SetAssociative:
    """A sets × ways associative container mapping integer tags to payloads.

    Parameters
    ----------
    sets:
        Number of sets (power of two).
    ways:
        Associativity (>= 1).
    index_fn:
        Maps a key to a set index; defaults to ``key % sets`` after shifting
        is applied by the caller.

    The container tracks LRU recency per set. Payloads are arbitrary
    objects owned by the caller.
    """

    __slots__ = ("sets", "ways", "_index_fn", "_sets", "_tick")

    def __init__(
        self,
        sets: int,
        ways: int,
        index_fn: Optional[Callable[[int], int]] = None,
    ) -> None:
        _require_power_of_two(sets, "sets")
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        self.sets = sets
        self.ways = ways
        self._index_fn = index_fn
        # Each set: dict tag -> [payload, last_use_tick]
        self._sets: List[Dict[int, List[Any]]] = [dict() for _ in range(sets)]
        self._tick = 0

    # -- basic operations ---------------------------------------------------

    def index_of(self, key: int) -> int:
        """Set index for *key*."""
        if self._index_fn is not None:
            return self._index_fn(key) & (self.sets - 1)
        return key & (self.sets - 1)

    def lookup(self, key: int, tag: int, touch: bool = True) -> Optional[Any]:
        """Return the payload stored under (*key* -> set, *tag*) or None.

        When *touch* is true the entry is marked most recently used.
        """
        entry = self._sets[self.index_of(key)].get(tag)
        if entry is None:
            return None
        if touch:
            self._tick += 1
            entry[1] = self._tick
        return entry[0]

    def insert(self, key: int, tag: int, payload: Any) -> Optional[Tuple[int, Any]]:
        """Insert/overwrite (*tag* -> *payload*) in the set of *key*.

        Returns the evicted ``(tag, payload)`` pair when an LRU victim had
        to be displaced, else None.
        """
        bucket = self._sets[self.index_of(key)]
        self._tick += 1
        if tag in bucket:
            bucket[tag][0] = payload
            bucket[tag][1] = self._tick
            return None
        victim = None
        if len(bucket) >= self.ways:
            lru_tag = min(bucket, key=lambda t: bucket[t][1])
            victim = (lru_tag, bucket.pop(lru_tag)[0])
        bucket[tag] = [payload, self._tick]
        return victim

    def evict(self, key: int, tag: int) -> Optional[Any]:
        """Remove and return the payload under (*key*, *tag*), or None."""
        entry = self._sets[self.index_of(key)].pop(tag, None)
        return None if entry is None else entry[0]

    def clear(self) -> None:
        """Drop all entries."""
        for bucket in self._sets:
            bucket.clear()

    # -- introspection -------------------------------------------------------

    def __contains__(self, key_tag: Tuple[int, int]) -> bool:
        key, tag = key_tag
        return tag in self._sets[self.index_of(key)]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    @property
    def capacity(self) -> int:
        """Total number of entries the structure can hold."""
        return self.sets * self.ways

    def items(self) -> Iterator[Tuple[int, int, Any]]:
        """Yield ``(set_index, tag, payload)`` for every resident entry."""
        for set_index, bucket in enumerate(self._sets):
            for tag, entry in bucket.items():
                yield set_index, tag, entry[0]

    def set_occupancy(self, set_index: int) -> int:
        """Number of valid ways in *set_index*."""
        return len(self._sets[set_index])
