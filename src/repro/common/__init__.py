"""Shared infrastructure: value types, associative tables, stats, RNG."""

from repro.common.assoc import SetAssociative
from repro.common.rng import SplitMix, mix_hash
from repro.common.stats import BoxStats, Histogram, RunningMean, Stats, geomean
from repro.common.types import (
    ILEN,
    LINE_BYTES,
    LINE_INSTS,
    BranchType,
    is_branch,
    is_call,
    is_direct,
    is_indirect,
    is_unconditional,
    line_of,
    region_of,
)

__all__ = [
    "ILEN",
    "LINE_BYTES",
    "LINE_INSTS",
    "BranchType",
    "BoxStats",
    "Histogram",
    "RunningMean",
    "SetAssociative",
    "SplitMix",
    "Stats",
    "geomean",
    "is_branch",
    "is_call",
    "is_direct",
    "is_indirect",
    "is_unconditional",
    "line_of",
    "mix_hash",
    "region_of",
]
