"""Statistics helpers: counters, ratios, geometric means and the
box/whisker summary used by the paper's figures.

The paper reports relative IPC as whisker plots (Q1/median/Q3, whiskers at
1.5×IQR, outliers beyond) and geometric means marked with a cross;
:class:`BoxStats` reproduces that exact summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive *values* (empty input -> 1.0)."""
    vals = list(values)
    if not vals:
        return 1.0
    total = 0.0
    for v in vals:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        total += math.log(v)
    return math.exp(total / len(vals))


def _quantile(sorted_vals: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile on already sorted data."""
    if not sorted_vals:
        raise ValueError("quantile of empty sequence")
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    pos = q * (len(sorted_vals) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return sorted_vals[lo] * (1 - frac) + sorted_vals[hi] * frac


@dataclass(frozen=True)
class BoxStats:
    """Whisker-plot summary matching the paper's figure convention."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    geomean: float
    whisker_low: float
    whisker_high: float
    outliers: tuple

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "BoxStats":
        vals = sorted(values)
        if not vals:
            raise ValueError("BoxStats needs at least one value")
        q1 = _quantile(vals, 0.25)
        med = _quantile(vals, 0.50)
        q3 = _quantile(vals, 0.75)
        iqr = q3 - q1
        lo_fence = q1 - 1.5 * iqr
        hi_fence = q3 + 1.5 * iqr
        inside = [v for v in vals if lo_fence <= v <= hi_fence]
        outliers = tuple(v for v in vals if v < lo_fence or v > hi_fence)
        return cls(
            minimum=vals[0],
            q1=q1,
            median=med,
            q3=q3,
            maximum=vals[-1],
            geomean=geomean(vals),
            whisker_low=min(inside) if inside else vals[0],
            whisker_high=max(inside) if inside else vals[-1],
            outliers=outliers,
        )

    def render(self, label: str, width: int = 52) -> str:
        """One-line textual rendering used by the bench harness."""
        return (
            f"{label:<28s} gmean={self.geomean:7.4f} "
            f"min={self.minimum:7.4f} q1={self.q1:7.4f} "
            f"med={self.median:7.4f} q3={self.q3:7.4f} max={self.maximum:7.4f}"
        )


class Stats:
    """A flat bag of named counters with derived-metric helpers.

    Used by every pipeline component; cheap increments, explicit names.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount* (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def set(self, name: str, value: float) -> None:
        """Set counter *name* to *value*."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0.0) -> float:
        """Current value of *name* (default when absent)."""
        return self._counters.get(name, default)

    def ratio(self, numerator: str, denominator: str, default: float = 0.0) -> float:
        """``numerator / denominator`` guarding against a zero denominator."""
        den = self.get(denominator)
        if den == 0:
            return default
        return self.get(numerator) / den

    def per_kilo(self, numerator: str, denominator: str) -> float:
        """Events per 1000 units of *denominator* (e.g. MPKI)."""
        return 1000.0 * self.ratio(numerator, denominator)

    def merge(self, other: "Stats") -> None:
        """Accumulate every counter of *other* into self."""
        for name, value in other._counters.items():
            self.add(name, value)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters."""
        return dict(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"Stats({inner})"


@dataclass
class RunningMean:
    """Streaming mean without storing samples."""

    count: int = 0
    total: float = 0.0

    def add(self, value: float, weight: float = 1.0) -> None:
        self.count += 1
        self.total += value * weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class Histogram:
    """Sparse integer histogram (e.g. fetch PCs per access)."""

    bins: Dict[int, int] = field(default_factory=dict)

    def add(self, value: int, count: int = 1) -> None:
        self.bins[value] = self.bins.get(value, 0) + count

    @property
    def total(self) -> int:
        return sum(self.bins.values())

    @property
    def mean(self) -> float:
        total = self.total
        if not total:
            return 0.0
        return sum(v * c for v, c in self.bins.items()) / total

    def quantile(self, q: float) -> int:
        """Smallest bin value covering fraction *q* of the mass.

        An empty histogram yields 0, matching :attr:`mean` — callers
        summarizing a run that never touched the histogram should see a
        neutral value, not an exception.
        """
        total = self.total
        if not total:
            return 0
        need = q * total
        seen = 0
        for value in sorted(self.bins):
            seen += self.bins[value]
            if seen >= need:
                return value
        return max(self.bins)
