"""Distributed sweep execution: coordinator, workers, shard transfer.

The fabric mirrors the local parallel engine's resilience semantics over
TCP: the coordinator owns the point queue and the ``_SweepState`` journal
/ retry machinery, workers lease batches of points, stream outcomes back,
and a dead or partitioned worker's lease is reassigned exactly like a
crashed local worker process (first unreported point blamed, chunk-mates
re-dispatched blame-free).  See ``docs/distributed.md``.
"""

from .protocol import (  # noqa: F401
    DIST_SCHEMA,
    ConnectionClosed,
    ProtocolError,
    config_from_wire,
    config_to_wire,
    parse_dist_url,
    point_from_wire,
    point_to_wire,
    read_frame,
    recv_frame,
    result_from_wire,
    result_to_wire,
    send_frame,
    write_frame,
)
from .coordinator import (  # noqa: F401
    Coordinator,
    get_coordinator,
    run_dist,
    shutdown_coordinators,
)
from .worker import WorkerSession, run_worker  # noqa: F401
