"""Work-stealing sweep coordinator (asyncio TCP, thread-hosted).

The coordinator owns the point queue of the active sweep and drives the
exact resilience machinery the local engine uses — the same
:class:`~repro.core.exec.engine._SweepState` records retries, taxonomy
counters, journal checkpoints and report events, so a dead or
partitioned *remote* worker is handled identically to a crashed local
worker process: the first unreported point of its lease is blamed
(``worker-crash``, consuming one attempt) and its lease-mates are
re-dispatched blame-free.

Dispatch is pull-based work stealing: idle workers request leases; when
the queue is empty but another worker still holds unstarted points, the
coordinator revokes the tail half of the victim's lease and hands it to
the thief. Workers stream one outcome frame per point, so progress is
never lost in batch granularity.

The asyncio event loop runs in a dedicated daemon thread; ``execute``
blocks the calling thread (the engine or the service executor) until
the sweep completes, exactly like the local backends.
"""
from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Set, Tuple

from ..core.exec.engine import SweepPoint, get_disk_cache, point_key
from ..core.exec.engine import _SweepState  # noqa: F401  (typing/reuse)
from .protocol import (
    DIST_SCHEMA,
    ConnectionClosed,
    ProtocolError,
    parse_dist_url,
    point_to_wire,
    read_frame,
    result_from_wire,
    write_frame,
)

#: Seconds without any frame (heartbeats included) before a worker is
#: declared lost and its leased points are reassigned.
DEFAULT_HB_TIMEOUT = 20.0

#: Idle-poll hint (ms) handed to workers when no work is grantable.
IDLE_RETRY_MS = 200

#: Fleet counters always present in a snapshot (mirrors COUNTER_NAMES
#: discipline: consumers can rely on every key existing).
FLEET_COUNTER_NAMES = (
    "workers_total",
    "workers_lost",
    "leases",
    "points_leased",
    "steals",
    "points_stolen",
    "outcomes_ok",
    "outcomes_err",
    "outcomes_duplicate",
    "outcomes_dropped",
    "fetch_manifests",
    "fetch_shards",
    "fetch_plans",
    "shard_bytes_tx",
    "plan_bytes_tx",
)

#: Worker-side counters folded into the fleet snapshot (summed over
#: live workers' latest reports plus departed workers' final reports).
WORKER_COUNTER_NAMES = (
    "fetch_cache_hits",
    "shard_fetches",
    "shard_refetches",
    "shard_bytes_rx",
    "plan_bytes_rx",
    "points_ok",
    "points_err",
    "reconnects",
)


@dataclass
class _QueuedPoint:
    index: int
    point: SweepPoint
    not_before: float = 0.0  # state.now() instant, like _PendingChunk


def _group(point: SweepPoint) -> Tuple[str, int, int]:
    return (point.workload, point.length, point.seed)


@dataclass
class _Lease:
    lease_id: int
    run: "_Run"
    pairs: List[Tuple[int, SweepPoint]]
    reported: Set[int] = field(default_factory=set)


@dataclass
class _Remote:
    worker_id: str
    writer: object
    wlock: asyncio.Lock
    last_msg: float
    caps: Dict = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    groups: Set[Tuple[str, int, int]] = field(default_factory=set)
    leases: Dict[int, _Lease] = field(default_factory=dict)
    closed: bool = False


class _Run:
    """One sweep being drained onto the fleet."""

    def __init__(self, state, batch: Optional[int]) -> None:
        self.state = state
        self.batch = batch
        self.pending: List[_QueuedPoint] = [
            _QueuedPoint(index, point) for index, point in state.pairs
        ]
        self.done = threading.Event()
        self.aborted = False

    def complete(self) -> bool:
        return len(self.state.outcomes) >= len(self.state.points)


class Coordinator:
    """One listening coordinator; host it with :func:`get_coordinator`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        hb_timeout: float = DEFAULT_HB_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port  # actual port after start() when 0 was asked
        self.hb_timeout = hb_timeout
        self._bind_port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._run_lock = threading.Lock()  # one sweep at a time
        self._run: Optional[_Run] = None
        self._workers: Dict[str, _Remote] = {}
        self._next_lease = 0
        self._next_client = 0
        self._counters: Dict[str, int] = {k: 0 for k in FLEET_COUNTER_NAMES}
        self._departed: Dict[str, int] = {}
        self._shard_index: Dict[str, object] = {}

    # -- lifecycle (caller threads) ------------------------------------------

    def start(self) -> "Coordinator":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-dist-coordinator", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError(
                f"coordinator failed to listen on {self.host}:{self._bind_port}: "
                f"{self._startup_error}"
            )
        if not self._ready.is_set():
            raise RuntimeError("coordinator event loop failed to start")
        return self

    def stop(self) -> None:
        loop = self._loop
        event = getattr(self, "_stop_event", None)
        if loop is None or event is None or self._thread is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass
        self._thread.join(timeout=10)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def workers_live(self) -> int:
        return len(self._workers)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until *count* workers are registered (benchmarks use this
        to measure a steady-state fleet, not connection latency)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self._workers) >= count:
                return True
            time.sleep(0.02)
        return len(self._workers) >= count

    def counters(self) -> Dict[str, int]:
        """Fleet counter snapshot (includes the ``workers_live`` gauge)."""
        snap = dict(self._counters)
        folded: Dict[str, int] = dict(self._departed)
        for remote in list(self._workers.values()):
            for key, value in remote.counters.items():
                folded[key] = folded.get(key, 0) + int(value)
        for key in WORKER_COUNTER_NAMES:
            snap[key] = folded.get(key, 0)
        snap["workers_live"] = len(self._workers)
        return snap

    def execute(self, state, batch: Optional[int] = None):
        """Drain *state*'s pending points onto the fleet; blocks until done.

        Returns the assembled :class:`SweepReport` via ``state.finish()``.
        KeyboardInterrupt aborts the run (report marked interrupted),
        matching the local backends' contract.
        """
        self.start()
        with self._run_lock:
            run = _Run(state, batch)
            asyncio.run_coroutine_threadsafe(
                self._begin(run), self._loop
            ).result(timeout=30)
            try:
                while not run.done.wait(0.2):
                    pass
            except KeyboardInterrupt:
                try:
                    asyncio.run_coroutine_threadsafe(
                        self._abort(run), self._loop
                    ).result(timeout=10)
                except Exception:
                    pass
                state.report.interrupted = True
            return state.finish()

    # -- event loop ----------------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._client, self.host, self._bind_port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        monitor = asyncio.ensure_future(self._monitor())
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            monitor.cancel()
            server.close()
            await server.wait_closed()
            for remote in list(self._workers.values()):
                self._close_remote(remote)

    async def _monitor(self) -> None:
        """Declare silent workers lost; enforce the sweep deadline."""
        tick = max(0.25, min(1.0, self.hb_timeout / 4))
        while True:
            await asyncio.sleep(tick)
            now = time.monotonic()
            for remote in list(self._workers.values()):
                if now - remote.last_msg > self.hb_timeout:
                    await self._lose_worker(
                        remote,
                        f"no frame for {self.hb_timeout:.0f}s (heartbeat timeout)",
                    )
            run = self._run
            if run is not None:
                self._enforce_deadline(run)
                self._maybe_finish(run)

    # -- run lifecycle (loop thread) -----------------------------------------

    async def _begin(self, run: _Run) -> None:
        self._run = run
        run.state.report.record(
            run.state.now(),
            "dist_begin",
            address=self.address,
            queued=len(run.pending),
            workers=len(self._workers),
        )
        self._maybe_finish(run)

    async def _abort(self, run: _Run) -> None:
        run.aborted = True
        run.pending.clear()
        if self._run is run:
            self._run = None
        run.done.set()

    def _maybe_finish(self, run: _Run) -> None:
        if run.done.is_set():
            return
        if run.complete():
            run.state.report.record(run.state.now(), "dist_end")
            if self._run is run:
                self._run = None
            run.done.set()

    def _enforce_deadline(self, run: _Run) -> None:
        """Past the sweep deadline, fail everything still open fast —
        queued points and unreported leased points alike — mirroring the
        local pool's kill-and-classify behaviour (we cannot kill a remote
        worker, so its late outcomes are simply ignored)."""
        if run.done.is_set() or not run.state.deadline_expired():
            return
        for qp in run.pending:
            run.state.point_deadline(qp.index, qp.point)
        run.pending.clear()
        for remote in list(self._workers.values()):
            for lease in list(remote.leases.values()):
                if lease.run is not run:
                    continue
                for index, point in lease.pairs:
                    if index not in lease.reported:
                        run.state.point_deadline(index, point)

    def _requeue(self, run: _Run, pairs, delay: float = 0.0) -> None:
        now = run.state.now()
        for index, point in pairs:
            if index in run.state.outcomes:
                continue
            run.pending.append(_QueuedPoint(index, point, now + delay))

    # -- client protocol -----------------------------------------------------

    async def _client(self, reader, writer) -> None:
        remote: Optional[_Remote] = None
        try:
            msg, _ = await asyncio.wait_for(read_frame(reader), timeout=30)
            if msg.get("t") != "hello":
                await write_frame(writer, {"t": "reject", "error": "expected hello"})
                return
            if msg.get("schema") != DIST_SCHEMA:
                await write_frame(
                    writer,
                    {
                        "t": "reject",
                        "error": f"protocol schema mismatch: coordinator "
                        f"{DIST_SCHEMA}, worker {msg.get('schema')}",
                    },
                )
                return
            self._next_client += 1
            worker_id = f"{msg.get('worker') or 'worker'}#{self._next_client}"
            remote = _Remote(
                worker_id=worker_id,
                writer=writer,
                wlock=asyncio.Lock(),
                last_msg=time.monotonic(),
                caps=dict(msg.get("caps") or {}),
            )
            self._workers[worker_id] = remote
            self._counters["workers_total"] += 1
            run = self._run
            if run is not None:
                run.state.report.record(
                    run.state.now(), "worker_join", worker=worker_id
                )
            await self._send(remote, {"t": "welcome", "schema": DIST_SCHEMA})
            while True:
                msg, _blob = await read_frame(reader)
                remote.last_msg = time.monotonic()
                t = msg.get("t")
                if t == "lease":
                    if msg.get("counters"):
                        remote.counters = dict(msg["counters"])
                    await self._grant(remote, msg)
                elif t == "ok":
                    self._handle_ok(remote, msg)
                elif t == "err":
                    self._handle_err(remote, msg)
                elif t == "lease_done":
                    self._handle_lease_done(remote, msg)
                elif t == "hb":
                    remote.counters = dict(msg.get("counters") or {})
                elif t == "fetch_manifest":
                    await self._serve_manifest(remote, msg)
                elif t == "fetch_shard":
                    await self._serve_shard(remote, msg)
                elif t == "fetch_plan":
                    await self._serve_plan(remote, msg)
                elif t == "bye":
                    await self._lose_worker(remote, "clean shutdown", clean=True)
                    remote = None
                    return
                else:
                    raise ProtocolError(f"unknown message type {t!r}")
        except (ConnectionClosed, ProtocolError, ConnectionError, OSError) as exc:
            if remote is not None:
                await self._lose_worker(remote, f"{type(exc).__name__}: {exc}")
                remote = None
        except asyncio.TimeoutError:
            pass
        except asyncio.CancelledError:
            # Only loop teardown cancels handler tasks (coordinator
            # stop); exit quietly — re-raising makes asyncio.streams'
            # done-callback log a spurious "Exception in callback".
            pass
        except Exception as exc:  # never let one client kill the loop
            if remote is not None:
                await self._lose_worker(remote, f"handler error: {exc}")
                remote = None
        finally:
            if remote is None:
                try:
                    writer.close()
                except Exception:
                    pass

    async def _send(self, remote: _Remote, msg: Dict, blob: bytes = b"") -> None:
        async with remote.wlock:
            await write_frame(remote.writer, msg, blob)

    def _close_remote(self, remote: _Remote) -> None:
        remote.closed = True
        try:
            remote.writer.close()
        except Exception:
            pass

    async def _lose_worker(
        self, remote: _Remote, reason: str, clean: bool = False
    ) -> None:
        """Unregister *remote* and reassign its leased points.

        A crash/partition blames the first unreported point of each lease
        (the one that was executing) exactly like a crashed local worker;
        a clean ``bye`` requeues everything blame-free.
        """
        if self._workers.get(remote.worker_id) is not remote:
            return  # already reaped (monitor/EOF race)
        del self._workers[remote.worker_id]
        if not clean:
            self._counters["workers_lost"] += 1
        for key, value in remote.counters.items():
            self._departed[key] = self._departed.get(key, 0) + int(value)
        run = self._run
        if run is not None:
            run.state.report.record(
                run.state.now(),
                "worker_lost" if not clean else "worker_bye",
                worker=remote.worker_id,
                reason=reason,
            )
        for lease in list(remote.leases.values()):
            remote.leases.pop(lease.lease_id, None)
            lrun = lease.run
            if lrun is not self._run or lrun is None or lrun.done.is_set():
                continue
            state = lrun.state
            unreported = [
                (index, point)
                for index, point in lease.pairs
                if index not in lease.reported and index not in state.outcomes
            ]
            if not unreported:
                continue
            if state.deadline_expired():
                for index, point in unreported:
                    state.point_deadline(index, point)
                continue
            if clean:
                self._requeue(lrun, unreported)
                continue
            suspect_index, suspect_point = unreported[0]
            retrying = state.point_failed(
                suspect_index,
                suspect_point,
                "worker-crash",
                f"worker {remote.worker_id} lost mid-point ({reason})",
            )
            state.report.record(
                state.now(),
                "worker_crash",
                worker=remote.worker_id,
                index=suspect_index,
                attempt=state.attempts[suspect_index],
                final=not retrying,
            )
            if retrying:
                delay = state.policy.delay(state.attempts[suspect_index])
                state.report.record(
                    state.now(), "retry", index=suspect_index,
                    delay=round(delay, 3),
                )
                self._requeue(lrun, [(suspect_index, suspect_point)], delay)
            self._requeue(lrun, unreported[1:])
        self._close_remote(remote)
        if run is not None:
            self._maybe_finish(run)

    # -- dispatch ------------------------------------------------------------

    async def _grant(self, remote: _Remote, msg: Dict) -> None:
        run = self._run
        if run is None or run.done.is_set():
            await self._send(
                remote,
                {"t": "grant", "lease": None, "points": [],
                 "retry_ms": IDLE_RETRY_MS * 2, "active": False},
            )
            return
        self._enforce_deadline(run)
        self._maybe_finish(run)
        if run.done.is_set():
            await self._send(
                remote,
                {"t": "grant", "lease": None, "points": [],
                 "retry_ms": IDLE_RETRY_MS * 2, "active": False},
            )
            return
        state = run.state
        now = state.now()
        # Lazily prune queue copies of points that already resolved (a
        # duplicate outcome can finish a point while a requeued copy of
        # it waits out a backoff delay).
        run.pending = [
            qp for qp in run.pending if qp.index not in state.outcomes
        ]
        eligible = [qp for qp in run.pending if qp.not_before <= now]
        take: List[Tuple[int, SweepPoint]] = []
        if eligible:
            take = self._pick(run, remote, eligible, int(msg.get("max") or 0))
            taken = {index for index, _ in take}
            run.pending = [qp for qp in run.pending if qp.index not in taken]
        else:
            take = await self._steal(run, remote, msg)
        if not take:
            retry_ms = IDLE_RETRY_MS
            waiting = [qp.not_before for qp in run.pending]
            if waiting:
                retry_ms = max(
                    10, int((min(waiting) - state.now()) * 1000) + 10
                )
            await self._send(
                remote,
                {"t": "grant", "lease": None, "points": [],
                 "retry_ms": min(retry_ms, 1000), "active": True},
            )
            return
        self._next_lease += 1
        lease = _Lease(self._next_lease, run, take)
        remote.leases[lease.lease_id] = lease
        remote.groups.add(_group(take[0][1]))
        self._counters["leases"] += 1
        self._counters["points_leased"] += len(take)
        state.report.record(
            state.now(),
            "lease_grant",
            worker=remote.worker_id,
            lease=lease.lease_id,
            points=len(take),
        )
        await self._send(
            remote,
            {
                "t": "grant",
                "lease": lease.lease_id,
                "points": [
                    {"index": index, "point": point_to_wire(point)}
                    for index, point in take
                ],
                "corpus": self._corpus_map(take),
                "active": True,
            },
        )

    def _pick(
        self,
        run: _Run,
        remote: _Remote,
        eligible: List[_QueuedPoint],
        requested_max: int = 0,
    ) -> List[Tuple[int, SweepPoint]]:
        """Select one trace-group's worth of points for a lease.

        Mirrors the local pool: points are ordered so configs sharing a
        batch-plan geometry land adjacent, leases never mix trace groups,
        and group affinity keeps each trace materialized on as few
        workers as possible (prefer a group this worker already holds,
        then a group no fleet member has touched, then anything).
        """
        eligible = sorted(
            eligible,
            key=lambda qp: (
                qp.point.workload,
                qp.point.length,
                qp.point.seed,
                qp.point.config.bp_size_kb,
                qp.index,
            ),
        )
        fleet_groups: Set[Tuple[str, int, int]] = set()
        for other in self._workers.values():
            fleet_groups |= other.groups
        groups_in_queue = []
        seen = set()
        for qp in eligible:
            g = _group(qp.point)
            if g not in seen:
                seen.add(g)
                groups_in_queue.append(g)
        group = next(
            (g for g in groups_in_queue if g in remote.groups),
            next(
                (g for g in groups_in_queue if g not in fleet_groups),
                groups_in_queue[0],
            ),
        )
        in_group = [qp for qp in eligible if _group(qp.point) == group]
        if run.batch is not None:
            bound = max(1, int(run.batch))
        else:
            live = max(1, len(self._workers))
            bound = max(1, ceil(len(eligible) / (live * 4)))
        if requested_max > 0:
            bound = min(bound, requested_max)
        return [(qp.index, qp.point) for qp in in_group[:bound]]

    async def _steal(
        self, run: _Run, thief: _Remote, msg: Dict
    ) -> List[Tuple[int, SweepPoint]]:
        """Revoke the tail half of the fattest lease's unstarted points.

        The first unreported point of a lease is (potentially) executing
        and is never stolen; only points the victim has not reached yet
        move. The victim learns via a ``revoke`` push and skips them.
        """
        best: Optional[Tuple[_Remote, _Lease, List[Tuple[int, SweepPoint]]]] = None
        for remote in self._workers.values():
            if remote is thief or remote.closed:
                continue
            for lease in remote.leases.values():
                if lease.run is not run:
                    continue
                unstarted = [
                    (index, point)
                    for index, point in lease.pairs
                    if index not in lease.reported
                    and index not in run.state.outcomes
                ]
                # Drop the head: that point may be executing right now.
                unstarted = unstarted[1:]
                if not unstarted:
                    continue
                if best is None or len(unstarted) > len(best[2]):
                    best = (remote, lease, unstarted)
        if best is None:
            return []
        victim, lease, unstarted = best
        stolen = unstarted[len(unstarted) // 2:]
        if not stolen:
            return []
        stolen_ix = {index for index, _ in stolen}
        lease.pairs = [
            pair for pair in lease.pairs if pair[0] not in stolen_ix
        ]
        self._counters["steals"] += 1
        self._counters["points_stolen"] += len(stolen)
        run.state.report.record(
            run.state.now(),
            "steal",
            thief=thief.worker_id,
            victim=victim.worker_id,
            lease=lease.lease_id,
            points=len(stolen),
        )
        try:
            await self._send(
                victim,
                {
                    "t": "revoke",
                    "lease": lease.lease_id,
                    "indices": sorted(stolen_ix),
                },
            )
        except Exception:
            # Victim's pipe just died; the EOF/heartbeat path will reap
            # it. The stolen points are already ours to grant.
            pass
        return stolen

    def _corpus_map(self, pairs) -> Dict[str, str]:
        """{entry: content_hash} for the corpus workloads of a lease, so
        the worker can validate (or fetch) its local copies up front."""
        from ..core.exec.engine import CORPUS_PREFIX
        from ..corpus.resolve import get_store, split_corpus_workload

        out: Dict[str, str] = {}
        for _index, point in pairs:
            if not point.workload.startswith(CORPUS_PREFIX):
                continue
            entry, _spec = split_corpus_workload(point.workload)
            if entry in out:
                continue
            try:
                out[entry] = get_store().get(entry).content_hash
            except Exception:
                continue  # worker will fail the point with a clear error
        return out

    # -- outcome handling ----------------------------------------------------

    def _lease_for(self, remote: _Remote, msg: Dict) -> Optional[_Lease]:
        lease = remote.leases.get(msg.get("lease"))
        if lease is None or lease.run is not self._run:
            return None
        return lease

    def _handle_ok(self, remote: _Remote, msg: Dict) -> None:
        remote.counters = dict(msg.get("counters") or remote.counters)
        lease = self._lease_for(remote, msg)
        if lease is None:
            self._counters["outcomes_duplicate"] += 1
            return
        run = lease.run
        state = run.state
        index = int(msg["index"])
        lease.reported.add(index)
        if index in state.outcomes:
            self._counters["outcomes_duplicate"] += 1
            return
        point = next((p for i, p in lease.pairs if i == index), None)
        if point is None:
            self._counters["outcomes_duplicate"] += 1
            return
        result = result_from_wire(msg["result"])
        disk = get_disk_cache()
        if disk is not None:
            # Persist like a locally executed point: --resume and the
            # service result cache must not care where a point ran.
            disk.store_result(point_key(point), result)
        state.point_succeeded(index, point, result, float(msg.get("seconds", 0.0)))
        self._counters["outcomes_ok"] += 1
        state.report.record(
            state.now(),
            "point_ok",
            index=index,
            worker=remote.worker_id,
            attempt=state.attempts[index],
        )
        self._maybe_finish(run)

    def _handle_err(self, remote: _Remote, msg: Dict) -> None:
        remote.counters = dict(msg.get("counters") or remote.counters)
        lease = self._lease_for(remote, msg)
        if lease is None:
            self._counters["outcomes_duplicate"] += 1
            return
        run = lease.run
        state = run.state
        index = int(msg["index"])
        lease.reported.add(index)
        if index in state.outcomes:
            self._counters["outcomes_duplicate"] += 1
            return
        point = next((p for i, p in lease.pairs if i == index), None)
        if point is None:
            self._counters["outcomes_duplicate"] += 1
            return
        self._counters["outcomes_err"] += 1
        retrying = state.point_failed(
            index,
            point,
            str(msg.get("kind", "exception")),
            str(msg.get("message", "")),
            str(msg.get("traceback", "")),
        )
        state.report.record(
            state.now(),
            "point_error",
            index=index,
            worker=remote.worker_id,
            error=str(msg.get("kind", "exception")),
            attempt=state.attempts[index],
            final=not retrying,
        )
        if retrying:
            delay = state.policy.delay(state.attempts[index])
            state.report.record(
                state.now(), "retry", index=index, delay=round(delay, 3)
            )
            self._requeue(run, [(index, point)], delay)
        self._maybe_finish(run)

    def _handle_lease_done(self, remote: _Remote, msg: Dict) -> None:
        remote.counters = dict(msg.get("counters") or remote.counters)
        lease = remote.leases.pop(msg.get("lease"), None)
        if lease is None or lease.run is not self._run:
            return
        run = lease.run
        state = run.state
        dropped = [
            (index, point)
            for index, point in lease.pairs
            if index not in lease.reported and index not in state.outcomes
        ]
        if dropped and not state.deadline_expired():
            # The worker finished its lease without reporting these
            # points (lost outcome frames): requeue blame-free, exactly
            # like a local worker's deferred points.
            self._counters["outcomes_dropped"] += len(dropped)
            state.report.record(
                state.now(),
                "outcome_dropped",
                worker=remote.worker_id,
                lease=lease.lease_id,
                points=len(dropped),
            )
            self._requeue(run, dropped)
        elif dropped:
            for index, point in dropped:
                state.point_deadline(index, point)
        self._maybe_finish(run)

    # -- content fetch service ----------------------------------------------

    async def _serve_manifest(self, remote: _Remote, msg: Dict) -> None:
        from ..corpus.resolve import get_store
        from ..corpus.store import CorpusError

        entry = str(msg.get("entry", ""))
        self._counters["fetch_manifests"] += 1
        try:
            manifest = get_store().get(entry)
        except CorpusError as exc:
            await self._send(
                remote,
                {"t": "manifest", "entry": entry, "found": False,
                 "error": str(exc)},
            )
            return
        await self._send(
            remote,
            {"t": "manifest", "entry": entry, "found": True,
             "manifest": manifest.to_json()},
        )

    def _build_shard_index(self) -> None:
        from ..corpus.resolve import get_store

        store = get_store()
        index: Dict[str, object] = {}
        try:
            for manifest in store.manifests():
                shard_dir = store.shard_dir_path(manifest)
                for shard in manifest.shards:
                    index[shard.sha256] = shard_dir / shard.file
        except Exception:
            pass
        self._shard_index = index

    async def _serve_shard(self, remote: _Remote, msg: Dict) -> None:
        sha = str(msg.get("sha256", ""))
        self._counters["fetch_shards"] += 1
        path = self._shard_index.get(sha)
        if path is None:
            self._build_shard_index()
            path = self._shard_index.get(sha)
        blob = b""
        found = False
        if path is not None:
            try:
                blob = await asyncio.get_running_loop().run_in_executor(
                    None, path.read_bytes
                )
                found = hashlib.sha256(blob).hexdigest() == sha
            except OSError:
                found = False
        if not found:
            await self._send(
                remote, {"t": "blob", "sha256": sha, "found": False}
            )
            return
        self._counters["shard_bytes_tx"] += len(blob)
        await self._send(
            remote, {"t": "blob", "sha256": sha, "found": True}, blob
        )

    async def _serve_plan(self, remote: _Remote, msg: Dict) -> None:
        key = str(msg.get("key", ""))
        self._counters["fetch_plans"] += 1
        disk = get_disk_cache()
        blob = b""
        if disk is not None:
            path = disk.plan_path(key)
            try:
                blob = await asyncio.get_running_loop().run_in_executor(
                    None, path.read_bytes
                )
            except OSError:
                blob = b""
        if not blob:
            await self._send(remote, {"t": "plan", "key": key, "found": False})
            return
        self._counters["plan_bytes_tx"] += len(blob)
        await self._send(
            remote,
            {"t": "plan", "key": key, "found": True,
             "sha256": hashlib.sha256(blob).hexdigest()},
            blob,
        )


# -- process-wide registry -------------------------------------------------

_coordinators: Dict[Tuple[str, int], Coordinator] = {}
_registry_lock = threading.Lock()


def get_coordinator(url: str, hb_timeout: float = DEFAULT_HB_TIMEOUT) -> Coordinator:
    """The process-wide coordinator listening at *url*, started on demand.

    ``dist://host:port`` (or ``tcp://`` / bare ``host:port``); port ``0``
    binds an ephemeral port, re-registered under the actual port so the
    same URL keeps resolving to the same instance.
    """
    host, port = parse_dist_url(url)
    with _registry_lock:
        coord = _coordinators.get((host, port))
        if coord is not None:
            return coord
        coord = Coordinator(host, port, hb_timeout=hb_timeout)
        coord.start()
        _coordinators[(host, coord.port)] = coord
        if port != coord.port:  # ephemeral bind: alias the asked-for key
            _coordinators[(host, port)] = coord
        return coord


def shutdown_coordinators() -> None:
    """Stop every registry-held coordinator (test isolation)."""
    with _registry_lock:
        seen = set()
        for coord in _coordinators.values():
            if id(coord) in seen:
                continue
            seen.add(id(coord))
            coord.stop()
        _coordinators.clear()


def run_dist(state, url: str, batch: Optional[int] = None):
    """Engine entry point: drain *state* through the coordinator at *url*."""
    coord = get_coordinator(url)
    return coord.execute(state, batch=batch)
