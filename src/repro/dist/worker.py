"""Dist worker: lease points, fetch missing content, stream outcomes.

``repro-sim worker --connect tcp://host:port`` runs a small supervisor
that spawns N session processes (``--jobs``, defaulting to this host's
own CPU count — never the coordinator's) and respawns any that die
abnormally, so an injected or real SIGKILL costs one blamed point, not
fleet capacity. Each session process opens its own coordinator
connection and loops: request a lease, make sure the trace content the
lease references is present locally (fetching missing shards by content
hash, verify-on-receive), execute the points through the unchanged
interp/compiled/batched kernel chain, and stream one outcome frame per
point.

Network chaos (``REPRO_FAULT_SPEC`` kinds ``drop``/``delay``/
``disconnect``) hooks into the lease loop via
:func:`repro.core.exec.faults.maybe_net_fault`, sharing the on-disk
attempt counting with the process fault kinds.
"""
from __future__ import annotations

import hashlib
import multiprocessing
import os
import select
import signal
import socket
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Set, Tuple

from ..core.exec.diskcache import atomic_write
from ..core.exec.engine import (
    _attempt_once,
    _classify_exception,
    configure_disk_cache,
    get_disk_cache,
    set_remote_plan_fetcher,
)
from ..core.exec.faults import maybe_net_fault, net_fault_delay
from .protocol import (
    DIST_SCHEMA,
    ConnectionClosed,
    ProtocolError,
    parse_dist_url,
    point_from_wire,
    recv_frame,
    result_to_wire,
    send_frame,
)

#: Seconds between heartbeat frames (a quarter of the coordinator's
#: default heartbeat timeout).
HB_INTERVAL = 5.0

#: Attempts per shard before a fetch gives up (verify-on-receive: a
#: corrupt blob is discarded and re-requested, never written).
SHARD_FETCH_ATTEMPTS = 3


class _InjectedDisconnect(Exception):
    """Internal: a ``disconnect`` net fault fired — drop the connection."""


class WorkerSession:
    """One coordinator connection plus its lease-execution loop."""

    def __init__(
        self,
        url: str,
        worker_id: str = "worker",
        lease_max: int = 0,
        retry_window: float = 30.0,
        hb_interval: float = HB_INTERVAL,
    ) -> None:
        self.host, self.port = parse_dist_url(url)
        self.worker_id = worker_id
        self.lease_max = lease_max
        #: Seconds of continuous connection failure before the session
        #: gives up and exits cleanly (code 0 — supervisors don't
        #: respawn a worker whose coordinator went away for good).
        self.retry_window = retry_window
        self.hb_interval = hb_interval
        self.sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._hb_stop: Optional[threading.Event] = None
        self._hb_thread: Optional[threading.Thread] = None
        self._revoked: Dict[int, Set[int]] = {}
        self._verified_corpus: Dict[str, str] = {}
        self.counters: Dict[str, int] = {
            "points_ok": 0,
            "points_err": 0,
            "leases_run": 0,
            "fetch_cache_hits": 0,
            "shard_fetches": 0,
            "shard_refetches": 0,
            "shard_bytes_rx": 0,
            "plan_fetches": 0,
            "plan_bytes_rx": 0,
            "manifest_fetches": 0,
            "reconnects": 0,
            "net_faults": 0,
        }

    # -- connection ----------------------------------------------------------

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=10)
        sock.settimeout(None)
        try:
            send_frame(
                sock,
                {
                    "t": "hello",
                    "schema": DIST_SCHEMA,
                    "worker": self.worker_id,
                    "caps": {
                        "cpus": os.cpu_count() or 1,
                        "platform": sys.platform,
                        "pid": os.getpid(),
                    },
                },
            )
            msg, _ = recv_frame(sock)
        except BaseException:
            sock.close()
            raise
        if msg.get("t") == "reject":
            sock.close()
            raise ProtocolError(f"coordinator rejected us: {msg.get('error')}")
        if msg.get("t") != "welcome":
            sock.close()
            raise ProtocolError(f"expected welcome, got {msg.get('t')!r}")
        self.sock = sock
        self._hb_stop = threading.Event()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop, daemon=True
        )
        self._hb_thread.start()

    def _close(self) -> None:
        if self._hb_stop is not None:
            self._hb_stop.set()
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
        self.sock = None
        self._revoked.clear()

    def _heartbeat_loop(self) -> None:
        stop, sock = self._hb_stop, self.sock
        while not stop.wait(self.hb_interval):
            try:
                with self._send_lock:
                    send_frame(sock, {"t": "hb", "counters": dict(self.counters)})
            except OSError:
                return  # main loop will notice on its next socket op

    def _send(self, msg: Dict, blob: bytes = b"") -> None:
        with self._send_lock:
            send_frame(self.sock, msg, blob)

    def _recv(self) -> Tuple[Dict, bytes]:
        """Next non-revoke frame; revokes are folded into the skip set."""
        while True:
            msg, blob = recv_frame(self.sock)
            if msg.get("t") == "revoke":
                self._note_revoke(msg)
                continue
            return msg, blob

    def _note_revoke(self, msg: Dict) -> None:
        lease = msg.get("lease")
        self._revoked.setdefault(lease, set()).update(
            int(i) for i in msg.get("indices", ())
        )

    def _rpc(self, msg: Dict, want: str) -> Tuple[Dict, bytes]:
        self._send(msg)
        reply, blob = self._recv()
        if reply.get("t") != want:
            raise ProtocolError(
                f"expected {want!r} reply to {msg.get('t')!r}, "
                f"got {reply.get('t')!r}"
            )
        return reply, blob

    def _drain_revokes(self) -> None:
        """Apply any revoke pushes sitting in the socket buffer (the
        coordinator sends them asynchronously when our lease is stolen
        from)."""
        while self.sock is not None:
            readable, _, _ = select.select([self.sock], [], [], 0)
            if not readable:
                return
            msg, _ = recv_frame(self.sock)
            if msg.get("t") == "revoke":
                self._note_revoke(msg)
            else:
                raise ProtocolError(
                    f"unexpected mid-lease frame {msg.get('t')!r}"
                )

    # -- main loop -----------------------------------------------------------

    def run(self) -> int:
        set_remote_plan_fetcher(self._fetch_plan_blob)
        try:
            give_up_at = time.monotonic() + self.retry_window
            while True:
                try:
                    self._connect()
                except (OSError, ConnectionClosed, ProtocolError):
                    if time.monotonic() >= give_up_at:
                        return 0
                    time.sleep(0.5)
                    continue
                give_up_at = time.monotonic() + self.retry_window
                try:
                    self._serve()
                except _InjectedDisconnect:
                    self.counters["reconnects"] += 1
                    self.counters["net_faults"] += 1
                    self._close()
                    continue
                except (ConnectionClosed, ConnectionError, OSError):
                    self.counters["reconnects"] += 1
                    self._close()
                    continue
                except ProtocolError:
                    self._close()
                    return 1
        finally:
            set_remote_plan_fetcher(None)
            self._close()

    def _serve(self) -> None:
        while True:
            grant, _ = self._rpc(
                {"t": "lease", "max": self.lease_max,
                 "counters": dict(self.counters)},
                "grant",
            )
            points = grant.get("points") or []
            if not points:
                retry_ms = int(grant.get("retry_ms") or 200)
                time.sleep(min(max(retry_ms, 10), 2000) / 1000.0)
                continue
            self._execute_lease(grant)

    def _execute_lease(self, grant: Dict) -> None:
        lease_id = grant["lease"]
        self.counters["leases_run"] += 1
        for entry, content_hash in (grant.get("corpus") or {}).items():
            self._ensure_corpus(entry, content_hash)
        for item in grant["points"]:
            index = int(item["index"])
            point = point_from_wire(item["point"])
            self._drain_revokes()
            if index in self._revoked.get(lease_id, ()):
                continue  # stolen: someone else runs it
            net_kind = maybe_net_fault(point)
            if net_kind == "disconnect":
                raise _InjectedDisconnect(f"injected disconnect before {index}")
            t0 = time.monotonic()
            try:
                result = _attempt_once(point)
            except Exception as exc:
                self.counters["points_err"] += 1
                import traceback as traceback_module

                self._send(
                    {
                        "t": "err",
                        "lease": lease_id,
                        "index": index,
                        "kind": _classify_exception(exc),
                        "message": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback_module.format_exc(),
                        "counters": dict(self.counters),
                    }
                )
                continue
            self.counters["points_ok"] += 1
            if net_kind == "drop":
                # Executed, never reported: the coordinator requeues it
                # blame-free at lease end (and our disk cache makes the
                # re-run instant wherever it lands).
                self.counters["net_faults"] += 1
                continue
            if net_kind == "delay":
                self.counters["net_faults"] += 1
                time.sleep(net_fault_delay())
            self._send(
                {
                    "t": "ok",
                    "lease": lease_id,
                    "index": index,
                    "result": result_to_wire(result),
                    "seconds": time.monotonic() - t0,
                    "counters": dict(self.counters),
                }
            )
        self._revoked.pop(lease_id, None)
        self._send(
            {"t": "lease_done", "lease": lease_id,
             "counters": dict(self.counters)}
        )

    # -- content fetch -------------------------------------------------------

    def _ensure_corpus(self, entry: str, content_hash: str) -> None:
        """Make corpus *entry* (at *content_hash*) locally executable.

        A warm worker whose local store already holds matching, intact
        shards counts a fetch cache hit and touches nothing. Otherwise
        the manifest and every missing or corrupt shard are fetched by
        content hash, each blob verified against its SHA-256 before it
        is written (atomically); the manifest lands last, so a crash
        mid-fetch can never leave a manifest pointing at absent shards.
        """
        from ..corpus.resolve import get_store
        from ..corpus.store import CorpusError, Manifest

        if self._verified_corpus.get(entry) == content_hash:
            self.counters["fetch_cache_hits"] += 1
            return
        store = get_store()
        manifest: Optional[Manifest] = None
        try:
            local = store.get(entry)
            if local.content_hash == content_hash:
                manifest = local
        except CorpusError:
            manifest = None
        if manifest is not None and self._shards_intact(store, manifest):
            self.counters["fetch_cache_hits"] += 1
            self._verified_corpus[entry] = content_hash
            return
        reply, _ = self._rpc(
            {"t": "fetch_manifest", "entry": entry}, "manifest"
        )
        self.counters["manifest_fetches"] += 1
        if not reply.get("found"):
            # Leave the point to fail with the store's own clear error.
            return
        manifest = Manifest.from_json(reply["manifest"])
        shard_dir = store.shard_dir_path(manifest)
        shard_dir.mkdir(parents=True, exist_ok=True)
        for shard in manifest.shards:
            path = shard_dir / shard.file
            if path.exists():
                try:
                    if (
                        hashlib.sha256(path.read_bytes()).hexdigest()
                        == shard.sha256
                    ):
                        continue
                except OSError:
                    pass
            blob = self._fetch_shard(shard.sha256)
            if blob is None:
                return  # the point will fail loudly; retries re-fetch
            atomic_write(path, lambda tmp, b=blob: Path(tmp).write_bytes(b))
        # Manifest written last: its presence implies complete shards.
        store.manifests_dir.mkdir(parents=True, exist_ok=True)
        import json

        text = json.dumps(manifest.to_json(), indent=2, sort_keys=True)
        atomic_write(
            store.manifest_path(entry),
            lambda tmp: Path(tmp).write_text(text),
        )
        self._verified_corpus[entry] = content_hash

    @staticmethod
    def _shards_intact(store, manifest) -> bool:
        shard_dir = store.shard_dir_path(manifest)
        for shard in manifest.shards:
            path = shard_dir / shard.file
            try:
                data = path.read_bytes()
            except OSError:
                return False
            if hashlib.sha256(data).hexdigest() != shard.sha256:
                return False
        return True

    def _fetch_shard(self, sha256: str) -> Optional[bytes]:
        """Fetch one shard by content hash, verify-on-receive.

        A truncated or corrupted blob is discarded and re-requested
        (bounded attempts) instead of crashing or — worse — being
        written to the local store.
        """
        for _attempt in range(SHARD_FETCH_ATTEMPTS):
            reply, blob = self._rpc(
                {"t": "fetch_shard", "sha256": sha256}, "blob"
            )
            if not reply.get("found"):
                return None
            self.counters["shard_fetches"] += 1
            if hashlib.sha256(blob).hexdigest() == sha256:
                self.counters["shard_bytes_rx"] += len(blob)
                return blob
            self.counters["shard_refetches"] += 1
        return None

    def _fetch_plan_blob(self, key: str) -> Optional[bytes]:
        """Engine hook: pull a batch plan from the coordinator's store.

        Returns the raw ``.npz`` bytes (transport-verified) or ``None``;
        the engine falls back to building the plan locally either way.
        """
        if self.sock is None:
            return None
        try:
            reply, blob = self._rpc({"t": "fetch_plan", "key": key}, "plan")
        except (ConnectionClosed, ConnectionError, OSError, ProtocolError):
            return None
        if not reply.get("found") or not blob:
            return None
        if hashlib.sha256(blob).hexdigest() != reply.get("sha256"):
            return None
        self.counters["plan_fetches"] += 1
        self.counters["plan_bytes_rx"] += len(blob)
        return blob


# -- supervisor ---------------------------------------------------------------


def _session_main(
    url: str,
    worker_id: str,
    lease_max: int,
    cache_root: Optional[str],
    cache_enabled: bool,
    corpus_root: Optional[str],
    retry_window: float,
) -> None:
    # Under the fork start method a session inherits the supervisor's
    # SIGTERM/SIGINT handler — a bare Event.set that means nothing in
    # this process and would make terminate() a no-op. Restore the
    # default disposition so the supervisor can actually stop sessions.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    if cache_enabled:
        # Same default as `repro-sim sweep`: the standard cache root
        # unless --cache-dir / REPRO_DISK_CACHE names another one. The
        # cache is what makes re-runs of dropped/stolen points instant.
        configure_disk_cache(enabled=True, root=cache_root)
    else:
        configure_disk_cache(enabled=False)
    if corpus_root:
        from ..corpus.resolve import configure_corpus

        configure_corpus(corpus_root)
    session = WorkerSession(
        url, worker_id, lease_max=lease_max, retry_window=retry_window
    )
    sys.exit(session.run())


def run_worker(
    connect: str,
    jobs: Optional[int] = None,
    lease_max: int = 0,
    worker_name: Optional[str] = None,
    cache_root: Optional[str] = None,
    cache_enabled: bool = True,
    corpus_root: Optional[str] = None,
    retry_window: float = 30.0,
    log=print,
) -> int:
    """``repro-sim worker``: supervise *jobs* session processes.

    *jobs* resolution is worker-local by design (the satellite fix):
    an explicit ``--jobs`` wins, then the **worker host's** own
    ``REPRO_JOBS``, then this host's CPU count — a coordinator's job
    count never travels over the wire. Sessions that die abnormally
    (e.g. an injected SIGKILL) are respawned after a short pause;
    sessions that exit cleanly (their connection-retry window expired,
    meaning the coordinator is gone) are not.
    """
    from ..core.exec.engine import resolve_jobs

    jobs = resolve_jobs(jobs, default_auto=True)
    name = worker_name or f"{socket.gethostname()}-{os.getpid()}"
    ctx = multiprocessing.get_context()
    procs: Dict[int, object] = {}
    respawns = 0

    def spawn(slot: int) -> None:
        proc = ctx.Process(
            target=_session_main,
            args=(
                connect,
                f"{name}/{slot}",
                lease_max,
                cache_root,
                cache_enabled,
                corpus_root,
                retry_window,
            ),
        )
        proc.start()
        procs[slot] = proc

    stopping = threading.Event()

    def handle_stop(_signum, _frame):
        stopping.set()

    old_term = signal.signal(signal.SIGTERM, handle_stop)
    old_int = signal.signal(signal.SIGINT, handle_stop)
    try:
        log(
            f"repro-dist worker {name}: {jobs} session(s) -> "
            f"tcp://{connect.split('://')[-1]}",
            flush=True,
        )
        for slot in range(jobs):
            spawn(slot)
        while procs:
            if stopping.is_set():
                for proc in procs.values():
                    proc.terminate()
                for proc in procs.values():
                    proc.join(timeout=5)
                return 0
            for slot, proc in list(procs.items()):
                if proc.is_alive():
                    continue
                if proc.exitcode == 0:
                    del procs[slot]  # clean exit: coordinator is gone
                    continue
                respawns += 1
                log(
                    f"repro-dist worker {name}/{slot}: session died "
                    f"(exit {proc.exitcode}), respawning",
                    flush=True,
                )
                time.sleep(0.2)
                spawn(slot)
            time.sleep(0.1)
        return 0
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)
