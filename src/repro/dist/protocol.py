"""Wire protocol for the distributed sweep fabric.

Framing
-------
Every message is one frame::

    +----------------+----------------+----------~~--+--------~~--+
    | json_len (u32) | blob_len (u32) |  JSON bytes  | blob bytes |
    +----------------+----------------+----------~~--+--------~~--+

Both lengths are big-endian.  The JSON part carries the message
(``{"t": <type>, ...}``); the optional blob carries bulk payloads (trace
shards, batch plans) so they never pass through the JSON encoder.  The
protocol is versioned like ``CACHE_SCHEMA``: the worker sends
``DIST_SCHEMA`` in its hello and the coordinator rejects mismatches.

Wire codecs
-----------
``point_to_wire``/``result_to_wire`` serialize :class:`SweepPoint` and
:class:`SimResult` so that a result decoded on the coordinator is
*bit-identical* to one produced locally: the decoder applies the exact
coercion :meth:`DiskCache.load_result` uses (``int`` counts, ``float``
stat values), and JSON round-trips Python floats exactly.
"""
from __future__ import annotations

import dataclasses
import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from ..core.config import MachineConfig
from ..core.exec.engine import SweepPoint
from ..core.simulator import SimResult

#: Protocol schema version.  Bump on any incompatible frame or message
#: change; the coordinator rejects workers with a different version.
DIST_SCHEMA = 1

_HEADER = struct.Struct(">II")

#: Upper bound on the JSON part of a frame (sanity cap, not a protocol
#: limit): leases carry at most a few thousand points.
MAX_JSON = 64 * 1024 * 1024
#: Upper bound on the blob part (largest legal payload is a trace shard).
MAX_BLOB = 512 * 1024 * 1024

DEFAULT_PORT = 7421


class ProtocolError(Exception):
    """Malformed frame or message (bad header, oversized, bad JSON)."""


class ConnectionClosed(Exception):
    """Peer closed the connection (cleanly or mid-frame)."""


def parse_dist_url(url: str) -> Tuple[str, int]:
    """``dist://host:port`` / ``tcp://host:port`` / ``host:port`` -> (host, port)."""
    spec = url.strip()
    for scheme in ("dist://", "tcp://"):
        if spec.startswith(scheme):
            spec = spec[len(scheme):]
            break
    if not spec:
        raise ValueError(f"empty dist address: {url!r}")
    host, sep, port_s = spec.rpartition(":")
    if not sep:
        return spec, DEFAULT_PORT
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"bad port in dist address: {url!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in dist address: {url!r}")
    return host or "127.0.0.1", port


# -- sync frame I/O (worker side) -----------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionClosed(f"connection closed after {len(buf)}/{n} bytes")
        buf.extend(chunk)
    return bytes(buf)


def send_frame(sock: socket.socket, msg: Dict[str, Any], blob: bytes = b"") -> None:
    payload = json.dumps(msg, sort_keys=True, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(payload), len(blob)) + payload + blob)


def recv_frame(sock: socket.socket) -> Tuple[Dict[str, Any], bytes]:
    header = _recv_exact(sock, _HEADER.size)
    json_len, blob_len = _HEADER.unpack(header)
    if json_len > MAX_JSON or blob_len > MAX_BLOB:
        raise ProtocolError(f"oversized frame: json={json_len} blob={blob_len}")
    payload = _recv_exact(sock, json_len)
    blob = _recv_exact(sock, blob_len) if blob_len else b""
    try:
        msg = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame payload: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return msg, blob


# -- async frame I/O (coordinator side) -----------------------------------------


async def read_frame(reader) -> Tuple[Dict[str, Any], bytes]:
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed(str(exc)) from exc
    json_len, blob_len = _HEADER.unpack(header)
    if json_len > MAX_JSON or blob_len > MAX_BLOB:
        raise ProtocolError(f"oversized frame: json={json_len} blob={blob_len}")
    try:
        payload = await reader.readexactly(json_len)
        blob = await reader.readexactly(blob_len) if blob_len else b""
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed(str(exc)) from exc
    try:
        msg = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame payload: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return msg, blob


async def write_frame(writer, msg: Dict[str, Any], blob: bytes = b"") -> None:
    payload = json.dumps(msg, sort_keys=True, separators=(",", ":")).encode("utf-8")
    writer.write(_HEADER.pack(len(payload), len(blob)) + payload + blob)
    await writer.drain()


# -- wire codecs ----------------------------------------------------------------


def config_to_wire(config: MachineConfig) -> Dict[str, Any]:
    return dataclasses.asdict(config)


def config_from_wire(doc: Dict[str, Any]) -> MachineConfig:
    return MachineConfig(**doc)


def point_to_wire(point: SweepPoint) -> Dict[str, Any]:
    if point.obs is not None:
        raise ProtocolError(
            "observability capture is not supported over dist dispatch"
        )
    return {
        "config": config_to_wire(point.config),
        "workload": point.workload,
        "length": point.length,
        "warmup": point.warmup,
        "seed": point.seed,
    }


def point_from_wire(doc: Dict[str, Any]) -> SweepPoint:
    return SweepPoint(
        config=config_from_wire(doc["config"]),
        workload=str(doc["workload"]),
        length=int(doc["length"]),
        warmup=int(doc["warmup"]),
        seed=int(doc["seed"]),
    )


def result_to_wire(result: SimResult) -> Dict[str, Any]:
    return {
        "name": result.name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "stats": result.stats,
        "structure": result.structure,
    }


def result_from_wire(doc: Dict[str, Any]) -> SimResult:
    # Exactly DiskCache.load_result's coercion, so a remote result is
    # indistinguishable from a cache hit.
    return SimResult(
        name=str(doc["name"]),
        instructions=int(doc["instructions"]),
        cycles=int(doc["cycles"]),
        stats={str(k): float(v) for k, v in dict(doc.get("stats") or {}).items()},
        structure={
            str(k): float(v) for k, v in dict(doc.get("structure") or {}).items()
        },
    )


def outcome_to_wire(kind: str, message: str = "", traceback: str = "") -> Dict[str, Any]:
    return {"kind": kind, "message": message, "traceback": traceback}
