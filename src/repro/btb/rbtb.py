"""Region BTB (R-BTB): one aligned region of code per entry.

Each entry caches up to ``slots_per_entry`` branches of one aligned
region (64 B by default, 128 B for the Fig.-7 variants). An access with an
(unaligned) fetch PC produces fetch PCs up to the first predicted-taken
branch or the region boundary — the structural limitation §3.2 discusses.
The even/odd set-interleaved variant ("2L1", §6.2) chains into the next
sequential region within the same access when that region also hits the
L1 BTB.

``overflow_entries`` enables the shared overflow storage of §3.5 (the
approach of IBM z16, AMD Bobcat, Samsung Exynos and Confluence): a small
fully-associative pool that receives branches displaced from full region
entries instead of dropping them. Branches served from the overflow pool
incur ``overflow_bubble`` extra cycles on a redirect ("'Overflow'
branches incur extra latency"). Fig. 7's *Geo 16BS* configurations are
the zero-latency upper bound of this mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.btb.base import (
    Access,
    BTBGeometry,
    BranchSlot,
    L2_HIT,
    TwoLevelStore,
)
from repro.btb.replacement import POLICIES, pick_victim
from repro.common.assoc import SetAssociative
from repro.common.types import ILEN, BranchType
from repro.frontend.engine import REDIRECT, SEQ, PredictionEngine
from repro.obs.events import BTB_ALLOC, RBTB_OVERFLOW
from repro.obs.probe import NULL_PROBE


@dataclass
class RegionEntry:
    """One region's branch slots, offset-ordered, with per-slot
    use/insert timestamps for the replacement policies."""

    base: int
    slots: List[BranchSlot] = field(default_factory=list)
    ticks: List[int] = field(default_factory=list)
    iticks: List[int] = field(default_factory=list)

    def find(self, pc: int) -> Optional[BranchSlot]:
        for slot in self.slots:
            if slot.pc == pc:
                return slot
        return None


class RegionBTB:
    """Region-granular BTB with optional even/odd interleaving."""

    name = "R-BTB"

    #: Observability probe (see :func:`repro.btb.base.attach_probe`).
    probe = NULL_PROBE

    def __init__(
        self,
        l1_geom: BTBGeometry,
        l2_geom: Optional[BTBGeometry],
        slots_per_entry: int = 2,
        region_bytes: int = 64,
        interleaved: bool = False,
        l1_taken_bubble: int = 0,
        slot_policy: str = "lru",
        overflow_entries: int = 0,
        overflow_bubble: int = 1,
    ) -> None:
        if region_bytes & (region_bytes - 1):
            raise ValueError("region_bytes must be a power of two")
        if slots_per_entry < 1:
            raise ValueError("slots_per_entry must be >= 1")
        if slot_policy not in POLICIES:
            raise ValueError(f"slot_policy must be one of {POLICIES}")
        if overflow_entries < 0:
            raise ValueError("overflow_entries must be >= 0")
        shift = region_bytes.bit_length() - 1
        self.store = TwoLevelStore(l1_geom, l2_geom, index_shift=shift)
        self.slots_per_entry = slots_per_entry
        self.region_bytes = region_bytes
        self.interleaved = interleaved
        self.l1_taken_bubble = l1_taken_bubble
        self.slot_policy = slot_policy
        self.overflow_bubble = overflow_bubble
        # Shared overflow pool (§3.5): fully associative, keyed by
        # branch PC, LRU-replaced.
        self.overflow = (
            SetAssociative(1, overflow_entries) if overflow_entries else None
        )
        self._tick = 0

    # -- PC generation ------------------------------------------------------------

    def scan(self, pc: int, idx: int, tr, eng: PredictionEngine) -> Access:
        """One PC-generation access from *pc* at trace index *idx*.

        Walks the correct path against the entry content, trains all
        structures (immediate update) and returns an
        :class:`~repro.btb.base.Access`."""
        btypes = tr.btype
        takens = tr.taken
        targets = tr.target
        n = len(btypes)
        region_mask = ~(self.region_bytes - 1)
        count = 0
        max_regions = 2 if self.interleaved else 1
        self._tick += 1
        for region_no in range(max_regions):
            region = pc & region_mask
            if region_no > 0 and not self.store.peek_l1(region):
                # Chaining requires the second region to already be L1
                # resident ("hides latency only if both entries are found
                # in the L1 BTB during lookup").
                break
            level, entry = self.store.lookup(region)
            region_end = region + self.region_bytes
            while pc < region_end:
                j = idx + count
                if j >= n:
                    return Access(count, pc)
                bt = btypes[j]
                count += 1
                if bt == BranchType.NONE:
                    pc += ILEN
                    continue
                slot = entry.find(pc) if entry is not None else None
                from_overflow = False
                if slot is not None:
                    self._touch_slot(entry, slot)
                elif entry is not None and self.overflow is not None:
                    slot = self.overflow.lookup(pc, pc)
                    from_overflow = slot is not None
                known = slot is not None
                taken = bool(takens[j])
                target = targets[j]
                eng.note_btb(level if known else 0, taken, pc)
                res = eng.resolve(pc, bt, taken, target, known, slot)
                self._train(region, entry, pc, bt, taken, target, slot)
                if res == SEQ:
                    pc += ILEN
                    continue
                if res == REDIRECT:
                    bubbles = 3 if level == L2_HIT else self.l1_taken_bubble
                    if from_overflow:
                        bubbles += self.overflow_bubble
                    if bt in (BranchType.INDIRECT, BranchType.CALL_INDIRECT):
                        bubbles += 1
                    return Access(count, target, bubbles)
                return Access(count, 0, 0, event=res, event_index=j)
            pc = region_end
        return Access(count, pc)

    # -- training ---------------------------------------------------------------------

    def _touch_slot(self, entry: RegionEntry, slot: BranchSlot) -> None:
        entry.ticks[entry.slots.index(slot)] = self._tick

    def _train(
        self,
        region: int,
        entry: Optional[RegionEntry],
        pc: int,
        btype: int,
        taken: bool,
        target: int,
        slot: Optional[BranchSlot],
    ) -> None:
        if not taken:
            return
        if slot is not None:
            slot.target = target
            return
        new = BranchSlot(pc=pc, btype=btype, target=target)
        if entry is None:
            entry = RegionEntry(base=region)
            self._insert_slot(entry, new)
            self.store.allocate(region, entry)
            if self.probe.enabled:
                self.probe.emit(BTB_ALLOC, region)
            return
        self._insert_slot(entry, new)

    def _insert_slot(self, entry: RegionEntry, slot: BranchSlot) -> None:
        if len(entry.slots) >= self.slots_per_entry:
            # Displace one branch slot (BTB-hit-slot-miss thrash, §3.5).
            victim = pick_victim(
                self.slot_policy, entry.slots, entry.ticks, entry.iticks, self._tick
            )
            displaced = entry.slots.pop(victim)
            entry.ticks.pop(victim)
            entry.iticks.pop(victim)
            if self.overflow is not None:
                # Spill to the shared overflow pool instead of dropping.
                self.overflow.insert(displaced.pc, displaced.pc, displaced)
                if self.probe.enabled:
                    self.probe.emit(RBTB_OVERFLOW, displaced.pc)
        pos = 0
        while pos < len(entry.slots) and entry.slots[pos].pc <= slot.pc:
            pos += 1
        entry.slots.insert(pos, slot)
        entry.ticks.insert(pos, self._tick)
        entry.iticks.insert(pos, self._tick)

    # -- structure metrics ----------------------------------------------------------------

    def slot_occupancy(self, level: int) -> float:
        """Mean used branch slots per resident entry at *level*."""
        entries = list(self.store.level_entries(level))
        if not entries:
            return 0.0
        return sum(len(e.slots) for e in entries) / len(entries)

    def redundancy_ratio(self, level: int) -> float:
        """Entries per tracked branch PC (structurally 1.0 for R-BTB)."""
        entries = list(self.store.level_entries(level))
        return 1.0 if entries else 0.0
