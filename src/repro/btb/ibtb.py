"""Instruction BTB (I-BTB): one branch per entry.

The classical organization [Lee & Smith]: the BTB is indexed by an
instruction PC and each entry tracks exactly one branch. To provide
multiple fetch PCs per cycle the structure is banked — ``width`` parallel
probes per access (16 banks in the paper's harmonized comparison, 8 for
the "I-BTB 8" sensitivity point). The "Skp" idealization keeps generating
PCs across predicted-taken branches until ``width`` instructions have
been produced, regardless of redirects (Fig. 4's "I-BTB 16 Skp").
"""

from __future__ import annotations

from typing import Optional

from repro.btb.base import (
    Access,
    BTBGeometry,
    BranchSlot,
    L2_HIT,
    TwoLevelStore,
)
from repro.common.types import ILEN, BranchType
from repro.frontend.engine import REDIRECT, SEQ, PredictionEngine
from repro.obs.events import BTB_ALLOC
from repro.obs.probe import NULL_PROBE


class InstructionBTB:
    """Banked instruction-granular BTB with a two-level hierarchy."""

    name = "I-BTB"

    #: Observability probe (see :func:`repro.btb.base.attach_probe`).
    probe = NULL_PROBE

    def __init__(
        self,
        l1_geom: BTBGeometry,
        l2_geom: Optional[BTBGeometry],
        width: int = 16,
        skip_taken: bool = False,
        l1_taken_bubble: int = 0,
    ) -> None:
        self.store = TwoLevelStore(l1_geom, l2_geom, index_shift=2)
        self.width = width
        self.skip_taken = skip_taken
        self.l1_taken_bubble = l1_taken_bubble
        self.slots_per_entry = 1

    # -- PC generation -----------------------------------------------------------

    def scan(self, pc: int, idx: int, tr, eng: PredictionEngine) -> Access:
        """One access: up to ``width`` banked probes along the correct path."""
        btypes = tr.btype
        takens = tr.taken
        targets = tr.target
        n = len(btypes)
        count = 0
        blocks = 1
        while count < self.width:
            j = idx + count
            if j >= n:
                return Access(count, pc, blocks=blocks)
            bt = btypes[j]
            count += 1
            if bt == BranchType.NONE:
                pc += ILEN
                continue
            level, slot = self.store.lookup(pc)
            known = slot is not None
            taken = bool(takens[j])
            target = targets[j]
            eng.note_btb(level, taken, pc)
            res = eng.resolve(pc, bt, taken, target, known, slot)
            self._train(pc, bt, taken, target, slot)
            if res == SEQ:
                pc += ILEN
                continue
            if res == REDIRECT:
                bubbles = 3 if level == L2_HIT else self.l1_taken_bubble
                if bt in (BranchType.INDIRECT, BranchType.CALL_INDIRECT):
                    bubbles += 1
                if self.skip_taken:
                    pc = target
                    blocks += 1
                    continue
                return Access(count, target, bubbles, blocks=blocks)
            return Access(count, 0, 0, event=res, event_index=j, blocks=blocks)
        return Access(count, pc, blocks=blocks)

    # -- training ------------------------------------------------------------------

    def _train(
        self, pc: int, btype: int, taken: bool, target: int, slot: Optional[BranchSlot]
    ) -> None:
        if not taken:
            return  # never-taken branches do not allocate (paper §2)
        if slot is None:
            self.store.allocate(pc, BranchSlot(pc=pc, btype=btype, target=target))
            if self.probe.enabled:
                self.probe.emit(BTB_ALLOC, pc)
        else:
            slot.target = target  # indirect targets may drift

    # -- structure metrics -----------------------------------------------------------

    def slot_occupancy(self, level: int) -> float:
        """Mean used slots per resident entry (always 1.0 for I-BTB)."""
        return 1.0 if any(True for _ in self.store.level_entries(level)) else 0.0

    def redundancy_ratio(self, level: int) -> float:
        """Entries per distinct tracked branch PC (1.0 by construction)."""
        return 1.0 if any(True for _ in self.store.level_entries(level)) else 0.0
