"""Block BTB (B-BTB): one dynamic instruction block per entry.

An entry is keyed by the exact PC that starts a block (the target of a
taken branch, or the fall-through boundary of the previous block) and
covers at most ``block_insts`` instructions (16 by default; Fig. 9 grows
this to 32/64). Per the paper's baseline, a sometimes-taken conditional
branch does *not* end the block — the block runs to its full reach, which
lets the fall-through address be computed in parallel with the BTB access.

With ``splitting`` enabled (§6.3) an entry that must track more branches
than it has slots is split: it keeps its first ``slots_per_entry``
branches in offset order and shrinks to end just after the last kept
branch; the displaced branch is re-allocated into a new entry starting at
the split point. Split entries carry an explicit length.

Because entries are keyed by their start PC, overlapping entries tracking
the same branch arise naturally (§3.4's redundancy, Fig. 2);
:meth:`redundancy_ratio` measures it exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.btb.base import (
    Access,
    BTBGeometry,
    BranchSlot,
    L2_HIT,
    TwoLevelStore,
)
from repro.btb.replacement import POLICIES, pick_victim
from repro.common.types import ILEN, BranchType
from repro.frontend.engine import REDIRECT, SEQ, PredictionEngine
from repro.obs.events import BTB_ALLOC, BTB_SPLIT
from repro.obs.probe import NULL_PROBE


@dataclass
class BlockEntry:
    """One block: offset-ordered slots plus an optional split length."""

    start: int
    length: int  # instructions covered by this entry
    slots: List[BranchSlot] = field(default_factory=list)
    ticks: List[int] = field(default_factory=list)
    iticks: List[int] = field(default_factory=list)
    split: bool = False

    def touch(self, slot: BranchSlot, tick: int) -> None:
        self.ticks[self.slots.index(slot)] = tick

    @property
    def end_pc(self) -> int:
        return self.start + self.length * ILEN

    def find(self, pc: int) -> Optional[BranchSlot]:
        for slot in self.slots:
            if slot.pc == pc:
                return slot
        return None


class BlockBTB:
    """Block-granular BTB with optional entry splitting."""

    name = "B-BTB"

    #: Observability probe (see :func:`repro.btb.base.attach_probe`).
    probe = NULL_PROBE

    def __init__(
        self,
        l1_geom: BTBGeometry,
        l2_geom: Optional[BTBGeometry],
        slots_per_entry: int = 2,
        block_insts: int = 16,
        splitting: bool = False,
        split_bubble: int = 0,
        l1_taken_bubble: int = 0,
        slot_policy: str = "lru",
    ) -> None:
        if slots_per_entry < 1:
            raise ValueError("slots_per_entry must be >= 1")
        if block_insts < 2:
            raise ValueError("block_insts must be >= 2")
        if slot_policy not in POLICIES:
            raise ValueError(f"slot_policy must be one of {POLICIES}")
        self.store = TwoLevelStore(l1_geom, l2_geom, index_shift=2)
        self.slots_per_entry = slots_per_entry
        self.block_insts = block_insts
        self.splitting = splitting
        #: Extra bubble charged when falling through a *split* entry (the
        #: fall-through address needs entry data, §6.3). 0 models the
        #: "split bit" fast path.
        self.split_bubble = split_bubble
        self.l1_taken_bubble = l1_taken_bubble
        self.slot_policy = slot_policy
        self._tick = 0

    # -- PC generation -------------------------------------------------------------

    def scan(self, pc: int, idx: int, tr, eng: PredictionEngine) -> Access:
        """One PC-generation access from *pc* at trace index *idx*.

        Walks the correct path against the entry content, trains all
        structures (immediate update) and returns an
        :class:`~repro.btb.base.Access`."""
        btypes = tr.btype
        takens = tr.taken
        targets = tr.target
        n = len(btypes)
        block_start = pc
        level, entry = self.store.lookup(pc)
        end_pc = entry.end_pc if entry is not None else pc + self.block_insts * ILEN
        count = 0
        self._tick += 1
        while pc < end_pc:
            j = idx + count
            if j >= n:
                return Access(count, pc)
            bt = btypes[j]
            count += 1
            if bt == BranchType.NONE:
                pc += ILEN
                continue
            slot = entry.find(pc) if entry is not None else None
            if slot is not None:
                entry.touch(slot, self._tick)
            known = slot is not None
            taken = bool(takens[j])
            target = targets[j]
            eng.note_btb(level if known else 0, taken, pc)
            res = eng.resolve(pc, bt, taken, target, known, slot)
            entry = self._train_branch(entry, block_start, pc, bt, taken, target, slot)
            if res == SEQ:
                pc += ILEN
                continue
            if res == REDIRECT:
                bubbles = 3 if level == L2_HIT else self.l1_taken_bubble
                if bt in (BranchType.INDIRECT, BranchType.CALL_INDIRECT):
                    bubbles += 1
                return Access(count, target, bubbles)
            return Access(count, 0, 0, event=res, event_index=j)
        bubbles = self.split_bubble if (entry is not None and entry.split) else 0
        return Access(count, pc, bubbles)

    # -- training ----------------------------------------------------------------------

    def _train_branch(
        self,
        entry: Optional[BlockEntry],
        block_start: int,
        pc: int,
        btype: int,
        taken: bool,
        target: int,
        slot: Optional[BranchSlot],
    ) -> Optional[BlockEntry]:
        """Immediate-update training; returns the (possibly new) entry."""
        if not taken:
            return entry
        if slot is not None:
            slot.target = target  # indirect targets may drift
            return entry
        if entry is None:
            entry = BlockEntry(start=block_start, length=self.block_insts)
            self._place(entry, BranchSlot(pc=pc, btype=btype, target=target))
            self.store.allocate(block_start, entry)
            if self.probe.enabled:
                self.probe.emit(BTB_ALLOC, block_start)
            return entry
        self._insert_slot(entry, BranchSlot(pc=pc, btype=btype, target=target))
        return entry

    def _insert_slot(self, entry: BlockEntry, slot: BranchSlot) -> None:
        if len(entry.slots) < self.slots_per_entry:
            self._place(entry, slot)
            return
        if self.splitting:
            self._split(entry, slot)
        else:
            victim = pick_victim(
                self.slot_policy, entry.slots, entry.ticks, entry.iticks, self._tick
            )
            entry.slots.pop(victim)
            entry.ticks.pop(victim)
            entry.iticks.pop(victim)
            self._place(entry, slot)

    def _place(self, entry: BlockEntry, slot: BranchSlot) -> None:
        pos = 0
        while pos < len(entry.slots) and entry.slots[pos].pc <= slot.pc:
            pos += 1
        entry.slots.insert(pos, slot)
        entry.ticks.insert(pos, self._tick)
        entry.iticks.insert(pos, self._tick)

    def _split(self, entry: BlockEntry, slot: BranchSlot) -> None:
        """Split *entry* so no branch metadata is lost (§6.3)."""
        staged = sorted(entry.slots + [slot], key=lambda s: s.pc)
        keep = staged[: self.slots_per_entry]
        spill = staged[self.slots_per_entry :]
        split_pc = keep[-1].pc + ILEN
        if self.probe.enabled:
            self.probe.emit(BTB_SPLIT, entry.start, split_pc)
        entry.slots = keep
        entry.ticks = [self._tick] * len(keep)
        entry.iticks = [self._tick] * len(keep)
        entry.length = (split_pc - entry.start) // ILEN
        entry.split = True
        # The spilled branches live in the fall-through block; merge into
        # an existing entry there if one is resident.
        _level, existing = self.store.lookup(split_pc)
        if existing is None:
            new_entry = BlockEntry(
                start=split_pc,
                length=self.block_insts,
                slots=spill,
                ticks=[self._tick] * len(spill),
                iticks=[self._tick] * len(spill),
            )
            self.store.allocate(split_pc, new_entry)
        else:
            for s in spill:
                if existing.find(s.pc) is None and s.pc < existing.end_pc:
                    self._insert_slot(existing, s)

    # -- structure metrics ------------------------------------------------------------------

    def slot_occupancy(self, level: int) -> float:
        """Mean used branch slots per resident entry at *level*."""
        entries = list(self.store.level_entries(level))
        if not entries:
            return 0.0
        return sum(len(e.slots) for e in entries) / len(entries)

    def redundancy_ratio(self, level: int) -> float:
        """Average number of entries tracking each tracked branch PC —
        the paper's §3.4/§6.1 redundancy metric (1.0 = no duplication)."""
        counts = {}
        for entry in self.store.level_entries(level):
            for slot in entry.slots:
                counts[slot.pc] = counts.get(slot.pc, 0) + 1
        if not counts:
            return 0.0
        return sum(counts.values()) / len(counts)
