"""MultiBlock BTB (MB-BTB, paper §6.4): entries cache *chains* of blocks.

A B-BTB entry that terminates with an unconditional direct branch is
always followed by the block at that branch's target, so MB-BTB "pulls"
the target block into the same entry: one access then yields fetch PCs
for several blocks (up to ``slots_per_entry + 1``), like a trace cache
but without coherence obligations because BTB content is speculative.

Pull policies (§6.4.2):

* ``'uncond'``  — only non-call unconditional direct branches pull;
* ``'calldir'`` — direct calls pull too;
* ``'allbr'``   — additionally, always-taken conditionals pull immediately
  and indirect branches pull after 63 consecutive same-target updates
  (the 6-bit ``stabl_ctr``).

Two refinements from the paper are modelled: the *last* branch slot of an
entry never pulls (it would duplicate fall-through blocks, §6.4.2), and a
conditional that pulled its target but executes not-taken is immediately
downgraded — its pulled block and all later blocks are removed (§6.4.3).

Entry layout mirrors Fig. 6: each slot carries ``blk_id`` (which chained
block it belongs to) and the entry stores per-block start PCs and
instruction counts (``cnt_at_target``). Entries form one CFG path: block
``k`` is entered through the follow-slot that terminates block ``k-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.btb.base import (
    Access,
    BTBGeometry,
    BranchSlot,
    L2_HIT,
    TwoLevelStore,
)
from repro.common.types import ILEN, BranchType
from repro.frontend.engine import REDIRECT, SEQ, PredictionEngine
from repro.obs.events import BTB_ALLOC, BTB_SPLIT, MB_DOWNGRADE, MB_PULL
from repro.obs.probe import NULL_PROBE

#: 6-bit stability counter threshold for indirect-branch pulling.
STABILITY_THRESHOLD = 63

#: Valid pull policies.
PULL_POLICIES = ("uncond", "calldir", "allbr")


@dataclass
class MBEntry:
    """A chain of blocks sharing one entry (Fig. 6 layout)."""

    start: int
    #: (start_pc, length_in_insts) per chained block; index = blk_id.
    blocks: List[Tuple[int, int]] = field(default_factory=list)
    #: Slots in path order: sorted by (blk_id, pc).
    slots: List[BranchSlot] = field(default_factory=list)
    split: bool = False

    def block_end(self, blk_id: int) -> int:
        start, length = self.blocks[blk_id]
        return start + length * ILEN

    def find(self, blk_id: int, pc: int) -> Optional[BranchSlot]:
        for slot in self.slots:
            if slot.blk_id == blk_id and slot.pc == pc:
                return slot
        return None

    def path_position(self, slot: BranchSlot) -> int:
        return self.slots.index(slot)


class MultiBlockBTB:
    """MB-BTB with configurable pull policy; splitting always enabled."""

    name = "MB-BTB"

    #: Observability probe (see :func:`repro.btb.base.attach_probe`).
    probe = NULL_PROBE

    def __init__(
        self,
        l1_geom: BTBGeometry,
        l2_geom: Optional[BTBGeometry],
        slots_per_entry: int = 2,
        block_insts: int = 16,
        pull_policy: str = "allbr",
        pull_last_slot: bool = False,
        split_bubble: int = 0,
        l1_taken_bubble: int = 0,
        immediate_downgrade: bool = True,
    ) -> None:
        if pull_policy not in PULL_POLICIES:
            raise ValueError(f"pull_policy must be one of {PULL_POLICIES}")
        if slots_per_entry < 1:
            raise ValueError("slots_per_entry must be >= 1")
        self.store = TwoLevelStore(l1_geom, l2_geom, index_shift=2)
        self.slots_per_entry = slots_per_entry
        self.block_insts = block_insts
        self.pull_policy = pull_policy
        #: Ablation knob: allow the last slot to pull (paper found
        #: disallowing it slightly better; default matches the paper).
        self.pull_last_slot = pull_last_slot
        self.split_bubble = split_bubble
        self.l1_taken_bubble = l1_taken_bubble
        #: Ablation knob for the §6.4.3 policy choice (True = paper's).
        self.immediate_downgrade = immediate_downgrade
        self.splitting = True

    # -- PC generation --------------------------------------------------------------

    def scan(self, pc: int, idx: int, tr, eng: PredictionEngine) -> Access:
        """One PC-generation access from *pc* at trace index *idx*.

        Walks the correct path against the entry content, trains all
        structures (immediate update) and returns an
        :class:`~repro.btb.base.Access`."""
        btypes = tr.btype
        takens = tr.taken
        targets = tr.target
        n = len(btypes)
        block_start = pc
        level, entry = self.store.lookup(pc)
        blk = 0
        if entry is not None:
            end_pc = entry.block_end(0)
        else:
            end_pc = pc + self.block_insts * ILEN
        count = 0
        blocks_provided = 1
        while pc < end_pc:
            j = idx + count
            if j >= n:
                return Access(count, pc, blocks=blocks_provided)
            bt = btypes[j]
            count += 1
            if bt == BranchType.NONE:
                pc += ILEN
                continue
            slot = entry.find(blk, pc) if entry is not None else None
            known = slot is not None
            taken = bool(takens[j])
            target = targets[j]
            eng.note_btb(level if known else 0, taken, pc)
            res = eng.resolve(pc, bt, taken, target, known, slot)
            entry = self._train_branch(entry, block_start, blk, pc, bt, taken, target, slot)
            if res == SEQ:
                if (
                    slot is not None
                    and slot.follow
                    and self.immediate_downgrade
                    and entry is not None
                ):
                    # Always-taken conditional went not-taken: §6.4.3
                    # downgrade already performed in _train_branch; the
                    # walk simply continues sequentially.
                    pass
                pc += ILEN
                continue
            if res == REDIRECT:
                follow = (
                    slot is not None
                    and slot.follow
                    and entry is not None
                    and slot.blk_id + 1 < len(entry.blocks)
                    and entry.blocks[slot.blk_id + 1][0] == target
                )
                if follow:
                    # Chain into the pulled block within the same access.
                    blk = slot.blk_id + 1
                    pc = target
                    end_pc = entry.block_end(blk)
                    blocks_provided += 1
                    continue
                bubbles = 3 if level == L2_HIT else self.l1_taken_bubble
                if bt in (BranchType.INDIRECT, BranchType.CALL_INDIRECT):
                    bubbles += 1
                return Access(count, target, bubbles, blocks=blocks_provided)
            return Access(count, 0, 0, event=res, event_index=j, blocks=blocks_provided)
        bubbles = self.split_bubble if (entry is not None and entry.split) else 0
        return Access(count, pc, bubbles, blocks=blocks_provided)

    # -- pull eligibility --------------------------------------------------------------

    def _eligible_type(self, btype: int) -> bool:
        if btype == BranchType.UNCOND_DIRECT:
            return True
        if btype == BranchType.CALL_DIRECT:
            return self.pull_policy in ("calldir", "allbr")
        if btype == BranchType.COND_DIRECT:
            return self.pull_policy == "allbr"
        if btype in (BranchType.INDIRECT, BranchType.CALL_INDIRECT):
            return self.pull_policy == "allbr"
        return False  # returns never pull (target varies per caller)

    def _may_pull(self, entry: MBEntry, slot: BranchSlot) -> bool:
        if not self._eligible_type(slot.btype):
            return False
        if len(entry.blocks) >= self.slots_per_entry + 1:
            return False
        # Only the path-terminating slot of the last block may pull.
        if slot.blk_id != len(entry.blocks) - 1:
            return False
        if entry.slots and entry.slots[-1] is not slot:
            return False
        if not self.pull_last_slot and len(entry.slots) >= self.slots_per_entry:
            # The last branch slot of a (full) entry never pulls (§6.4.2).
            return False
        if slot.btype in (BranchType.INDIRECT, BranchType.CALL_INDIRECT):
            return slot.stabl_ctr >= STABILITY_THRESHOLD
        return True

    def _do_pull(self, entry: MBEntry, slot: BranchSlot) -> None:
        slot.follow = True
        entry.blocks.append((slot.target, self.block_insts))
        if self.probe.enabled:
            self.probe.emit(MB_PULL, slot.pc, slot.target)

    # -- training -------------------------------------------------------------------------

    def _train_branch(
        self,
        entry: Optional[MBEntry],
        block_start: int,
        blk: int,
        pc: int,
        btype: int,
        taken: bool,
        target: int,
        slot: Optional[BranchSlot],
    ) -> Optional[MBEntry]:
        if not taken:
            if slot is not None and slot.follow and self.immediate_downgrade:
                # §6.4.3: downgrade to a normal conditional, drop the
                # pulled block and everything after it.
                self._truncate(entry, slot.blk_id + 1)
                slot.follow = False
                if self.probe.enabled:
                    self.probe.emit(MB_DOWNGRADE, slot.pc)
            if slot is not None and slot.btype == BranchType.COND_DIRECT:
                # Not-taken occurrence: the branch is no longer
                # always-taken, block it from pulling in the future.
                slot.stabl_ctr = -1
            return entry
        if slot is not None:
            self._update_slot(entry, slot, target)
            return entry
        if entry is None:
            entry = MBEntry(start=block_start)
            entry.blocks.append((block_start, self.block_insts))
            new = BranchSlot(pc=pc, btype=btype, target=target, blk_id=0)
            entry.slots.append(new)
            self.store.allocate(block_start, entry)
            if self.probe.enabled:
                self.probe.emit(BTB_ALLOC, block_start)
            self._consider_pull(entry, new, first_insert=True)
            return entry
        self._insert_slot(entry, blk, pc, btype, target)
        return entry

    def _update_slot(self, entry: MBEntry, slot: BranchSlot, target: int) -> None:
        if slot.btype in (BranchType.INDIRECT, BranchType.CALL_INDIRECT):
            if slot.target == target:
                if slot.stabl_ctr < STABILITY_THRESHOLD:
                    slot.stabl_ctr += 1
                if not slot.follow:
                    self._consider_pull(entry, slot, first_insert=False)
            else:
                # Target changed: reset stability, drop any pulled chain.
                slot.stabl_ctr = 0
                if slot.follow:
                    self._truncate(entry, slot.blk_id + 1)
                    slot.follow = False
                    if self.probe.enabled:
                        self.probe.emit(MB_DOWNGRADE, slot.pc)
                slot.target = target
        else:
            slot.target = target

    def _consider_pull(self, entry: MBEntry, slot: BranchSlot, first_insert: bool) -> None:
        if slot.follow:
            return
        if slot.btype == BranchType.COND_DIRECT and slot.stabl_ctr < 0:
            return  # observed not-taken at least once: not always-taken
        if self._may_pull(entry, slot):
            self._do_pull(entry, slot)

    def _insert_slot(self, entry: MBEntry, blk: int, pc: int, btype: int, target: int) -> None:
        new = BranchSlot(pc=pc, btype=btype, target=target, blk_id=blk)
        pos = 0
        key = (blk, pc)
        while pos < len(entry.slots) and (
            entry.slots[pos].blk_id,
            entry.slots[pos].pc,
        ) <= key:
            pos += 1
        entry.slots.insert(pos, new)
        if len(entry.slots) > self.slots_per_entry:
            self._split(entry)
            # The new slot may have been spilled into another entry.
            if new in entry.slots:
                self._consider_pull(entry, new, first_insert=True)
            return
        self._consider_pull(entry, new, first_insert=True)

    def _truncate(self, entry: MBEntry, first_dropped_blk: int) -> None:
        """Drop chained blocks with index >= *first_dropped_blk*."""
        if first_dropped_blk >= len(entry.blocks):
            return
        entry.slots = [s for s in entry.slots if s.blk_id < first_dropped_blk]
        entry.blocks = entry.blocks[:first_dropped_blk]
        # The terminator that pulled the first dropped block loses follow.
        for slot in entry.slots:
            if slot.follow and slot.blk_id == first_dropped_blk - 1:
                slot.follow = False

    def _split(self, entry: MBEntry) -> None:
        """Slot overflow: truncate at the last kept slot and re-allocate
        the spilled branches into the fall-through entry (§6.3/§6.4.3)."""
        keep = entry.slots[: self.slots_per_entry]
        spill = entry.slots[self.slots_per_entry :]
        last = keep[-1]
        entry.slots = keep
        # Truncate chained blocks after the last kept slot's block.
        entry.blocks = entry.blocks[: last.blk_id + 1]
        if last.follow:
            last.follow = False
        # Shrink the last kept block to end just after its last branch.
        blk_start, _length = entry.blocks[last.blk_id]
        entry.blocks[last.blk_id] = (blk_start, (last.pc + ILEN - blk_start) // ILEN)
        entry.split = True
        if self.probe.enabled:
            self.probe.emit(BTB_SPLIT, entry.start, last.pc + ILEN)
        # Spilled branches restart as fresh single-block entries at the
        # split fall-through (their block start in the old chain is gone).
        split_pc = last.pc + ILEN
        _level, existing = self.store.lookup(split_pc)
        for s in spill:
            if not split_pc <= s.pc < split_pc + self.block_insts * ILEN:
                # Spills outside the fall-through block are dropped; they
                # re-allocate naturally when next executed.
                continue
            if existing is None:
                existing = MBEntry(start=split_pc)
                existing.blocks.append((split_pc, self.block_insts))
                self.store.allocate(split_pc, existing)
            if existing.find(0, s.pc) is None and s.pc < existing.block_end(0):
                self._insert_slot(existing, 0, s.pc, s.btype, s.target)

    # -- structure metrics -------------------------------------------------------------------

    def slot_occupancy(self, level: int) -> float:
        """Mean used branch slots per resident entry at *level*."""
        entries = list(self.store.level_entries(level))
        if not entries:
            return 0.0
        return sum(len(e.slots) for e in entries) / len(entries)

    def redundancy_ratio(self, level: int) -> float:
        """Entries per tracked branch PC at *level* (§3.4 metric)."""
        counts = {}
        for entry in self.store.level_entries(level):
            for slot in entry.slots:
                counts[slot.pc] = counts.get(slot.pc, 0) + 1
        if not counts:
            return 0.0
        return sum(counts.values()) / len(counts)
