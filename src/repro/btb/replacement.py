"""Branch-slot replacement policies for R-BTB and B-BTB entries.

When a region/block must track more branches than it has slots (and
splitting is off / not applicable), one resident slot is displaced. The
paper (§6.3) notes "many replacement policies can be devised (LRU,
unconditional direct first, etc.)"; this module implements the
candidates:

* ``lru``          — displace the least recently *used* slot (default);
* ``fifo``         — displace the oldest-inserted slot;
* ``uncond_first`` — prefer displacing unconditional *direct* branches:
  losing one costs only a misfetch (recovered at decode from the
  instruction bytes), while losing a conditional or indirect branch can
  cost an execute-time misprediction; ties broken by LRU;
* ``random``       — deterministic pseudo-random victim (tick-hashed).
"""

from __future__ import annotations

from typing import Sequence

from repro.btb.base import BranchSlot
from repro.common.rng import mix_hash
from repro.common.types import BranchType

POLICIES = ("lru", "fifo", "uncond_first", "random")

#: Branch kinds that are cheap to lose (decode-recoverable).
_CHEAP_TYPES = (BranchType.UNCOND_DIRECT, BranchType.CALL_DIRECT)


def pick_victim(
    policy: str,
    slots: Sequence[BranchSlot],
    use_ticks: Sequence[int],
    insert_ticks: Sequence[int],
    tick: int,
) -> int:
    """Index of the slot to displace under *policy*.

    ``use_ticks``/``insert_ticks`` are parallel to ``slots``; ``tick`` is
    the current replacement clock (used by ``random``).
    """
    if not slots:
        raise ValueError("cannot pick a victim from an empty slot list")
    n = len(slots)
    if policy == "lru":
        return min(range(n), key=lambda k: use_ticks[k])
    if policy == "fifo":
        return min(range(n), key=lambda k: insert_ticks[k])
    if policy == "uncond_first":
        cheap = [k for k in range(n) if slots[k].btype in _CHEAP_TYPES]
        pool = cheap if cheap else list(range(n))
        return min(pool, key=lambda k: use_ticks[k])
    if policy == "random":
        return mix_hash(tick, n) % n
    raise ValueError(f"unknown replacement policy {policy!r}; pick from {POLICIES}")
