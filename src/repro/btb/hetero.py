"""Heterogeneous BTB hierarchy: Block-organized L1 over a Region L2.

Paper §3.6.2 observes that the organization best suited for the first
level (B-BTB: one access covers a whole block, no offset comparison on
the critical path, agile single-slot entries) is not the one best suited
for the larger levels (B-BTB duplicates metadata, §3.4, wasting capacity;
R-BTB stores each branch exactly once). The paper leaves heterogeneous
hierarchies to future work — this module implements the natural design:

* **L1**: Block BTB entries keyed by exact block-start PC, with entry
  splitting, serving 0-bubble redirects;
* **L2**: Region BTB entries (one aligned region per entry, several
  branch slots), duplication-free dense backing store.

On an L1 miss that hits the L2, the covering region entries are used to
*synthesize* a block entry for the missing block start (branches of the
region(s) that fall inside the block's reach), which is installed in the
L1 — a fill-by-reconstruction that a homogeneous hierarchy gets for free
by copying. Taken redirects served from L2 data cost the usual 3-cycle
bubble.
"""

from __future__ import annotations

from typing import List, Optional

from repro.btb.base import Access, BTBGeometry, BranchSlot, L1_HIT, L2_HIT, MISS
from repro.btb.bbtb import BlockEntry
from repro.btb.rbtb import RegionEntry
from repro.btb.replacement import POLICIES, pick_victim
from repro.common.assoc import SetAssociative
from repro.common.types import ILEN, BranchType
from repro.frontend.engine import REDIRECT, SEQ, PredictionEngine
from repro.obs.events import BTB_ALLOC, BTB_EVICT, BTB_SPLIT
from repro.obs.probe import NULL_PROBE


class HeterogeneousBTB:
    """B-BTB L1 backed by an R-BTB L2 (§3.6.2 future work, implemented)."""

    name = "Het-BTB"

    #: Observability probe (see :func:`repro.btb.base.attach_probe`).
    probe = NULL_PROBE

    def __init__(
        self,
        l1_geom: BTBGeometry,
        l2_geom: BTBGeometry,
        l1_slots: int = 1,
        l2_slots: int = 4,
        block_insts: int = 16,
        region_bytes: int = 64,
        l1_taken_bubble: int = 0,
        slot_policy: str = "lru",
    ) -> None:
        if l1_slots < 1 or l2_slots < 1:
            raise ValueError("slot counts must be >= 1")
        if region_bytes & (region_bytes - 1):
            raise ValueError("region_bytes must be a power of two")
        if slot_policy not in POLICIES:
            raise ValueError(f"slot_policy must be one of {POLICIES}")
        self.l1 = SetAssociative(l1_geom.sets, l1_geom.ways)
        self.l2 = SetAssociative(l2_geom.sets, l2_geom.ways)
        self.l1_slots = l1_slots
        self.l2_slots = l2_slots
        self.block_insts = block_insts
        self.region_bytes = region_bytes
        self._region_shift = region_bytes.bit_length() - 1
        self.l1_taken_bubble = l1_taken_bubble
        self.slot_policy = slot_policy
        self.slots_per_entry = l1_slots  # reporting convention: L1 slots
        self.splitting = True
        self.has_l2 = True
        self._tick = 0

    # -- lookups ------------------------------------------------------------------

    def _l1_lookup(self, pc: int) -> Optional[BlockEntry]:
        key = pc >> 2
        return self.l1.lookup(key, key)

    def _l2_region(self, region: int) -> Optional[RegionEntry]:
        key = region >> self._region_shift
        return self.l2.lookup(key, key)

    def _synthesize_block(self, pc: int) -> Optional[BlockEntry]:
        """Build a block entry for *pc* from the covering L2 region(s)."""
        end = pc + self.block_insts * ILEN
        slots: List[BranchSlot] = []
        covered_any = False
        region = pc & ~(self.region_bytes - 1)
        while region < end:
            entry = self._l2_region(region)
            if entry is not None:
                covered_any = True
                for s in entry.slots:
                    if pc <= s.pc < end:
                        slots.append(
                            BranchSlot(pc=s.pc, btype=s.btype, target=s.target)
                        )
            region += self.region_bytes
        if not covered_any:
            return None
        slots.sort(key=lambda s: s.pc)
        slots = slots[: self.l1_slots]
        block = BlockEntry(
            start=pc,
            length=self.block_insts,
            slots=slots,
            ticks=[self._tick] * len(slots),
            iticks=[self._tick] * len(slots),
        )
        return block

    def _install_l1(self, block: BlockEntry) -> None:
        key = block.start >> 2
        victim = self.l1.insert(key, key, block)
        if victim is not None and self.probe.enabled:
            # L1 blocks are reconstructable from L2 regions, but the
            # block copy itself is gone — report it as an L1 eviction.
            self.probe.emit(BTB_EVICT, victim[0])

    # -- PC generation ---------------------------------------------------------------

    def scan(self, pc: int, idx: int, tr, eng: PredictionEngine) -> Access:
        """One PC-generation access from *pc* at trace index *idx*.

        Walks the correct path against the entry content, trains all
        structures (immediate update) and returns an
        :class:`~repro.btb.base.Access`."""
        btypes = tr.btype
        takens = tr.taken
        targets = tr.target
        n = len(btypes)
        self._tick += 1
        block_start = pc
        entry = self._l1_lookup(pc)
        level = L1_HIT if entry is not None else MISS
        if entry is None:
            entry = self._synthesize_block(pc)
            if entry is not None:
                level = L2_HIT
                self._install_l1(entry)
        end_pc = entry.end_pc if entry is not None else pc + self.block_insts * ILEN
        count = 0
        while pc < end_pc:
            j = idx + count
            if j >= n:
                return Access(count, pc)
            bt = btypes[j]
            count += 1
            if bt == BranchType.NONE:
                pc += ILEN
                continue
            slot = entry.find(pc) if entry is not None else None
            if slot is not None:
                entry.touch(slot, self._tick)
            known = slot is not None
            taken = bool(takens[j])
            target = targets[j]
            eng.note_btb(level if known else MISS, taken, pc)
            res = eng.resolve(pc, bt, taken, target, known, slot)
            entry = self._train(entry, block_start, pc, bt, taken, target, slot)
            if res == SEQ:
                pc += ILEN
                continue
            if res == REDIRECT:
                bubbles = 3 if level == L2_HIT else self.l1_taken_bubble
                if bt in (BranchType.INDIRECT, BranchType.CALL_INDIRECT):
                    bubbles += 1
                return Access(count, target, bubbles)
            return Access(count, 0, 0, event=res, event_index=j)
        bubbles = 0
        if entry is not None and entry.split:
            bubbles = 0  # split bit fast path (same default as B-BTB)
        return Access(count, pc, bubbles)

    # -- training --------------------------------------------------------------------

    def _train(
        self,
        entry: Optional[BlockEntry],
        block_start: int,
        pc: int,
        btype: int,
        taken: bool,
        target: int,
        slot: Optional[BranchSlot],
    ) -> Optional[BlockEntry]:
        if not taken:
            return entry
        self._train_l2(pc, btype, target)
        if slot is not None:
            slot.target = target
            return entry
        if entry is None:
            entry = BlockEntry(start=block_start, length=self.block_insts)
            self._append_slot(entry, BranchSlot(pc=pc, btype=btype, target=target))
            self._install_l1(entry)
            if self.probe.enabled:
                self.probe.emit(BTB_ALLOC, block_start)
            return entry
        if len(entry.slots) < self.l1_slots:
            self._append_slot(entry, BranchSlot(pc=pc, btype=btype, target=target))
            return entry
        # Split (always enabled in the L1 block organization).
        staged = sorted(
            entry.slots + [BranchSlot(pc=pc, btype=btype, target=target)],
            key=lambda s: s.pc,
        )
        keep = staged[: self.l1_slots]
        spill = staged[self.l1_slots :]
        split_pc = keep[-1].pc + ILEN
        entry.slots = keep
        entry.ticks = [self._tick] * len(keep)
        entry.iticks = [self._tick] * len(keep)
        entry.length = (split_pc - entry.start) // ILEN
        entry.split = True
        if self.probe.enabled:
            self.probe.emit(BTB_SPLIT, entry.start, split_pc)
        for s in spill:
            if split_pc <= s.pc < split_pc + self.block_insts * ILEN:
                fall = self._l1_lookup(split_pc)
                if fall is None:
                    fall = BlockEntry(start=split_pc, length=self.block_insts)
                    self._install_l1(fall)
                if fall.find(s.pc) is None and s.pc < fall.end_pc:
                    if len(fall.slots) < self.l1_slots:
                        self._append_slot(fall, s)
        return entry

    def _append_slot(self, entry: BlockEntry, slot: BranchSlot) -> None:
        pos = 0
        while pos < len(entry.slots) and entry.slots[pos].pc <= slot.pc:
            pos += 1
        entry.slots.insert(pos, slot)
        entry.ticks.insert(pos, self._tick)
        entry.iticks.insert(pos, self._tick)

    def _train_l2(self, pc: int, btype: int, target: int) -> None:
        """Insert/update the branch in its dense L2 region entry."""
        region = pc & ~(self.region_bytes - 1)
        entry = self._l2_region(region)
        if entry is None:
            entry = RegionEntry(base=region)
            key = region >> self._region_shift
            self.l2.insert(key, key, entry)
        slot = entry.find(pc)
        if slot is not None:
            slot.target = target
            entry.ticks[entry.slots.index(slot)] = self._tick
            return
        if len(entry.slots) >= self.l2_slots:
            victim = pick_victim(
                self.slot_policy, entry.slots, entry.ticks, entry.iticks, self._tick
            )
            entry.slots.pop(victim)
            entry.ticks.pop(victim)
            entry.iticks.pop(victim)
        pos = 0
        while pos < len(entry.slots) and entry.slots[pos].pc <= pc:
            pos += 1
        entry.slots.insert(pos, BranchSlot(pc=pc, btype=btype, target=target))
        entry.ticks.insert(pos, self._tick)
        entry.iticks.insert(pos, self._tick)

    # -- structure metrics ---------------------------------------------------------------

    def _entries(self, level: int):
        array = self.l1 if level == 1 else self.l2
        for _s, _t, entry in array.items():
            yield entry

    def slot_occupancy(self, level: int) -> float:
        """Mean used branch slots per resident entry at *level*."""
        entries = list(self._entries(level))
        if not entries:
            return 0.0
        return sum(len(e.slots) for e in entries) / len(entries)

    def redundancy_ratio(self, level: int) -> float:
        """Entries per tracked branch PC at *level* (§3.4 metric)."""
        counts = {}
        for entry in self._entries(level):
            for slot in entry.slots:
                counts[slot.pc] = counts.get(slot.pc, 0) + 1
        if not counts:
            return 0.0
        return sum(counts.values()) / len(counts)
