"""BTB organizations: I-BTB, R-BTB, B-BTB and MultiBlock BTB."""

from repro.btb.base import (
    Access,
    BTBGeometry,
    BranchSlot,
    L1_HIT,
    L2_HIT,
    MISS,
    TwoLevelStore,
)
from repro.btb.bbtb import BlockBTB, BlockEntry
from repro.btb.hetero import HeterogeneousBTB
from repro.btb.replacement import POLICIES, pick_victim
from repro.btb.ibtb import InstructionBTB
from repro.btb.mbbtb import (
    PULL_POLICIES,
    STABILITY_THRESHOLD,
    MBEntry,
    MultiBlockBTB,
)
from repro.btb.rbtb import RegionBTB, RegionEntry

__all__ = [
    "Access",
    "BTBGeometry",
    "BlockBTB",
    "BlockEntry",
    "BranchSlot",
    "HeterogeneousBTB",
    "POLICIES",
    "pick_victim",
    "InstructionBTB",
    "L1_HIT",
    "L2_HIT",
    "MBEntry",
    "MISS",
    "MultiBlockBTB",
    "PULL_POLICIES",
    "RegionBTB",
    "RegionEntry",
    "STABILITY_THRESHOLD",
    "TwoLevelStore",
]
