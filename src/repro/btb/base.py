"""Shared BTB machinery: branch slots, access results, two-level storage.

Every organization (I-, R-, B-, MB-BTB) stores :class:`BranchSlot`s inside
entries kept in a :class:`TwoLevelStore` — an inclusive L1/L2 pair of
set-associative arrays with the Fig.-3 bubble semantics attached by the
PC-generation stage. Comparisons across organizations hold the total
number of *branch slots* constant (paper §4), so constructors take the
slot budget and derive entry counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.assoc import SetAssociative
from repro.obs.events import BTB_EVICT
from repro.obs.probe import NULL_PROBE

#: Lookup outcome levels.
MISS = 0
L1_HIT = 1
L2_HIT = 2


@dataclass
class BranchSlot:
    """Metadata for one tracked branch.

    ``pc`` is absolute (entries derive offsets from their base); ``target``
    is the last observed taken target. The MB-BTB fields (``blk_id``,
    ``follow``, ``stabl_ctr``) are carried here so MB entries can reuse the
    class; other organizations leave them at defaults.
    """

    pc: int
    btype: int
    target: int
    blk_id: int = 0
    follow: bool = False
    stabl_ctr: int = 0


@dataclass
class Access:
    """Result of one PC-generation BTB access (one cycle of fetch PCs)."""

    #: Number of sequential trace instructions covered by this access.
    count: int
    #: Fetch PC for the next access (valid when event is None).
    next_pc: int
    #: Extra PC-generation stall cycles after this access (L2 redirect = 3,
    #: non-return indirect = +1).
    bubbles: int = 0
    #: None, or 'misfetch' (resteer at decode) or 'mispredict' (at execute).
    event: Optional[str] = None
    #: Trace index of the faulting branch when event is set.
    event_index: int = -1
    #: Number of distinct BTB-level blocks this access chained through
    #: (MB-BTB statistics; 1 for other organizations).
    blocks: int = 1


@dataclass
class BTBGeometry:
    """Sets/ways of one BTB level."""

    sets: int
    ways: int

    @property
    def entries(self) -> int:
        return self.sets * self.ways

    def scaled(self, factor: float) -> "BTBGeometry":
        """Scale the number of sets (ways preserved, minimum 1 set)."""
        sets = max(1, int(self.sets * factor))
        # Round down to power of two.
        p = 1
        while p * 2 <= sets:
            p *= 2
        return BTBGeometry(sets=p, ways=self.ways)


class TwoLevelStore:
    """Inclusive two-level entry store with LRU at both levels.

    * lookup: L1 hit wins; on L1 miss but L2 hit the entry is promoted to
      L1 (the L1 victim is demoted, i.e. its newer content refreshes the
      L2 copy). The caller receives ``(level, entry)``.
    * allocate: new entries are installed in both levels (inclusive).
    * Fill/evict latency between levels is not modelled, per paper §4.1.

    A single-level "ideal" store is expressed by passing ``l2_geom=None``.

    When an enabled probe is attached (see :func:`attach_probe`) the
    store emits ``btb_evict`` events for entries that leave the
    hierarchy entirely (evicted from the last level); L1->L2 demotions
    are not evictions under inclusion.
    """

    #: Observability probe (instance-assigned when a run is instrumented).
    probe = NULL_PROBE

    def __init__(
        self,
        l1_geom: BTBGeometry,
        l2_geom: Optional[BTBGeometry],
        index_shift: int,
    ) -> None:
        self._shift = index_shift
        self.l1 = SetAssociative(l1_geom.sets, l1_geom.ways)
        self.l2 = SetAssociative(l2_geom.sets, l2_geom.ways) if l2_geom else None

    def _key(self, pc: int) -> Tuple[int, int]:
        idx = pc >> self._shift
        return idx, idx  # full tags: tag is the full index

    def lookup(self, pc: int):
        """Return ``(level, entry)``; level is MISS/L1_HIT/L2_HIT."""
        key, tag = self._key(pc)
        entry = self.l1.lookup(key, tag)
        if entry is not None:
            return L1_HIT, entry
        if self.l2 is None:
            return MISS, None
        entry = self.l2.lookup(key, tag)
        if entry is None:
            return MISS, None
        # Promote to L1; demote the L1 victim's content into L2.
        victim = self.l1.insert(key, tag, entry)
        if victim is not None:
            vtag, ventry = victim
            lost = self.l2.insert(vtag, vtag, ventry)
            if lost is not None and self.probe.enabled:
                self.probe.emit(BTB_EVICT, lost[0])
        return L2_HIT, entry

    def peek_l1(self, pc: int) -> bool:
        """True when *pc*'s entry is L1-resident (no LRU touch, no promote)."""
        key, tag = self._key(pc)
        return self.l1.lookup(key, tag, touch=False) is not None

    def allocate(self, pc: int, entry) -> None:
        """Install *entry* in L1 (and L2 for inclusion)."""
        key, tag = self._key(pc)
        victim = self.l1.insert(key, tag, entry)
        probe_on = self.probe.enabled
        if self.l2 is not None:
            lost = self.l2.insert(key, tag, entry)
            if lost is not None and probe_on:
                self.probe.emit(BTB_EVICT, lost[0])
            if victim is not None:
                vtag, ventry = victim
                lost = self.l2.insert(vtag, vtag, ventry)
                if lost is not None and probe_on:
                    self.probe.emit(BTB_EVICT, lost[0])
        elif victim is not None and probe_on:
            # Single-level store: the L1 victim leaves the hierarchy.
            self.probe.emit(BTB_EVICT, victim[0])

    def invalidate(self, pc: int) -> None:
        """Drop the entry at *pc* from both levels."""
        key, tag = self._key(pc)
        self.l1.evict(key, tag)
        if self.l2 is not None:
            self.l2.evict(key, tag)

    # -- structure inspection (paper's occupancy/redundancy metrics) --------

    def resident_entries(self):
        """Yield every distinct resident entry (L1 ∪ L2)."""
        seen = set()
        for _, tag, entry in self.l1.items():
            if id(entry) not in seen:
                seen.add(id(entry))
                yield entry
        if self.l2 is not None:
            for _, tag, entry in self.l2.items():
                if id(entry) not in seen:
                    seen.add(id(entry))
                    yield entry

    def level_entries(self, level: int):
        """Yield entries resident in one level (1 or 2)."""
        store = self.l1 if level == 1 else self.l2
        if store is None:
            return
        for _, _tag, entry in store.items():
            yield entry



def attach_probe(btb, probe) -> None:
    """Wire an observability probe into *btb* and its storage.

    Works for every organization: sets the org-level ``probe`` attribute
    (read by the scan/train instrumentation sites) and, when the org is
    backed by a :class:`TwoLevelStore`, the store-level probe that emits
    eviction events. The heterogeneous BTB keeps raw
    :class:`~repro.common.assoc.SetAssociative` levels and only uses the
    org-level probe.
    """
    btb.probe = probe
    store = getattr(btb, "store", None)
    if isinstance(store, TwoLevelStore):
        store.probe = probe


def insert_sorted(slots: List[BranchSlot], slot: BranchSlot, key) -> None:
    """Insert *slot* keeping *slots* sorted by *key*."""
    pos = 0
    k = key(slot)
    while pos < len(slots) and key(slots[pos]) <= k:
        pos += 1
    slots.insert(pos, slot)
