"""Typed pipeline-event schema shared by the tracer and the exporters.

Every instrumented component emits events as small integer *kinds* plus
up to three integer arguments (``a``, ``b``, ``c``); the tracer stamps
the current cycle. Integer kinds keep the hot emit path allocation-free
(one tuple per recorded event) and make ring-buffer records trivially
serializable. :data:`EVENT_NAMES` maps kinds to stable human-readable
names used in exports, and :data:`EVENT_COMPONENT` groups kinds into the
pipeline component ("thread") they belong to — Chrome ``trace_event``
viewers render one track per component.

Event argument conventions (``a``/``b`` unless noted):

====================  =====================================================
kind                  arguments
====================  =====================================================
``FTQ_ENQUEUE``       a=cache line index, b=instruction count
``FTQ_DEQUEUE``       a=cache line index, b=instructions consumed
``FTQ_DRAIN``         (queue just ran dry)
``FTQ_FLUSH``         a=entries dropped
``BTB_HIT_L1``        a=branch pc (taken-branch lookups, paper's metric)
``BTB_HIT_L2``        a=branch pc
``BTB_MISS``          a=branch pc
``BTB_ALLOC``         a=entry/branch pc
``BTB_EVICT``         a=evicted tag
``BTB_SPLIT``         a=entry start pc, b=split point pc
``MB_PULL``           a=pulling slot pc, b=pulled target
``MB_DOWNGRADE``      a=downgraded slot pc
``RBTB_OVERFLOW``     a=spilled branch pc
``MISFETCH``          a=branch pc, b=branch type
``MISPREDICT``        a=branch pc, b=branch type
``RESTEER``           a=trace index, b=0 misfetch / 1 mispredict
``ICACHE_WAIT``       a=cache line index, b=cycles until available
``PREFETCH_ISSUE``    a=byte address
====================  =====================================================
"""

from __future__ import annotations

from typing import Dict

# -- event kinds --------------------------------------------------------------

FTQ_ENQUEUE = 1
FTQ_DEQUEUE = 2
FTQ_DRAIN = 3
FTQ_FLUSH = 4

BTB_HIT_L1 = 5
BTB_HIT_L2 = 6
BTB_MISS = 7
BTB_ALLOC = 8
BTB_EVICT = 9
BTB_SPLIT = 10
MB_PULL = 11
MB_DOWNGRADE = 12
RBTB_OVERFLOW = 13

MISFETCH = 14
MISPREDICT = 15
RESTEER = 16

ICACHE_WAIT = 17
PREFETCH_ISSUE = 18

#: kind -> stable export name.
EVENT_NAMES: Dict[int, str] = {
    FTQ_ENQUEUE: "ftq_enqueue",
    FTQ_DEQUEUE: "ftq_dequeue",
    FTQ_DRAIN: "ftq_drain",
    FTQ_FLUSH: "ftq_flush",
    BTB_HIT_L1: "btb_hit_l1",
    BTB_HIT_L2: "btb_hit_l2",
    BTB_MISS: "btb_miss",
    BTB_ALLOC: "btb_alloc",
    BTB_EVICT: "btb_evict",
    BTB_SPLIT: "btb_split",
    MB_PULL: "mb_pull",
    MB_DOWNGRADE: "mb_downgrade",
    RBTB_OVERFLOW: "rbtb_overflow",
    MISFETCH: "misfetch",
    MISPREDICT: "mispredict",
    RESTEER: "resteer",
    ICACHE_WAIT: "icache_wait",
    PREFETCH_ISSUE: "prefetch_issue",
}

#: kind -> pipeline component (one Chrome-trace track per component).
EVENT_COMPONENT: Dict[int, str] = {
    FTQ_ENQUEUE: "ftq",
    FTQ_DEQUEUE: "ftq",
    FTQ_DRAIN: "ftq",
    FTQ_FLUSH: "ftq",
    BTB_HIT_L1: "btb",
    BTB_HIT_L2: "btb",
    BTB_MISS: "btb",
    BTB_ALLOC: "btb",
    BTB_EVICT: "btb",
    BTB_SPLIT: "btb",
    MB_PULL: "btb",
    MB_DOWNGRADE: "btb",
    RBTB_OVERFLOW: "btb",
    MISFETCH: "pcgen",
    MISPREDICT: "pcgen",
    RESTEER: "pcgen",
    ICACHE_WAIT: "fetch",
    PREFETCH_ISSUE: "memory",
}

#: Component tracks in display order (Chrome-trace thread ids).
COMPONENTS = ("pcgen", "ftq", "fetch", "btb", "memory")


def event_name(kind: int) -> str:
    """Export name of *kind* (unknown kinds render as ``event_<kind>``)."""
    return EVENT_NAMES.get(kind, f"event_{kind}")
