"""The ``Probe`` protocol and its do-nothing fast path.

A *probe* is the single object the pipeline talks to when instrumented.
Components never import tracers or collectors; they hold a ``probe``
attribute (class-level default :data:`NULL_PROBE`) and guard every
emission site with ``if probe.enabled:`` so that uninstrumented runs pay
at most one attribute load + branch per already-rare event — and nothing
at all on the per-instruction fast paths.

Probe protocol (duck-typed; :class:`~repro.obs.observer.Observer` is the
real implementation):

``enabled``
    Bool. False on :class:`NullProbe`; instrumentation sites use it as
    the cheap gate.
``now``
    The current simulation cycle; maintained by the simulator via
    :meth:`on_cycle`, read implicitly by :meth:`emit`.
``begin(name, instructions, warmup, stats)``
    Called once at the start of :meth:`Simulator.run` with the workload
    name, trace length, warmup boundary and the live ``Stats`` bag.
``on_cycle(cycle, ftq_len, admitted)``
    Called once per simulated cycle (only when enabled): advances
    ``now``, feeds interval collection.
``emit(kind, a=0, b=0, c=0)``
    Record one typed event at cycle ``now``.
``emit_at(cycle, kind, a=0, b=0, c=0)``
    Record one typed event at an explicit *cycle* (used for events whose
    timestamp is in the future, e.g. the resteer completion).
``finish(cycle, admitted)``
    Called once when the run ends; flushes the final partial interval.
"""

from __future__ import annotations


class NullProbe:
    """Inert probe: every hook is a no-op and ``enabled`` is False.

    The simulator hoists ``probe.enabled`` into a local before its cycle
    loop, so a run wired to the :data:`NULL_PROBE` singleton executes the
    exact same instruction stream as one with no probe argument at all.
    """

    __slots__ = ()

    enabled = False
    now = 0

    def begin(self, name, instructions, warmup, stats) -> None:
        pass

    def on_cycle(self, cycle, ftq_len=0, admitted=0) -> None:
        pass

    def emit(self, kind, a=0, b=0, c=0) -> None:
        pass

    def emit_at(self, cycle, kind, a=0, b=0, c=0) -> None:
        pass

    def finish(self, cycle, admitted=0) -> None:
        pass


#: Process-wide inert probe; components default to this.
NULL_PROBE = NullProbe()
