"""Interval metrics: per-N-cycle snapshots of the simulator's counters.

Every ``interval`` cycles the collector diffs the live ``Stats`` bag
against the previous snapshot and records one row: the raw counter
*deltas* (so summing any counter column reproduces the end-of-run total
exactly — the reconciliation property the tests assert) plus derived
per-interval metrics (IPC, mean FTQ occupancy, misfetch PKI, branch
MPKI, L1 BTB hit rate). :meth:`finalize` returns the rows as numpy
columns keyed by name.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

#: Derived column names (computed per interval, not counter deltas).
DERIVED_COLUMNS = (
    "cycle_start",
    "cycle_end",
    "instructions",
    "ipc",
    "ftq_occupancy",
    "misfetch_pki",
    "branch_mpki",
    "l1_btb_hit_rate",
)


class IntervalCollector:
    """Accumulates per-interval counter deltas and derived metrics."""

    def __init__(self, interval: int) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self._stats = None
        self._rows: List[Dict[str, float]] = []
        self._base: Dict[str, float] = {}
        self._base_cycle = 0
        self._base_admitted = 0
        self._occ_sum = 0
        self._occ_cycles = 0
        self._next_edge = interval
        self._finished = False

    # -- collection hooks ---------------------------------------------------

    def begin(self, stats) -> None:
        """Bind the live counter bag; the first interval diffs against
        its current content (normally all zeros at run start)."""
        self._stats = stats
        self._base = stats.as_dict()

    def on_cycle(self, cycle: int, ftq_len: int, admitted: int) -> None:
        self._occ_sum += ftq_len
        self._occ_cycles += 1
        if cycle >= self._next_edge:
            self._snapshot(cycle, admitted)
            self._next_edge = cycle + self.interval

    def finish(self, cycle: int, admitted: int) -> None:
        """Flush the final (possibly partial) interval."""
        if self._finished:
            return
        self._finished = True
        if self._stats is not None and cycle > self._base_cycle:
            self._snapshot(cycle, admitted)

    # -- internals ----------------------------------------------------------

    def _snapshot(self, cycle: int, admitted: int) -> None:
        current = self._stats.as_dict()
        base = self._base
        row: Dict[str, float] = {
            key: current[key] - base.get(key, 0.0) for key in current
        }
        cycles = cycle - self._base_cycle
        insts = admitted - self._base_admitted
        occ = self._occ_sum / self._occ_cycles if self._occ_cycles else 0.0
        taken = row.get("btb_taken_lookups", 0.0)
        row["cycle_start"] = float(self._base_cycle)
        row["cycle_end"] = float(cycle)
        row["instructions"] = float(insts)
        row["ipc"] = insts / cycles if cycles else 0.0
        row["ftq_occupancy"] = occ
        row["misfetch_pki"] = 1000.0 * row.get("misfetches", 0.0) / insts if insts else 0.0
        row["branch_mpki"] = 1000.0 * row.get("mispredicts", 0.0) / insts if insts else 0.0
        row["l1_btb_hit_rate"] = (
            row.get("btb_taken_l1_hits", 0.0) / taken if taken else 0.0
        )
        self._rows.append(row)
        self._base = current
        self._base_cycle = cycle
        self._base_admitted = admitted
        self._occ_sum = 0
        self._occ_cycles = 0

    # -- results ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def finalize(self) -> Dict[str, np.ndarray]:
        """Rows as numpy columns; missing counters back-fill as 0."""
        keys = set()
        for row in self._rows:
            keys.update(row)
        return {
            key: np.asarray(
                [row.get(key, 0.0) for row in self._rows], dtype=np.float64
            )
            for key in sorted(keys)
        }
