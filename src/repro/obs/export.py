"""Exporters for :class:`~repro.obs.observer.Observation` artifacts.

Three formats:

* **Chrome ``trace_event`` JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`): loads directly in ``chrome://tracing``
  and https://ui.perfetto.dev. One simulated cycle maps to one
  microsecond of trace time. Pipeline events become instant events on
  one track per component; misfetch/mispredict windows are paired with
  their resteer into duration (``"ph": "X"``) slices on a dedicated
  ``stalls`` track; interval metrics become counter (``"ph": "C"``)
  tracks, which Perfetto renders as line charts.
* **CSV interval dump** (:func:`write_intervals_csv`): one row per
  interval, one column per metric, suitable for pandas/gnuplot.
* **JSON observation dump** (:func:`observation_to_json` /
  :func:`write_observation_json`): the full artifact — meta, exact event
  counts, buffered events and interval columns — for programmatic use.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List

from repro.obs.events import (
    COMPONENTS,
    EVENT_COMPONENT,
    MISFETCH,
    MISPREDICT,
    RESTEER,
    event_name,
)
from repro.obs.observer import Observation

#: Counter tracks exported to Chrome traces (name -> interval column).
CHROME_COUNTERS = (
    "ipc",
    "ftq_occupancy",
    "misfetch_pki",
    "branch_mpki",
    "l1_btb_hit_rate",
)

#: Extra thread track carrying paired stall slices.
STALL_TRACK = "stalls"


def _thread_ids() -> Dict[str, int]:
    tids = {name: i + 1 for i, name in enumerate(COMPONENTS)}
    tids[STALL_TRACK] = len(tids) + 1
    return tids


def chrome_trace(obs: Observation) -> Dict[str, Any]:
    """Render *obs* as a Chrome ``trace_event`` document (JSON object)."""
    tids = _thread_ids()
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"repro-sim {obs.name}"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )

    # Pair misfetch/mispredict emissions with their resteer to draw
    # stall windows; everything (pairs included) also appears as an
    # instant event on its component track.
    open_stalls: Dict[int, tuple] = {}
    stall_tid = tids[STALL_TRACK]
    for cycle, kind, a, b, c in obs.events:
        events.append(
            {
                "ph": "i",
                "ts": cycle,
                "pid": 0,
                "tid": tids.get(EVENT_COMPONENT.get(kind, "pcgen"), 1),
                "name": event_name(kind),
                "s": "t",
                "args": {"a": a, "b": b, "c": c},
            }
        )
        if kind in (MISFETCH, MISPREDICT):
            # One PC-generation stall is pending at a time; the resteer
            # names the trace index, which we do not have here, so key
            # the pending stall by kind class instead.
            open_stalls[0] = (cycle, kind, a)
        elif kind == RESTEER:
            start = open_stalls.pop(0, None)
            if start is not None and cycle >= start[0]:
                events.append(
                    {
                        "ph": "X",
                        "ts": start[0],
                        "dur": max(1, cycle - start[0]),
                        "pid": 0,
                        "tid": stall_tid,
                        "name": event_name(start[1]),
                        "args": {"pc": start[2], "trace_index": a},
                    }
                )

    cols = obs.intervals
    if cols:
        ends = cols.get("cycle_end")
        if ends is not None:
            for name in CHROME_COUNTERS:
                series = cols.get(name)
                if series is None:
                    continue
                for ts, value in zip(ends, series):
                    events.append(
                        {
                            "ph": "C",
                            "ts": int(ts),
                            "pid": 0,
                            "name": name,
                            "args": {name: round(float(value), 6)},
                        }
                    )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "workload": obs.name,
            "cycles": obs.cycles,
            "instructions": obs.instructions,
            "interval": obs.interval,
            "event_counts": obs.event_counts,
            "events_dropped": obs.dropped,
            "events_sampled_out": obs.sampled_out,
            **{str(k): v for k, v in obs.meta.items()},
        },
    }


def write_chrome_trace(obs: Observation, path: str) -> None:
    """Write the Chrome trace document of *obs* to *path*."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(obs), fh)
        fh.write("\n")


def write_intervals_csv(obs: Observation, path: str) -> None:
    """Write interval metrics as CSV (one row per interval)."""
    cols = obs.intervals
    names = sorted(cols)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        if names:
            rows = len(cols[names[0]])
            for i in range(rows):
                writer.writerow([f"{cols[name][i]:g}" for name in names])


def observation_to_json(obs: Observation) -> Dict[str, Any]:
    """The full observation as one JSON-serializable dict."""
    return {
        "schema": 1,
        "name": obs.name,
        "cycles": obs.cycles,
        "instructions": obs.instructions,
        "warmup": obs.warmup,
        "interval": obs.interval,
        "event_counts": obs.event_counts,
        "events_dropped": obs.dropped,
        "events_sampled_out": obs.sampled_out,
        "events": [list(rec) for rec in obs.events],
        "intervals": {k: [float(x) for x in v] for k, v in obs.intervals.items()},
        "meta": obs.meta,
    }


def write_observation_json(obs: Observation, path: str) -> None:
    """Write :func:`observation_to_json` output to *path*."""
    with open(path, "w") as fh:
        json.dump(observation_to_json(obs), fh)
        fh.write("\n")


# -- sweep-level scheduler traces --------------------------------------------

#: Sweep event kinds rendered as instant markers (vs. chunk slices).
SWEEP_INSTANT_KINDS = (
    "point_ok",
    "point_error",
    "retry",
    "defer",
    "worker_crash",
    "timeout_kill",
    "resume_skip",
    "cache_corrupt",
)


def sweep_chrome_trace(report) -> Dict[str, Any]:
    """Render a sweep's scheduler event log as a Chrome ``trace_event``
    document (one wall-clock second maps to one second of trace time).

    *report* is a :class:`~repro.core.exec.resilience.SweepReport`. One
    track per worker slot shows chunk occupancy as duration slices, with
    retry/failure/crash markers on a dedicated ``scheduler`` track and
    running completed/failed/retries counter tracks — so a Perfetto
    timeline shows exactly where a campaign lost and recovered time.
    """
    sched_events = list(report.events)
    slots = sorted({e["slot"] for e in sched_events if "slot" in e})
    tids = {f"worker-{slot}": i + 1 for i, slot in enumerate(slots)}
    slot_tid = {slot: tids[f"worker-{slot}"] for slot in slots}
    scheduler_tid = len(tids) + 1
    tids["scheduler"] = scheduler_tid

    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro-sim sweep"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )

    open_chunks: Dict[tuple, float] = {}
    completed = failed = retries = 0
    last_ts = 0.0
    for event in sched_events:
        ts = float(event["ts"])
        last_ts = max(last_ts, ts)
        us = int(ts * 1e6)
        kind = event["kind"]
        slot = event.get("slot")
        if kind == "chunk_start":
            open_chunks[(slot, event["chunk"])] = ts
        elif kind == "chunk_end":
            start = open_chunks.pop((slot, event["chunk"]), None)
            if start is not None:
                events.append(
                    {
                        "ph": "X",
                        "ts": int(start * 1e6),
                        "dur": max(1, us - int(start * 1e6)),
                        "pid": 0,
                        "tid": slot_tid.get(slot, scheduler_tid),
                        "name": f"chunk-{event['chunk']}",
                        "args": {"chunk": event["chunk"]},
                    }
                )
        elif kind in SWEEP_INSTANT_KINDS:
            events.append(
                {
                    "ph": "i",
                    "ts": us,
                    "pid": 0,
                    "tid": slot_tid.get(slot, scheduler_tid),
                    "name": kind,
                    "s": "t",
                    "args": {
                        k: v for k, v in event.items() if k not in ("ts", "kind")
                    },
                }
            )
        if kind == "point_ok":
            completed += 1
        elif kind in ("point_error", "worker_crash", "timeout_kill") and event.get(
            "final"
        ):
            failed += 1
        elif kind == "retry":
            retries += 1
        for name, value in (
            ("completed", completed),
            ("failed", failed),
            ("retries", retries),
        ):
            events.append(
                {
                    "ph": "C",
                    "ts": us,
                    "pid": 0,
                    "name": name,
                    "args": {name: value},
                }
            )
    # Close chunks left open by a crash/kill with the last known time.
    for (slot, chunk), start in open_chunks.items():
        events.append(
            {
                "ph": "X",
                "ts": int(start * 1e6),
                "dur": max(1, int((last_ts - start) * 1e6)),
                "pid": 0,
                "tid": slot_tid.get(slot, scheduler_tid),
                "name": f"chunk-{chunk} (unfinished)",
                "args": {"chunk": chunk},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(report.counters),
            "interrupted": report.interrupted,
        },
    }


def write_sweep_chrome_trace(report, path: str) -> None:
    """Write the sweep scheduler trace of *report* to *path*."""
    with open(path, "w") as fh:
        json.dump(sweep_chrome_trace(report), fh)
        fh.write("\n")
