"""Structured event tracer: a bounded ring buffer with sampling.

Records are ``(cycle, kind, a, b, c)`` tuples. Two independent bounding
mechanisms keep long runs cheap:

* ``sample=K`` keeps every K-th event *per kind* (kind-stratified, so a
  flood of FTQ enqueues cannot starve rare misfetch events out of the
  sample);
* ``capacity`` bounds the buffer; once full, the oldest records are
  dropped (ring semantics) and counted in :attr:`dropped`.

Per-kind totals in :attr:`counts` are exact regardless of sampling or
ring drops, so aggregate analyses never depend on buffer sizing.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

#: One recorded event: (cycle, kind, a, b, c).
EventRecord = Tuple[int, int, int, int, int]

#: Default ring capacity (records).
DEFAULT_CAPACITY = 65536


class EventTracer:
    """Bounded, optionally sampling, typed event recorder."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sample: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.capacity = capacity
        self.sample = sample
        self._ring: Deque[EventRecord] = deque(maxlen=capacity)
        #: Exact emitted-event totals per kind (independent of bounding).
        self.counts: Dict[int, int] = {}
        #: Events that fell out of the full ring.
        self.dropped = 0
        #: Events skipped by the sampling stride.
        self.sampled_out = 0

    def add(self, cycle: int, kind: int, a: int = 0, b: int = 0, c: int = 0) -> None:
        """Record one event (subject to sampling and ring bounding)."""
        counts = self.counts
        seen = counts.get(kind, 0)
        counts[kind] = seen + 1
        if self.sample > 1 and seen % self.sample:
            self.sampled_out += 1
            return
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append((cycle, kind, a, b, c))

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def total(self) -> int:
        """Exact number of emitted events across all kinds."""
        return sum(self.counts.values())

    def records(self) -> List[EventRecord]:
        """Buffered records in emission order (oldest first)."""
        return list(self._ring)
