"""The live probe implementation and its frozen result artifact.

:class:`Observer` implements the probe protocol of :mod:`repro.obs.probe`
by composing an :class:`~repro.obs.tracer.EventTracer` (opt-in) and an
:class:`~repro.obs.intervals.IntervalCollector` (opt-in). Pass one to
:meth:`Simulator.run <repro.core.simulator.Simulator>` (via the
``probe`` constructor argument or ``build_simulator(..., probe=...)``)
and call :meth:`Observer.observation` afterwards for the immutable
:class:`Observation` that the exporters consume.

:class:`ObsSpec` is the hashable "what to observe" description used by
the sweep engine (:mod:`repro.core.exec.engine`) so observability can be
requested per sweep point without changing cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs.events import event_name
from repro.obs.intervals import IntervalCollector
from repro.obs.tracer import DEFAULT_CAPACITY, EventRecord, EventTracer


@dataclass(frozen=True)
class ObsSpec:
    """Hashable observability request (used by sweep points)."""

    events: bool = True
    interval: int = 1000
    sample: int = 1
    capacity: int = DEFAULT_CAPACITY


@dataclass
class Observation:
    """Frozen outcome of one observed run."""

    name: str
    cycles: int
    instructions: int
    warmup: int
    interval: int
    #: Buffered (cycle, kind, a, b, c) records, oldest first.
    events: List[EventRecord] = field(default_factory=list)
    #: Exact per-kind totals by export name (independent of bounding).
    event_counts: Dict[str, int] = field(default_factory=dict)
    dropped: int = 0
    sampled_out: int = 0
    #: Interval columns (name -> float64 array); empty when not collected.
    intervals: Dict[str, np.ndarray] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)


class Observer:
    """Composite probe: event tracing + interval metrics.

    Construct with ``events=False`` or ``interval=0`` to disable either
    half; an Observer with both disabled still tracks run framing and is
    valid (if pointless). The simulator only ever sees the probe
    protocol — ``begin`` / ``on_cycle`` / ``emit`` / ``emit_at`` /
    ``finish``.
    """

    enabled = True

    def __init__(
        self,
        events: bool = True,
        interval: int = 0,
        sample: int = 1,
        capacity: int = DEFAULT_CAPACITY,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.now = 0
        self.tracer = EventTracer(capacity, sample) if events else None
        self.intervals = IntervalCollector(interval) if interval > 0 else None
        self.meta: Dict[str, Any] = dict(meta or {})
        self.name = ""
        self.trace_instructions = 0
        self.warmup = 0
        self.final_cycle = 0
        self.final_admitted = 0
        self._stats = None

    @classmethod
    def from_spec(cls, spec: ObsSpec, meta: Optional[Dict[str, Any]] = None) -> "Observer":
        return cls(
            events=spec.events,
            interval=spec.interval,
            sample=spec.sample,
            capacity=spec.capacity,
            meta=meta,
        )

    # -- probe protocol -----------------------------------------------------

    def begin(self, name, instructions, warmup, stats) -> None:
        self.name = name
        self.trace_instructions = instructions
        self.warmup = warmup
        self._stats = stats
        if self.intervals is not None:
            self.intervals.begin(stats)

    def on_cycle(self, cycle, ftq_len=0, admitted=0) -> None:
        self.now = cycle
        iv = self.intervals
        if iv is not None:
            iv.on_cycle(cycle, ftq_len, admitted)

    def emit(self, kind, a=0, b=0, c=0) -> None:
        tr = self.tracer
        if tr is not None:
            tr.add(self.now, kind, a, b, c)

    def emit_at(self, cycle, kind, a=0, b=0, c=0) -> None:
        tr = self.tracer
        if tr is not None:
            tr.add(cycle, kind, a, b, c)

    def finish(self, cycle, admitted=0) -> None:
        self.final_cycle = cycle
        self.final_admitted = admitted
        if self.intervals is not None:
            self.intervals.finish(cycle, admitted)

    # -- results ------------------------------------------------------------

    def observation(self) -> Observation:
        """Snapshot everything observed so far as an :class:`Observation`."""
        tr = self.tracer
        return Observation(
            name=self.name,
            cycles=self.final_cycle,
            instructions=self.final_admitted,
            warmup=self.warmup,
            interval=self.intervals.interval if self.intervals is not None else 0,
            events=tr.records() if tr is not None else [],
            event_counts=(
                {event_name(k): n for k, n in sorted(tr.counts.items())}
                if tr is not None
                else {}
            ),
            dropped=tr.dropped if tr is not None else 0,
            sampled_out=tr.sampled_out if tr is not None else 0,
            intervals=(
                self.intervals.finalize() if self.intervals is not None else {}
            ),
            meta=dict(self.meta),
        )
