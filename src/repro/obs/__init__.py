"""``repro.obs`` — pipeline observability: probes, event tracing,
interval metrics and exporters.

The default probe is the inert :data:`~repro.obs.probe.NULL_PROBE`;
uninstrumented simulations are timing-identical and within noise of the
pre-observability simulator (see docs/observability.md for the
measured overhead). To observe a run::

    from repro.obs import Observer
    from repro.obs.export import write_chrome_trace

    observer = Observer(events=True, interval=1000)
    sim = build_simulator(config, trace, probe=observer)
    result = sim.run(warmup=0)
    obs = observer.observation()
    write_chrome_trace(obs, "out.trace.json")   # chrome://tracing

or from the CLI: ``repro-sim trace WORKLOAD --events --intervals 1000
--chrome out.trace.json``.
"""

from repro.obs.events import EVENT_COMPONENT, EVENT_NAMES, event_name
from repro.obs.intervals import IntervalCollector
from repro.obs.observer import Observation, Observer, ObsSpec
from repro.obs.probe import NULL_PROBE, NullProbe
from repro.obs.tracer import EventTracer

__all__ = [
    "EVENT_COMPONENT",
    "EVENT_NAMES",
    "event_name",
    "IntervalCollector",
    "Observation",
    "Observer",
    "ObsSpec",
    "NULL_PROBE",
    "NullProbe",
    "EventTracer",
]
