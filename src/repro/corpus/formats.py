"""Streaming format adapters for trace-corpus ingestion.

Every adapter is a generator yielding one canonical
:data:`~repro.trace.external.Record` tuple per dynamic instruction —
records are *never* accumulated in Python lists here, so ingesting a
billion-instruction trace holds only one record (plus the corpus
store's bounded shard buffer) in memory. All adapters read through
:func:`repro.trace.external.open_trace_text`, so ``.gz`` and ``.xz``
compressed inputs are decompressed transparently.

Three input formats are supported, selected by file suffix (after
stripping any compression suffix) or an explicit ``fmt=`` override:

``csv`` (``.csv``)
    The repo's canonical CSV trace format — see
    :mod:`repro.trace.external`.

``champsim`` (``.champsim``, ``.cst``)
    A documented ChampSim-like text rendering of ChampSim's per-retired-
    instruction trace records. Whitespace-separated columns::

        <pc> <kind> [<taken> <target>]

    ``kind`` is a single letter: ``N`` non-branch, ``B`` conditional
    direct, ``J`` unconditional direct jump, ``C`` direct call, ``R``
    return, ``I`` indirect jump, ``X`` indirect call (mirroring
    ChampSim's ``NOT_BRANCH`` / ``BRANCH_CONDITIONAL`` / ``BRANCH_DIRECT_JUMP``
    / ``BRANCH_DIRECT_CALL`` / ``BRANCH_RETURN`` / ``BRANCH_INDIRECT`` /
    ``BRANCH_INDIRECT_CALL`` taxonomy). Non-branch lines may omit the
    trailing ``<taken> <target>``. PCs and targets are decimal or
    0x-prefixed hex. Blank lines and ``#`` comments are skipped.

``cvp1`` (``.cvp``, ``.cvp1``)
    A documented CVP-1-like text rendering of the CVP-1 trace records
    the paper evaluates on. Whitespace-separated columns::

        <pc> <class> [<taken> <target>] [<maddr>]

    ``class`` is a CVP-1 instruction class name (case-insensitive,
    the ``InstClass`` suffix optional): ``aluInstClass``,
    ``loadInstClass``, ``storeInstClass``, ``condBranchInstClass``,
    ``uncondDirectBranchInstClass``, ``uncondIndirectBranchInstClass``,
    ``fpInstClass``, ``slowAluInstClass``, ``undefInstClass``.
    Branch classes carry ``<taken> <target>``; load/store classes may
    carry a memory address. CVP-1 does not distinguish calls/returns
    from plain jumps, so its two branch-target classes map onto
    ``UNCOND_DIRECT`` and ``INDIRECT``.
"""

from __future__ import annotations

import lzma
from typing import Iterator, Optional

from repro.common.types import BranchType
from repro.trace.external import (
    NO_REG,
    Record,
    TraceFormatError,
    iter_csv_records,
    open_trace_text,
)

#: Compression suffixes stripped before format detection.
COMPRESSION_SUFFIXES = (".gz", ".xz")

#: Format name -> file suffixes that select it.
FORMAT_SUFFIXES = {
    "csv": (".csv",),
    "champsim": (".champsim", ".cst"),
    "cvp1": (".cvp", ".cvp1"),
}

FORMATS = tuple(FORMAT_SUFFIXES)

#: ChampSim-like single-letter instruction kinds -> BranchType.
CHAMPSIM_KINDS = {
    "N": BranchType.NONE,
    "B": BranchType.COND_DIRECT,
    "J": BranchType.UNCOND_DIRECT,
    "C": BranchType.CALL_DIRECT,
    "R": BranchType.RETURN,
    "I": BranchType.INDIRECT,
    "X": BranchType.CALL_INDIRECT,
}

#: CVP-1-like instruction class names (lowercased, ``instclass`` suffix
#: stripped) -> (BranchType, is_load, is_store).
CVP1_CLASSES = {
    "alu": (BranchType.NONE, 0, 0),
    "fp": (BranchType.NONE, 0, 0),
    "slowalu": (BranchType.NONE, 0, 0),
    "undef": (BranchType.NONE, 0, 0),
    "load": (BranchType.NONE, 1, 0),
    "store": (BranchType.NONE, 0, 1),
    "condbranch": (BranchType.COND_DIRECT, 0, 0),
    "unconddirectbranch": (BranchType.UNCOND_DIRECT, 0, 0),
    "uncondindirectbranch": (BranchType.INDIRECT, 0, 0),
}


def strip_compression(path: str) -> str:
    """*path* without a trailing ``.gz``/``.xz`` suffix."""
    for suffix in COMPRESSION_SUFFIXES:
        if path.endswith(suffix):
            return path[: -len(suffix)]
    return path


def detect_format(path) -> str:
    """Infer the trace format of *path* from its (decompressed) suffix."""
    bare = strip_compression(str(path).lower())
    for fmt, suffixes in FORMAT_SUFFIXES.items():
        if bare.endswith(suffixes):
            return fmt
    raise TraceFormatError(
        f"cannot infer trace format from suffix of {path!r}; "
        f"pass an explicit format ({', '.join(FORMATS)})"
    )


def _parse_int(text: str, line_no: int, what: str) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise TraceFormatError(
            f"line {line_no}: bad integer {text!r} for {what}"
        ) from None


def _iter_lines(handle):
    """(line_no, fields) for every non-blank, non-comment line."""
    for line_no, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield line_no, stripped.split()


def iter_champsim_records(handle) -> Iterator[Record]:
    """Stream records from ChampSim-like text (see module docstring)."""
    for line_no, fields in _iter_lines(handle):
        pc = _parse_int(fields[0], line_no, "pc")
        if len(fields) < 2:
            raise TraceFormatError(
                f"line {line_no}: expected '<pc> <kind> [<taken> <target>]'"
            )
        kind = fields[1].upper()
        btype = CHAMPSIM_KINDS.get(kind)
        if btype is None:
            raise TraceFormatError(
                f"line {line_no}: unknown instruction kind {fields[1]!r} "
                f"(expected one of {', '.join(CHAMPSIM_KINDS)})"
            )
        taken = target = 0
        if btype != BranchType.NONE:
            if len(fields) < 4:
                raise TraceFormatError(
                    f"line {line_no}: branch record needs '<taken> <target>'"
                )
            taken = 1 if _parse_int(fields[2], line_no, "taken") else 0
            target = _parse_int(fields[3], line_no, "target")
        yield (pc, int(btype), taken, target, NO_REG, NO_REG, NO_REG, 0, 0, 0)


def iter_cvp1_records(handle) -> Iterator[Record]:
    """Stream records from CVP-1-like text (see module docstring)."""
    for line_no, fields in _iter_lines(handle):
        pc = _parse_int(fields[0], line_no, "pc")
        if len(fields) < 2:
            raise TraceFormatError(
                f"line {line_no}: expected '<pc> <class> ...'"
            )
        cls = fields[1].lower()
        if cls.endswith("instclass"):
            cls = cls[: -len("instclass")]
        mapped = CVP1_CLASSES.get(cls)
        if mapped is None:
            raise TraceFormatError(
                f"line {line_no}: unknown CVP-1 instruction class "
                f"{fields[1]!r} (expected one of "
                f"{', '.join(sorted(CVP1_CLASSES))} [+InstClass])"
            )
        btype, is_load, is_store = mapped
        taken = target = maddr = 0
        rest = fields[2:]
        if btype != BranchType.NONE:
            if len(rest) < 2:
                raise TraceFormatError(
                    f"line {line_no}: branch record needs '<taken> <target>'"
                )
            taken = 1 if _parse_int(rest[0], line_no, "taken") else 0
            target = _parse_int(rest[1], line_no, "target")
        elif (is_load or is_store) and rest:
            maddr = _parse_int(rest[0], line_no, "maddr")
        yield (
            pc, int(btype), taken, target,
            NO_REG, NO_REG, NO_REG, is_load, is_store, maddr,
        )


_READERS = {
    "csv": iter_csv_records,
    "champsim": iter_champsim_records,
    "cvp1": iter_cvp1_records,
}


def iter_records(path, fmt: Optional[str] = None) -> Iterator[Record]:
    """Stream canonical records from *path* in any supported format.

    *fmt* overrides suffix-based detection. Every raised
    :class:`TraceFormatError` names *path*.
    """
    fmt = fmt or detect_format(path)
    reader = _READERS.get(fmt)
    if reader is None:
        raise TraceFormatError(
            f"{path}: unknown trace format {fmt!r} "
            f"(expected one of {', '.join(FORMATS)})"
        )
    try:
        with open_trace_text(path) as handle:
            yield from reader(handle)
    except TraceFormatError as exc:
        text = str(exc)
        if not text.startswith(str(path)):
            raise TraceFormatError(f"{path}: {exc}") from None
        raise
    except (OSError, EOFError) as exc:
        reason = getattr(exc, "strerror", None) or str(exc) or type(exc).__name__
        raise TraceFormatError(f"{path}: {reason}") from None
    except lzma.LZMAError as exc:
        raise TraceFormatError(f"{path}: {exc}") from None
