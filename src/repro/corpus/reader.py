"""Lazy, memory-mapped readers over corpus shards.

:class:`CorpusTrace` opens an ingested trace without materializing it:
shards load on demand, uncompressed ``.npz`` members are **memory-
mapped** straight out of the zip container (``np.savez`` stores members
``ZIP_STORED``; we locate the member's data offset from the zip local
file header and the npy header, then ``np.memmap`` the region — falling
back to a plain ``np.load`` copy for anything unexpected), and
:meth:`CorpusTrace.iter_chunks` walks the trace with a **background
prefetch thread** that loads shard *i+1* while the caller consumes
shard *i*.

:class:`SliceSpec` makes long traces affordable: ``skip`` fast-forwards
past an uninteresting prefix, ``measure`` bounds the window, and
``sample=T/E`` keeps the first *T* instructions of every *E* — a
deterministic interval sampling in the spirit of SimPoint-style
checkpointing. The spec grammar (used in ``corpus:<name>@<spec>``
workload names) is comma-separated ``key=value`` pairs::

    corpus:srv01@skip=1000000
    corpus:srv01@skip=1000000,measure=5000000
    corpus:srv01@sample=10000/100000
"""

from __future__ import annotations

import struct
import zipfile
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.corpus.store import CorpusError, CorpusStore, Manifest
from repro.trace.trace import Trace

#: Set False (tests) to force the plain ``np.load`` copy path.
ENABLE_MMAP = True

_ZIP_LOCAL_HEADER = struct.Struct("<4s5H3L2H")


def _mmap_npz_member(path, name: str) -> Optional[np.ndarray]:
    """Memory-map array *name* out of the uncompressed npz at *path*.

    Returns ``None`` when the member is compressed or anything about the
    container looks unusual — callers fall back to ``np.load``.
    """
    if not ENABLE_MMAP:
        return None
    try:
        with zipfile.ZipFile(path) as zf:
            info = zf.getinfo(name if name.endswith(".npy") else name + ".npy")
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            with open(path, "rb") as fh:
                fh.seek(info.header_offset)
                header = _ZIP_LOCAL_HEADER.unpack(fh.read(_ZIP_LOCAL_HEADER.size))
                name_len, extra_len = header[9], header[10]
                data_offset = (
                    info.header_offset
                    + _ZIP_LOCAL_HEADER.size
                    + name_len
                    + extra_len
                )
                fh.seek(data_offset)
                version = np.lib.format.read_magic(fh)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
                else:
                    return None
                if fortran or dtype.hasobject:
                    return None
                return np.memmap(
                    path, dtype=dtype, mode="r", offset=fh.tell(), shape=shape
                )
    except Exception:
        return None


@dataclass(frozen=True)
class SliceSpec:
    """Deterministic windowing over a corpus trace (see module docstring).

    Applied in order: drop ``skip`` instructions, keep at most
    ``measure``, then within the window keep the first ``sample_take``
    of every ``sample_every`` instructions.
    """

    skip: int = 0
    measure: Optional[int] = None
    sample_take: Optional[int] = None
    sample_every: Optional[int] = None

    @classmethod
    def parse(cls, text: str) -> "SliceSpec":
        """Parse ``skip=N,measure=N,sample=T/E`` (any subset, any order)."""
        kwargs: Dict[str, int] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                raise CorpusError(f"bad slice component {part!r} in {text!r}")
            try:
                if key in ("skip", "measure"):
                    kwargs[key] = int(value)
                elif key == "sample":
                    take, sep2, every = value.partition("/")
                    if not sep2:
                        raise ValueError("sample needs the form T/E")
                    kwargs["sample_take"] = int(take)
                    kwargs["sample_every"] = int(every)
                else:
                    raise ValueError(f"unknown key {key!r}")
            except ValueError as exc:
                raise CorpusError(
                    f"bad slice component {part!r} in {text!r}: {exc}"
                ) from None
        spec = cls(**kwargs)
        spec.validate()
        return spec

    def validate(self) -> None:
        if self.skip < 0:
            raise CorpusError(f"slice skip must be >= 0, got {self.skip}")
        if self.measure is not None and self.measure < 1:
            raise CorpusError(f"slice measure must be >= 1, got {self.measure}")
        if (self.sample_take is None) != (self.sample_every is None):
            raise CorpusError("sample take and every must be set together")
        if self.sample_take is not None:
            if self.sample_take < 1 or self.sample_every < 1:
                raise CorpusError("sample T/E must both be >= 1")
            if self.sample_take > self.sample_every:
                raise CorpusError(
                    f"sample take {self.sample_take} exceeds interval "
                    f"{self.sample_every}"
                )

    def canonical(self) -> str:
        """Normalized rendering; equal specs render identically (used in
        cache keys and trace names)."""
        parts = []
        if self.skip:
            parts.append(f"skip={self.skip}")
        if self.measure is not None:
            parts.append(f"measure={self.measure}")
        if self.sample_take is not None:
            parts.append(f"sample={self.sample_take}/{self.sample_every}")
        return ",".join(parts)

    def mask(self, start: int, count: int) -> Optional[np.ndarray]:
        """Boolean selection for global indices [start, start+count), or
        ``None`` when the whole range is selected."""
        if (
            not self.skip
            and self.measure is None
            and self.sample_take is None
        ):
            return None
        idx = np.arange(start, start + count, dtype=np.int64)
        keep = idx >= self.skip
        if self.measure is not None:
            keep &= idx < self.skip + self.measure
        if self.sample_take is not None:
            keep &= (idx - self.skip) % self.sample_every < self.sample_take
        return keep

    def selected_count(self, n: int) -> int:
        """Number of instructions a length-*n* trace yields under this spec."""
        window = max(0, n - self.skip)
        if self.measure is not None:
            window = min(window, self.measure)
        if self.sample_take is None:
            return window
        full, rem = divmod(window, self.sample_every)
        return full * self.sample_take + min(rem, self.sample_take)


class CorpusTrace:
    """Lazy view of one ingested corpus trace.

    Cheap to construct — nothing is read until shards are iterated or
    the trace is materialized with :meth:`to_trace`.
    """

    def __init__(self, store: CorpusStore, manifest: Manifest) -> None:
        self.store = store
        self.manifest = manifest
        self._shard_dir = store.shard_dir_path(manifest)
        starts = []
        total = 0
        for shard in manifest.shards:
            starts.append(total)
            total += shard.insts
        self._starts = starts

    def __len__(self) -> int:
        return self.manifest.instructions

    @property
    def name(self) -> str:
        return self.manifest.name

    # -- shard access --------------------------------------------------------

    def load_shard(self, index: int) -> Dict[str, np.ndarray]:
        """Columns of shard *index*, memory-mapped when possible."""
        shard = self.manifest.shards[index]
        path = self._shard_dir / shard.file
        columns: Dict[str, np.ndarray] = {}
        loaded = None
        for col in Trace._COLUMNS:
            arr = _mmap_npz_member(path, col)
            if arr is None:
                if loaded is None:
                    try:
                        loaded = np.load(str(path), allow_pickle=False)
                    except Exception as exc:
                        raise CorpusError(
                            f"unreadable corpus shard {path}: {exc} "
                            f"(run `repro-sim corpus verify`)"
                        ) from None
                try:
                    arr = loaded[col]
                except Exception as exc:
                    raise CorpusError(
                        f"corpus shard {path} is missing column {col!r}: {exc}"
                    ) from None
            columns[col] = arr
        n = len(columns["pc"])
        if n != shard.insts:
            raise CorpusError(
                f"corpus shard {path} holds {n} instructions, manifest "
                f"says {shard.insts} (run `repro-sim corpus verify`)"
            )
        return columns

    def iter_shards(
        self, prefetch: bool = True
    ) -> Iterator[Tuple[int, Dict[str, np.ndarray]]]:
        """Yield ``(global_start_index, columns)`` per shard, loading the
        next shard on a background thread while the current one is
        consumed."""
        n_shards = len(self.manifest.shards)
        if not n_shards:
            return
        if not prefetch or n_shards == 1:
            for i in range(n_shards):
                yield self._starts[i], self.load_shard(i)
            return
        with ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="corpus-prefetch"
        ) as pool:
            pending = pool.submit(self.load_shard, 0)
            for i in range(n_shards):
                current = pending.result()
                if i + 1 < n_shards:
                    pending = pool.submit(self.load_shard, i + 1)
                yield self._starts[i], current

    def iter_chunks(
        self,
        chunk_insts: int = 8192,
        spec: Optional[SliceSpec] = None,
        prefetch: bool = True,
    ) -> Iterator[Dict[str, np.ndarray]]:
        """Stream the (optionally sliced) trace in column-dict chunks of
        at most *chunk_insts* instructions."""
        if chunk_insts < 1:
            raise CorpusError(f"chunk_insts must be positive, got {chunk_insts}")
        for start, columns in self.iter_shards(prefetch=prefetch):
            count = len(columns["pc"])
            keep = spec.mask(start, count) if spec is not None else None
            if keep is not None:
                if not keep.any():
                    continue
                columns = {c: a[keep] for c, a in columns.items()}
                count = len(columns["pc"])
            for lo in range(0, count, chunk_insts):
                hi = min(lo + chunk_insts, count)
                yield {c: a[lo:hi] for c, a in columns.items()}

    # -- materialization -----------------------------------------------------

    def to_trace(
        self,
        spec: Optional[SliceSpec] = None,
        max_insts: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Trace:
        """Materialize a :class:`~repro.trace.trace.Trace` (plain-list
        columns, as the simulator hot loop wants) covering the sliced
        window, truncated to *max_insts* when given."""
        if name is None:
            suffix = spec.canonical() if spec is not None else ""
            name = f"corpus:{self.manifest.name}" + (
                f"@{suffix}" if suffix else ""
            )
        trace = Trace(name=name)
        remaining = max_insts
        parts: Dict[str, List[np.ndarray]] = {c: [] for c in Trace._COLUMNS}
        for start, columns in self.iter_shards():
            keep = spec.mask(start, len(columns["pc"])) if spec is not None else None
            if keep is not None:
                if not keep.any():
                    continue
                columns = {c: a[keep] for c, a in columns.items()}
            count = len(columns["pc"])
            if remaining is not None:
                if remaining <= 0:
                    break
                if count > remaining:
                    columns = {c: a[:remaining] for c, a in columns.items()}
                    count = remaining
                remaining -= count
            for col in Trace._COLUMNS:
                parts[col].append(np.asarray(columns[col], dtype=np.int64))
        for col in Trace._COLUMNS:
            if parts[col]:
                merged = np.concatenate(parts[col])
            else:
                merged = np.empty(0, dtype=np.int64)
            setattr(trace, col, merged.tolist())
        return trace
