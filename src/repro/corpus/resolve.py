"""Resolution of ``corpus:`` workload names.

Anywhere the engine, runner, or CLI accepts a workload name, the form::

    corpus:<entry>[@<slice-spec>]

resolves to an ingested corpus trace instead of a synthetic workload —
e.g. ``corpus:srv01`` or ``corpus:srv01@skip=1000000,measure=5000000``
(see :class:`repro.corpus.reader.SliceSpec` for the slice grammar).

Cache keying: a sweep point on a corpus workload is keyed by the
entry's **content hash** plus the canonical slice spec
(:func:`corpus_point_spec` feeds
:func:`repro.core.exec.cachekey.result_key`), never by file paths or
ingestion metadata. Re-ingesting byte-identical content therefore keeps
every cached result and checkpoint valid, while ingesting changed
content under the same name invalidates exactly the affected points.

The active store root comes from :func:`configure_corpus` or the
``REPRO_CORPUS_DIR`` environment variable; configuring the root exports
the variable so sweep worker processes (fork *and* spawn) resolve the
same store.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.corpus.reader import CorpusTrace, SliceSpec
from repro.corpus.store import ENV_CORPUS_DIR, CorpusError, CorpusStore, Manifest
from repro.trace.trace import Trace

#: Prefix marking corpus workload names.
CORPUS_PREFIX = "corpus:"


def is_corpus_workload(workload: str) -> bool:
    """True when *workload* names a corpus entry (``corpus:...``)."""
    return isinstance(workload, str) and workload.startswith(CORPUS_PREFIX)


def configure_corpus(root=None) -> CorpusStore:
    """Point corpus resolution at *root* (None restores the default).

    Exports ``REPRO_CORPUS_DIR`` so worker processes inherit the root.
    """
    if root is None:
        os.environ.pop(ENV_CORPUS_DIR, None)
    else:
        os.environ[ENV_CORPUS_DIR] = str(root)
    return CorpusStore(root)


def get_store() -> CorpusStore:
    """The store named by ``REPRO_CORPUS_DIR`` (or the default root)."""
    return CorpusStore()


def split_corpus_workload(workload: str) -> Tuple[str, Optional[SliceSpec]]:
    """``corpus:<entry>[@<spec>]`` -> (entry, parsed spec or None)."""
    if not is_corpus_workload(workload):
        raise CorpusError(f"not a corpus workload name: {workload!r}")
    body = workload[len(CORPUS_PREFIX):]
    entry, sep, spec_text = body.partition("@")
    if not entry:
        raise CorpusError(f"empty corpus entry name in {workload!r}")
    if not sep:
        return entry, None
    if not spec_text:
        raise CorpusError(f"empty slice spec after '@' in {workload!r}")
    return entry, SliceSpec.parse(spec_text)


def open_corpus_trace(workload: str) -> Tuple[CorpusTrace, Optional[SliceSpec]]:
    """Lazy reader + slice spec for *workload* (nothing is read yet)."""
    entry, spec = split_corpus_workload(workload)
    store = get_store()
    return CorpusTrace(store, store.get(entry)), spec


def corpus_manifest(workload: str) -> Manifest:
    """Manifest of the entry *workload* names."""
    entry, _spec = split_corpus_workload(workload)
    return get_store().get(entry)


def load_corpus_trace(workload: str, length: Optional[int] = None) -> Trace:
    """Materialize *workload* for simulation.

    *length* caps the instruction count (after slicing), mirroring the
    ``length`` run parameter of synthetic workloads: a corpus trace
    shorter than *length* runs whole, a longer one is truncated to its
    first *length* instructions — deterministically, so (content hash,
    slice, length) fully determines the simulated instruction stream.
    """
    reader, spec = open_corpus_trace(workload)
    return reader.to_trace(spec=spec, max_insts=length, name=workload)


def corpus_point_spec(workload: str) -> dict:
    """Cache-key payload standing in for a synthetic ProgramSpec.

    Contains exactly the content identity: the entry's content hash and
    the canonical slice spec. Entry names, store paths, shard sizes and
    ingestion provenance are deliberately excluded.
    """
    entry, spec = split_corpus_workload(workload)
    manifest = get_store().get(entry)
    return {
        "kind": "corpus",
        "content": manifest.content_hash,
        "slice": spec.canonical() if spec is not None else "",
    }


def corpus_instruction_count(workload: str) -> int:
    """Instructions *workload* yields after slicing (manifest-only; no
    shard I/O)."""
    entry, spec = split_corpus_workload(workload)
    n = get_store().get(entry).instructions
    return spec.selected_count(n) if spec is not None else n
