"""Trace corpus subsystem: ingestion pipeline, content-addressed store,
and streaming readers.

The paper's methodology runs on a corpus of hundreds of real server
traces; this package is the data-pipeline layer that makes such corpora
manageable (see ``docs/corpus.md``):

* :mod:`repro.corpus.formats` — bounded-memory streaming format
  adapters (canonical CSV, ChampSim-like, CVP-1-like; transparent
  ``.gz``/``.xz``);
* :mod:`repro.corpus.store` — :class:`CorpusStore`, a content-addressed
  catalog of sharded columnar ``.npz`` traces under ``REPRO_CORPUS_DIR``
  (default ``~/.cache/repro-btb/corpus``) with integrity ``verify`` and
  ``gc``;
* :mod:`repro.corpus.reader` — :class:`CorpusTrace`, a lazy memory-
  mapping reader with background shard prefetch and
  :class:`SliceSpec` windows/sampling;
* :mod:`repro.corpus.resolve` — ``corpus:<name>[@slice]`` workload-name
  resolution and content-hash cache keying for the sweep engine.

Managed from the shell via ``repro-sim corpus ingest|ls|info|verify|gc``.
"""

from repro.corpus.formats import (
    FORMATS,
    detect_format,
    iter_champsim_records,
    iter_cvp1_records,
    iter_records,
)
from repro.corpus.reader import CorpusTrace, SliceSpec
from repro.corpus.resolve import (
    CORPUS_PREFIX,
    configure_corpus,
    corpus_instruction_count,
    corpus_manifest,
    corpus_point_spec,
    get_store,
    is_corpus_workload,
    load_corpus_trace,
    open_corpus_trace,
    split_corpus_workload,
)
from repro.corpus.store import (
    CORPUS_SCHEMA,
    DEFAULT_CORPUS_DIR,
    DEFAULT_SHARD_INSTS,
    ENV_CORPUS_DIR,
    CorpusError,
    CorpusStore,
    IngestResult,
    Manifest,
    ShardInfo,
    default_corpus_dir,
)

__all__ = [
    "CORPUS_PREFIX",
    "CORPUS_SCHEMA",
    "CorpusError",
    "CorpusStore",
    "CorpusTrace",
    "DEFAULT_CORPUS_DIR",
    "DEFAULT_SHARD_INSTS",
    "ENV_CORPUS_DIR",
    "FORMATS",
    "IngestResult",
    "Manifest",
    "ShardInfo",
    "SliceSpec",
    "configure_corpus",
    "corpus_instruction_count",
    "corpus_manifest",
    "corpus_point_spec",
    "default_corpus_dir",
    "detect_format",
    "get_store",
    "is_corpus_workload",
    "iter_champsim_records",
    "iter_cvp1_records",
    "iter_records",
    "load_corpus_trace",
    "open_corpus_trace",
    "split_corpus_workload",
]
